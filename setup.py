"""Legacy setup shim: this environment lacks the ``wheel`` package, so
PEP 660 editable installs fail; ``pip install -e . --no-build-isolation``
falls back to ``setup.py develop`` when this file exists."""

from setuptools import setup

setup()
