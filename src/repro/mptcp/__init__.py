"""Simplified MPTCP baseline (RFC 6824 behaviour relevant to Fig. 13).

MPTCP differs from multipath QUIC in the two ways that drive the
paper's comparison:

- it carries a *single ordered byte stream*, so any gap blocks all
  later data at the receiver (no independent streams); and
- ACKs return on the *same subflow* the data used (Sec. 5.3), so a
  slow path also has a slow ack clock.

The model implements the Linux default min-RTT scheduler with
opportunistic retransmission and subflow penalization (halving the
cwnd of the blocking subflow), per Raiciu et al. and the paper's
Sec. 8 description.
"""

from repro.mptcp.connection import MptcpConnection, MptcpConfig

__all__ = ["MptcpConnection", "MptcpConfig"]
