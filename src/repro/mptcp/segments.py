"""MPTCP wire segments.

A compact binary encoding of the fields the model needs: subflow
sequence numbers for per-subflow loss detection, plus the data
sequence mapping (DSS) that places the payload in the connection-level
byte stream.  ACK segments carry both the subflow-level cumulative
ack and the connection-level data ack.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

_DATA_HDR = struct.Struct("!BIQI")   # kind, subflow_seq, data_seq, length
_ACK_HDR = struct.Struct("!BIQ")     # kind, subflow_ack, data_ack

KIND_DATA = 1
KIND_ACK = 2
KIND_REQUEST = 3

MSS = 1400


@dataclass(frozen=True)
class DataSegment:
    """Payload-carrying segment with its data-sequence mapping."""

    subflow_seq: int
    data_seq: int
    payload_len: int

    def encode(self) -> bytes:
        # Payload contents are irrelevant to the emulation; only the
        # length is carried (the wire charges the real size).
        return _DATA_HDR.pack(KIND_DATA, self.subflow_seq, self.data_seq,
                              self.payload_len) + b"\x00" * self.payload_len


@dataclass(frozen=True)
class AckSegment:
    """Cumulative subflow ack + connection-level data ack."""

    subflow_ack: int
    data_ack: int

    def encode(self) -> bytes:
        return _ACK_HDR.pack(KIND_ACK, self.subflow_ack, self.data_ack)


@dataclass(frozen=True)
class RequestSegment:
    """Client request: total bytes wanted."""

    total_bytes: int

    def encode(self) -> bytes:
        return struct.pack("!BQ", KIND_REQUEST, self.total_bytes)


def decode_segment(data: bytes):
    """Parse any MPTCP segment."""
    if not data:
        raise ValueError("empty segment")
    kind = data[0]
    if kind == KIND_DATA:
        _k, sseq, dseq, length = _DATA_HDR.unpack_from(data)
        return DataSegment(subflow_seq=sseq, data_seq=dseq,
                           payload_len=length)
    if kind == KIND_ACK:
        _k, sack, dack = _ACK_HDR.unpack_from(data)
        return AckSegment(subflow_ack=sack, data_ack=dack)
    if kind == KIND_REQUEST:
        _k, total = struct.unpack_from("!BQ", data)
        return RequestSegment(total_bytes=total)
    raise ValueError(f"unknown MPTCP segment kind {kind}")
