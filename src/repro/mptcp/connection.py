"""MPTCP sender/receiver model.

The sender (server) streams ``total_bytes`` to the receiver (client)
across N subflows:

- min-RTT scheduler over subflows with cwnd space (Linux default);
- per-subflow cumulative acks, 3-dupack fast retransmit, and RTO;
- ACKs return on the *same* subflow that carried the data;
- receiver reassembles a single ordered byte stream -- a gap left by a
  slow subflow blocks everything after it (the MP-HoL of Sec. 1);
- opportunistic retransmission + penalization: when the in-order
  point stalls on data outstanding on one subflow while another
  subflow is idle, the stalled bytes are re-sent on the fastest other
  subflow and the blocker's cwnd is halved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.quic.cc import make_cc
from repro.quic.rtt import RttEstimator
from repro.mptcp.segments import (AckSegment, DataSegment, RequestSegment,
                                  MSS, decode_segment)
from repro.sim.event_loop import EventLoop

RTO_MIN = 0.2
DUPACK_THRESHOLD = 3
PENALIZATION_INTERVAL = 1.0  # at most one penalization per subflow per second


@dataclass
class MptcpConfig:
    cc_algorithm: str = "cubic"
    opportunistic_retransmit: bool = True
    penalization: bool = True


class _Subflow:
    """Sender-side state for one subflow."""

    def __init__(self, subflow_id: int, cc) -> None:
        self.subflow_id = subflow_id
        self.cc = cc
        self.rtt = RttEstimator()
        self.next_seq = 0
        self.highest_acked = 0
        #: subflow_seq -> (data_seq, length, sent_time, retransmitted)
        self.outstanding: Dict[int, Tuple[int, int, float, bool]] = {}
        self.dupacks = 0
        self.rto_event = None
        self.last_penalized = -1e9

    @property
    def srtt(self) -> float:
        return self.rtt.smoothed

    def rto(self) -> float:
        return max(self.rtt.smoothed + 4 * self.rtt.rttvar, RTO_MIN)


class MptcpConnection:
    """Both halves of a one-transfer MPTCP session.

    The harness creates one instance per role and wires ``transmit``
    to the emulated network, exactly as for the QUIC connections.
    """

    def __init__(self, loop: EventLoop, is_server: bool,
                 transmit: Callable[[int, bytes], None],
                 config: Optional[MptcpConfig] = None) -> None:
        self.loop = loop
        self.is_server = is_server
        self.transmit = transmit
        self.config = config if config is not None else MptcpConfig()
        self.subflows: Dict[int, _Subflow] = {}
        # sender state
        self.total_bytes = 0
        self.next_data_seq = 0
        self.data_acked = 0
        #: data ranges needing (re)transmission, highest priority first
        self._rtx_queue: List[Tuple[int, int]] = []
        self._sent_ranges_on: Dict[int, int] = {}
        # receiver state
        self._received: Set[Tuple[int, int]] = set()
        self._in_order_point = 0
        self._recv_subflow_acks: Dict[int, int] = {}
        self._expected_total: Optional[int] = None
        self.completed_at: Optional[float] = None
        self.on_complete: Optional[Callable[[], None]] = None
        self.stats_retransmitted_bytes = 0

    # -- setup ------------------------------------------------------------

    def add_subflow(self, subflow_id: int) -> None:
        self.subflows[subflow_id] = _Subflow(
            subflow_id, make_cc(self.config.cc_algorithm))
        self._recv_subflow_acks[subflow_id] = 0

    # -- client side --------------------------------------------------------

    def request(self, total_bytes: int) -> None:
        """Client: ask the server for ``total_bytes``.

        The tiny request rides every subflow: a real TCP stack would
        retransmit it until acked, and duplicating it across subflows
        is the simplest equivalent that survives a fade on one path.
        """
        if self.is_server:
            raise RuntimeError("only the client requests")
        self._expected_total = total_bytes
        payload = RequestSegment(total_bytes=total_bytes).encode()
        for subflow_id in self.subflows or {0: None}:
            self.transmit(subflow_id, payload)

    # -- datagram entry point ---------------------------------------------------

    def datagram_received(self, payload: bytes, subflow_id: int) -> None:
        segment = decode_segment(payload)
        if isinstance(segment, RequestSegment):
            self._on_request(segment)
        elif isinstance(segment, DataSegment):
            self._on_data(segment, subflow_id)
        elif isinstance(segment, AckSegment):
            self._on_ack(segment, subflow_id)

    # -- server (sender) ----------------------------------------------------------

    def _on_request(self, segment: RequestSegment) -> None:
        # Requests extend the transfer target; a later range request on
        # the same connection continues the byte stream (HTTP/1.1
        # keep-alive semantics), so the send cursor is never rewound.
        self.total_bytes = max(segment.total_bytes, self.total_bytes)
        self._pump()

    def _pump(self) -> None:
        """Min-RTT scheduling of new + retransmission data."""
        while True:
            flow = self._pick_subflow()
            if flow is None:
                return
            if self._rtx_queue:
                data_seq, length = self._rtx_queue.pop(0)
                self.stats_retransmitted_bytes += length
            elif self.next_data_seq < self.total_bytes:
                data_seq = self.next_data_seq
                length = min(MSS, self.total_bytes - data_seq)
                self.next_data_seq += length
            else:
                return
            self._send_segment(flow, data_seq, length)

    def _pick_subflow(self) -> Optional[_Subflow]:
        ready = [f for f in self.subflows.values()
                 if f.cc.can_send(MSS)]
        if not ready:
            return None
        return min(ready, key=lambda f: f.srtt)

    def _send_segment(self, flow: _Subflow, data_seq: int,
                      length: int) -> None:
        seq = flow.next_seq
        flow.next_seq += 1
        flow.outstanding[seq] = (data_seq, length, self.loop.now, False)
        self._sent_ranges_on[data_seq] = flow.subflow_id
        flow.cc.on_packet_sent(length, self.loop.now)
        segment = DataSegment(subflow_seq=seq, data_seq=data_seq,
                              payload_len=length)
        self.transmit(flow.subflow_id, segment.encode())
        self._arm_rto(flow)

    def _arm_rto(self, flow: _Subflow) -> None:
        if flow.rto_event is not None:
            flow.rto_event.cancel()
        if not flow.outstanding:
            flow.rto_event = None
            return
        flow.rto_event = self.loop.schedule_after(
            flow.rto(), lambda: self._on_rto(flow), label="mptcp-rto")

    def _on_rto(self, flow: _Subflow) -> None:
        flow.rto_event = None
        if not flow.outstanding:
            return
        # Retransmit everything outstanding on this subflow; collapse cwnd.
        for seq, (data_seq, length, _t, _r) in sorted(
                flow.outstanding.items()):
            if data_seq + length > self.data_acked:
                self._rtx_queue.insert(0, (data_seq, length))
            flow.cc.on_discarded(length)
        flow.outstanding.clear()
        flow.cc.on_packets_lost(0, self.loop.now, self.loop.now)
        flow.cc.ssthresh = max(flow.cc.cwnd, flow.cc.ssthresh / 2)
        self._pump()
        self._arm_rto(flow)

    def _on_ack(self, segment: AckSegment, subflow_id: int) -> None:
        """Process an echo-ack: ``subflow_ack`` is (received seq + 1).

        The receiver echoes each arriving segment's subflow sequence
        number, so the sender can credit exactly that segment and
        declare older outstanding segments lost once the echo horizon
        has moved DUPACK_THRESHOLD past them (TCP's 3-dupack rule in
        echo form -- retransmissions here use fresh sequence numbers,
        so a cumulative ack would wedge on the first hole).
        """
        flow = self.subflows.get(subflow_id)
        if flow is None:
            return
        now = self.loop.now
        if segment.data_ack > self.data_acked:
            self.data_acked = segment.data_ack
            self._rtx_queue = [(d, l) for d, l in self._rtx_queue
                               if d + l > self.data_acked]
        echoed = segment.subflow_ack - 1
        if echoed in flow.outstanding:
            data_seq, length, sent_time, _r = flow.outstanding.pop(echoed)
            flow.rtt.update(max(now - sent_time, 1e-6))
            flow.cc.on_packet_acked(length, sent_time, now,
                                    flow.rtt.smoothed)
        if echoed > flow.highest_acked:
            flow.highest_acked = echoed
        self._detect_subflow_losses(flow)
        self._maybe_opportunistic_rtx()
        self._pump()
        self._arm_rto(flow)

    def _detect_subflow_losses(self, flow: _Subflow) -> None:
        """3-dupack-equivalent: seqs well behind the echo horizon."""
        horizon = flow.highest_acked - DUPACK_THRESHOLD
        lost = sorted(s for s in flow.outstanding if s <= horizon)
        for seq in lost:
            data_seq, length, sent_time, _r = flow.outstanding.pop(seq)
            flow.cc.on_packets_lost(length, sent_time, self.loop.now)
            if data_seq + length > self.data_acked \
                    and (data_seq, length) not in self._rtx_queue:
                self._rtx_queue.insert(0, (data_seq, length))
                self.stats_retransmitted_bytes += 0  # counted on send

    def _maybe_opportunistic_rtx(self) -> None:
        """Opportunistic retransmission + penalization (Sec. 8).

        If the connection-level in-order point is stuck on data that is
        outstanding on one subflow while a *faster* subflow has window
        space, re-send the blocking bytes there and halve the blocker's
        cwnd.
        """
        if not self.config.opportunistic_retransmit:
            return
        now = self.loop.now
        blocking: Optional[Tuple[_Subflow, int, int, float]] = None
        for flow in self.subflows.values():
            for seq, (data_seq, length, sent_time, _r) in \
                    flow.outstanding.items():
                if data_seq <= self.data_acked < data_seq + length:
                    blocking = (flow, data_seq, length, sent_time)
                    break
            if blocking:
                break
        if blocking is None:
            return
        blocker, data_seq, length, sent_time = blocking
        # The in-order point always sits on *some* in-flight segment;
        # only act when that segment is overdue -- i.e. it has been in
        # flight well past the subflow's expected delivery time.  The
        # trigger is deliberately conservative: Linux only performs
        # opportunistic retransmission when the connection is
        # receive-window limited (Raiciu et al., NSDI'12), which in
        # practice means the blocking segment has been stalling the
        # stream for a long time, not merely an RTT or two.
        overdue_after = max(4 * blocker.srtt, 0.5)
        if now - sent_time < overdue_after:
            return
        others = [f for f in self.subflows.values()
                  if f is not blocker and f.cc.can_send(MSS)]
        if not others:
            return
        if (data_seq, length) not in self._rtx_queue:
            self._rtx_queue.insert(0, (data_seq, length))
        if self.config.penalization and \
                now - blocker.last_penalized > PENALIZATION_INTERVAL:
            blocker.cc.cwnd = max(blocker.cc.cwnd / 2, MSS * 2)
            blocker.cc.ssthresh = blocker.cc.cwnd
            blocker.last_penalized = now

    # -- client (receiver) ------------------------------------------------------

    def _on_data(self, segment: DataSegment, subflow_id: int) -> None:
        self._received.add((segment.data_seq, segment.payload_len))
        self._advance_in_order()
        # Echo-ack the arriving segment's subflow sequence number.
        self._recv_subflow_acks[subflow_id] = segment.subflow_seq + 1
        ack = AckSegment(subflow_ack=segment.subflow_seq + 1,
                         data_ack=self._in_order_point)
        # MPTCP returns the ACK on the same subflow (Sec. 5.3).
        self.transmit(subflow_id, ack.encode())
        if (self._expected_total is not None
                and self._in_order_point >= self._expected_total
                and self.completed_at is None):
            self.completed_at = self.loop.now
            if self.on_complete is not None:
                self.on_complete()

    def _advance_in_order(self) -> None:
        moved = True
        while moved:
            moved = False
            for start, length in self._received:
                if start <= self._in_order_point < start + length:
                    self._in_order_point = start + length
                    moved = True

    @property
    def bytes_in_order(self) -> int:
        """Connection-level contiguous prefix (what the app can read)."""
        return self._in_order_point
