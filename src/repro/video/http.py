"""Minimal HTTP-range request layer over QUIC streams.

The MediaCacheService issues range requests, one QUIC stream per
chunk (Sec. 5.1: "the video player may simultaneously request multiple
streams, with each downloading a small portion of the video").  The
wire format is a compact text request and a binary body; response
metadata (first-frame range) rides a small header so the server can
mark frame priorities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RangeRequest:
    """GET <name> bytes=start-end (end exclusive)."""

    video_name: str
    start: int
    end: int

    def encode(self) -> bytes:
        return f"GET {self.video_name} bytes={self.start}-{self.end}\r\n" \
            .encode()

    @property
    def size(self) -> int:
        return self.end - self.start


def parse_request(data: bytes) -> Optional[RangeRequest]:
    """Parse a range request; None if the data is not a complete request."""
    if not data.endswith(b"\r\n"):
        return None
    try:
        text = data.decode().strip()
        method, name, range_part = text.split(" ")
        if method != "GET" or not range_part.startswith("bytes="):
            return None
        start_s, end_s = range_part[len("bytes="):].split("-")
        return RangeRequest(video_name=name, start=int(start_s),
                            end=int(end_s))
    except (ValueError, UnicodeDecodeError):
        return None


@dataclass(frozen=True)
class RangeResponseMeta:
    """Fixed-size binary response header preceding the body."""

    total_size: int
    start: int
    end: int

    HEADER_LEN = 24

    def encode(self) -> bytes:
        return (self.total_size.to_bytes(8, "big")
                + self.start.to_bytes(8, "big")
                + self.end.to_bytes(8, "big"))

    @classmethod
    def decode(cls, data: bytes) -> "RangeResponseMeta":
        if len(data) < cls.HEADER_LEN:
            raise ValueError("response header truncated")
        return cls(total_size=int.from_bytes(data[0:8], "big"),
                   start=int.from_bytes(data[8:16], "big"),
                   end=int.from_bytes(data[16:24], "big"))
