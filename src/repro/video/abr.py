"""Adaptive-bitrate (ABR) streaming on top of the transport.

Sec. 8 contrasts XLINK with DASH-style bitrate adaptation: ABR is
"limited to a single path's capacity", while XLINK aggregates paths.
This module provides a buffer-based ABR player (BBA-style: pick the
highest rung whose threshold the buffer clears) so the comparison can
be made inside the emulator: ABR-on-SP degrades quality to survive,
while the same ABR logic on a multipath transport holds the top rung.

Content is organized as a :class:`BitrateLadder`: the same duration
encoded at several bitrates, fetched in fixed-duration segments, each
segment one HTTP range request against the chosen rung's variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.quic.connection import Connection
from repro.quic.frames import QoeSignals
from repro.sim.event_loop import EventLoop
from repro.video.http import RangeRequest
from repro.video.media import Video, make_video


@dataclass
class BitrateLadder:
    """The same content encoded at multiple bitrates."""

    name: str
    duration_s: float
    bitrates_bps: List[float]
    variants: Dict[float, Video] = field(default_factory=dict)

    @classmethod
    def make(cls, name: str = "abr", duration_s: float = 20.0,
             bitrates_bps: Optional[List[float]] = None,
             seed: int = 0) -> "BitrateLadder":
        bitrates = sorted(bitrates_bps or
                          [500_000, 1_000_000, 2_000_000, 4_000_000])
        ladder = cls(name=name, duration_s=duration_s,
                     bitrates_bps=bitrates)
        for rate in bitrates:
            ladder.variants[rate] = make_video(
                name=f"{name}@{int(rate)}", duration_s=duration_s,
                bitrate_bps=rate, seed=seed,
                first_frame_factor=4.0)
        return ladder

    def variant(self, bitrate: float) -> Video:
        return self.variants[bitrate]


@dataclass
class AbrStats:
    """ABR session results."""

    selected_bitrates: List[float] = field(default_factory=list)
    rebuffer_time: float = 0.0
    play_time: float = 0.0
    switches: int = 0

    @property
    def mean_bitrate(self) -> float:
        if not self.selected_bitrates:
            return 0.0
        return sum(self.selected_bitrates) / len(self.selected_bitrates)

    @property
    def rebuffer_rate(self) -> float:
        if self.play_time <= 0:
            return 0.0
        return self.rebuffer_time / self.play_time


class AbrPlayer:
    """Buffer-based ABR (BBA-style) over fixed-duration segments.

    Rung selection: the highest bitrate whose reservoir threshold the
    current buffer exceeds; thresholds are spread linearly between
    ``reservoir_s`` and ``cushion_s`` (Huang et al., SIGCOMM'14).
    """

    def __init__(self, loop: EventLoop, conn: Connection,
                 ladder: BitrateLadder,
                 segment_duration_s: float = 1.0,
                 reservoir_s: float = 1.0,
                 cushion_s: float = 4.0,
                 max_buffer_s: float = 6.0) -> None:
        self.loop = loop
        self.conn = conn
        self.ladder = ladder
        self.segment_duration_s = segment_duration_s
        self.reservoir_s = reservoir_s
        self.cushion_s = cushion_s
        self.max_buffer_s = max_buffer_s
        self.stats = AbrStats()

        self._n_segments = int(ladder.duration_s / segment_duration_s)
        self._next_segment = 0
        self._segment_of_stream: Dict[int, int] = {}
        self._received_segments: set = set()
        self._inflight = 0
        self._buffered_s = 0.0
        self._playing = False
        self._stalled_at: Optional[float] = None
        self._finished = False
        self._last_tick = 0.0
        self._request_buf: Dict[int, bytearray] = {}
        self.on_finished: Optional[Callable[[], None]] = None
        conn.on_stream_data = self._on_stream_data
        conn.qoe_provider = self.qoe_signals

    # -- rate selection ----------------------------------------------------

    def select_bitrate(self) -> float:
        """BBA map from buffer occupancy to a ladder rung."""
        rates = self.ladder.bitrates_bps
        if self._buffered_s <= self.reservoir_s:
            return rates[0]
        if self._buffered_s >= self.cushion_s:
            return rates[-1]
        span = self.cushion_s - self.reservoir_s
        frac = (self._buffered_s - self.reservoir_s) / span
        index = min(int(frac * len(rates)), len(rates) - 1)
        return rates[index]

    # -- session ---------------------------------------------------------------

    def start(self) -> None:
        self._last_tick = self.loop.now
        self._fill()
        self._tick()

    @property
    def finished(self) -> bool:
        return self._finished

    def _fill(self) -> None:
        while (self._next_segment < self._n_segments
               and self._inflight < 2
               and self._buffered_s < self.max_buffer_s):
            self._request_segment(self._next_segment)
            self._next_segment += 1

    def _request_segment(self, index: int) -> None:
        bitrate = self.select_bitrate()
        if self.stats.selected_bitrates and \
                self.stats.selected_bitrates[-1] != bitrate:
            self.stats.switches += 1
        self.stats.selected_bitrates.append(bitrate)
        video = self.ladder.variant(bitrate)
        seg_bytes = video.total_bytes / self._n_segments
        start = int(index * seg_bytes)
        end = int((index + 1) * seg_bytes)
        stream_id = self.conn.create_stream(priority=index)
        self._segment_of_stream[stream_id] = index
        self._inflight += 1
        request = RangeRequest(video_name=video.name, start=start, end=end)
        self.conn.stream_send(stream_id, request.encode(), fin=True)

    def _on_stream_data(self, stream_id: int) -> None:
        index = self._segment_of_stream.get(stream_id)
        if index is None:
            return
        self.conn.stream_read(stream_id)
        stream = self.conn.recv_streams.get(stream_id)
        if stream is not None and stream.fully_read \
                and index not in self._received_segments:
            self._received_segments.add(index)
            self._inflight -= 1
            self._buffered_s += self.segment_duration_s
            if self._stalled_at is not None and self._buffered_s >= \
                    self.segment_duration_s:
                self.stats.rebuffer_time += \
                    self.loop.now - self._stalled_at
                self._stalled_at = None
            self._fill()

    def _tick(self) -> None:
        if self._finished:
            return
        now = self.loop.now
        elapsed = now - self._last_tick
        self._last_tick = now
        if self._stalled_at is None:
            if self._buffered_s > 0:
                consumed = min(elapsed, self._buffered_s)
                self._buffered_s -= consumed
                self.stats.play_time += consumed
                self._playing = True
            elif self._playing:
                self._stalled_at = now
        done = (len(self._received_segments) >= self._n_segments
                and self._buffered_s <= 0)
        if done:
            self._finished = True
            if self._stalled_at is not None:
                self.stats.rebuffer_time += now - self._stalled_at
            if self.on_finished is not None:
                self.on_finished()
            return
        self._fill()
        self.loop.schedule_after(0.05, self._tick, label="abr-tick")

    # -- QoE signal --------------------------------------------------------------

    def qoe_signals(self) -> QoeSignals:
        current = self.stats.selected_bitrates[-1] \
            if self.stats.selected_bitrates else self.ladder.bitrates_bps[0]
        fps = 25
        return QoeSignals(
            cached_bytes=int(self._buffered_s * current / 8),
            cached_frames=int(self._buffered_s * fps),
            bps=int(current), fps=fps)
