"""Video content model.

A :class:`Video` is a sequence of frames at a fixed fps with a
(possibly variable) per-frame size; the first frame (key frame) is
much larger than the rest, which is what makes first-video-frame
acceleration matter.  Videos are fetched in fixed-size *chunks* via
HTTP range requests, mirroring the short-video service's
MediaCacheService behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.sim.rng import make_rng


@dataclass(frozen=True)
class VideoChunk:
    """One HTTP range of a video: bytes [start, end)."""

    index: int
    start: int
    end: int

    @property
    def size(self) -> int:
        return self.end - self.start


@dataclass
class Video:
    """A short-form video: frame sizes (bytes) at a fixed frame rate."""

    name: str
    fps: int
    frame_sizes: List[int]
    chunk_size: int = 256 * 1024

    @property
    def total_bytes(self) -> int:
        return sum(self.frame_sizes)

    @property
    def duration_s(self) -> float:
        return len(self.frame_sizes) / self.fps

    @property
    def mean_bps(self) -> float:
        return self.total_bytes * 8.0 / self.duration_s

    @property
    def first_frame_size(self) -> int:
        return self.frame_sizes[0]

    def chunks(self) -> List[VideoChunk]:
        """Fixed-size ranges covering the video."""
        out: List[VideoChunk] = []
        offset = 0
        index = 0
        total = self.total_bytes
        while offset < total:
            end = min(offset + self.chunk_size, total)
            out.append(VideoChunk(index=index, start=offset, end=end))
            offset = end
            index += 1
        return out

    def frame_offsets(self) -> List[Tuple[int, int]]:
        """(start, end) byte ranges of each frame."""
        out = []
        offset = 0
        for size in self.frame_sizes:
            out.append((offset, offset + size))
            offset += size
        return out

    def frames_in_bytes(self, byte_count: int) -> int:
        """Number of whole frames contained in the first ``byte_count``."""
        consumed = 0
        frames = 0
        for size in self.frame_sizes:
            if consumed + size > byte_count:
                break
            consumed += size
            frames += 1
        return frames

    def bytes_for_frames(self, frame_count: int) -> int:
        """Total size of the first ``frame_count`` frames."""
        return sum(self.frame_sizes[:frame_count])


def make_video(name: str = "video", duration_s: float = 15.0,
               fps: int = 25, bitrate_bps: float = 2_000_000,
               first_frame_factor: float = 8.0,
               seed: int = 0,
               chunk_size: int = 256 * 1024) -> Video:
    """Generate a short video with a large key frame and jittered P-frames.

    Defaults approximate a Taobao product short video: ~15 s at 2 Mbps
    (3.75 MB), 25 fps, with a first (key) frame several times the mean
    frame size -- the paper's Fig. 7 sweeps first-frame sizes from
    128 KB to 2 MB.
    """
    rng = make_rng(seed, f"video-{name}")
    n_frames = int(duration_s * fps)
    if n_frames < 2:
        raise ValueError("video must have at least 2 frames")
    mean_frame = bitrate_bps / 8.0 / fps
    first = int(mean_frame * first_frame_factor)
    # Keep the total close to bitrate * duration by shrinking P-frames.
    remaining = bitrate_bps / 8.0 * duration_s - first
    p_mean = max(remaining / (n_frames - 1), 200.0)
    sizes = [first]
    for _ in range(n_frames - 1):
        sizes.append(max(int(p_mean * rng.uniform(0.6, 1.4)), 100))
    return Video(name=name, fps=fps, frame_sizes=sizes,
                 chunk_size=chunk_size)
