"""CDN-edge media server application.

Listens on a server-side QUIC connection, parses HTTP range requests
arriving on streams, and answers each with a response header plus the
requested byte range.  When first-video-frame acceleration is enabled
and the range contains the start of the video, the server marks the
first frame's bytes with ``FIRST_FRAME_PRIORITY`` via the
``stream_send`` priority API (Sec. 5.1, Fig. 4c).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.quic.connection import Connection
from repro.quic.stream import FIRST_FRAME_PRIORITY
from repro.video.http import RangeResponseMeta, parse_request
from repro.video.media import Video


class MediaServer:
    """Serves one or more videos over a server-side connection."""

    def __init__(self, conn: Connection, videos: Dict[str, Video],
                 first_frame_acceleration: bool = True) -> None:
        self.conn = conn
        self.videos = dict(videos)
        self.first_frame_acceleration = first_frame_acceleration
        self._request_buf: Dict[int, bytearray] = {}
        self._answered: set = set()
        self.requests_served = 0
        conn.on_stream_data = self._on_stream_data

    def add_video(self, video: Video) -> None:
        self.videos[video.name] = video

    def _on_stream_data(self, stream_id: int) -> None:
        if stream_id in self._answered:
            return
        buf = self._request_buf.setdefault(stream_id, bytearray())
        buf.extend(self.conn.stream_read(stream_id))
        request = parse_request(bytes(buf))
        if request is None:
            return
        self._answered.add(stream_id)
        del self._request_buf[stream_id]
        self._serve(stream_id, request)

    def _serve(self, stream_id: int, request) -> None:
        video = self.videos.get(request.video_name)
        if video is None:
            self.conn.stream_send(stream_id, b"", fin=True)
            return
        start = max(request.start, 0)
        end = min(request.end, video.total_bytes)
        meta = RangeResponseMeta(total_size=video.total_bytes,
                                 start=start, end=end)
        body = self._body_bytes(video, start, end)
        payload = meta.encode() + body
        # The chunk's position in the video orders the stream priority:
        # earlier content is more urgent (Fig. 4b semantics).
        stream_priority = start // max(video.chunk_size, 1)
        first_frame_end = video.first_frame_size
        if (self.first_frame_acceleration and start < first_frame_end):
            # Mark the first video frame's bytes at the highest priority.
            # Positions are relative to this stream's payload.
            ff_start = RangeResponseMeta.HEADER_LEN  # frame starts after meta
            ff_len = min(end, first_frame_end) - start
            self.conn.stream_send(
                stream_id, payload, fin=True, priority=stream_priority,
                frame_priority=FIRST_FRAME_PRIORITY,
                position=ff_start, size=ff_len)
        else:
            self.conn.stream_send(stream_id, payload, fin=True,
                                  priority=stream_priority)
        self.requests_served += 1

    @staticmethod
    def _body_bytes(video: Video, start: int, end: int) -> bytes:
        """Deterministic pseudo-content for the byte range."""
        # Pattern data keyed by offset so tests can verify ranges.
        length = end - start
        unit = video.name.encode() + b"|"
        reps = length // len(unit) + 2
        block = unit * reps
        phase = start % len(unit)
        return block[phase:phase + length]
