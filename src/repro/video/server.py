"""CDN-edge media server application.

Parses HTTP range requests arriving on QUIC streams and answers each
with a response header plus the requested byte range.  When
first-video-frame acceleration is enabled and the range contains the
start of the video, the server marks the first frame's bytes with
``FIRST_FRAME_PRIORITY`` via the ``stream_send`` priority API
(Sec. 5.1, Fig. 4c).

One :class:`MediaServer` holds one video catalog and can serve any
number of concurrent connections (the paper's CDN node handles 100K+
users per machine): :meth:`attach` registers a server-side connection,
and per-connection request state is tracked separately.  The legacy
one-connection constructor form ``MediaServer(conn, videos)`` still
works and simply attaches ``conn``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.quic.connection import Connection
from repro.quic.stream import FIRST_FRAME_PRIORITY
from repro.video.http import RangeResponseMeta, parse_request
from repro.video.media import Video


class MediaServer:
    """Serves a video catalog over any number of server connections."""

    def __init__(self, conn: Optional[Connection] = None,
                 videos: Optional[Dict[str, Video]] = None,
                 first_frame_acceleration: bool = True) -> None:
        self.videos: Dict[str, Video] = dict(videos or {})
        self.first_frame_acceleration = first_frame_acceleration
        #: (connection, stream_id) -> partial request bytes
        self._request_buf: Dict[Tuple[int, int], bytearray] = {}
        self._answered: set = set()
        #: attached connections by id() -> (conn, effective FFA flag)
        self._attached: Dict[int, Tuple[Connection, bool]] = {}
        self.requests_served = 0
        if conn is not None:
            self.attach(conn)

    @property
    def connections(self) -> int:
        """Number of attached server connections."""
        return len(self._attached)

    def attach(self, conn: Connection,
               first_frame_acceleration: Optional[bool] = None) -> None:
        """Serve the catalog on ``conn``.

        ``first_frame_acceleration`` overrides the server default for
        this connection (schemes like ``xlink_nofa`` disable it while
        other sessions on the same host keep it).
        """
        if id(conn) in self._attached:
            raise ValueError("connection already attached")
        ffa = (self.first_frame_acceleration
               if first_frame_acceleration is None
               else first_frame_acceleration)
        self._attached[id(conn)] = (conn, ffa)
        conn.on_stream_data = (
            lambda stream_id, _conn=conn: self._on_stream_data(_conn,
                                                               stream_id))

    def add_video(self, video: Video) -> None:
        self.videos[video.name] = video

    def _on_stream_data(self, conn: Connection, stream_id: int) -> None:
        key = (id(conn), stream_id)
        if key in self._answered:
            return
        buf = self._request_buf.setdefault(key, bytearray())
        buf.extend(conn.stream_read(stream_id))
        request = parse_request(bytes(buf))
        if request is None:
            return
        self._answered.add(key)
        del self._request_buf[key]
        self._serve(conn, stream_id, request)

    def _serve(self, conn: Connection, stream_id: int, request) -> None:
        video = self.videos.get(request.video_name)
        if video is None:
            conn.stream_send(stream_id, b"", fin=True)
            return
        _conn, ffa = self._attached[id(conn)]
        start = max(request.start, 0)
        end = min(request.end, video.total_bytes)
        meta = RangeResponseMeta(total_size=video.total_bytes,
                                 start=start, end=end)
        body = self._body_bytes(video, start, end)
        payload = meta.encode() + body
        # The chunk's position in the video orders the stream priority:
        # earlier content is more urgent (Fig. 4b semantics).
        stream_priority = start // max(video.chunk_size, 1)
        first_frame_end = video.first_frame_size
        if ffa and start < first_frame_end:
            # Mark the first video frame's bytes at the highest priority.
            # Positions are relative to this stream's payload.
            ff_start = RangeResponseMeta.HEADER_LEN  # frame starts after meta
            ff_len = min(end, first_frame_end) - start
            conn.stream_send(
                stream_id, payload, fin=True, priority=stream_priority,
                frame_priority=FIRST_FRAME_PRIORITY,
                position=ff_start, size=ff_len)
        else:
            conn.stream_send(stream_id, payload, fin=True,
                             priority=stream_priority)
        self.requests_served += 1

    @staticmethod
    def _body_bytes(video: Video, start: int, end: int) -> bytes:
        """Deterministic pseudo-content for the byte range."""
        # Pattern data keyed by offset so tests can verify ranges.
        length = end - start
        unit = video.name.encode() + b"|"
        reps = length // len(unit) + 2
        block = unit * reps
        phase = start % len(unit)
        return block[phase:phase + length]
