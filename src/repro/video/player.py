"""Client video player with buffer accounting and QoE signal capture.

The player model mirrors Fig. 5's pipeline in behavioural terms:

- the MediaCacheService issues HTTP range requests over QUIC streams,
  keeping up to ``concurrent_requests`` chunks in flight (prefetch);
- arriving bytes fill the source-pipe buffer; playback consumes whole
  frames at the video frame rate once ``startup_frames`` are buffered;
- rebuffering starts when a frame is due but not fully downloaded and
  ends when ``resume_frames`` are available again;
- TNET-style QoE capture: the player exposes the four signals of
  Sec. 5.2 (cached bytes / cached frames / bps / fps), which the
  connection's ACK_MP generation polls via ``qoe_provider``.

The player measures the paper's QoE metrics: per-chunk request
completion time (RCT), first-video-frame latency, and rebuffer rate
(sum of rebuffer time / sum of play time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.quic.connection import Connection
from repro.quic.frames import QoeSignals
from repro.quic.stream import FIRST_FRAME_PRIORITY
from repro.sim.event_loop import EventLoop
from repro.video.http import RangeRequest
from repro.video.media import Video


@dataclass
class RebufferEvent:
    """One stall: playback stopped at ``start`` and resumed at ``end``."""

    start: float
    end: Optional[float] = None

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0


@dataclass
class PlayerConfig:
    """Playback policy knobs."""

    #: frames buffered before playback starts
    startup_frames: int = 5
    #: frames needed to resume after a stall
    resume_frames: int = 5
    #: maximum concurrent chunk requests (prefetch depth)
    concurrent_requests: int = 2
    #: stop prefetching when buffered play-time exceeds this (seconds)
    max_buffer_s: float = 8.0
    #: mark the first video frame with FIRST_FRAME_PRIORITY ranges
    first_frame_acceleration: bool = True
    #: playback tick interval (seconds)
    tick_s: float = 0.04


@dataclass
class PlayerStats:
    """Everything the evaluation reads from a finished session."""

    request_completion_times: List[float] = field(default_factory=list)
    first_frame_latency: Optional[float] = None
    rebuffer_events: List[RebufferEvent] = field(default_factory=list)
    play_time: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    buffer_level_samples: List[tuple] = field(default_factory=list)

    @property
    def rebuffer_time(self) -> float:
        return sum(e.duration for e in self.rebuffer_events)

    @property
    def rebuffer_rate(self) -> float:
        """sum(rebuffer time) / sum(play time) -- the paper's metric."""
        if self.play_time <= 0:
            return 0.0
        return self.rebuffer_time / self.play_time

    @property
    def rebuffer_count(self) -> int:
        return len([e for e in self.rebuffer_events if e.end is not None])


class VideoPlayer:
    """Drives one video playback session over a QUIC connection."""

    def __init__(self, loop: EventLoop, conn: Connection, video: Video,
                 config: Optional[PlayerConfig] = None) -> None:
        self.loop = loop
        self.conn = conn
        self.video = video
        self.config = config if config is not None else PlayerConfig()
        self.stats = PlayerStats()

        self._chunks = video.chunks()
        self._next_chunk = 0
        self._stream_of_chunk: Dict[int, int] = {}
        self._chunk_of_stream: Dict[int, int] = {}
        self._request_sent_at: Dict[int, float] = {}
        self._chunk_done: Dict[int, bool] = {}
        self._bytes_received = 0
        #: contiguous downloaded prefix of the video, in bytes
        self._contiguous_bytes = 0
        self._chunk_received: Dict[int, int] = {}

        self._playing = False
        self._stalled: Optional[RebufferEvent] = None
        self._played_frames = 0
        self._play_start: Optional[float] = None
        self._finished = False
        self._tick_event = None
        self.on_finished: Optional[Callable[[], None]] = None

        conn.on_stream_data = self._on_stream_data
        conn.qoe_provider = self.qoe_signals

    # -- request pipeline ---------------------------------------------------

    def start(self) -> None:
        """Begin the session (call once the connection is established)."""
        self.stats.started_at = self.loop.now
        self._fill_request_window()
        self._schedule_tick()

    def _in_flight(self) -> int:
        return len([c for c, done in self._chunk_done.items() if not done])

    def _buffered_play_time(self) -> float:
        frames = self.video.frames_in_bytes(self._contiguous_bytes)
        return max(frames - self._played_frames, 0) / self.video.fps

    def _fill_request_window(self) -> None:
        while (self._next_chunk < len(self._chunks)
               and self._in_flight() < self.config.concurrent_requests
               and self._buffered_play_time() < self.config.max_buffer_s):
            self._request_chunk(self._next_chunk)
            self._next_chunk += 1

    def _request_chunk(self, index: int) -> None:
        chunk = self._chunks[index]
        # Earlier chunks get higher (numerically lower) stream priority:
        # the stream-priority re-injection of Fig. 4b keys off this.
        stream_id = self.conn.create_stream(priority=index)
        self._stream_of_chunk[index] = stream_id
        self._chunk_of_stream[stream_id] = index
        self._request_sent_at[index] = self.loop.now
        self._chunk_done[index] = False
        self._chunk_received[index] = 0
        request = RangeRequest(video_name=self.video.name,
                               start=chunk.start, end=chunk.end)
        self.conn.stream_send(stream_id, request.encode(), fin=True)

    # -- data arrival ---------------------------------------------------------

    def _on_stream_data(self, stream_id: int) -> None:
        index = self._chunk_of_stream.get(stream_id)
        if index is None:
            return
        data = self.conn.stream_read(stream_id)
        if not data:
            return
        self._chunk_received[index] += len(data)
        self._bytes_received += len(data)
        self._recompute_contiguous()
        chunk = self._chunks[index]
        stream = self.conn.recv_streams.get(stream_id)
        if (not self._chunk_done[index]
                and self._chunk_received[index] >= chunk.size
                and stream is not None and stream.fully_read):
            self._chunk_done[index] = True
            rct = self.loop.now - self._request_sent_at[index]
            self.stats.request_completion_times.append(rct)
        self._maybe_first_frame()
        self._maybe_resume()
        self._fill_request_window()

    def _recompute_contiguous(self) -> None:
        total = 0
        for i, chunk in enumerate(self._chunks):
            got = min(self._chunk_received.get(i, 0), chunk.size)
            total += got
            if got < chunk.size:
                break
        self._contiguous_bytes = total

    def _maybe_first_frame(self) -> None:
        if self.stats.first_frame_latency is not None:
            return
        if self._contiguous_bytes >= self.video.first_frame_size:
            assert self.stats.started_at is not None
            self.stats.first_frame_latency = \
                self.loop.now - self.stats.started_at

    # -- playback loop ----------------------------------------------------------

    def _schedule_tick(self) -> None:
        if self._finished:
            return
        self._tick_event = self.loop.schedule_after(
            self.config.tick_s, self._tick, label="player-tick")

    def _tick(self) -> None:
        if self._finished:
            return
        self._sample_buffer()
        if not self._playing and self._stalled is None:
            # Initial start-up: wait for startup_frames.
            available = self.video.frames_in_bytes(self._contiguous_bytes)
            if available >= min(self.config.startup_frames,
                                len(self.video.frame_sizes)):
                self._playing = True
                self._play_start = self.loop.now
        if self._playing:
            self._advance_playback()
        self._fill_request_window()
        self._schedule_tick()

    def _advance_playback(self) -> None:
        """Consume frames due since the last tick; stall if starved."""
        assert self._play_start is not None
        target = min(
            int((self.loop.now - self._play_start) * self.video.fps),
            len(self.video.frame_sizes))
        available = self.video.frames_in_bytes(self._contiguous_bytes)
        if target <= self._played_frames:
            return
        if available >= target:
            self.stats.play_time += \
                (target - self._played_frames) / self.video.fps
            self._played_frames = target
            if self._played_frames >= len(self.video.frame_sizes):
                self._finish()
        else:
            # Play what exists, then stall.
            if available > self._played_frames:
                self.stats.play_time += \
                    (available - self._played_frames) / self.video.fps
                self._played_frames = available
            self._playing = False
            self._stalled = RebufferEvent(start=self.loop.now)
            self.stats.rebuffer_events.append(self._stalled)

    def _maybe_resume(self) -> None:
        if self._stalled is None:
            return
        available = self.video.frames_in_bytes(self._contiguous_bytes)
        needed = min(self._played_frames + self.config.resume_frames,
                     len(self.video.frame_sizes))
        if available >= needed:
            self._stalled.end = self.loop.now
            self._stalled = None
            self._playing = True
            # Re-anchor the playback clock at the resume instant.
            self._play_start = self.loop.now \
                - self._played_frames / self.video.fps

    def _finish(self) -> None:
        self._finished = True
        if self._stalled is not None:
            self._stalled.end = self.loop.now
            self._stalled = None
        self.stats.finished_at = self.loop.now
        if self._tick_event is not None:
            self._tick_event.cancel()
        if self.on_finished is not None:
            self.on_finished()

    @property
    def finished(self) -> bool:
        return self._finished

    def _sample_buffer(self) -> None:
        self.stats.buffer_level_samples.append(
            (self.loop.now, self.buffered_bytes(), self._buffered_play_time()))

    # -- QoE capture (TNET) --------------------------------------------------------

    def buffered_bytes(self) -> int:
        played_bytes = self.video.bytes_for_frames(self._played_frames)
        return max(self._contiguous_bytes - played_bytes, 0)

    def qoe_signals(self) -> QoeSignals:
        """The four signals of Sec. 5.2, as the client would report them."""
        frames = self.video.frames_in_bytes(self._contiguous_bytes)
        cached_frames = max(frames - self._played_frames, 0)
        return QoeSignals(cached_bytes=self.buffered_bytes(),
                          cached_frames=cached_frames,
                          bps=int(self.video.mean_bps),
                          fps=self.video.fps)
