"""Live streaming over (multipath) QUIC -- the paper's future work.

Sec. 10 positions XLINK's QoE-driven approach as extending to live
streaming.  This module provides the substrate to explore that: a
:class:`LiveSource` produces encoded frames in (virtual) real time and
writes them to one long-lived QUIC stream with a length-prefixed
framing; a :class:`LiveViewer` consumes them on the client, playing at
a fixed end-to-end latency target, and measures per-frame delivery
latency and late/dropped frames.

The viewer's buffer state doubles as the QoE signal: its
``qoe_signals`` reports how much decoded-but-unplayed content is
cached, so the XLINK scheduler's Alg. 1 gates re-injection for live
flows exactly as for VoD.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.quic.connection import Connection
from repro.quic.frames import QoeSignals
from repro.quic.stream import FIRST_FRAME_PRIORITY
from repro.sim.event_loop import EventLoop
from repro.sim.rng import make_rng

_FRAME_HDR = struct.Struct("!IdI")  # frame index, capture time, size


@dataclass
class LiveConfig:
    """Source/viewer parameters."""

    fps: int = 25
    bitrate_bps: float = 2_000_000
    #: key-frame interval (a key frame every N frames, larger size)
    keyframe_interval: int = 50
    keyframe_factor: float = 6.0
    #: viewer plays this far behind capture (the latency target)
    target_latency_s: float = 0.6
    #: frames later than target + grace are counted late
    late_grace_s: float = 0.2


@dataclass
class LiveStats:
    """Viewer-side results."""

    frames_received: int = 0
    frames_late: int = 0
    latencies: List[float] = field(default_factory=list)

    @property
    def late_ratio(self) -> float:
        if self.frames_received == 0:
            return 0.0
        return self.frames_late / self.frames_received

    def latency_percentile(self, pct: float) -> float:
        from repro.metrics.stats import percentile
        return percentile(self.latencies, pct)


class LiveSource:
    """Produces frames at the configured fps onto one QUIC stream."""

    def __init__(self, loop: EventLoop, conn: Connection,
                 config: Optional[LiveConfig] = None,
                 seed: int = 0) -> None:
        self.loop = loop
        self.conn = conn
        self.config = config if config is not None else LiveConfig()
        self._rng = make_rng(seed, "live-source")
        self.stream_id: Optional[int] = None
        self.frames_sent = 0
        self._stopped = False

    def start(self) -> None:
        self.stream_id = self.conn.create_stream(priority=0)
        self._emit_frame()

    def stop(self) -> None:
        self._stopped = True
        if self.stream_id is not None:
            self.conn.stream_send(self.stream_id, b"", fin=True)

    def _frame_size(self, index: int) -> int:
        cfg = self.config
        mean = cfg.bitrate_bps / 8.0 / cfg.fps
        if index % cfg.keyframe_interval == 0:
            return max(int(mean * cfg.keyframe_factor), 400)
        return max(int(mean * self._rng.uniform(0.5, 1.3)), 200)

    def _emit_frame(self) -> None:
        if self._stopped or self.conn.closed:
            return
        cfg = self.config
        index = self.frames_sent
        size = self._frame_size(index)
        header = _FRAME_HDR.pack(index, self.loop.now, size)
        payload = header + b"\x00" * size
        # Key frames get the high-priority marking, so XLINK's
        # frame-priority re-injection protects the frames every later
        # frame depends on.
        is_key = index % cfg.keyframe_interval == 0
        stream = self.conn.send_streams[self.stream_id]
        position = stream.length
        self.conn.stream_send(
            self.stream_id, payload,
            frame_priority=FIRST_FRAME_PRIORITY if is_key else None,
            position=position if is_key else None,
            size=len(payload) if is_key else None)
        self.frames_sent += 1
        self.loop.schedule_after(1.0 / cfg.fps, self._emit_frame,
                                 label="live-frame")


class LiveViewer:
    """Client-side consumer measuring per-frame delivery latency."""

    def __init__(self, loop: EventLoop, conn: Connection,
                 config: Optional[LiveConfig] = None) -> None:
        self.loop = loop
        self.conn = conn
        self.config = config if config is not None else LiveConfig()
        self.stats = LiveStats()
        self._buffer = bytearray()
        self._latest_capture_gap = 0.0
        conn.on_stream_data = self._on_data
        conn.qoe_provider = self.qoe_signals

    def _on_data(self, stream_id: int) -> None:
        self._buffer.extend(self.conn.stream_read(stream_id))
        self._drain_frames()

    def _drain_frames(self) -> None:
        cfg = self.config
        while len(self._buffer) >= _FRAME_HDR.size:
            index, captured_at, size = _FRAME_HDR.unpack_from(self._buffer)
            total = _FRAME_HDR.size + size
            if len(self._buffer) < total:
                return
            del self._buffer[:total]
            latency = self.loop.now - captured_at
            self.stats.frames_received += 1
            self.stats.latencies.append(latency)
            if latency > cfg.target_latency_s + cfg.late_grace_s:
                self.stats.frames_late += 1
            self._latest_capture_gap = latency

    def qoe_signals(self) -> QoeSignals:
        """Live QoE: headroom before the latency target is blown.

        ``cached_frames/fps`` encodes how much slack remains between
        the newest delivered frame's latency and the target -- the
        live analogue of the VoD buffer level.
        """
        cfg = self.config
        slack = max(cfg.target_latency_s - self._latest_capture_gap, 0.0)
        return QoeSignals(
            cached_bytes=int(slack * cfg.bitrate_bps / 8),
            cached_frames=int(slack * cfg.fps),
            bps=int(cfg.bitrate_bps), fps=cfg.fps)
