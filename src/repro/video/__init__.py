"""Video substrate: media model, player, QoE pipeline, media server.

Mirrors the paper's client pipeline (Fig. 5): a MediaCacheService
requests video chunks via HTTP range requests over QUIC streams; the
Source Pipe / Decoder account for cached frames and bytes; TNET
delivers those QoE signals to the transport.  The server side is the
CDN edge serving chunk ranges.
"""

from repro.video.media import Video, VideoChunk, make_video
from repro.video.player import (PlayerConfig, PlayerStats, RebufferEvent,
                                VideoPlayer)
from repro.video.http import RangeRequest, RangeResponseMeta, parse_request
from repro.video.server import MediaServer

__all__ = [
    "Video",
    "VideoChunk",
    "make_video",
    "PlayerConfig",
    "PlayerStats",
    "RebufferEvent",
    "VideoPlayer",
    "RangeRequest",
    "RangeResponseMeta",
    "parse_request",
    "MediaServer",
]
