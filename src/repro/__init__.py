"""XLINK reproduction: QoE-driven multipath QUIC video transport.

A complete Python reproduction of "XLINK: QoE-Driven Multi-Path QUIC
Transport in Large-scale Video Services" (SIGCOMM 2021), built on a
deterministic discrete-event emulator.  The most commonly used entry
points are re-exported here; see the subpackages for the full API:

- :mod:`repro.experiments` -- session harness, A/B populations, and
  the per-figure experiment drivers.
- :mod:`repro.core` -- XLINK's schedulers, re-injection, and Alg. 1.
- :mod:`repro.quic` -- the multipath QUIC stack.
- :mod:`repro.video` -- player, media server, live, and ABR models.
- :mod:`repro.netem` / :mod:`repro.traces` -- network emulation.
"""

__version__ = "1.0.0"

from repro.experiments import (PathSpec, SCHEMES, run_bulk_download,
                               run_video_session)
from repro.video import make_video

__all__ = [
    "__version__",
    "PathSpec",
    "SCHEMES",
    "run_bulk_download",
    "run_video_session",
    "make_video",
]
