"""Binary-heap event loop.

Events fire in ``(time, sequence)`` order; the sequence number is a
monotonically increasing insertion counter, so events scheduled for the
same instant run first-scheduled-first.  Determinism here is what makes
every benchmark in the repository reproducible.

Hot-path notes: the heap stores raw ``(time, seq, event)`` tuples so
ordering is plain tuple comparison (``seq`` is unique, so the
:class:`Event` object itself is never compared), :class:`Event` uses
``__slots__``, and :meth:`EventLoop.run` keeps the heap, clock and
``heappop`` in locals.  Cancelled events are skipped lazily when they
reach the top of the heap; when more than half the heap is dead the
loop compacts it in place so long-lived simulations with heavy timer
re-arming (QUIC PTO timers) do not drag a graveyard around.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.sim.clock import Clock

#: Compaction is considered once at least this many cancellations are
#: pending; below it the lazy top-of-heap skip is always cheaper.
_COMPACT_MIN_CANCELLED = 64


class SimulationError(RuntimeError):
    """Raised when the simulation is driven incorrectly."""


class Event:
    """A scheduled callback.  Heap ordering uses (time, seq) only."""

    __slots__ = ("time", "seq", "callback", "cancelled", "label", "_loop")

    def __init__(self, time: float, seq: int, callback: Callable[[], Any],
                 label: str = "", loop: Optional["EventLoop"] = None) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.label = label
        self._loop = loop

    def cancel(self) -> None:
        """Mark the event dead; the loop will skip it when popped."""
        if not self.cancelled:
            self.cancelled = True
            loop = self._loop
            if loop is not None:
                loop._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class EventLoop:
    """Discrete-event executor over a virtual :class:`Clock`."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock if clock is not None else Clock()
        #: heap of (time, seq, Event); tuple order never reaches the Event
        self._heap: list = []
        self._seq = 0
        self._running = False
        self._events_run = 0
        self._cancelled_pending = 0
        self._stop_requested = False

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def events_run(self) -> int:
        """Number of events executed so far (for loop-detection tests)."""
        return self._events_run

    def schedule_at(self, time: float, callback: Callable[[], Any],
                    label: str = "") -> Event:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if time < self.clock._now:
            raise SimulationError(
                f"cannot schedule in the past: {time:.9f} < {self.clock.now:.9f}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, label, self)
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def schedule_after(self, delay: float, callback: Callable[[], Any],
                       label: str = "") -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self.clock._now + delay, callback, label=label)

    def call_soon(self, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` at the current instant (after pending ties)."""
        return self.schedule_at(self.clock._now, callback, label=label)

    def _note_cancelled(self) -> None:
        """Track a cancellation; compact the heap when mostly dead.

        Compaction mutates ``self._heap`` in place (slice assignment)
        because :meth:`run` holds a local reference to the list.
        """
        self._cancelled_pending += 1
        heap = self._heap
        if (self._cancelled_pending >= _COMPACT_MIN_CANCELLED
                and self._cancelled_pending * 2 > len(heap)):
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapq.heapify(heap)
            self._cancelled_pending = 0

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled_pending -= 1
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Run the next live event.  Returns False if none remain."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            time, _seq, event = pop(heap)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            # Monotonic by construction: schedule_at rejects past times,
            # so a direct store is safe (and skips the guarded method).
            self.clock._now = time
            self._events_run += 1
            event.callback()
            return True
        return False

    def request_stop(self) -> None:
        """Ask a running :meth:`run` to return after the current event.

        Lets batched drivers (``repro.host.runtime``) run the loop in
        one tight native loop and still stop the instant a callback
        observes its completion condition, instead of re-evaluating the
        condition between every pair of events.
        """
        self._stop_requested = True

    def run(self, until: Optional[float] = None,
            max_events: int = 50_000_000,
            stop_before: Optional[float] = None) -> float:
        """Run events until the queue drains or virtual ``until`` is reached.

        Returns the final virtual time.  ``max_events`` is a runaway
        guard: exactly ``max_events`` events may execute; the guard
        raises :class:`SimulationError` only when a further live event
        is still pending (so a queue that drains at the limit is fine).

        ``stop_before`` reproduces the classic ``while loop.now < t:
        step()`` driver exactly: the event that carries the clock to or
        past ``stop_before`` still executes, and the loop returns
        before running the one after it.  (``until`` is different: it
        stops *before* crossing the horizon and advances the clock to
        exactly ``until``.)
        """
        if self._running:
            raise SimulationError("event loop is not reentrant")
        self._running = True
        self._stop_requested = False
        heap = self._heap          # compaction mutates in place, so this
        clock = self.clock         # local stays valid across callbacks
        pop = heapq.heappop
        executed = 0
        try:
            while heap:
                if stop_before is not None and clock._now >= stop_before:
                    break
                entry = heap[0]
                event = entry[2]
                if event.cancelled:
                    pop(heap)
                    self._cancelled_pending -= 1
                    continue
                time = entry[0]
                if until is not None and time > until:
                    clock._advance_to(until)
                    break
                if executed >= max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; runaway simulation?"
                    )
                pop(heap)
                clock._now = time  # monotonic: schedule_at rejects the past
                executed += 1
                event.callback()
                if self._stop_requested:
                    break
            return clock._now
        finally:
            self._events_run += executed
            self._running = False
