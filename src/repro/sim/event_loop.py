"""Binary-heap event loop.

Events fire in ``(time, sequence)`` order; the sequence number is a
monotonically increasing insertion counter, so events scheduled for the
same instant run first-scheduled-first.  Determinism here is what makes
every benchmark in the repository reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.sim.clock import Clock


class SimulationError(RuntimeError):
    """Raised when the simulation is driven incorrectly."""


@dataclass(order=True)
class Event:
    """A scheduled callback.  Comparison uses (time, seq) only."""

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark the event dead; the loop will skip it when popped."""
        self.cancelled = True


class EventLoop:
    """Discrete-event executor over a virtual :class:`Clock`."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._events_run = 0

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def events_run(self) -> int:
        """Number of events executed so far (for loop-detection tests)."""
        return self._events_run

    def schedule_at(self, time: float, callback: Callable[[], Any],
                    label: str = "") -> Event:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule in the past: {time:.9f} < {self.clock.now:.9f}"
            )
        event = Event(time=time, seq=next(self._seq), callback=callback,
                      label=label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(self, delay: float, callback: Callable[[], Any],
                       label: str = "") -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self.clock.now + delay, callback, label=label)

    def call_soon(self, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` at the current instant (after pending ties)."""
        return self.schedule_at(self.clock.now, callback, label=label)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the next live event.  Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock._advance_to(event.time)
            self._events_run += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: int = 50_000_000) -> float:
        """Run events until the queue drains or virtual ``until`` is reached.

        Returns the final virtual time.  ``max_events`` is a runaway
        guard; hitting it raises :class:`SimulationError`.
        """
        if self._running:
            raise SimulationError("event loop is not reentrant")
        self._running = True
        try:
            executed = 0
            while True:
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.clock._advance_to(until)
                    break
                if not self.step():
                    break
                executed += 1
                if executed > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; runaway simulation?"
                    )
            return self.clock.now
        finally:
            self._running = False
