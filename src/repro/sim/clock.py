"""Virtual clock for the discrete-event engine.

Time is a float in *seconds*.  Only the event loop may advance the
clock; everything else holds a read-only reference.
"""

from __future__ import annotations


class Clock:
    """Monotonic virtual clock, advanced by the event loop only."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def _advance_to(self, t: float) -> None:
        if t < self._now:
            raise ValueError(
                f"clock cannot go backwards: {t:.9f} < {self._now:.9f}"
            )
        self._now = t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now:.6f})"
