"""Deterministic discrete-event simulation engine.

All XLINK experiments run in *virtual time*: events are executed in
timestamp order off a binary heap, ties broken by insertion order so a
given seed always produces a bit-identical run.  The engine is
deliberately tiny -- a clock, an event loop, and a couple of scheduling
helpers -- because everything interesting lives in the network and
protocol layers built on top of it.
"""

from repro.sim.clock import Clock
from repro.sim.event_loop import Event, EventLoop, SimulationError
from repro.sim.rng import make_rng

__all__ = ["Clock", "Event", "EventLoop", "SimulationError", "make_rng"]
