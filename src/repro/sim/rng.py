"""Seeded RNG helpers.

Every stochastic component takes an explicit ``random.Random`` (or a
seed) so experiments never touch the global RNG state.  ``make_rng``
also derives child streams from string labels, which keeps independent
subsystems (loss model vs. workload sampling) decorrelated under a
single top-level seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Union

RngLike = Union[int, random.Random, None]


def make_rng(seed: RngLike = None, label: str = "") -> random.Random:
    """Build a deterministic ``random.Random``.

    ``seed`` may be an int, an existing Random (a derived child is
    returned so the parent stream is not consumed), or None (seed 0).
    ``label`` mixes a subsystem name into the derived seed.
    """
    if isinstance(seed, random.Random):
        base = seed.getrandbits(64)
    elif seed is None:
        base = 0
    else:
        base = int(seed)
    if label:
        digest = hashlib.sha256(f"{base}:{label}".encode()).digest()
        base = int.from_bytes(digest[:8], "big")
    return random.Random(base)


def derive_seed(seed: int, label: str) -> int:
    """Derive a stable child seed from (seed, label)."""
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def maybe_rng(rng: Optional[random.Random], seed: int = 0) -> random.Random:
    """Return ``rng`` if given, else a fresh Random(seed)."""
    return rng if rng is not None else random.Random(seed)
