"""Multipath packet schedulers.

All schedulers implement the contract the connection's send pump uses:

- ``select_path(conn, chunk) -> Path | None`` -- pick the path a chunk
  goes on; ``None`` means every candidate is congestion-limited and the
  pump should stop.
- ``on_chunk_sent_out(conn, chunk, stream)`` -- the last byte of a
  queued chunk just left; priority-based re-injection hooks here
  (the "sends out the last packet in Stream 1 / of the first frame"
  triggers of Sec. 5.1).
- ``on_queue_empty(conn)`` -- pkt_send_q drained; the traditional
  appending re-injection trigger.
- ``on_qoe(conn, qoe)`` -- QoE feedback arrived (drives Alg. 1).
- ``on_ack(conn, path, acked, lost)`` -- ack bookkeeping.

Schedulers provided:

- :class:`SinglePathScheduler` -- SP baseline and the CM baseline's
  transport (always the active path).
- :class:`MinRttScheduler` -- vanilla-MP: lowest-RTT path with
  congestion window space, no re-injection (MPQUIC's default, also the
  Linux MPTCP default; Sec. 3 footnote 4).
- :class:`RoundRobinScheduler` -- naive alternation (ablations).
- :class:`XlinkScheduler` -- min-RTT path choice *plus* QoE-controlled
  priority-based re-injection (Sec. 5).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.qoe_control import (DoubleThresholdController,
                                    ReinjectionMode, ThresholdConfig)
from repro.quic.cc.base import MAX_DATAGRAM_SIZE
from repro.quic.frames import QoeSignals
from repro.quic.path import Path
from repro.quic.stream import FIRST_FRAME_PRIORITY


class _BaseScheduler:
    """Shared no-op hooks."""

    def on_chunk_sent_out(self, conn, chunk, stream) -> None:
        pass

    def on_queue_empty(self, conn) -> None:
        pass

    def on_qoe(self, conn, qoe: QoeSignals) -> None:
        pass

    def on_ack(self, conn, path, acked, lost) -> None:
        pass

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _with_window(paths: List[Path],
                     now: Optional[float] = None) -> List[Path]:
        """Paths with cwnd room whose pacer (if any) has released.

        A pacing-blocked path is skipped rather than waited on, so a
        paced fast path never stalls data that a slower path could
        carry now; the connection's pacing timer re-pumps when the
        fast path's token releases.
        """
        out = []
        for p in paths:
            cc = p.cc
            if not cc.can_send(MAX_DATAGRAM_SIZE):
                continue
            if cc.paced and now is not None \
                    and cc.next_send_time(now) > now + 1e-9:
                continue
            out.append(p)
        return out

    @staticmethod
    def _min_rtt(paths: List[Path]) -> Optional[Path]:
        return min(paths, key=lambda p: p.rtt.smoothed, default=None)


class SinglePathScheduler(_BaseScheduler):
    """Always the (single) active path; used by SP and CM baselines."""

    def select_path(self, conn, chunk) -> Optional[Path]:
        usable = self._with_window(conn.usable_paths(), conn.loop.now)
        return usable[0] if usable else None


class MinRttScheduler(_BaseScheduler):
    """Vanilla-MP: lowest smoothed RTT among paths with window space."""

    def select_path(self, conn, chunk) -> Optional[Path]:
        return self._min_rtt(
            self._with_window(conn.usable_paths(), conn.loop.now))


class RoundRobinScheduler(_BaseScheduler):
    """Alternate across usable paths regardless of RTT."""

    def __init__(self) -> None:
        self._next = 0

    def select_path(self, conn, chunk) -> Optional[Path]:
        usable = self._with_window(conn.usable_paths(), conn.loop.now)
        if not usable:
            return None
        usable.sort(key=lambda p: p.path_id)
        path = usable[self._next % len(usable)]
        self._next += 1
        return path


class XlinkScheduler(_BaseScheduler):
    """The XLINK scheduler: min-RTT dispatch + QoE-driven re-injection.

    ``mode`` selects the insertion policy of Fig. 4; the
    :class:`DoubleThresholdController` (Alg. 1) gates every
    re-injection decision unless configured ``always_on``.
    """

    def __init__(self,
                 mode: ReinjectionMode = ReinjectionMode.FRAME_PRIORITY,
                 thresholds: Optional[ThresholdConfig] = None) -> None:
        self.mode = mode
        self.controller = DoubleThresholdController(thresholds)
        #: counters for experiments
        self.reinjections_enqueued = 0
        self.reinjections_suppressed = 0
        self._last_sweep = -1e9
        self._monitor_armed = False
        #: how often the gate is re-evaluated while data is outstanding
        self.monitor_interval_s = 0.025

    # -- path selection ---------------------------------------------------

    def select_path(self, conn, chunk) -> Optional[Path]:
        usable = self._with_window(conn.usable_paths(), conn.loop.now)
        if not usable:
            return None
        # Avoid suspect paths (nothing received for several RTTs) when
        # alternatives exist: XLINK "swiftly adapts packet distribution
        # across fast varying links" (Sec. 7.3).  The vanilla min-RTT
        # scheduler deliberately lacks this and keeps trusting a frozen
        # RTT estimate -- the Fig. 1 failure mode.
        now = conn.loop.now
        fresh = [p for p in usable if not p.is_suspect(now)]
        candidates = fresh if fresh else usable
        if chunk.kind == "reinject" and chunk.exclude_path is not None:
            others = [p for p in candidates
                      if p.path_id != chunk.exclude_path]
            if others:
                return self._min_rtt(others)
            # Only the original path has window space: re-injecting onto
            # the same path is pointless; skip for now.
            return None
        return self._min_rtt(candidates)

    # -- QoE feedback -------------------------------------------------------

    def on_qoe(self, conn, qoe: QoeSignals) -> None:
        self.controller.update(qoe, conn.loop.now)

    def _gate(self, conn) -> bool:
        """Ask Alg. 1 whether re-injection is currently allowed."""
        allowed = self.controller.should_reinject(
            conn.max_delivery_time(), now=conn.loop.now)
        if not allowed:
            self.reinjections_suppressed += 1
        return allowed

    # -- re-injection triggers ----------------------------------------------

    @staticmethod
    def _fastest_path(conn):
        usable = conn.usable_paths()
        return min(usable, key=lambda p: p.rtt.smoothed, default=None)

    def _slow_path_ranges(self, conn, overdue_only: bool = False,
                          **filters) -> list:
        """Unacked ranges whose original copy is worth duplicating.

        Re-injection decouples the *fast* path from the *slow* path
        (Fig. 3b).  A duplicate is useful when the original is
        expected to arrive *later* than a fresh copy sent on the
        fastest path now -- which covers two cases:

        - the original is *overdue* (older than its path's delivery
          time estimate): it is stuck on a degraded path whose frozen
          RTT estimate no longer means anything (the Fig. 1a outage);
        - the original rides a path so slow that even a fresh copy on
          the fast path beats it (the heterogeneity case of Fig. 4).

        ``overdue_only=True`` restricts to the first case.  The bulk
        sweeps use it: in a sustained capacity-limited regime the
        broader predicate would keep duplicating the slower path's
        whole flow onto the fast one, and the redundancy would eat the
        very capacity the client needs (the throughput impact Sec. 5.2
        warns about).  The latency-critical stream/first-frame
        triggers keep the broad predicate.
        """
        fastest = self._fastest_path(conn)
        now = conn.loop.now
        fast_rtt = fastest.rtt.smoothed if fastest is not None else 0.0
        out = []
        for chunk, pid, sent_time in conn.unacked_ranges(**filters):
            orig = conn.paths.get(pid)
            if orig is None:
                continue
            # A suspect path (gone silent with data outstanding) has a
            # meaningless frozen RTT estimate: everything on it is
            # effectively overdue right now.
            overdue = orig.is_suspect(now) \
                or now - sent_time > orig.rtt.delivery_time
            if fastest is not None and pid == fastest.path_id:
                # Same path: a duplicate could only go on a slower one.
                if not overdue:
                    continue
            if overdue_only:
                if overdue:
                    out.append((chunk, pid))
                continue
            expected_arrival = sent_time + orig.rtt.delivery_time
            arrives_later = expected_arrival > now + fast_rtt
            if overdue or arrives_later:
                out.append((chunk, pid))
        return out

    def on_queue_empty(self, conn) -> None:
        """Traditional appending trigger: queue drained, duplicate the
        slow-path unacked_q tail onto the queue end (Fig. 3b / Fig. 4a).

        Sweeps are rate-limited to one per fastest-path RTT: the real
        scheduler evaluates re-injection at send opportunities, and a
        duplicate sent less than an RTT after the original cannot have
        learned anything new about its fate.
        """
        if self.mode is ReinjectionMode.NONE:
            return
        self._ensure_monitor(conn)
        usable = conn.usable_paths()
        min_rtt = min((p.rtt.smoothed for p in usable), default=0.05)
        if conn.loop.now - self._last_sweep < min_rtt:
            return
        if not self._gate(conn):
            return
        swept = False
        for chunk, _path_id in self._slow_path_ranges(
                conn, overdue_only=True):
            conn.enqueue_reinjection(chunk, position=None)
            self.reinjections_enqueued += 1
            swept = True
        if swept:
            self._last_sweep = conn.loop.now

    def _ensure_monitor(self, conn) -> None:
        """Arm the periodic gate re-evaluation.

        Re-injection urgency can arise *without* a transport event:
        during a full stall no acks arrive and the send queue stays
        empty while the client's buffer drains.  The monitor re-runs
        the appending sweep every ``monitor_interval_s`` as long as
        unacked data is outstanding, so Alg. 1 gets its chance to turn
        re-injection on the moment the (extrapolated) play-time-left
        crosses the threshold.
        """
        if self._monitor_armed or self.mode is ReinjectionMode.NONE:
            return
        self._monitor_armed = True

        def tick() -> None:
            if conn.closed:
                self._monitor_armed = False
                return
            has_unacked = any(
                p.loss.has_unacked for p in conn.paths.values())
            if not has_unacked:
                self._monitor_armed = False
                return
            if not conn.send_queue and self._gate(conn):
                swept = False
                for chunk, _pid in self._slow_path_ranges(
                        conn, overdue_only=True):
                    conn.enqueue_reinjection(chunk, position=None)
                    self.reinjections_enqueued += 1
                    swept = True
                if swept:
                    self._last_sweep = conn.loop.now
                    conn._pump()
            conn.loop.schedule_after(self.monitor_interval_s, tick,
                                     label="xlink-monitor")

        conn.loop.schedule_after(self.monitor_interval_s, tick,
                                 label="xlink-monitor")

    def on_chunk_sent_out(self, conn, chunk, stream) -> None:
        """Priority triggers (Fig. 4b/4c)."""
        if self.mode in (ReinjectionMode.NONE, ReinjectionMode.APPENDING):
            return
        if chunk.kind != "new":
            return
        if self.mode is ReinjectionMode.FRAME_PRIORITY \
                and chunk.frame_priority == FIRST_FRAME_PRIORITY:
            self._reinject_first_frame(conn, chunk, stream)
        # Stream-priority trigger: last queued byte of this stream left.
        if not any(c.stream_id == chunk.stream_id and c.kind == "new"
                   for c in conn.send_queue):
            self._reinject_stream(conn, chunk, stream)

    def _reinject_first_frame(self, conn, chunk, stream) -> None:
        """First-video-frame acceleration: after the last first-frame
        packet leaves, duplicate its unacked packets *before* any unsent
        packets of other frames in the same stream (Fig. 4c).

        Unlike the bulk triggers, no slow-path filter is applied: the
        paper re-injects every unacked first-frame packet ("If there is
        any, the scheduler re-injects it").  The first frame is small,
        so the cost is negligible while the latency win bounds video
        start-up by the fast path.  A min-RTT-favoured but
        bandwidth-starved path is exactly the case the filter's RTT
        heuristic cannot see, and the unconditional duplicate covers it.
        """
        frame_end = stream.priority_range_end(FIRST_FRAME_PRIORITY)
        if frame_end is not None and chunk.end < frame_end:
            return  # more first-frame data still queued
        if not self._gate(conn):
            return
        pending = conn.unacked_ranges(stream_id=chunk.stream_id,
                                      frame_priority=FIRST_FRAME_PRIORITY)
        position = self._position_before_stream_tail(conn, chunk.stream_id)
        for dup, _path_id, _sent_time in pending:
            conn.enqueue_reinjection(dup, position=position)
            position += 1
            self.reinjections_enqueued += 1

    def _reinject_stream(self, conn, chunk, stream) -> None:
        """Stream-priority re-injection: duplicates of this stream's
        unacked packets go before unsent packets of lower-priority
        streams (Fig. 4b)."""
        if not self._gate(conn):
            return
        pending = self._slow_path_ranges(conn, stream_id=chunk.stream_id)
        if not pending:
            return
        position = self._position_before_lower_priority(
            conn, chunk.stream_priority)
        for dup, _path_id in pending:
            conn.enqueue_reinjection(dup, position=position)
            position += 1
            self.reinjections_enqueued += 1

    @staticmethod
    def _position_before_lower_priority(conn, stream_priority: int) -> int:
        """Index of the first queued chunk of a lower-priority stream."""
        for i, queued in enumerate(conn.send_queue):
            if queued.stream_priority > stream_priority:
                return i
        return len(conn.send_queue)

    @staticmethod
    def _position_before_stream_tail(conn, stream_id: int) -> int:
        """Index of the first unsent chunk of other frames in the stream."""
        for i, queued in enumerate(conn.send_queue):
            if queued.stream_id == stream_id and queued.kind == "new":
                return i
        return 0
