"""QoE-aware path management (Sec. 5.3).

Two policies live here:

- *Wireless-aware primary path selection*: the primary path (the one
  the connection handshake runs on) is chosen by radio technology,
  preferring the lowest-delay access: 5G SA > 5G NSA > Wi-Fi > LTE.
  Fig. 7 shows the first-video-frame delivery time is bounded by the
  primary path's quality, so starting on the right radio matters.
- The ACK_MP return-path policy itself is applied inside
  :class:`repro.quic.connection.Connection` (``ack_path_policy``);
  this module documents and exposes the strategy names.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.traces.radio_profiles import RADIO_PROFILES, RadioType

#: The paper's example ordering (Sec. 5.3); first = most preferred.
WIRELESS_PREFERENCE_ORDER: Tuple[RadioType, ...] = (
    RadioType.NR_SA, RadioType.NR_NSA, RadioType.WIFI, RadioType.LTE,
)

#: ACK_MP return-path strategies (Fig. 8).
ACK_PATH_STRATEGIES = ("fastest", "original")


def select_primary_path(interfaces: Sequence[Tuple[int, RadioType]],
                        order: Sequence[RadioType] = WIRELESS_PREFERENCE_ORDER
                        ) -> int:
    """Pick the network interface to start the connection on.

    ``interfaces`` is a sequence of (net_path_id, radio) pairs; returns
    the preferred net_path_id per the wireless-aware ordering.  Radios
    not in ``order`` rank last, by profile preference as a tiebreaker.
    """
    if not interfaces:
        raise ValueError("no interfaces available")
    rank: Dict[RadioType, int] = {r: i for i, r in enumerate(order)}

    def key(item: Tuple[int, RadioType]) -> Tuple[int, int, int]:
        net_id, radio = item
        primary = rank.get(radio, len(order))
        profile_pref = -RADIO_PROFILES[radio].preference \
            if radio in RADIO_PROFILES else 0
        return (primary, profile_pref, net_id)

    return min(interfaces, key=key)[0]
