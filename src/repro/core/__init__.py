"""XLINK's core: QoE-driven multipath scheduling and path management.

This package holds the paper's primary contribution:

- :mod:`repro.core.qoe_control` -- the double-thresholding controller
  (Alg. 1) that decides, from client QoE feedback, when re-injection
  is worth its redundancy cost.
- :mod:`repro.core.scheduler` -- packet schedulers: min-RTT
  (vanilla-MP / Linux MPTCP default), round-robin, single-path, and
  the XLINK scheduler with priority-based re-injection (Fig. 4).
- :mod:`repro.core.path_manager` -- wireless-aware primary path
  selection and path-set utilities (Sec. 5.3).
"""

from repro.core.qoe_control import (DoubleThresholdController,
                                    ReinjectionMode, ThresholdConfig)
from repro.core.scheduler import (MinRttScheduler, RoundRobinScheduler,
                                  SinglePathScheduler, XlinkScheduler)
from repro.core.path_manager import (WIRELESS_PREFERENCE_ORDER,
                                     select_primary_path)

__all__ = [
    "DoubleThresholdController",
    "ReinjectionMode",
    "ThresholdConfig",
    "MinRttScheduler",
    "RoundRobinScheduler",
    "SinglePathScheduler",
    "XlinkScheduler",
    "WIRELESS_PREFERENCE_ORDER",
    "select_primary_path",
]
