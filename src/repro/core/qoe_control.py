"""Double-thresholding QoE control (Alg. 1, Sec. 5.2.2).

The controller decides whether packet re-injection should currently be
enabled, from the client's latest QoE feedback:

1. Estimate play-time left Δt conservatively from
   (cached_frames / fps) and (cached_bytes * 8 / bps).
2. If Δt > T_th2 -> re-injection off (plenty of buffer; save cost).
   If Δt < T_th1 -> re-injection on (about to rebuffer; be responsive).
3. Otherwise compare Δt with the maximum in-flight delivery time
   deliverTime_max = max over paths with unacked packets of
   (RTT_p + delta_p): re-inject only if the slowest path cannot
   deliver before the buffer runs dry.

The two thresholds bound the traffic overhead: with re-injection-on
cost beta, C_min >= beta * P(Δt < T_th1) and
C_max <= beta * P(Δt < T_th2) (Sec. 5.2.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.quic.frames import QoeSignals


class ReinjectionMode(enum.Enum):
    """Which re-injection insertion policy the scheduler uses (Fig. 4)."""

    NONE = "none"                  # vanilla-MP: no re-injection
    APPENDING = "appending"        # traditional: append to pkt_send_q tail
    STREAM_PRIORITY = "stream"     # insert before lower-priority streams
    FRAME_PRIORITY = "frame"       # + first-video-frame acceleration


@dataclass(frozen=True)
class ThresholdConfig:
    """The (T_th1, T_th2) pair, in seconds of play-time left.

    ``always_on`` short-circuits the algorithm (re-injection without
    QoE control -- the 15%-overhead configuration of Sec. 5.2);
    ``always_off`` disables re-injection entirely.
    """

    t_th1: float = 0.5
    t_th2: float = 2.0
    always_on: bool = False
    always_off: bool = False

    def __post_init__(self) -> None:
        if not self.always_on and not self.always_off \
                and self.t_th1 > self.t_th2:
            raise ValueError(
                f"T_th1 ({self.t_th1}) must not exceed T_th2 ({self.t_th2})")


class DoubleThresholdController:
    """Stateful wrapper around Alg. 1.

    The server updates it from every QoE feedback; the scheduler asks
    :meth:`should_reinject` before inserting duplicate chunks.  When no
    feedback has arrived yet (e.g. video start-up) re-injection is
    allowed: the paper's Fig. 6 shows re-injection active right after
    the first frame, before the buffer has built up.
    """

    def __init__(self, config: Optional[ThresholdConfig] = None) -> None:
        self.config = config if config is not None else ThresholdConfig()
        self.last_qoe: Optional[QoeSignals] = None
        self.last_update_time: float = -1.0
        #: counters for tests / cost accounting
        self.decisions_on = 0
        self.decisions_off = 0

    def update(self, qoe: QoeSignals, now: float) -> None:
        """Record the latest client QoE feedback."""
        self.last_qoe = qoe
        self.last_update_time = now

    def play_time_left(self, now: Optional[float] = None) -> Optional[float]:
        """Δt from the latest feedback, extrapolated for elapsed time.

        The paper notes Δt must be extrapolated when feedback is
        infrequent (Sec. 5.2.2 footnote): the client keeps playing
        while the feedback is in flight, so we subtract wall time
        elapsed since the report.
        """
        if self.last_qoe is None:
            return None
        dt = self.last_qoe.play_time_left()
        if now is not None and self.last_update_time >= 0:
            dt -= max(now - self.last_update_time, 0.0)
        return max(dt, 0.0)

    def should_reinject(self, max_delivery_time: float,
                        now: Optional[float] = None) -> bool:
        """Alg. 1: the re-injection decision."""
        decision = self._decide(max_delivery_time, now)
        if decision:
            self.decisions_on += 1
        else:
            self.decisions_off += 1
        return decision

    def _decide(self, max_delivery_time: float,
                now: Optional[float]) -> bool:
        cfg = self.config
        if cfg.always_off:
            return False
        if cfg.always_on:
            return True
        dt = self.play_time_left(now)
        if dt is None:
            # No feedback yet (start-up): stay aggressive for QoE.
            return True
        if dt > cfg.t_th2:
            return False
        if dt < cfg.t_th1:
            return True
        # Middle band: compare with in-flight delivery time (Eq. 1).
        return dt < max_delivery_time
