"""QUIC frames, including the XLINK multipath extension frames.

Implemented frames:

- core QUIC: PADDING, PING, ACK, CRYPTO, STREAM, MAX_DATA,
  MAX_STREAM_DATA, NEW_CONNECTION_ID, PATH_CHALLENGE, PATH_RESPONSE,
  CONNECTION_CLOSE
- multipath extension (draft-liu-multipath-quic-02 as used by XLINK):
  ACK_MP (with the deployed XLINK variant carrying a QoE control
  signal field -- Sec. 4 / Appendix C), PATH_STATUS, and the draft's
  standalone QOE_CONTROL_SIGNALS frame.

Every frame serializes to bytes and parses back; the connection layer
only ever exchanges serialized packets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.quic.errors import FrameEncodingError
from repro.quic.varint import Buffer


class FrameType(enum.IntEnum):
    """Wire type codes.  Extension codes follow the draft's registry."""

    PADDING = 0x00
    PING = 0x01
    ACK = 0x02
    CRYPTO = 0x06
    MAX_DATA = 0x10
    MAX_STREAM_DATA = 0x11
    STREAM = 0x08            # base; 0x08..0x0f with OFF/LEN/FIN bits
    NEW_CONNECTION_ID = 0x18
    PATH_CHALLENGE = 0x1A
    PATH_RESPONSE = 0x1B
    CONNECTION_CLOSE = 0x1C
    # Multipath extension frames:
    ACK_MP = 0xBABA00
    PATH_STATUS = 0xBABA01
    QOE_CONTROL_SIGNALS = 0xBABA02


class PathStatus(enum.IntEnum):
    """PATH_STATUS values (Sec. 6): Abandon, Standby, Available."""

    ABANDON = 0
    STANDBY = 1
    AVAILABLE = 2


@dataclass(frozen=True, slots=True)
class AckRange:
    """Inclusive packet-number range [start, end]."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start > self.end or self.start < 0:
            raise ValueError(f"bad ack range [{self.start}, {self.end}]")

    def __contains__(self, pn: int) -> bool:
        return self.start <= pn <= self.end


@dataclass(frozen=True, slots=True)
class QoeSignals:
    """The four QoE feedback signals the Taobao client reports (Sec. 5.2).

    Units: bytes, frames, bits/s, frames/s.  ``fetch_complete`` is not
    in the paper's list but the deployed system needs a way to signal
    "no outstanding request"; we encode it in a flags varint.
    """

    cached_bytes: int = 0
    cached_frames: int = 0
    bps: int = 0
    fps: int = 0

    def encode(self, buf: Buffer) -> None:
        buf.push_varint(self.cached_bytes)
        buf.push_varint(self.cached_frames)
        buf.push_varint(self.bps)
        buf.push_varint(self.fps)

    @classmethod
    def decode(cls, buf: Buffer) -> "QoeSignals":
        return cls(cached_bytes=buf.pull_varint(),
                   cached_frames=buf.pull_varint(),
                   bps=buf.pull_varint(),
                   fps=buf.pull_varint())

    def play_time_left(self) -> float:
        """Conservative play-time-left estimate Δt (Alg. 1 step 1).

        Uses the min of the frames/fps and bytes/bps quotients when
        both are available ("look at both the bit-rate and the
        frame-rate ... a more conservative estimate").
        """
        candidates = []
        if self.fps > 0:
            candidates.append(self.cached_frames / self.fps)
        if self.bps > 0:
            candidates.append(self.cached_bytes * 8.0 / self.bps)
        if not candidates:
            return 0.0
        return min(candidates)


# ---------------------------------------------------------------------------
# frame dataclasses
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PaddingFrame:
    length: int = 1


@dataclass(frozen=True, slots=True)
class PingFrame:
    pass


@dataclass(frozen=True, slots=True)
class AckFrame:
    """Single-space ACK used before multipath negotiation completes."""

    largest_acked: int
    ack_delay_us: int
    ranges: Tuple[AckRange, ...]


@dataclass(frozen=True, slots=True)
class AckMpFrame:
    """Multipath ACK: per-path ack ranges + XLINK QoE field.

    ``path_id`` is the sequence number of the CID the *acknowledging
    packets' receiver* used on that path (the draft's path
    identifier).  ``qoe`` is the XLINK deployment's extra field; it is
    optional on the wire (flag bit).
    """

    path_id: int
    largest_acked: int
    ack_delay_us: int
    ranges: Tuple[AckRange, ...]
    qoe: Optional[QoeSignals] = None


@dataclass(frozen=True, slots=True)
class CryptoFrame:
    offset: int
    data: bytes


@dataclass(frozen=True, slots=True)
class StreamFrame:
    stream_id: int
    offset: int
    data: bytes
    fin: bool = False


@dataclass(frozen=True, slots=True)
class MaxDataFrame:
    maximum: int


@dataclass(frozen=True, slots=True)
class MaxStreamDataFrame:
    stream_id: int
    maximum: int


@dataclass(frozen=True, slots=True)
class NewConnectionIdFrame:
    sequence_number: int
    cid: bytes
    retire_prior_to: int = 0


@dataclass(frozen=True, slots=True)
class PathChallengeFrame:
    data: bytes  # 8 bytes

    def __post_init__(self) -> None:
        if len(self.data) != 8:
            raise ValueError("PATH_CHALLENGE data must be 8 bytes")


@dataclass(frozen=True, slots=True)
class PathResponseFrame:
    data: bytes  # 8 bytes

    def __post_init__(self) -> None:
        if len(self.data) != 8:
            raise ValueError("PATH_RESPONSE data must be 8 bytes")


@dataclass(frozen=True, slots=True)
class ConnectionCloseFrame:
    error_code: int
    reason: str = ""


@dataclass(frozen=True, slots=True)
class PathStatusFrame:
    """Informs the peer of a path's status (Abandon/Standby/Available)."""

    path_id: int
    status: PathStatus
    status_seq: int = 0


@dataclass(frozen=True, slots=True)
class QoeControlSignalsFrame:
    """The draft's standalone QoE frame, decoupled from ACK frequency."""

    qoe: QoeSignals


Frame = object  # frames are plain dataclasses; this alias aids readability


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------


#: Wire-tail caches for the ACK range codecs.  On a path with permanent
#: packet-number gaps (datagrams dropped and never resent under the
#: same pn) every ACK repeats the same old ranges and only the newest
#: range grows, so the gap/length varint region for ``ranges[1:]`` is
#: byte-identical between consecutive ACKs.  Both caches are keyed by
#: ``(range count, start of the newest range)`` and verified against
#: the actual content before use -- the encode side compares the tail
#: range tuple, the decode side compares the raw tail bytes -- so a
#: hit reproduces exactly what the slow path would have produced.
_ACK_ENC_TAIL_CACHE: dict = {}
_ACK_DEC_TAIL_CACHE: dict = {}
_ACK_TAIL_CACHE_MAX = 256


def _encode_ack_ranges(buf: Buffer, largest: int,
                       ranges: Tuple[AckRange, ...]) -> None:
    """ACK range encoding per RFC 9000: first range + gap/length pairs."""
    n = len(ranges)
    ascending = n > 1 and ranges[n - 1].end == largest
    if ascending:
        # Ascending layout (how the connection builds ACK frames): the
        # newest range sits last and everything before it is the tail.
        newest = ranges[n - 1]
        entry = _ACK_ENC_TAIL_CACHE.get((n, newest.start))
        if entry is not None and entry[0] == ranges[:n - 1]:
            buf.push_varint(n - 1)
            buf.push_varint(largest - newest.start)
            buf.push_bytes(entry[1])
            return
    ordered = sorted(ranges, key=lambda r: r.end, reverse=True)
    if not ordered or ordered[0].end != largest:
        raise FrameEncodingError("largest_acked must end the first range")
    buf.push_varint(len(ordered) - 1)
    buf.push_varint(largest - ordered[0].start)  # first ack range
    prev_start = ordered[0].start
    writer = buf._writer()
    tail_from = len(writer)
    for rng in ordered[1:]:
        gap = prev_start - rng.end - 2
        if gap < 0:
            raise FrameEncodingError("overlapping ack ranges")
        buf.push_varint(gap)
        buf.push_varint(rng.end - rng.start)
        prev_start = rng.start
    if ascending:
        if len(_ACK_ENC_TAIL_CACHE) >= _ACK_TAIL_CACHE_MAX:
            _ACK_ENC_TAIL_CACHE.clear()
        _ACK_ENC_TAIL_CACHE[(n, ranges[n - 1].start)] = (
            ranges[:n - 1], bytes(writer[tail_from:]))


def _decode_ack_ranges(buf: Buffer, largest: int) -> Tuple[AckRange, ...]:
    count = buf.pull_varint()
    # Each additional range needs at least two varint bytes; a count
    # beyond that is a malformed (or hostile) frame, not a big ACK.
    if count * 2 > buf.remaining:
        raise FrameEncodingError(f"ack range count {count} exceeds payload")
    first_len = buf.pull_varint()
    prev_start = largest - first_len
    first = AckRange(start=prev_start, end=largest)
    if count == 0:
        return (first,)
    entry = _ACK_DEC_TAIL_CACHE.get((count, prev_start))
    if entry is not None:
        tail_bytes, tail_ranges = entry
        pos = buf._pos
        if buf._read_data[pos:pos + len(tail_bytes)] == tail_bytes:
            buf._pos = pos + len(tail_bytes)
            return (first,) + tail_ranges
    tail_from = buf._pos
    ranges = [first]
    for _ in range(count):
        gap = buf.pull_varint()
        length = buf.pull_varint()
        end = prev_start - gap - 2
        ranges.append(AckRange(start=end - length, end=end))
        prev_start = end - length
    if len(_ACK_DEC_TAIL_CACHE) >= _ACK_TAIL_CACHE_MAX:
        _ACK_DEC_TAIL_CACHE.clear()
    _ACK_DEC_TAIL_CACHE[(count, largest - first_len)] = (
        bytes(buf._read_data[tail_from:buf._pos]), tuple(ranges[1:]))
    return tuple(ranges)


def _enc_padding(buf: Buffer, frame: PaddingFrame) -> None:
    buf.push_bytes(b"\x00" * frame.length)


def _enc_ping(buf: Buffer, frame: PingFrame) -> None:
    buf.push_varint(FrameType.PING)


def _enc_ack(buf: Buffer, frame: AckFrame) -> None:
    buf.push_varint(FrameType.ACK)
    buf.push_varint(frame.largest_acked)
    buf.push_varint(frame.ack_delay_us)
    _encode_ack_ranges(buf, frame.largest_acked, frame.ranges)


def _enc_ack_mp(buf: Buffer, frame: AckMpFrame) -> None:
    buf.push_varint(FrameType.ACK_MP)
    buf.push_varint(frame.path_id)
    buf.push_varint(1 if frame.qoe is not None else 0)
    buf.push_varint(frame.largest_acked)
    buf.push_varint(frame.ack_delay_us)
    _encode_ack_ranges(buf, frame.largest_acked, frame.ranges)
    if frame.qoe is not None:
        frame.qoe.encode(buf)


def _enc_crypto(buf: Buffer, frame: CryptoFrame) -> None:
    buf.push_varint(FrameType.CRYPTO)
    buf.push_varint(frame.offset)
    buf.push_varint(len(frame.data))
    buf.push_bytes(frame.data)


def _enc_stream(buf: Buffer, frame: StreamFrame) -> None:
    # Always emit OFF and LEN bits; FIN from the frame.
    buf.push_varint(
        FrameType.STREAM | 0x04 | 0x02 | (0x01 if frame.fin else 0))
    buf.push_varint(frame.stream_id)
    buf.push_varint(frame.offset)
    buf.push_varint(len(frame.data))
    buf.push_bytes(frame.data)


def _enc_max_data(buf: Buffer, frame: MaxDataFrame) -> None:
    buf.push_varint(FrameType.MAX_DATA)
    buf.push_varint(frame.maximum)


def _enc_max_stream_data(buf: Buffer, frame: MaxStreamDataFrame) -> None:
    buf.push_varint(FrameType.MAX_STREAM_DATA)
    buf.push_varint(frame.stream_id)
    buf.push_varint(frame.maximum)


def _enc_new_cid(buf: Buffer, frame: NewConnectionIdFrame) -> None:
    buf.push_varint(FrameType.NEW_CONNECTION_ID)
    buf.push_varint(frame.sequence_number)
    buf.push_varint(frame.retire_prior_to)
    buf.push_uint8(len(frame.cid))
    buf.push_bytes(frame.cid)


def _enc_path_challenge(buf: Buffer, frame: PathChallengeFrame) -> None:
    buf.push_varint(FrameType.PATH_CHALLENGE)
    buf.push_bytes(frame.data)


def _enc_path_response(buf: Buffer, frame: PathResponseFrame) -> None:
    buf.push_varint(FrameType.PATH_RESPONSE)
    buf.push_bytes(frame.data)


def _enc_close(buf: Buffer, frame: ConnectionCloseFrame) -> None:
    buf.push_varint(FrameType.CONNECTION_CLOSE)
    buf.push_varint(frame.error_code)
    reason = frame.reason.encode()
    buf.push_varint(len(reason))
    buf.push_bytes(reason)


def _enc_path_status(buf: Buffer, frame: PathStatusFrame) -> None:
    buf.push_varint(FrameType.PATH_STATUS)
    buf.push_varint(frame.path_id)
    buf.push_varint(frame.status_seq)
    buf.push_varint(int(frame.status))


def _enc_qoe(buf: Buffer, frame: QoeControlSignalsFrame) -> None:
    buf.push_varint(FrameType.QOE_CONTROL_SIGNALS)
    frame.qoe.encode(buf)


#: Exact-type dispatch replaces the old isinstance chain: one dict
#: lookup per frame instead of up to 13 isinstance checks, and all
#: frames in a packet share one Buffer (see :func:`encode_frames`).
_FRAME_ENCODERS = {
    PaddingFrame: _enc_padding,
    PingFrame: _enc_ping,
    AckFrame: _enc_ack,
    AckMpFrame: _enc_ack_mp,
    CryptoFrame: _enc_crypto,
    StreamFrame: _enc_stream,
    MaxDataFrame: _enc_max_data,
    MaxStreamDataFrame: _enc_max_stream_data,
    NewConnectionIdFrame: _enc_new_cid,
    PathChallengeFrame: _enc_path_challenge,
    PathResponseFrame: _enc_path_response,
    ConnectionCloseFrame: _enc_close,
    PathStatusFrame: _enc_path_status,
    QoeControlSignalsFrame: _enc_qoe,
}


def encode_frame_into(buf: Buffer, frame: object) -> None:
    """Append one frame's serialization to ``buf``."""
    encoder = _FRAME_ENCODERS.get(type(frame))
    if encoder is None:
        raise FrameEncodingError(f"cannot encode {type(frame).__name__}")
    encoder(buf, frame)


def encode_frame(frame: object) -> bytes:
    """Serialize one frame to bytes."""
    buf = Buffer()
    encode_frame_into(buf, frame)
    return buf.getvalue()


def encode_frames(frames: List[object]) -> bytes:
    """Serialize a frame sequence into one contiguous payload."""
    buf = Buffer()
    for frame in frames:
        encode_frame_into(buf, frame)
    return buf.getvalue()


def decode_frames(payload) -> List[object]:
    """Parse a packet payload into a list of frames.

    Accepts any bytes-like payload; the receive path hands a
    ``memoryview`` of the decrypted packet, and STREAM/CRYPTO data
    fields stay views of it (zero-copy) until stream reassembly
    materializes them.  Small fields that outlive the datagram --
    NEW_CONNECTION_ID CIDs, path challenge tokens, close reasons --
    are materialized as ``bytes`` here.

    Malformed input always surfaces as :class:`FrameEncodingError`
    (never a bare ``ValueError``), so the connection can map any
    parse failure to a clean FRAME_ENCODING_ERROR close.
    """
    try:
        return _decode_frames_inner(payload)
    except FrameEncodingError:
        raise
    except (ValueError, OverflowError) as exc:
        raise FrameEncodingError(f"malformed frame: {exc}") from exc


def _decode_frames_inner(payload) -> List[object]:
    buf = Buffer(payload)
    frames: List[object] = []
    while buf.remaining > 0:
        frame_type = buf.pull_varint()
        if frame_type == FrameType.PADDING:
            continue
        if frame_type == FrameType.PING:
            frames.append(PingFrame())
        elif frame_type == FrameType.ACK:
            largest = buf.pull_varint()
            delay = buf.pull_varint()
            ranges = _decode_ack_ranges(buf, largest)
            frames.append(AckFrame(largest_acked=largest, ack_delay_us=delay,
                                   ranges=ranges))
        elif frame_type == FrameType.ACK_MP:
            path_id = buf.pull_varint()
            flags = buf.pull_varint()
            largest = buf.pull_varint()
            delay = buf.pull_varint()
            ranges = _decode_ack_ranges(buf, largest)
            qoe = QoeSignals.decode(buf) if flags & 1 else None
            frames.append(AckMpFrame(path_id=path_id, largest_acked=largest,
                                     ack_delay_us=delay, ranges=ranges,
                                     qoe=qoe))
        elif frame_type == FrameType.CRYPTO:
            offset = buf.pull_varint()
            length = buf.pull_varint()
            frames.append(CryptoFrame(offset=offset,
                                      data=buf.pull_bytes(length)))
        elif FrameType.STREAM <= frame_type <= FrameType.STREAM | 0x07:
            fin = bool(frame_type & 0x01)
            has_len = bool(frame_type & 0x02)
            has_off = bool(frame_type & 0x04)
            stream_id = buf.pull_varint()
            offset = buf.pull_varint() if has_off else 0
            if has_len:
                length = buf.pull_varint()
                data = buf.pull_bytes(length)
            else:
                data = buf.pull_bytes(buf.remaining)
            frames.append(StreamFrame(stream_id=stream_id, offset=offset,
                                      data=data, fin=fin))
        elif frame_type == FrameType.MAX_DATA:
            frames.append(MaxDataFrame(maximum=buf.pull_varint()))
        elif frame_type == FrameType.MAX_STREAM_DATA:
            frames.append(MaxStreamDataFrame(stream_id=buf.pull_varint(),
                                             maximum=buf.pull_varint()))
        elif frame_type == FrameType.NEW_CONNECTION_ID:
            seq = buf.pull_varint()
            retire = buf.pull_varint()
            cid_len = buf.pull_uint8()
            frames.append(NewConnectionIdFrame(
                sequence_number=seq, cid=bytes(buf.pull_bytes(cid_len)),
                retire_prior_to=retire))
        elif frame_type == FrameType.PATH_CHALLENGE:
            frames.append(PathChallengeFrame(data=bytes(buf.pull_bytes(8))))
        elif frame_type == FrameType.PATH_RESPONSE:
            frames.append(PathResponseFrame(data=bytes(buf.pull_bytes(8))))
        elif frame_type == FrameType.CONNECTION_CLOSE:
            code = buf.pull_varint()
            reason_len = buf.pull_varint()
            frames.append(ConnectionCloseFrame(
                error_code=code,
                reason=bytes(buf.pull_bytes(reason_len)).decode()))
        elif frame_type == FrameType.PATH_STATUS:
            path_id = buf.pull_varint()
            status_seq = buf.pull_varint()
            status = PathStatus(buf.pull_varint())
            frames.append(PathStatusFrame(path_id=path_id, status=status,
                                          status_seq=status_seq))
        elif frame_type == FrameType.QOE_CONTROL_SIGNALS:
            frames.append(QoeControlSignalsFrame(qoe=QoeSignals.decode(buf)))
        else:
            raise FrameEncodingError(f"unknown frame type 0x{frame_type:x}")
    return frames


#: Frames that count as "ack-eliciting" (RFC 9002): everything except
#: ACK, ACK_MP, CONNECTION_CLOSE and PADDING.
def is_ack_eliciting(frame: object) -> bool:
    return not isinstance(frame, (AckFrame, AckMpFrame, ConnectionCloseFrame,
                                  PaddingFrame))
