"""Per-path RTT estimation (RFC 9002 Sec. 5).

Keeps latest/min/smoothed RTT and rttvar.  The XLINK QoE controller
reads ``smoothed + rttvar`` as the per-path delivery-time estimate
(Eq. 1: RTT_p + delta_p).
"""

from __future__ import annotations

from dataclasses import dataclass, field

INITIAL_RTT = 0.333  # RFC 9002 default initial RTT, seconds
GRANULARITY = 0.001


@dataclass
class RttEstimator:
    """EWMA RTT state for one path."""

    latest: float = 0.0
    min_rtt: float = float("inf")
    smoothed: float = INITIAL_RTT
    rttvar: float = INITIAL_RTT / 2
    has_sample: bool = False

    def update(self, rtt_sample: float, ack_delay: float = 0.0) -> None:
        """Fold in a new RTT sample (seconds), per RFC 9002."""
        if rtt_sample <= 0:
            raise ValueError("RTT sample must be positive")
        self.latest = rtt_sample
        if rtt_sample < self.min_rtt:
            self.min_rtt = rtt_sample
        # Subtract peer ack delay, but never below min_rtt.
        adjusted = rtt_sample
        if adjusted - ack_delay >= self.min_rtt:
            adjusted -= ack_delay
        if not self.has_sample:
            self.smoothed = adjusted
            self.rttvar = adjusted / 2
            self.has_sample = True
            return
        sample_var = abs(self.smoothed - adjusted)
        self.rttvar = 0.75 * self.rttvar + 0.25 * sample_var
        self.smoothed = 0.875 * self.smoothed + 0.125 * adjusted

    @property
    def delivery_time(self) -> float:
        """XLINK's per-path in-flight delivery-time estimate RTT + delta."""
        return self.smoothed + self.rttvar

    def pto(self, max_ack_delay: float = 0.025) -> float:
        """Probe timeout per RFC 9002."""
        return self.smoothed + max(4 * self.rttvar, GRANULARITY) \
            + max_ack_delay
