"""The QUIC connection state machine with multipath + XLINK hooks.

Responsibilities:

- 1-RTT handshake with the ``enable_multipath`` transport parameter
  (Fig. 9); fallback to single path when either side lacks it.
- Per-path packet-number spaces, sealing/opening packets with the
  multipath AEAD nonce.
- Streams with connection/stream flow control; the ``stream_send``
  API carries XLINK's frame-priority annotations.
- A *send queue* of :class:`SendChunk` work items; a pluggable
  scheduler (see :mod:`repro.core.scheduler`) picks the path for every
  packet and controls re-injection by inserting duplicate chunks.
- ACK_MP generation, carrying the client's QoE signals, returned on
  the path chosen by the ACK return-path policy (fastest vs original).
- Per-path loss detection and PTO probing; lost stream data re-enters
  the send queue as retransmission chunks.
- Path lifecycle: NEW_CONNECTION_ID supply, PATH_CHALLENGE /
  PATH_RESPONSE validation, PATH_STATUS close, and single-path
  *connection migration* (cwnd reset) for the CM baseline.

The connection is sans-IO towards the network: it consumes datagram
payloads via :meth:`datagram_received` and emits them through the
``transmit(net_path_id, payload)`` callback, which the experiment
harness wires to :mod:`repro.netem`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.quic.cc import RateSample, make_cc, make_coordinator
from repro.quic.cc.base import MAX_DATAGRAM_SIZE
from repro.quic.cid import CidRegistry, ConnectionId
from repro.quic.crypto import PacketProtection, TAG_LENGTH, derive_connection_key
from repro.quic.errors import ProtocolViolation, QuicError
from repro.quic.frames import (AckMpFrame, ConnectionCloseFrame,
                               CryptoFrame, MaxDataFrame, MaxStreamDataFrame,
                               NewConnectionIdFrame, PathChallengeFrame,
                               PathResponseFrame, PathStatus, PathStatusFrame,
                               PingFrame, QoeControlSignalsFrame, QoeSignals,
                               StreamFrame, decode_frames, encode_frames,
                               is_ack_eliciting)
from repro.quic.loss_detection import SentPacket
from repro.quic.packets import (PacketHeader, PacketType, decode_header,
                                encode_header, encode_short_header,
                                reconstruct_pn)
from repro.quic.path import Path, PathState
from repro.quic.stream import (DEFAULT_FRAME_PRIORITY, ReceiveStream,
                               SendStream)
from repro.quic.transport_params import TransportParameters
from repro.quic.flow_control import FlowControlWindow
from repro.sim.event_loop import EventLoop
from repro.sim.rng import make_rng
from repro.traces.radio_profiles import RadioType

#: Usable payload per packet: datagram budget minus short header and tag.
PACKET_PAYLOAD_BUDGET = MAX_DATAGRAM_SIZE - 13 - TAG_LENGTH - 24

#: Send an ACK after this many ack-eliciting packets (RFC 9000 default 2).
ACK_ELICITING_THRESHOLD = 2


@dataclass
class SendChunk:
    """One work item in the packet send queue (the paper's pkt_send_q).

    ``kind`` is ``"new"`` (first transmission), ``"rtx"``
    (retransmission of lost data) or ``"reinject"`` (XLINK duplicate of
    still-in-flight data).  ``exclude_path`` steers re-injected copies
    away from the path the original is stuck on.
    """

    stream_id: int
    offset: int
    length: int
    kind: str = "new"
    stream_priority: int = 0
    frame_priority: int = DEFAULT_FRAME_PRIORITY
    exclude_path: Optional[int] = None

    @property
    def end(self) -> int:
        return self.offset + self.length


@dataclass
class ConnectionConfig:
    """Tunable connection behaviour."""

    is_client: bool = True
    enable_multipath: bool = True
    #: congestion controller: any name in ``repro.quic.cc.CC_REGISTRY``
    #: ("cubic" | "newreno" | "lia" | "bbr" | "mpbbr")
    cc_algorithm: str = "cubic"
    #: ACK_MP return-path policy: "fastest" (XLINK) or "original" (MPTCP-like)
    ack_path_policy: str = "fastest"
    max_ack_delay: float = 0.025
    transport_params: TransportParameters = field(
        default_factory=TransportParameters)
    #: number of extra CIDs supplied at handshake (max paths - 1)
    extra_cids: int = 4
    seed: int = 0
    #: silently close after this long without an authenticated packet
    #: (``None`` disables the idle timer entirely)
    idle_timeout_s: Optional[float] = None
    #: re-injection storm guard: cap on duplicate bytes enqueued per
    #: RTT-sized window (0 disables).  Sized far above legitimate XLINK
    #: re-injection bursts (bounded by a stuck path's cwnd), so only
    #: chaos-triggered amplification ever trims.
    reinject_budget_bytes_per_rtt: int = 1_000_000


def derive_initial_dcid(seed: int, connection_name: str) -> bytes:
    """The client-chosen random initial DCID for a connection.

    Derived deterministically from the connection's shared identity so
    the server host (which knows the same identity) can pre-pin the
    handshake route -- NAT rebinds before the first packet then cannot
    orphan the connection.
    """
    rng = make_rng(seed, f"{connection_name}-initial-dcid")
    return bytes(rng.getrandbits(8) for _ in range(8))


@dataclass
class _SentFrameInfo:
    """What a sent packet carried, for ack/loss processing."""

    stream_id: int = -1
    offset: int = 0
    length: int = 0
    fin: bool = False
    kind: str = "new"


class ConnectionStats:
    """Traffic accounting used by the cost benchmarks."""

    def __init__(self) -> None:
        self.stream_bytes_new = 0
        self.stream_bytes_rtx = 0
        self.stream_bytes_reinjected = 0
        self.packets_sent = 0
        self.packets_received = 0
        self.acks_sent = 0
        self.handshake_completed_at: Optional[float] = None
        #: robustness counters (chaos / hostile-input accounting)
        self.corrupted_dropped = 0
        self.malformed_dropped = 0
        self.unknown_cid_dropped = 0
        self.frame_decode_errors = 0
        self.protocol_error_closes = 0
        self.duplicates_suppressed = 0
        self.reorder_max_depth = 0
        self.storm_guard_trims = 0
        self.storm_guard_trimmed_bytes = 0
        self.idle_timeouts = 0

    @property
    def redundancy_ratio(self) -> float:
        """Re-injected bytes over useful (new) stream bytes."""
        if self.stream_bytes_new == 0:
            return 0.0
        return self.stream_bytes_reinjected / self.stream_bytes_new

    def robustness_dict(self) -> Dict[str, int]:
        """The robustness counters, for summaries and invariant checks."""
        return {
            "corrupted_dropped": self.corrupted_dropped,
            "malformed_dropped": self.malformed_dropped,
            "unknown_cid_dropped": self.unknown_cid_dropped,
            "frame_decode_errors": self.frame_decode_errors,
            "protocol_error_closes": self.protocol_error_closes,
            "duplicates_suppressed": self.duplicates_suppressed,
            "reorder_max_depth": self.reorder_max_depth,
            "storm_guard_trims": self.storm_guard_trims,
            "storm_guard_trimmed_bytes": self.storm_guard_trimmed_bytes,
            "idle_timeouts": self.idle_timeouts,
        }


def aggregate_robustness(stats_list) -> Dict[str, int]:
    """Merge robustness counters across connections.

    ``reorder_max_depth`` is a high-water mark (max); everything else
    is additive.
    """
    total: Dict[str, int] = {}
    for stats in stats_list:
        for key, value in stats.robustness_dict().items():
            if key == "reorder_max_depth":
                total[key] = max(total.get(key, 0), value)
            else:
                total[key] = total.get(key, 0) + value
    return total


class Connection:
    """One endpoint of a (multipath) QUIC connection."""

    def __init__(self, loop: EventLoop, config: ConnectionConfig,
                 transmit: Callable[[int, bytes], None],
                 scheduler=None,
                 connection_name: str = "conn",
                 server_id: int = 1) -> None:
        self.loop = loop
        self.config = config
        self.transmit = transmit
        self.scheduler = scheduler
        self.connection_name = connection_name
        self.stats = ConnectionStats()
        self.established = False
        self.closed = False
        self.multipath_negotiated = False
        self.peer_params: Optional[TransportParameters] = None

        rng = make_rng(config.seed, f"{connection_name}-cids-"
                       f"{'c' if config.is_client else 's'}")
        self.cids = CidRegistry(
            rng, server_id=None if config.is_client else server_id)
        # Both sides derive the same key from the connection name: the
        # handshake secrecy itself is out of scope (see crypto module).
        secret = hashlib.sha256(connection_name.encode()).digest()
        self.protection = PacketProtection(derive_connection_key(secret))

        self.paths: Dict[int, Path] = {}
        #: QUIC path id -> network interface id used by ``transmit``
        self.net_path_of: Dict[int, int] = {}
        #: shared coordinator for coupled controllers (lia/mpbbr), else None
        self._cc_coordinator = make_coordinator(config.cc_algorithm)
        #: True once any path runs a paced (model-based) controller;
        #: gates every pacing/rate-sample code path so the default
        #: loss-based configuration takes identical branches to the
        #: pre-pacing connection.
        self._any_paced = False
        self._pacing_event = None
        self._pacing_deadline: Optional[float] = None

        self.send_streams: Dict[int, SendStream] = {}
        self.recv_streams: Dict[int, ReceiveStream] = {}
        self._next_stream_id = 0 if config.is_client else 1
        self._stream_queued_offset: Dict[int, int] = {}

        self.send_queue: List[SendChunk] = []
        #: range -> virtual time of its last re-injection; entries age
        #: out so a duplicate that got stuck itself can be retried
        self._reinjected_ranges: Dict[tuple, float] = {}

        self.fc_send = FlowControlWindow.with_window(
            config.transport_params.initial_max_data)
        self.fc_recv = FlowControlWindow.with_window(
            config.transport_params.initial_max_data)
        self._fc_stream_send: Dict[int, FlowControlWindow] = {}
        self._fc_stream_recv: Dict[int, FlowControlWindow] = {}
        self._total_sent_offset = 0
        self._total_recv_offset = 0

        #: client QoE provider -> QoeSignals or None (set by video player)
        self.qoe_provider: Optional[Callable[[], Optional[QoeSignals]]] = None
        #: latest QoE feedback received from the peer (server side)
        self.last_qoe: Optional[QoeSignals] = None
        self.last_qoe_time: float = -1.0

        #: callbacks
        self.on_established: Optional[Callable[[], None]] = None
        self.on_stream_data: Optional[Callable[[int], None]] = None
        self.on_stream_complete: Optional[Callable[[int], None]] = None

        #: observer hooks -- the supported way to watch a connection
        #: without wrapping its methods (tracers, CM monitors, hosts).
        #: Receive hooks fire on every datagram handed to
        #: :meth:`datagram_received`, before any processing (even on a
        #: closed connection, matching an on-the-wire tap); transmit
        #: hooks fire just before a datagram leaves via ``transmit``.
        self.receive_hooks: List[Callable[[bytes, int], None]] = []
        self.transmit_hooks: List[Callable[[int, bytes], None]] = []
        #: fired when a re-injection chunk is actually enqueued
        self.reinjection_hooks: List[Callable[[SendChunk, Optional[int]],
                                              None]] = []
        #: fired on every QoE feedback signal from the peer
        self.qoe_hooks: List[Callable[[QoeSignals], None]] = []
        #: fired whenever a datagram/chunk is dropped: ``hook(reason,
        #: size)`` -- reasons mirror the robustness counters.
        self.drop_hooks: List[Callable[[str, int], None]] = []

        self._timer_event = None
        #: live loss-timer deadline; the armed event may lag behind it
        #: (lazy-deadline timers -- see _arm_loss_timer)
        self._loss_deadline: Optional[float] = None
        self._ack_timer_event = None
        self._pending_control: Dict[int, List[object]] = {}
        self._handshake_sent = False
        self._handshake_retransmit_event = None
        self._eliciting_since_ack: Dict[int, int] = {}
        self._next_challenge = 0

        #: virtual time of the last authenticated packet (idle timer)
        self.last_activity_at = loop.now
        self._idle_event = None
        if config.idle_timeout_s is not None:
            self._idle_event = loop.schedule_at(
                self._idle_deadline(), self._on_idle_check,
                label="idle-timeout")
        #: re-injection storm guard window state
        self._storm_window_start = loop.now
        self._storm_window_bytes = 0

    # ------------------------------------------------------------------
    # observer hooks
    # ------------------------------------------------------------------

    def add_receive_hook(self, hook: Callable[[bytes, int], None]) -> None:
        """Observe incoming datagrams: ``hook(payload, net_path_id)``."""
        self.receive_hooks.append(hook)

    def add_transmit_hook(self, hook: Callable[[int, bytes], None]) -> None:
        """Observe outgoing datagrams: ``hook(net_path_id, payload)``."""
        self.transmit_hooks.append(hook)

    def add_reinjection_hook(
            self, hook: Callable[["SendChunk", Optional[int]], None]) -> None:
        """Observe enqueued re-injections: ``hook(chunk, position)``."""
        self.reinjection_hooks.append(hook)

    def add_qoe_hook(self, hook: Callable[[QoeSignals], None]) -> None:
        """Observe peer QoE feedback: ``hook(qoe)``."""
        self.qoe_hooks.append(hook)

    def add_drop_hook(self, hook: Callable[[str, int], None]) -> None:
        """Observe robustness drops: ``hook(reason, size_bytes)``."""
        self.drop_hooks.append(hook)

    def _note_drop(self, reason: str, size: int) -> None:
        for hook in self.drop_hooks:
            hook(reason, size)

    def _emit(self, net_path_id: int, payload: bytes) -> None:
        """Hand a datagram to the network, notifying transmit hooks."""
        for hook in self.transmit_hooks:
            hook(net_path_id, payload)
        self.transmit(net_path_id, payload)

    # ------------------------------------------------------------------
    # path setup
    # ------------------------------------------------------------------

    def _make_cc(self):
        if self._cc_coordinator is not None:
            cc = make_cc(self.config.cc_algorithm,
                         coordinator=self._cc_coordinator)
        else:
            cc = make_cc(self.config.cc_algorithm)
        if cc.paced:
            self._any_paced = True
        return cc

    def add_local_path(self, path_id: int, net_path_id: int,
                       radio: Optional[RadioType] = None) -> Path:
        """Create path state bound to a local network interface.

        For path 0 this is done before the handshake; for later paths
        the client calls :meth:`open_path` after negotiation.
        """
        if path_id in self.paths:
            raise ProtocolViolation(f"path {path_id} already exists")
        while path_id not in self.cids.issued:
            self.cids.issue()
        local_cid = self.cids.issued[path_id]
        remote = self.cids.peer_cids.get(path_id)
        if remote is None:
            # Peer CID not yet known (pre-handshake path 0): a random
            # client-chosen initial DCID, as in QUIC -- load balancers
            # consistent-hash it to pick the backend (Sec. 6).  It is
            # replaced when the peer's real CIDs arrive.
            initial = derive_initial_dcid(self.config.seed,
                                          self.connection_name)
            remote = ConnectionId(cid=initial, sequence_number=path_id)
        path = Path(path_id, local_cid, remote, self._make_cc(), radio=radio,
                    max_ack_delay=self.config.max_ack_delay)
        if path.cc.paced:
            # The loss detector stamps delivered/delivered_time on every
            # sent packet only when the controller consumes rate samples.
            path.loss.rate_sampling = True
        self.paths[path_id] = path
        self.net_path_of[path_id] = net_path_id
        self._eliciting_since_ack[path_id] = 0
        return path

    def open_path(self, path_id: int, net_path_id: int,
                  radio: Optional[RadioType] = None) -> Path:
        """Client-side: initiate a new path (Fig. 9 right half).

        Requires multipath negotiation and an unused peer CID; sends a
        PATH_CHALLENGE to validate the path.
        """
        if not self.config.is_client:
            raise ProtocolViolation("only the client opens paths here")
        if not self.multipath_negotiated:
            raise ProtocolViolation("multipath was not negotiated")
        if path_id not in self.cids.peer_cids:
            raise ProtocolViolation(
                f"no peer CID with sequence {path_id} available")
        path = self.add_local_path(path_id, net_path_id, radio=radio)
        path.remote_cid = self.cids.peer_cids[path_id]
        self.cids.mark_peer_used(path_id)
        path.state = PathState.VALIDATING
        challenge = self._next_challenge.to_bytes(8, "big")
        self._next_challenge += 1
        path.challenge_data = challenge
        self._queue_control(path_id, PathChallengeFrame(data=challenge))
        self._pump()
        return path

    def close_path(self, path_id: int) -> None:
        """Abandon a path and tell the peer via PATH_STATUS (Sec. 6)."""
        path = self.paths.get(path_id)
        if path is None or path.state is PathState.ABANDONED:
            return
        status = PathStatusFrame(path_id=path_id, status=PathStatus.ABANDON,
                                 status_seq=0)
        # Send the notice on another live path when possible.
        other = [p for p in self.paths.values()
                 if p.path_id != path_id and p.is_usable]
        carrier = other[0].path_id if other else path_id
        self._queue_control(carrier, status)
        self._abandon_path_locally(path)
        self._pump()

    def _abandon_path_locally(self, path: Path) -> None:
        # Lost-in-limbo data on this path must be retransmitted
        # elsewhere; every in-flight byte is released to congestion
        # control and the path's loss timer is cleared so an abandoned
        # path can never fire a stale deadline.
        for pkt in path.loss.discard_all():
            path.cc.on_discarded(pkt.size if pkt.in_flight else 0)
            self._requeue_lost_frames(pkt)
        path.abandon()
        self._arm_loss_timer()

    def start_qoe_feedback(self, interval_s: float = 0.1) -> None:
        """Send QOE_CONTROL_SIGNALS frames on a timer (draft Sec. 6).

        The deployed XLINK piggybacks QoE on ACK_MP; the draft also
        defines a standalone frame so feedback frequency is not tied
        to ack frequency.  Requires a ``qoe_provider``.
        """
        if self.qoe_provider is None:
            raise ProtocolViolation("no qoe_provider registered")
        if interval_s <= 0:
            raise ValueError("interval must be positive")

        def tick() -> None:
            if self.closed:
                return
            qoe = self.qoe_provider()
            if qoe is not None and self.established:
                carrier = self._ack_carrier_path(
                    self.paths[self._any_active_path_id()])
                self._queue_control(carrier.path_id,
                                    QoeControlSignalsFrame(qoe=qoe))
                self._flush_control()
            self.loop.schedule_after(interval_s, tick, label="qoe-feedback")

        self.loop.schedule_after(interval_s, tick, label="qoe-feedback")

    def set_path_status(self, path_id: int, status: PathStatus,
                        status_seq: int = 0) -> None:
        """Advertise a path's status to the peer (Sec. 6 PATH_STATUS).

        STANDBY asks the peer to stop scheduling data on the path
        (e.g. the phone's Wi-Fi signal is fading); AVAILABLE restores
        it; ABANDON is equivalent to :meth:`close_path`.
        """
        path = self.paths.get(path_id)
        if path is None:
            raise ProtocolViolation(f"unknown path {path_id}")
        if status is PathStatus.ABANDON:
            self.close_path(path_id)
            return
        frame = PathStatusFrame(path_id=path_id, status=status,
                                status_seq=status_seq)
        carrier = self._any_active_path_id()
        self._queue_control(carrier, frame)
        # Apply locally as well: our own scheduler must respect it.
        path.status = status
        if status is PathStatus.STANDBY and path.state is PathState.ACTIVE:
            path.state = PathState.STANDBY
        elif status is PathStatus.AVAILABLE \
                and path.state is PathState.STANDBY:
            path.state = PathState.ACTIVE
        self._pump()

    def send_ping(self, path_id: int) -> None:
        """Send a PING on ``path_id`` (path liveness probe)."""
        path = self.paths.get(path_id)
        if path is None or path.state is PathState.ABANDONED or self.closed:
            return
        self._send_packet(path, [PingFrame()], in_flight=False)

    def migrate(self, new_path_id: int) -> None:
        """QUIC connection migration (CM baseline): single active path,
        congestion state reset on the new path (Sec. 2, 'Road to QUIC')."""
        new_path = self.paths[new_path_id]
        for path in self.paths.values():
            if path.path_id != new_path_id and path.is_usable:
                path.state = PathState.STANDBY
        new_path.state = PathState.ACTIVE
        new_path.cc.reset()
        self._pump()

    # ------------------------------------------------------------------
    # handshake
    # ------------------------------------------------------------------

    def connect(self) -> None:
        """Client: send the first handshake packet on path 0."""
        if not self.config.is_client:
            raise ProtocolViolation("server does not initiate")
        if 0 not in self.paths:
            raise ProtocolViolation("add path 0 before connecting")
        self._send_handshake()

    def _handshake_frames(self) -> List[object]:
        params = replace(self.config.transport_params,
                         enable_multipath=self.config.enable_multipath)
        frames: List[object] = [CryptoFrame(offset=0, data=params.encode())]
        for seq in range(1, 1 + self.config.extra_cids):
            while seq not in self.cids.issued:
                self.cids.issue()
            cid = self.cids.issued[seq]
            frames.append(NewConnectionIdFrame(
                sequence_number=cid.sequence_number, cid=cid.cid))
        return frames

    def _send_handshake(self) -> None:
        path = self.paths[0]
        payload = encode_frames(self._handshake_frames())
        pn = path.next_packet_number()
        header = PacketHeader(PacketType.HANDSHAKE,
                              dcid=path.remote_cid.cid,
                              scid=path.local_cid.cid, truncated_pn=pn)
        aad = encode_header(header)
        sealed = self.protection.seal(payload, aad, 0, pn)
        self._handshake_sent = True
        self.stats.packets_sent += 1
        path.packets_sent += 1
        path.bytes_sent += len(aad) + len(sealed)
        self._emit(self.net_path_of[0], aad + sealed)
        if self.config.is_client and not self.established:
            if self._handshake_retransmit_event is not None:
                self._handshake_retransmit_event.cancel()
            self._handshake_retransmit_event = self.loop.schedule_after(
                1.0, self._handshake_timeout, label="hs-rtx")

    def _handshake_timeout(self) -> None:
        if not self.established and not self.closed:
            self._send_handshake()

    def retransmit_handshake(self) -> None:
        """Re-send the client handshake immediately (CM rebind support).

        Used when the primary interface dies mid-handshake: the monitor
        rebinds path 0 to another interface and retransmits right away
        instead of waiting out the retransmit timer.
        """
        if self.config.is_client and not self.established and not self.closed:
            self._send_handshake()

    def _on_handshake_packet(self, header: PacketHeader,
                             payload: bytes) -> None:
        frames = decode_frames(payload)
        params: Optional[TransportParameters] = None
        for frame in frames:
            if isinstance(frame, CryptoFrame):
                params = TransportParameters.decode(frame.data)
            elif isinstance(frame, NewConnectionIdFrame):
                self.cids.register_peer(ConnectionId(
                    cid=frame.cid, sequence_number=frame.sequence_number))
        if params is None:
            raise ProtocolViolation("handshake without transport parameters")
        self.peer_params = params
        # Path 0's remote CID is the peer's SCID (sequence 0).
        scid = ConnectionId(cid=header.scid, sequence_number=0)
        self.cids.register_peer(scid)
        self.cids.mark_peer_used(0)
        if self.config.is_client:
            self._finish_handshake(client=True)
        else:
            if 0 not in self.paths:
                raise ProtocolViolation("server path 0 not provisioned")
            self.paths[0].remote_cid = scid
            self._send_handshake()
            self._finish_handshake(client=False)

    def _finish_handshake(self, client: bool) -> None:
        if self.established:
            return
        self.established = True
        self.stats.handshake_completed_at = self.loop.now
        if client and self._handshake_retransmit_event is not None:
            self._handshake_retransmit_event.cancel()
        mine = replace(self.config.transport_params,
                       enable_multipath=self.config.enable_multipath)
        self.multipath_negotiated = TransportParameters.negotiated_multipath(
            mine, self.peer_params)
        self.fc_send.on_peer_update(self.peer_params.initial_max_data)
        path0 = self.paths[0]
        if self.cids.peer_cids.get(0) is not None:
            path0.remote_cid = self.cids.peer_cids[0]
        path0.state = PathState.ACTIVE
        if self.on_established is not None:
            self.on_established()
        self._pump()

    # ------------------------------------------------------------------
    # stream API
    # ------------------------------------------------------------------

    def create_stream(self, priority: int = 0) -> int:
        """Open a new bidirectional stream; returns its id."""
        stream_id = self._next_stream_id
        self._next_stream_id += 4
        self._ensure_send_stream(stream_id, priority)
        return stream_id

    def _ensure_send_stream(self, stream_id: int,
                            priority: int = 0) -> SendStream:
        stream = self.send_streams.get(stream_id)
        if stream is None:
            stream = SendStream(stream_id, priority=priority)
            self.send_streams[stream_id] = stream
            self._stream_queued_offset[stream_id] = 0
            self._fc_stream_send[stream_id] = FlowControlWindow.with_window(
                self.config.transport_params.initial_max_stream_data)
        return stream

    def _ensure_recv_stream(self, stream_id: int) -> ReceiveStream:
        stream = self.recv_streams.get(stream_id)
        if stream is None:
            stream = ReceiveStream(stream_id)
            self.recv_streams[stream_id] = stream
            self._fc_stream_recv[stream_id] = FlowControlWindow.with_window(
                self.config.transport_params.initial_max_stream_data)
        return stream

    def stream_send(self, stream_id: int, data: bytes, fin: bool = False,
                    priority: Optional[int] = None,
                    frame_priority: Optional[int] = None,
                    position: Optional[int] = None,
                    size: Optional[int] = None) -> None:
        """Write application data (XLINK's ``stream_send`` API, Sec. 5.1).

        ``frame_priority`` + ``position``/``size`` mark a byte range
        (e.g. the first video frame) for priority-based re-injection.
        """
        stream = self._ensure_send_stream(
            stream_id, priority if priority is not None else 0)
        if priority is not None:
            stream.priority = priority
        stream.write(data, fin=fin, frame_priority=frame_priority,
                     position=position, size=size)
        self._enqueue_new_data(stream)
        self._pump()

    def _enqueue_new_data(self, stream: SendStream) -> None:
        queued = self._stream_queued_offset[stream.stream_id]
        total = stream.length
        if total <= queued and stream.fin_offset is None:
            return
        # Split the fresh region on frame-priority boundaries so higher
        # priority ranges form their own chunks (used by Fig. 4c logic).
        # priority_segments produces the same boundaries as scanning
        # frame_priority_at byte-by-byte, without the per-byte cost.
        for seg_start, seg_end, prio in stream.priority_segments(queued,
                                                                 total):
            self.send_queue.append(SendChunk(
                stream_id=stream.stream_id, offset=seg_start,
                length=seg_end - seg_start, kind="new",
                stream_priority=stream.priority, frame_priority=prio))
        self._stream_queued_offset[stream.stream_id] = total
        if total == queued and stream.fin_offset is not None:
            # FIN-only write: zero-length chunk to carry the FIN bit.
            self.send_queue.append(SendChunk(
                stream_id=stream.stream_id, offset=total, length=0,
                kind="new", stream_priority=stream.priority,
                frame_priority=stream.frame_priority_at(max(total - 1, 0))))

    def stream_read(self, stream_id: int) -> bytes:
        """Read all in-order bytes available on a receive stream."""
        stream = self.recv_streams.get(stream_id)
        if stream is None:
            return b""
        data = stream.read_available()
        if data:
            self._total_recv_offset += 0  # connection FC advances on receipt
            fc = self._fc_stream_recv[stream_id]
            new_limit = fc.maybe_advance(stream.read_offset)
            if new_limit:
                self._queue_control(self._any_active_path_id(),
                                    MaxStreamDataFrame(stream_id=stream_id,
                                                       maximum=new_limit))
                self._pump()
        return data

    # ------------------------------------------------------------------
    # receive pipeline
    # ------------------------------------------------------------------

    def datagram_received(self, payload: bytes, net_path_id: int = -1) -> None:
        """Entry point for datagrams from the emulated network.

        Never raises.  Hostile or damaged input is counted and dropped
        (truncated headers, AEAD failures, duplicates), or -- for
        authenticated-but-malformed payloads -- answered with a clean
        CONNECTION_CLOSE carrying the matching transport error code.
        """
        for hook in self.receive_hooks:
            hook(payload, net_path_id)
        if self.closed:
            return
        # One view of the datagram; header/AAD/ciphertext slices below
        # are all zero-copy until the AEAD produces the plaintext.
        view = memoryview(payload)
        try:
            header, offset = decode_header(view)
        except QuicError:
            self.stats.malformed_dropped += 1
            self._note_drop("malformed_header", len(payload))
            return
        if header.packet_type is PacketType.HANDSHAKE:
            try:
                plain = self.protection.open(view[offset:],
                                             view[:offset], 0,
                                             header.truncated_pn)
            except ValueError:
                self.stats.corrupted_dropped += 1
                self._note_drop("corrupted", len(payload))
                return
            self.stats.packets_received += 1
            self.last_activity_at = self.loop.now
            # Mid-handshake migration: follow the observed source
            # interface so replies reach a client whose primary
            # interface died before the handshake completed.
            if net_path_id >= 0 and 0 in self.paths \
                    and self.net_path_of.get(0) != net_path_id:
                self.net_path_of[0] = net_path_id
            try:
                self._on_handshake_packet(header, plain)
            except QuicError as exc:
                self._close_on_error(exc)
            except ValueError:
                self.stats.malformed_dropped += 1
                self._note_drop("malformed_handshake", len(payload))
            return
        local = self.cids.lookup_issued(header.dcid)
        if local is None:
            # Unknown DCID: routing noise, or corruption that hit the
            # CID bytes (so authentication was never attempted).
            self.stats.unknown_cid_dropped += 1
            self._note_drop("unknown_cid", len(payload))
            return
        path_id = local.sequence_number
        path = self.paths.get(path_id)
        if path is None:
            path = self._accept_new_path(path_id, net_path_id)
            if path is None:
                return
        pn = reconstruct_pn(header.truncated_pn, path.largest_received_pn)
        try:
            plain = self.protection.open(view[offset:], view[:offset],
                                         path_id, pn)
        except ValueError:
            self.stats.corrupted_dropped += 1
            self._note_drop("corrupted", len(payload))
            return
        # Address migration: if the peer moved this QUIC path onto a
        # different network path (QUIC connection migration, Sec. 2),
        # follow it -- replies go to the observed source.
        if net_path_id >= 0 and self.net_path_of.get(path_id) != net_path_id:
            self.net_path_of[path_id] = net_path_id
        if pn < path.largest_received_pn:
            depth = path.largest_received_pn - pn
            if depth > self.stats.reorder_max_depth:
                self.stats.reorder_max_depth = depth
        if not path.record_received(pn, self.loop.now):
            self.stats.duplicates_suppressed += 1
            self._note_drop("duplicate", len(payload))
            return
        self.stats.packets_received += 1
        self.last_activity_at = self.loop.now
        path.packets_received += 1
        path.bytes_received += len(payload)
        try:
            frames = decode_frames(plain)
        except QuicError as exc:
            # Authenticated but unparseable: a peer (or our own stack)
            # bug, not line noise -- close cleanly per RFC 9000.
            self.stats.frame_decode_errors += 1
            self._note_drop("frame_decode", len(payload))
            self._close_on_error(exc)
            return
        eliciting = any(is_ack_eliciting(f) for f in frames)
        try:
            for frame in frames:
                self._handle_frame(frame, path)
        except QuicError as exc:
            self._close_on_error(exc)
            return
        if eliciting:
            self._eliciting_since_ack[path_id] = \
                self._eliciting_since_ack.get(path_id, 0) + 1
            if self._eliciting_since_ack[path_id] >= ACK_ELICITING_THRESHOLD:
                self._send_ack_for(path)
            else:
                self._arm_ack_timer()
        self._pump()

    def _accept_new_path(self, path_id: int,
                         net_path_id: int) -> Optional[Path]:
        """Server side: first packet on a new DCID creates the path."""
        if not self.multipath_negotiated:
            return None
        if path_id not in self.cids.peer_cids:
            return None
        path = self.add_local_path(
            path_id, net_path_id if net_path_id >= 0 else path_id)
        path.remote_cid = self.cids.peer_cids[path_id]
        self.cids.mark_peer_used(path_id)
        path.state = PathState.ACTIVE
        return path

    def _handle_frame(self, frame: object, path: Path) -> None:
        if isinstance(frame, StreamFrame):
            self._on_stream_frame(frame)
        elif isinstance(frame, AckMpFrame):
            self._on_ack_mp(frame)
        elif isinstance(frame, PathChallengeFrame):
            self._queue_control(path.path_id,
                                PathResponseFrame(data=frame.data))
            if path.state is PathState.PENDING:
                path.state = PathState.ACTIVE
        elif isinstance(frame, PathResponseFrame):
            if path.challenge_data == frame.data:
                path.state = PathState.ACTIVE
                path.challenge_data = None
        elif isinstance(frame, NewConnectionIdFrame):
            self.cids.register_peer(ConnectionId(
                cid=frame.cid, sequence_number=frame.sequence_number))
        elif isinstance(frame, PathStatusFrame):
            self._on_path_status(frame)
        elif isinstance(frame, MaxDataFrame):
            self.fc_send.on_peer_update(frame.maximum)
        elif isinstance(frame, MaxStreamDataFrame):
            fc = self._fc_stream_send.get(frame.stream_id)
            if fc is not None:
                fc.on_peer_update(frame.maximum)
        elif isinstance(frame, QoeControlSignalsFrame):
            self._on_qoe(frame.qoe)
        elif isinstance(frame, ConnectionCloseFrame):
            self.closed = True
            self._cancel_timers()
        elif isinstance(frame, PingFrame):
            pass
        # CRYPTO in 1-RTT and unknown frames are ignored at this layer.

    def _on_stream_frame(self, frame: StreamFrame) -> None:
        stream = self._ensure_recv_stream(frame.stream_id)
        fc = self._fc_stream_recv[frame.stream_id]
        end = frame.offset + len(frame.data)
        fc.check_receive(end)
        prev_high = stream.highest_received
        stream.on_data(frame.offset, frame.data, frame.fin)
        # Connection-level FC charges only novel forward progress.
        if stream.highest_received > prev_high:
            delta = stream.highest_received - prev_high
            self._total_recv_offset += delta
            new_limit = self.fc_recv.maybe_advance(self._total_recv_offset)
            if new_limit:
                self._queue_control(self._any_active_path_id(),
                                    MaxDataFrame(maximum=new_limit))
        if self.on_stream_data is not None:
            self.on_stream_data(frame.stream_id)
        if stream.is_complete and self.on_stream_complete is not None:
            self.on_stream_complete(frame.stream_id)

    def _on_path_status(self, frame: PathStatusFrame) -> None:
        path = self.paths.get(frame.path_id)
        if path is None:
            return
        path.status = frame.status
        if frame.status is PathStatus.ABANDON:
            self._abandon_path_locally(path)
        elif frame.status is PathStatus.STANDBY:
            if path.state is PathState.ACTIVE:
                path.state = PathState.STANDBY
        elif frame.status is PathStatus.AVAILABLE:
            if path.state is PathState.STANDBY:
                path.state = PathState.ACTIVE

    def _on_qoe(self, qoe: QoeSignals) -> None:
        for hook in self.qoe_hooks:
            hook(qoe)
        self.last_qoe = qoe
        self.last_qoe_time = self.loop.now
        if self.scheduler is not None and hasattr(self.scheduler, "on_qoe"):
            self.scheduler.on_qoe(self, qoe)

    # ------------------------------------------------------------------
    # ACK handling
    # ------------------------------------------------------------------

    def _on_ack_mp(self, frame: AckMpFrame) -> None:
        path = self.paths.get(frame.path_id)
        if path is None:
            return
        if frame.qoe is not None:
            self._on_qoe(frame.qoe)
        acked, lost, _rtt = path.loss.on_ack_received(
            frame.ranges, frame.ack_delay_us / 1e6, self.loop.now)
        if path.cc.paced and acked:
            self._feed_rate_samples(path, acked, self.loop.now)
        for pkt in acked:
            if pkt.in_flight:
                path.cc.on_packet_acked(pkt.size, pkt.sent_time,
                                        self.loop.now, path.rtt.smoothed)
            self._on_frames_acked(pkt)
        for pkt in lost:
            if pkt.in_flight:
                path.cc.on_packets_lost(pkt.size, pkt.sent_time,
                                        self.loop.now)
            self._requeue_lost_frames(pkt)
        if self.scheduler is not None and hasattr(self.scheduler, "on_ack"):
            self.scheduler.on_ack(self, path, acked, lost)
        self._arm_loss_timer()

    def _feed_rate_samples(self, path: Path, acked, now: float) -> None:
        """Build per-packet delivery-rate samples for a paced controller.

        ``rate = (delivered_now - pkt.delivered) / (delivered_time -
        pkt.delivered_time)``: bytes delivered over the interval since
        the acked packet left, using the totals the loss detector
        stamped on it at send time.  Samples taken over an app-limited
        send period are flagged so they cannot deflate the bandwidth
        model.
        """
        loss = path.loss
        delivered_now = loss.delivered
        limited_until = loss.app_limited_until
        if limited_until and delivered_now >= limited_until:
            loss.app_limited_until = limited_until = 0
        cc = path.cc
        for pkt in acked:
            if not pkt.in_flight:
                continue
            interval = loss.delivered_time - pkt.delivered_time
            if interval <= 0:
                continue
            cc.on_rate_sample(RateSample(
                delivery_rate=(delivered_now - pkt.delivered) / interval,
                rtt=now - pkt.sent_time,
                delivered=delivered_now,
                pkt_delivered=pkt.delivered,
                acked_bytes=pkt.size,
                now=now,
                app_limited=pkt.delivered < limited_until))

    def _on_frames_acked(self, pkt: SentPacket) -> None:
        for info in pkt.frames_info:
            if info.stream_id < 0:
                continue
            stream = self.send_streams.get(info.stream_id)
            if stream is not None:
                stream.on_acked(info.offset, info.length, info.fin)
                key = (info.stream_id, info.offset, info.length)
                self._reinjected_ranges.pop(key, None)

    def _requeue_lost_frames(self, pkt: SentPacket) -> None:
        """Queue retransmission chunks for lost, still-unacked ranges."""
        for info in pkt.frames_info:
            if info.stream_id < 0:
                continue
            stream = self.send_streams.get(info.stream_id)
            if stream is None:
                continue
            if info.length == 0 and info.fin and not stream.fin_acked:
                self.send_queue.insert(0, SendChunk(
                    stream_id=info.stream_id, offset=info.offset, length=0,
                    kind="rtx", stream_priority=stream.priority,
                    frame_priority=DEFAULT_FRAME_PRIORITY))
                continue
            # Requeue only sub-ranges that are not yet acked.
            missing = stream.acked_ranges.missing_within(
                info.offset, info.offset + info.length)
            for start, end in missing:
                self.send_queue.insert(0, SendChunk(
                    stream_id=info.stream_id, offset=start,
                    length=end - start, kind="rtx",
                    stream_priority=stream.priority,
                    frame_priority=stream.frame_priority_at(start)))

    def _send_ack_for(self, path: Path) -> None:
        """Emit an ACK_MP for ``path`` via the ACK return-path policy."""
        if not path.ack_pending or not path.ack_needed:
            return
        ranges = path.ack_frame_ranges()
        largest = ranges[-1].end
        delay_us = int((self.loop.now - path.largest_recv_time) * 1e6)
        qoe = None
        if self.qoe_provider is not None:
            qoe = self.qoe_provider()
        ack = AckMpFrame(path_id=path.path_id, largest_acked=largest,
                         ack_delay_us=delay_us, ranges=ranges, qoe=qoe)
        carrier = self._ack_carrier_path(path)
        path.ack_needed = False
        self._eliciting_since_ack[path.path_id] = 0
        self.stats.acks_sent += 1
        self._queue_control(carrier.path_id, ack)
        self._flush_control()

    def _ack_carrier_path(self, acked_path: Path) -> Path:
        """Pick the path an ACK_MP travels on (Sec. 5.3, Fig. 8).

        The fastest-path policy skips *suspect* paths (nothing received
        for several RTTs): a frozen smoothed RTT on a blacked-out path
        would otherwise keep attracting acks it can no longer carry.
        """
        if self.config.ack_path_policy == "original":
            return acked_path
        usable = [p for p in self.paths.values()
                  if p.is_active and p.status is PathStatus.AVAILABLE]
        if not usable:
            return acked_path
        fresh = [p for p in usable if not p.is_suspect(self.loop.now)]
        candidates = fresh if fresh else usable
        return min(candidates, key=lambda p: p.rtt.smoothed)

    def _arm_ack_timer(self) -> None:
        if self._ack_timer_event is not None:
            return
        delay = self.config.max_ack_delay

        def fire() -> None:
            self._ack_timer_event = None
            for path in self.paths.values():
                if path.ack_needed:
                    self._send_ack_for(path)

        self._ack_timer_event = self.loop.schedule_after(
            delay, fire, label="ack-delay")

    # ------------------------------------------------------------------
    # send pipeline
    # ------------------------------------------------------------------

    def _any_active_path_id(self) -> int:
        for path in self.paths.values():
            if path.is_active:
                return path.path_id
        return next(iter(self.paths), 0)

    def _queue_control(self, path_id: int, frame: object) -> None:
        self._pending_control.setdefault(path_id, []).append(frame)

    def _flush_control(self) -> None:
        """Send control frames immediately (not congestion-limited)."""
        if not self.established and not self._pending_control:
            return
        for path_id, frames in list(self._pending_control.items()):
            path = self.paths.get(path_id)
            if path is None or path.state is PathState.ABANDONED:
                del self._pending_control[path_id]
                continue
            while frames:
                batch: List[object] = []
                size = 0
                while frames and size < PACKET_PAYLOAD_BUDGET - 64:
                    frame = frames.pop(0)
                    batch.append(frame)
                    size += 48  # conservative per-frame estimate
                self._send_packet(path, batch, in_flight=False)
            del self._pending_control[path_id]

    def _pump(self) -> None:
        """Drive the send pipeline: control frames, then data chunks."""
        if self.closed or not self.established:
            self._flush_control()
            return
        self._flush_control()
        if self.scheduler is None:
            return
        self._fc_rotations = 0
        guard = 0
        while True:
            guard += 1
            if guard > 1_000_000:
                raise RuntimeError("send pump did not converge")
            if not self.send_queue:
                # pkt_send_q drained: give the scheduler its re-injection
                # opportunity (traditional appending mode trigger).
                if hasattr(self.scheduler, "on_queue_empty"):
                    self.scheduler.on_queue_empty(self)
                if not self.send_queue:
                    break
            if self._fc_rotations > len(self.send_queue):
                break  # everything left is flow-control blocked
            chunk = self.send_queue[0]
            if not self._chunk_sendable(chunk):
                self.send_queue.pop(0)
                continue
            path = self.scheduler.select_path(self, chunk)
            if path is None:
                break  # all candidate paths are congestion-limited
            self._send_data_packet(path, chunk)
        if self._any_paced:
            if self.send_queue:
                # Data is waiting: if every candidate path is merely
                # pacing-blocked (not window-blocked), wake the pump at
                # the earliest token release.
                self._arm_pacing_timer()
            else:
                # Queue drained with window to spare: mark the paths
                # app-limited so the quiet period cannot be read as the
                # bottleneck bandwidth.
                for p in self.usable_paths():
                    loss = p.loss
                    if loss.rate_sampling:
                        loss.app_limited_until = \
                            loss.delivered + loss.bytes_in_flight
        self._arm_loss_timer()

    def _chunk_sendable(self, chunk: SendChunk) -> bool:
        """Drop chunks whose data has been fully acked meanwhile."""
        stream = self.send_streams.get(chunk.stream_id)
        if stream is None:
            return False
        if chunk.length == 0:
            return stream.fin_offset is not None and not stream.fin_acked
        if stream.acked_ranges.covers(chunk.offset, chunk.end):
            return False
        return True

    def usable_paths(self) -> List[Path]:
        """Paths the scheduler may place data on."""
        return [p for p in self.paths.values()
                if p.is_active and p.status is PathStatus.AVAILABLE]

    def _send_data_packet(self, path: Path, chunk: SendChunk) -> None:
        """Pack up to a packet's worth of ``chunk`` onto ``path``."""
        stream = self.send_streams[chunk.stream_id]
        budget = PACKET_PAYLOAD_BUDGET
        # Room is measured from the chunk's *current* offset: a queued
        # chunk may be larger than the remaining window and still make
        # partial progress.
        fc_room = min(self.fc_send.sendable(self._total_sent_offset),
                      self._fc_stream_send[chunk.stream_id].sendable(
                          chunk.offset))
        take = min(chunk.length, budget)
        if chunk.kind == "new" and take > 0:
            take = min(take, max(fc_room, 0))
            if take == 0:
                # Flow-control blocked; rotate the chunk to the back.
                # The pump stops once every queued chunk has rotated.
                self._fc_rotations = getattr(self, "_fc_rotations", 0) + 1
                self.send_queue.pop(0)
                self.send_queue.append(chunk)
                return
        data = stream.data_for(chunk.offset, take)
        fin = stream.is_fin_range(chunk.offset, take)
        frame = StreamFrame(stream_id=chunk.stream_id, offset=chunk.offset,
                            data=data, fin=fin)
        info = _SentFrameInfo(stream_id=chunk.stream_id, offset=chunk.offset,
                              length=take, fin=fin, kind=chunk.kind)
        self._send_packet(path, [frame], in_flight=True,
                          frames_info=(info,))
        if chunk.kind == "new":
            self.stats.stream_bytes_new += take
            self._total_sent_offset += take
        elif chunk.kind == "rtx":
            self.stats.stream_bytes_rtx += take
        else:
            self.stats.stream_bytes_reinjected += take
        # Advance or retire the chunk.
        chunk.offset += take
        chunk.length -= take
        if chunk.length <= 0:
            self.send_queue.pop(0)
            if hasattr(self.scheduler, "on_chunk_sent_out"):
                self.scheduler.on_chunk_sent_out(self, chunk, stream)

    def _send_packet(self, path: Path, frames: List[object],
                     in_flight: bool,
                     frames_info: tuple = ()) -> None:
        payload = encode_frames(frames)
        pn = path.next_packet_number()
        # Cached-prefix fast path; byte-identical to encode_header of a
        # ONE_RTT PacketHeader with this DCID and packet number.
        aad = encode_short_header(path.remote_cid.cid, pn)
        sealed = self.protection.seal(payload, aad, path.path_id, pn)
        wire = aad + sealed
        eliciting = any(is_ack_eliciting(f) for f in frames)
        pkt = SentPacket(packet_number=pn, sent_time=self.loop.now,
                         size=len(wire), ack_eliciting=eliciting,
                         in_flight=in_flight, frames_info=frames_info)
        path.loss.on_packet_sent(pkt)
        if in_flight:
            path.cc.on_packet_sent(len(wire), self.loop.now)
        path.packets_sent += 1
        path.bytes_sent += len(wire)
        self.stats.packets_sent += 1
        self._emit(self.net_path_of[path.path_id], wire)

    # ------------------------------------------------------------------
    # re-injection support (called by XLINK scheduler)
    # ------------------------------------------------------------------

    def unacked_ranges(self, stream_id: Optional[int] = None,
                       frame_priority: Optional[int] = None
                       ) -> List[Tuple[SendChunk, int, float]]:
        """In-flight, not-yet-acked stream ranges (the unacked_q).

        Returns (chunk-template, path_id, sent_time) triples, oldest-
        sent first.  Filters: by stream, and/or by frame priority of
        the range start.  Ranges already re-injected once are skipped.
        """
        out: List[Tuple[float, SendChunk, int]] = []
        for path in self.paths.values():
            if path.state is PathState.ABANDONED:
                continue
            for pkt in path.loss.sent.values():
                for info in pkt.frames_info:
                    if info.stream_id < 0 or info.length == 0:
                        continue
                    if stream_id is not None and info.stream_id != stream_id:
                        continue
                    stream = self.send_streams.get(info.stream_id)
                    if stream is None:
                        continue
                    if stream.acked_ranges.covers(info.offset,
                                                  info.offset + info.length):
                        continue
                    prio = stream.frame_priority_at(info.offset)
                    if frame_priority is not None and prio != frame_priority:
                        continue
                    key = (info.stream_id, info.offset, info.length)
                    last = self._reinjected_ranges.get(key)
                    if last is not None:
                        # Once-only within a delivery-time window; a
                        # duplicate that is itself overdue (both copies
                        # stuck in overlapping fades) may be retried.
                        ttl = max(self.max_delivery_time(), 0.3)
                        if self.loop.now - last < ttl:
                            continue
                    chunk = SendChunk(
                        stream_id=info.stream_id, offset=info.offset,
                        length=info.length, kind="reinject",
                        stream_priority=stream.priority,
                        frame_priority=prio, exclude_path=path.path_id)
                    out.append((pkt.sent_time, chunk, path.path_id))
        out.sort(key=lambda item: item[0])
        return [(chunk, pid, t) for t, chunk, pid in out]

    def enqueue_reinjection(self, chunk: SendChunk,
                            position: Optional[int] = None) -> None:
        """Insert a re-injection chunk into the send queue.

        ``position=None`` appends (traditional mode, Fig. 4a);
        otherwise the chunk is inserted at the given index (priority
        modes, Fig. 4b/4c).
        """
        key = (chunk.stream_id, chunk.offset, chunk.length)
        last = self._reinjected_ranges.get(key)
        if last is not None \
                and self.loop.now - last < max(self.max_delivery_time(),
                                               0.3):
            return
        if not self._storm_guard_admit(chunk.length):
            return
        self._reinjected_ranges[key] = self.loop.now
        if position is None:
            self.send_queue.append(chunk)
        else:
            self.send_queue.insert(position, chunk)
        for hook in self.reinjection_hooks:
            hook(chunk, position)

    def _storm_guard_admit(self, length: int) -> bool:
        """Cap duplicate bytes per RTT-sized window (storm guard).

        Chaos-grade reordering/duplication can con the re-injection
        logic into amplifying traffic; legitimate XLINK bursts are
        bounded by a stuck path's cwnd and stay far below the budget.
        """
        budget = self.config.reinject_budget_bytes_per_rtt
        if budget <= 0:
            return True
        window = max((p.rtt.smoothed for p in self.paths.values()
                      if p.state is not PathState.ABANDONED), default=0.1)
        window = max(window, 0.05)
        now = self.loop.now
        if now - self._storm_window_start >= window:
            self._storm_window_start = now
            self._storm_window_bytes = 0
        if self._storm_window_bytes + length > budget:
            self.stats.storm_guard_trims += 1
            self.stats.storm_guard_trimmed_bytes += length
            self._note_drop("storm_guard", length)
            return False
        self._storm_window_bytes += length
        return True

    def max_delivery_time(self) -> float:
        """Eq. 1: estimated max delivery time of in-flight packets.

        The paper computes RTT_p + delta_p per path; we additionally
        charge the path's queued backlog (in-flight bytes over the
        path's delivery rate, estimated as cwnd/RTT).  A straggler
        behind 100 KB of queue on a 1 Mbps path is going to take
        ~1 s regardless of its RTT, and the whole point of Eq. 1 is to
        estimate when the in-flight data will actually arrive.
        """
        now = self.loop.now
        times = []
        for p in self.paths.values():
            if p.state is PathState.ABANDONED or not p.loss.has_unacked:
                continue
            base = p.rtt.delivery_time
            srtt = max(p.rtt.smoothed, 1e-3)
            rate = max(p.cc.cwnd / srtt, 1200.0 / srtt)
            backlog = p.loss.bytes_in_flight / rate
            estimate = base + backlog
            # A silent path's frozen RTT says nothing: the time its
            # oldest packet has already waited is a *lower bound* on
            # the delivery time, and it keeps growing while the path
            # stays dark (the Fig. 1a outage signature).
            oldest = p.loss.oldest_unacked()
            if oldest is not None:
                waited = now - oldest.sent_time
                estimate = max(estimate, waited + srtt)
            times.append(estimate)
        return max(times) if times else 0.0

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------

    def _arm_loss_timer(self) -> None:
        if self.closed:
            return
        deadlines = []
        for path in self.paths.values():
            if path.state is PathState.ABANDONED:
                continue
            t = path.loss.next_timer()
            if t is not None:
                deadlines.append(t)
        if not deadlines:
            self._loss_deadline = None
            if self._timer_event is not None:
                self._timer_event.cancel()
                self._timer_event = None
            return
        when = max(min(deadlines), self.loop.now)
        self._loss_deadline = when
        event = self._timer_event
        if event is not None:
            if event.time <= when:
                # Lazy-deadline timer: keep the armed wakeup.  If the
                # live deadline moved later, the wakeup fires stale and
                # _on_loss_timer re-arms -- cheaper than paying a heap
                # cancel+push every time the deadline drifts.
                return
            event.cancel()
        self._timer_event = self.loop.schedule_at(
            when, self._on_loss_timer, label="loss-timer")

    def _arm_pacing_timer(self) -> None:
        """Wake the pump at the earliest pacing-token release.

        Same lazy-deadline discipline as the loss timer: an already
        armed earlier wakeup is kept (it re-arms itself if it fires
        stale) instead of paying a heap cancel+push per deadline move.
        """
        if self.closed:
            return
        now = self.loop.now
        when: Optional[float] = None
        for p in self.usable_paths():
            cc = p.cc
            if not cc.paced or not cc.can_send():
                continue
            t = cc.next_send_time(now)
            if t > now + 1e-9 and (when is None or t < when):
                when = t
        self._pacing_deadline = when
        if when is None:
            return
        event = self._pacing_event
        if event is not None:
            if event.time <= when:
                return
            event.cancel()
        self._pacing_event = self.loop.schedule_at(
            when, self._on_pacing_timer, label="pacing-timer")

    def _on_pacing_timer(self) -> None:
        self._pacing_event = None
        if self.closed:
            return
        deadline = self._pacing_deadline
        if deadline is not None and deadline > self.loop.now + 1e-9:
            # Stale wakeup: the deadline moved later after this event
            # was armed; re-arm without pumping.
            self._arm_pacing_timer()
            return
        self._pump()

    def _on_loss_timer(self) -> None:
        self._timer_event = None
        if self.closed:
            return
        now = self.loop.now
        deadline = self._loss_deadline
        if deadline is not None and deadline > now + 1e-9:
            # Stale wakeup: every deadline moved later after this event
            # was armed, so no path can be due (the per-path checks
            # below use the same 1e-9 slack).  Re-arm from live loss
            # state and return *without* running loss detection or the
            # pump -- exactly what would have happened had the old
            # wakeup been cancelled eagerly.
            self._arm_loss_timer()
            return
        for path in self.paths.values():
            if path.state is PathState.ABANDONED:
                continue
            if path.loss.loss_time is not None \
                    and path.loss.loss_time <= now + 1e-9:
                lost = path.loss.on_loss_timer(now)
                for pkt in lost:
                    if pkt.in_flight:
                        path.cc.on_packets_lost(pkt.size, pkt.sent_time, now)
                    self._requeue_lost_frames(pkt)
                continue
            deadline = path.loss.pto_deadline()
            if deadline is not None and deadline <= now + 1e-9:
                self._on_pto(path)
        self._pump()

    # -- idle timeout ----------------------------------------------------

    def _idle_deadline(self) -> float:
        """When the idle timer would fire, PTO-backoff aware.

        RFC 9000 Sec. 10.1: the effective timeout is at least three
        probe timeouts, so a peer mid-PTO-backoff is not declared idle
        while probes are still legitimately spaced out.  The grace is
        capped at 4x the configured timeout so the exponential PTO
        ceiling (2^10) cannot defer the close by minutes.
        """
        idle = self.config.idle_timeout_s
        pto = 0.0
        for path in self.paths.values():
            if path.state is PathState.ABANDONED:
                continue
            interval = path.rtt.pto(self.config.max_ack_delay) \
                * (2 ** path.loss.pto_count)
            pto = max(pto, interval)
        grace = min(3.0 * pto, 4.0 * idle)
        return self.last_activity_at + max(idle, grace)

    def _on_idle_check(self) -> None:
        self._idle_event = None
        if self.closed or self.config.idle_timeout_s is None:
            return
        deadline = self._idle_deadline()
        if self.loop.now + 1e-9 >= deadline:
            self._on_idle_timeout()
            return
        self._idle_event = self.loop.schedule_at(
            deadline, self._on_idle_check, label="idle-timeout")

    def _on_idle_timeout(self) -> None:
        self.stats.idle_timeouts += 1
        self._note_drop("idle_timeout", 0)
        # RFC 9000 Sec. 10.1: an idle close is silent -- the peer is
        # unreachable, so sending CONNECTION_CLOSE would be pointless.
        self.silent_close()

    def _on_pto(self, path: Path) -> None:
        """Probe timeout: retransmit the oldest unacked data on the path."""
        path.loss.on_pto()
        oldest = path.loss.oldest_unacked()
        if oldest is None:
            return
        probed = False
        for info in oldest.frames_info:
            if info.stream_id < 0:
                continue
            stream = self.send_streams.get(info.stream_id)
            if stream is None:
                continue
            missing = stream.acked_ranges.missing_within(
                info.offset, info.offset + info.length)
            for start, end in missing:
                take = min(end - start, PACKET_PAYLOAD_BUDGET)
                frame = StreamFrame(
                    stream_id=info.stream_id, offset=start,
                    data=stream.data_for(start, take),
                    fin=stream.is_fin_range(start, take))
                fi = _SentFrameInfo(stream_id=info.stream_id, offset=start,
                                    length=take, fin=frame.fin, kind="rtx")
                self._send_packet(path, [frame], in_flight=False,
                                  frames_info=(fi,))
                self.stats.stream_bytes_rtx += take
                probed = True
                break
            if probed:
                break
        if not probed:
            self._send_packet(path, [PingFrame()], in_flight=False)

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------

    def close(self, error_code: int = 0, reason: str = "") -> None:
        if self.closed:
            return
        frame = ConnectionCloseFrame(error_code=error_code, reason=reason)
        for path in self.paths.values():
            if path.is_usable:
                self._queue_control(path.path_id, frame)
                break
        self._flush_control()
        self.closed = True
        self._cancel_timers()

    def silent_close(self) -> None:
        """Tear down local state without notifying the peer.

        Used for idle timeouts and host-side eviction, where the peer
        is gone (or never showed up) and a CONNECTION_CLOSE would just
        be more dead traffic.
        """
        if self.closed:
            return
        self.closed = True
        self._cancel_timers()

    def _close_on_error(self, exc: QuicError) -> None:
        """Terminate with the transport error code carried by ``exc``."""
        self.stats.protocol_error_closes += 1
        self.close(error_code=int(exc.error_code), reason=str(exc))

    def _cancel_timers(self) -> None:
        for event in (self._timer_event, self._ack_timer_event,
                      self._handshake_retransmit_event, self._idle_event,
                      self._pacing_event):
            if event is not None:
                event.cancel()
        self._timer_event = None
        self._ack_timer_event = None
        self._handshake_retransmit_event = None
        self._idle_event = None
        self._pacing_event = None
