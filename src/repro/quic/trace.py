"""Structured connection tracing (qlog-style).

XQUIC ships an event log used to debug production incidents; this is
the emulator's equivalent.  A :class:`ConnectionTracer` attaches to a
connection and records typed events -- packets sent/received, acks,
losses, re-injections, path state changes, QoE feedback -- with
virtual timestamps.  Traces can be filtered, summarized, and exported
as JSON-lines for offline analysis; the dynamics experiments use them
to reconstruct time series without touching connection internals.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    category: str         # "packet" | "recovery" | "path" | "qoe" | ...
    name: str             # e.g. "packet_sent", "reinjection"
    data: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps({"time": round(self.time, 9),
                           "category": self.category,
                           "name": self.name, "data": self.data},
                          sort_keys=True)


class ConnectionTracer:
    """Collects :class:`TraceEvent` records from one connection.

    Attach with :meth:`install`; the tracer registers observer hooks
    (``add_transmit_hook`` / ``add_receive_hook`` / ...) on the
    connection -- nothing is monkey-patched.
    """

    def __init__(self, max_events: int = 1_000_000) -> None:
        self.events: List[TraceEvent] = []
        self.max_events = max_events
        self._conn = None
        self.dropped = 0

    # -- recording --------------------------------------------------------

    def record(self, time: float, category: str, name: str,
               **data: Any) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time=time, category=category,
                                      name=name, data=data))

    # -- installation -------------------------------------------------------

    def install(self, conn) -> None:
        """Observe a :class:`repro.quic.connection.Connection`.

        Registers on the connection's observer-hook API (transmit,
        receive, re-injection, QoE); nothing on the connection is
        wrapped or replaced, so any number of observers can coexist.
        """
        if self._conn is not None:
            raise RuntimeError("tracer already installed")
        self._conn = conn

        def on_transmit(net_path_id: int, payload: bytes) -> None:
            self.record(conn.loop.now, "packet", "datagram_sent",
                        net_path=net_path_id, size=len(payload))

        def on_receive(payload: bytes, net_path_id: int = -1) -> None:
            self.record(conn.loop.now, "packet", "datagram_received",
                        net_path=net_path_id, size=len(payload))

        def on_reinjection(chunk, position) -> None:
            self.record(conn.loop.now, "recovery", "reinjection",
                        stream_id=chunk.stream_id,
                        offset=chunk.offset, length=chunk.length,
                        exclude_path=chunk.exclude_path,
                        position=position)

        def on_qoe(qoe) -> None:
            self.record(conn.loop.now, "qoe", "feedback_received",
                        cached_bytes=qoe.cached_bytes,
                        cached_frames=qoe.cached_frames,
                        bps=qoe.bps, fps=qoe.fps)

        def on_drop(reason: str, size: int) -> None:
            self.record(conn.loop.now, "robustness", "drop",
                        reason=reason, size=size)

        conn.add_transmit_hook(on_transmit)
        conn.add_receive_hook(on_receive)
        conn.add_reinjection_hook(on_reinjection)
        conn.add_qoe_hook(on_qoe)
        conn.add_drop_hook(on_drop)

    # -- queries --------------------------------------------------------------

    def filter(self, category: Optional[str] = None,
               name: Optional[str] = None) -> List[TraceEvent]:
        out = self.events
        if category is not None:
            out = [e for e in out if e.category == category]
        if name is not None:
            out = [e for e in out if e.name == name]
        return list(out)

    def count(self, name: str) -> int:
        return sum(1 for e in self.events if e.name == name)

    def bytes_sent_by_path(self) -> Dict[int, int]:
        """Total datagram bytes per network path."""
        out: Dict[int, int] = {}
        for e in self.filter(name="datagram_sent"):
            path = e.data["net_path"]
            out[path] = out.get(path, 0) + e.data["size"]
        return out

    def reinjection_timeline(self) -> List[tuple]:
        """(time, cumulative re-injected bytes) pairs."""
        total = 0
        out = []
        for e in self.filter(name="reinjection"):
            total += e.data["length"]
            out.append((e.time, total))
        return out

    # -- export ---------------------------------------------------------------

    def to_jsonl(self) -> str:
        return "\n".join(e.to_json() for e in self.events)

    def save(self, path) -> None:
        with open(path, "w") as f:
            f.write(self.to_jsonl())
            if self.events:
                f.write("\n")

    @staticmethod
    def load_events(path) -> List[TraceEvent]:
        events = []
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                raw = json.loads(line)
                events.append(TraceEvent(time=raw["time"],
                                         category=raw["category"],
                                         name=raw["name"],
                                         data=raw["data"]))
        return events
