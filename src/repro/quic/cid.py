"""Connection IDs.

In the XLINK multipath design, a path is identified by the *sequence
number* of the connection ID in use on it (Sec. 6).  Each endpoint
issues CIDs via ``NEW_CONNECTION_ID``; opening path N requires an
unused CID from the peer.  CIDs also carry a server-ID byte so the
QUIC-LB load balancer (``repro.lb``) can route all paths of one
connection to the same backend.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

CID_LENGTH = 8

#: Byte offset in the CID where the server encodes its ID for QUIC-LB.
SERVER_ID_OFFSET = 0


@dataclass(frozen=True)
class ConnectionId:
    """A connection ID with its sequence number."""

    cid: bytes
    sequence_number: int

    def __post_init__(self) -> None:
        if len(self.cid) != CID_LENGTH:
            raise ValueError(f"CID must be {CID_LENGTH} bytes")

    @property
    def server_id(self) -> int:
        """Server ID byte encoded for the load balancer."""
        return self.cid[SERVER_ID_OFFSET]


def generate_cid(rng: random.Random, sequence_number: int,
                 server_id: Optional[int] = None) -> ConnectionId:
    """Generate a random CID, optionally embedding a server ID byte."""
    body = bytes(rng.getrandbits(8) for _ in range(CID_LENGTH))
    if server_id is not None:
        if not 0 <= server_id <= 255:
            raise ValueError("server_id must fit one byte")
        body = bytes([server_id]) + body[1:]
    return ConnectionId(cid=body, sequence_number=sequence_number)


class CidRegistry:
    """Tracks CIDs issued by an endpoint and CIDs received from the peer."""

    def __init__(self, rng: random.Random,
                 server_id: Optional[int] = None) -> None:
        self._rng = rng
        self._server_id = server_id
        self._next_seq = 0
        self.issued: Dict[int, ConnectionId] = {}
        self.peer_cids: Dict[int, ConnectionId] = {}
        self._peer_used: set[int] = set()

    def issue(self) -> ConnectionId:
        """Mint a new local CID with the next sequence number."""
        cid = generate_cid(self._rng, self._next_seq, self._server_id)
        self.issued[self._next_seq] = cid
        self._next_seq += 1
        return cid

    def register_peer(self, cid: ConnectionId) -> None:
        """Record a CID the peer issued to us."""
        existing = self.peer_cids.get(cid.sequence_number)
        if existing is not None and existing.cid != cid.cid:
            raise ValueError(
                f"peer reissued sequence {cid.sequence_number} with a "
                f"different CID"
            )
        self.peer_cids[cid.sequence_number] = cid

    def unused_peer_cid(self) -> Optional[ConnectionId]:
        """An unused peer CID available for opening a new path."""
        for seq in sorted(self.peer_cids):
            if seq not in self._peer_used:
                return self.peer_cids[seq]
        return None

    def mark_peer_used(self, sequence_number: int) -> None:
        if sequence_number not in self.peer_cids:
            raise KeyError(f"unknown peer CID sequence {sequence_number}")
        self._peer_used.add(sequence_number)

    def lookup_issued(self, cid_bytes: bytes) -> Optional[ConnectionId]:
        """Find one of *our* issued CIDs by raw bytes (receiver demux)."""
        for cid in self.issued.values():
            if cid.cid == cid_bytes:
                return cid
        return None
