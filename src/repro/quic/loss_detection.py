"""Per-path loss detection (RFC 9002, simplified).

Each path has its own packet-number space (Sec. 6 design point 1), so
loss detection runs independently per path: packet-threshold (3) and
time-threshold (9/8 of the RTT) reordering detection, plus a probe
timeout (PTO) with exponential backoff.

The connection registers callbacks: ``on_lost`` re-queues stream data;
``on_pto`` triggers a probe.

Hot-path layout: packets are sent with monotonically increasing packet
numbers at monotonically non-decreasing times, so ``self.sent`` (a
plain insertion-ordered dict) *is* the packet-number-sorted, sent-time-
sorted in-flight ring -- no ``sorted()`` calls, no per-ACK scans over
the full packet-number history.  Aggregate counters
(``bytes_in_flight``, the ack-eliciting census, the oldest in-flight
entry) are maintained incrementally on send/ack/loss instead of being
recomputed by O(in-flight) sweeps on every timer query.  Tests that
drive the detector out of order (or poke ``sent`` directly) are still
supported: an ``_ordered`` flag drops the fast paths back to the
original sort/scan behaviour the moment the invariant breaks.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.quic.frames import AckRange
from repro.quic.rtt import GRANULARITY, RttEstimator

PACKET_THRESHOLD = 3
TIME_THRESHOLD = 9.0 / 8.0
MAX_PTO_COUNT = 10

#: ACK ranges at most this wide are probed packet-number by packet
#: number; wider ranges walk the (typically sparser) in-flight dict.
_DENSE_RANGE_SPAN = 8


@dataclass(slots=True)
class SentPacket:
    """Bookkeeping for one sent packet in one path's PN space."""

    packet_number: int
    sent_time: float
    size: int
    ack_eliciting: bool
    in_flight: bool
    #: opaque payload descriptors the connection uses on ack/loss
    frames_info: tuple = ()
    #: delivery-rate bookkeeping (draft-cheng-iccrg-delivery-rate):
    #: the path's delivered-bytes total and its timestamp, copied from
    #: the detector at send time.  An ack of this packet then yields
    #: ``rate = (delivered_now - delivered) / (now - delivered_time)``.
    delivered: int = 0
    delivered_time: float = 0.0


class PathLossDetector:
    """Loss detection state for a single path's packet-number space."""

    def __init__(self, rtt: RttEstimator,
                 max_ack_delay: float = 0.025) -> None:
        self.rtt = rtt
        self.max_ack_delay = max_ack_delay
        self.sent: Dict[int, SentPacket] = {}
        self.largest_acked: int = -1
        self.pto_count: int = 0
        self.loss_time: Optional[float] = None
        #: stats
        self.packets_lost_total = 0
        self.packets_acked_total = 0
        self.spurious_losses = 0
        self._declared_lost: set[int] = set()
        #: incremental aggregates (exact while the send API is used;
        #: the properties fall back to scans when they disagree with
        #: the dict, covering tests that poke ``sent`` directly)
        self._bytes_in_flight = 0
        self._eliciting_in_flight = 0
        self._tracked_count = 0
        #: True while insertion order == ascending packet number and
        #: non-decreasing sent time (always, for a live connection)
        self._ordered = True
        self._last_pn = -1
        self._last_sent_time = float("-inf")
        #: the ``ranges[1:]`` of the last fully processed ACK; a later
        #: ACK repeating the same tail can skip re-walking it entirely
        self._last_ack_tail: Tuple[AckRange, ...] = ()
        #: delivery-rate bookkeeping for paced (model-based) congestion
        #: controllers.  Off by default: the connection flips
        #: ``rate_sampling`` on when the path's controller wants
        #: samples, so loss-based paths pay one boolean test per event.
        self.rate_sampling = False
        #: total in-flight bytes delivered (cumulatively acked)
        self.delivered = 0
        #: virtual time of the most recent delivery (or send-epoch)
        self.delivered_time = 0.0
        #: ``delivered`` marker below which samples are app-limited
        self.app_limited_until = 0

    # -- send/ack/loss machinery ------------------------------------------

    def on_packet_sent(self, pkt: SentPacket) -> None:
        pn = pkt.packet_number
        if pn in self.sent:
            raise ValueError(f"duplicate packet number {pn}")
        if pn < self._last_pn or pkt.sent_time < self._last_sent_time:
            self._ordered = False
        else:
            self._last_pn = pn
            self._last_sent_time = pkt.sent_time
        if self.rate_sampling:
            if self._bytes_in_flight == 0:
                # Idle restart: the delivery interval opens now, not at
                # the last ack before the idle gap.
                self.delivered_time = pkt.sent_time
            pkt.delivered = self.delivered
            pkt.delivered_time = self.delivered_time
        self.sent[pn] = pkt
        self._tracked_count += 1
        if pkt.ack_eliciting:
            self._eliciting_in_flight += 1
        if pkt.in_flight:
            self._bytes_in_flight += pkt.size

    def _forget(self, pkt: SentPacket) -> None:
        """Update the aggregates for a packet leaving ``sent``."""
        if self._tracked_count > 0:
            self._tracked_count -= 1
        if pkt.ack_eliciting and self._eliciting_in_flight > 0:
            self._eliciting_in_flight -= 1
        if pkt.in_flight:
            self._bytes_in_flight -= pkt.size
            if self._bytes_in_flight < 0:
                self._bytes_in_flight = 0

    def _pns_ascending(self) -> List[int]:
        if self._ordered:
            return list(self.sent)
        return sorted(self.sent)

    def on_ack_received(
        self, ranges: Tuple[AckRange, ...], ack_delay: float, now: float,
    ) -> Tuple[List[SentPacket], List[SentPacket], Optional[float]]:
        """Process an ACK_MP for this path.

        Returns (newly_acked, newly_lost, rtt_sample).
        """
        newly_acked: List[SentPacket] = []
        tail = ranges[1:]
        if tail and tail == self._last_ack_tail:
            # Every tail range was fully processed by a previous ACK on
            # this path.  Packet numbers are never reused, so a range
            # once drained from ``sent`` can never match it again, and
            # a pn covered by a processed range can no longer enter
            # ``_declared_lost`` (it would have had to still be in
            # ``sent``).  Re-walking the tail is a guaranteed no-op --
            # only the newest range can acknowledge anything new.  For
            # the same reason every tail end <= self.largest_acked, so
            # the observable largest is the newest range's end.
            largest_in_ack = ranges[0].end
            process = ranges[:1]
        else:
            largest_in_ack = max(r.end for r in ranges)
            process = ranges
        sent = self.sent
        declared = self._declared_lost
        #: snapshot of tracked pns, built lazily on the first wide
        #: range and shared across ranges (they are disjoint, so a pn
        #: popped by one range can never be probed again by another)
        snapshot: Optional[List[int]] = None
        for rng in process:
            start, end = rng.start, rng.end
            if end - start < _DENSE_RANGE_SPAN:
                # Narrow range: probe every covered packet number.
                for pn in range(start, end + 1):
                    pkt = sent.pop(pn, None)
                    if pkt is not None:
                        newly_acked.append(pkt)
                        self.packets_acked_total += 1
                        self._forget(pkt)
                    elif pn in declared:
                        declared.discard(pn)
                        self.spurious_losses += 1
                continue
            # Wide (cumulative) range: intersect with what is actually
            # tracked instead of iterating the full packet-number span.
            if snapshot is None:
                snapshot = self._pns_ascending()
            lo = bisect_left(snapshot, start)
            hi = bisect_right(snapshot, end)
            for pn in snapshot[lo:hi]:
                pkt = sent.pop(pn, None)
                if pkt is None:
                    continue
                newly_acked.append(pkt)
                self.packets_acked_total += 1
                self._forget(pkt)
            if declared:
                if len(declared) <= end - start + 1:
                    spurious = sorted(pn for pn in declared
                                      if start <= pn <= end)
                else:
                    spurious = [pn for pn in range(start, end + 1)
                                if pn in declared]
                for pn in spurious:
                    declared.discard(pn)
                    self.spurious_losses += 1
        self._last_ack_tail = tail
        rtt_sample: Optional[float] = None
        if largest_in_ack > self.largest_acked:
            self.largest_acked = largest_in_ack
            # RTT sample from the largest newly acked, if it was just acked.
            largest_pkt = next((p for p in newly_acked
                                if p.packet_number == largest_in_ack), None)
            if largest_pkt is not None and largest_pkt.ack_eliciting:
                rtt_sample = now - largest_pkt.sent_time
                if rtt_sample > 0:
                    self.rtt.update(rtt_sample, ack_delay)
        if newly_acked:
            self.pto_count = 0
            if self.rate_sampling:
                delivered = sum(p.size for p in newly_acked if p.in_flight)
                if delivered:
                    self.delivered += delivered
                    self.delivered_time = now
        newly_lost = self._detect_losses(now)
        return newly_acked, newly_lost, rtt_sample

    def _detect_losses(self, now: float) -> List[SentPacket]:
        """Packet- and time-threshold loss detection."""
        self.loss_time = None
        if self.largest_acked < 0:
            return []
        loss_delay = TIME_THRESHOLD * max(self.rtt.latest or self.rtt.smoothed,
                                          self.rtt.smoothed, GRANULARITY)
        lost: List[SentPacket] = []
        largest_acked = self.largest_acked
        ordered = self._ordered
        sent = self.sent
        for pn in (sent if ordered else sorted(sent)):
            if pn > largest_acked:
                if ordered:
                    break  # ascending: nothing further can be <= largest
                continue
            pkt = sent[pn]
            # The 1e-9 slack matches the timer-fire comparison in the
            # connection; without it the timer can re-arm at the same
            # instant forever when it fires exactly at the threshold.
            too_old = pkt.sent_time - 1e-9 <= now - loss_delay
            too_far = largest_acked - pn >= PACKET_THRESHOLD
            if too_old or too_far:
                lost.append(pkt)
            else:
                candidate = pkt.sent_time + loss_delay
                if self.loss_time is None or candidate < self.loss_time:
                    self.loss_time = candidate
        for pkt in lost:
            del sent[pkt.packet_number]
            self._declared_lost.add(pkt.packet_number)
            self.packets_lost_total += 1
            self._forget(pkt)
        return lost

    def on_loss_timer(self, now: float) -> List[SentPacket]:
        """Fire the time-threshold timer."""
        return self._detect_losses(now)

    def discard_all(self) -> List[SentPacket]:
        """Drop all tracked packets (path abandoned / PN space closed).

        Clears the loss timer too, so an abandoned path can never fire
        a stale time-threshold deadline.  Returns the discarded packets
        in packet-number order for the caller to release to congestion
        control and requeue.
        """
        pkts = [self.sent[pn] for pn in self._pns_ascending()]
        self.sent.clear()
        self.loss_time = None
        self._bytes_in_flight = 0
        self._eliciting_in_flight = 0
        self._tracked_count = 0
        self._last_ack_tail = ()
        return pkts

    # -- timers -------------------------------------------------------------

    def pto_deadline(self) -> Optional[float]:
        """Absolute time at which PTO fires, based on oldest in-flight."""
        base: Optional[float] = None
        if self._ordered and len(self.sent) == self._tracked_count:
            # Sent times are non-decreasing in insertion order, so the
            # first ack-eliciting entry carries the minimum sent time.
            if self._eliciting_in_flight > 0:
                for p in self.sent.values():
                    if p.ack_eliciting:
                        base = p.sent_time
                        break
        else:
            eliciting = [p.sent_time for p in self.sent.values()
                         if p.ack_eliciting]
            if eliciting:
                base = min(eliciting)
        if base is None:
            return None
        pto = self.rtt.pto(self.max_ack_delay) * (2 ** self.pto_count)
        return base + pto

    def next_timer(self) -> Optional[float]:
        """Earlier of loss timer and PTO timer."""
        loss_time = self.loss_time
        pto = self.pto_deadline()
        if loss_time is None:
            return pto
        if pto is None:
            return loss_time
        return loss_time if loss_time < pto else pto

    def on_pto(self) -> None:
        self.pto_count = min(self.pto_count + 1, MAX_PTO_COUNT)

    def oldest_unacked(self) -> Optional[SentPacket]:
        if not self.sent:
            return None
        if self._ordered:
            return next(iter(self.sent.values()))
        return self.sent[min(self.sent)]

    @property
    def has_unacked(self) -> bool:
        """True if ack-eliciting packets are outstanding (Eq. 1's filter)."""
        if self._eliciting_in_flight > 0:
            return True
        sent = self.sent
        if not sent:
            return False
        if len(sent) == self._tracked_count:
            # Counters are exact: everything in flight is non-eliciting.
            return False
        # A test bypassed on_packet_sent (dict poked directly) -- re-scan.
        return any(p.ack_eliciting for p in sent.values())

    @property
    def bytes_in_flight(self) -> int:
        if len(self.sent) == self._tracked_count:
            return self._bytes_in_flight
        return sum(p.size for p in self.sent.values() if p.in_flight)
