"""Per-path loss detection (RFC 9002, simplified).

Each path has its own packet-number space (Sec. 6 design point 1), so
loss detection runs independently per path: packet-threshold (3) and
time-threshold (9/8 of the RTT) reordering detection, plus a probe
timeout (PTO) with exponential backoff.

The connection registers callbacks: ``on_lost`` re-queues stream data;
``on_pto`` triggers a probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.quic.frames import AckRange
from repro.quic.rtt import GRANULARITY, RttEstimator

PACKET_THRESHOLD = 3
TIME_THRESHOLD = 9.0 / 8.0
MAX_PTO_COUNT = 10


@dataclass(slots=True)
class SentPacket:
    """Bookkeeping for one sent packet in one path's PN space."""

    packet_number: int
    sent_time: float
    size: int
    ack_eliciting: bool
    in_flight: bool
    #: opaque payload descriptors the connection uses on ack/loss
    frames_info: tuple = ()


class PathLossDetector:
    """Loss detection state for a single path's packet-number space."""

    def __init__(self, rtt: RttEstimator,
                 max_ack_delay: float = 0.025) -> None:
        self.rtt = rtt
        self.max_ack_delay = max_ack_delay
        self.sent: Dict[int, SentPacket] = {}
        self.largest_acked: int = -1
        self.pto_count: int = 0
        self.loss_time: Optional[float] = None
        #: stats
        self.packets_lost_total = 0
        self.packets_acked_total = 0
        self.spurious_losses = 0
        self._declared_lost: set[int] = set()

    # -- send/ack/loss machinery ------------------------------------------

    def on_packet_sent(self, pkt: SentPacket) -> None:
        if pkt.packet_number in self.sent:
            raise ValueError(f"duplicate packet number {pkt.packet_number}")
        self.sent[pkt.packet_number] = pkt

    def on_ack_received(
        self, ranges: Tuple[AckRange, ...], ack_delay: float, now: float,
    ) -> Tuple[List[SentPacket], List[SentPacket], Optional[float]]:
        """Process an ACK_MP for this path.

        Returns (newly_acked, newly_lost, rtt_sample).
        """
        newly_acked: List[SentPacket] = []
        largest_in_ack = max(r.end for r in ranges)
        for rng in ranges:
            for pn in range(rng.start, rng.end + 1):
                pkt = self.sent.pop(pn, None)
                if pkt is not None:
                    newly_acked.append(pkt)
                    self.packets_acked_total += 1
                elif pn in self._declared_lost:
                    self._declared_lost.discard(pn)
                    self.spurious_losses += 1
        rtt_sample: Optional[float] = None
        if largest_in_ack > self.largest_acked:
            self.largest_acked = largest_in_ack
            # RTT sample from the largest newly acked, if it was just acked.
            largest_pkt = next((p for p in newly_acked
                                if p.packet_number == largest_in_ack), None)
            if largest_pkt is not None and largest_pkt.ack_eliciting:
                rtt_sample = now - largest_pkt.sent_time
                if rtt_sample > 0:
                    self.rtt.update(rtt_sample, ack_delay)
        if newly_acked:
            self.pto_count = 0
        newly_lost = self._detect_losses(now)
        return newly_acked, newly_lost, rtt_sample

    def _detect_losses(self, now: float) -> List[SentPacket]:
        """Packet- and time-threshold loss detection."""
        self.loss_time = None
        if self.largest_acked < 0:
            return []
        loss_delay = TIME_THRESHOLD * max(self.rtt.latest or self.rtt.smoothed,
                                          self.rtt.smoothed, GRANULARITY)
        lost: List[SentPacket] = []
        for pn in sorted(self.sent):
            if pn > self.largest_acked:
                continue
            pkt = self.sent[pn]
            # The 1e-9 slack matches the timer-fire comparison in the
            # connection; without it the timer can re-arm at the same
            # instant forever when it fires exactly at the threshold.
            too_old = pkt.sent_time - 1e-9 <= now - loss_delay
            too_far = self.largest_acked - pn >= PACKET_THRESHOLD
            if too_old or too_far:
                lost.append(pkt)
            else:
                candidate = pkt.sent_time + loss_delay
                if self.loss_time is None or candidate < self.loss_time:
                    self.loss_time = candidate
        for pkt in lost:
            del self.sent[pkt.packet_number]
            self._declared_lost.add(pkt.packet_number)
            self.packets_lost_total += 1
        return lost

    def on_loss_timer(self, now: float) -> List[SentPacket]:
        """Fire the time-threshold timer."""
        return self._detect_losses(now)

    def discard_all(self) -> List[SentPacket]:
        """Drop all tracked packets (path abandoned / PN space closed).

        Clears the loss timer too, so an abandoned path can never fire
        a stale time-threshold deadline.  Returns the discarded packets
        in packet-number order for the caller to release to congestion
        control and requeue.
        """
        pkts = [self.sent[pn] for pn in sorted(self.sent)]
        self.sent.clear()
        self.loss_time = None
        return pkts

    # -- timers -------------------------------------------------------------

    def pto_deadline(self) -> Optional[float]:
        """Absolute time at which PTO fires, based on oldest in-flight."""
        eliciting = [p for p in self.sent.values() if p.ack_eliciting]
        if not eliciting:
            return None
        base = min(p.sent_time for p in eliciting)
        pto = self.rtt.pto(self.max_ack_delay) * (2 ** self.pto_count)
        return base + pto

    def next_timer(self) -> Optional[float]:
        """Earlier of loss timer and PTO timer."""
        candidates = [t for t in (self.loss_time, self.pto_deadline())
                      if t is not None]
        return min(candidates) if candidates else None

    def on_pto(self) -> None:
        self.pto_count = min(self.pto_count + 1, MAX_PTO_COUNT)

    def oldest_unacked(self) -> Optional[SentPacket]:
        if not self.sent:
            return None
        return self.sent[min(self.sent)]

    @property
    def has_unacked(self) -> bool:
        """True if ack-eliciting packets are outstanding (Eq. 1's filter)."""
        return any(p.ack_eliciting for p in self.sent.values())

    @property
    def bytes_in_flight(self) -> int:
        return sum(p.size for p in self.sent.values() if p.in_flight)
