"""Transport parameters exchanged during the handshake.

The multipath handshake (Sec. 6, Fig. 9) is plain QUIC plus one extra
parameter: the client offers ``enable_multipath``; if the server echoes
it, both ends know multipath is on, otherwise they fall back to
single-path QUIC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.quic.varint import Buffer


@dataclass(frozen=True)
class TransportParameters:
    """Handshake-advertised limits and capabilities."""

    enable_multipath: bool = False
    initial_max_data: int = 16 * 1024 * 1024
    initial_max_stream_data: int = 4 * 1024 * 1024
    initial_max_streams: int = 128
    max_ack_delay_us: int = 25_000
    active_cid_limit: int = 8

    def encode(self) -> bytes:
        buf = Buffer()
        buf.push_varint(1 if self.enable_multipath else 0)
        buf.push_varint(self.initial_max_data)
        buf.push_varint(self.initial_max_stream_data)
        buf.push_varint(self.initial_max_streams)
        buf.push_varint(self.max_ack_delay_us)
        buf.push_varint(self.active_cid_limit)
        return buf.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "TransportParameters":
        buf = Buffer(data)
        return cls(
            enable_multipath=bool(buf.pull_varint()),
            initial_max_data=buf.pull_varint(),
            initial_max_stream_data=buf.pull_varint(),
            initial_max_streams=buf.pull_varint(),
            max_ack_delay_us=buf.pull_varint(),
            active_cid_limit=buf.pull_varint(),
        )

    @staticmethod
    def negotiated_multipath(client: "TransportParameters",
                             server: "TransportParameters") -> bool:
        """Multipath is on only when both sides advertised it."""
        return client.enable_multipath and server.enable_multipath
