"""Per-path transport state.

A path bundles everything that is per-path in the multipath design:
the CID pair in use, its own packet-number space, RTT estimator, loss
detector, congestion controller, validation state, and PATH_STATUS.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.quic.cid import ConnectionId
from repro.quic.frames import AckRange, PathStatus
from repro.quic.loss_detection import PathLossDetector
from repro.quic.rtt import RttEstimator
from repro.traces.radio_profiles import RadioType


class PathState(enum.Enum):
    """Lifecycle of a path."""

    PENDING = "pending"        # created, not yet validated
    VALIDATING = "validating"  # PATH_CHALLENGE outstanding
    ACTIVE = "active"
    STANDBY = "standby"
    ABANDONED = "abandoned"


class Path:
    """Transport state for one network path of a connection."""

    def __init__(self, path_id: int, local_cid: ConnectionId,
                 remote_cid: ConnectionId, cc,
                 radio: Optional[RadioType] = None,
                 max_ack_delay: float = 0.025) -> None:
        #: the path identifier = sequence number of the DCID in use
        self.path_id = path_id
        self.local_cid = local_cid
        self.remote_cid = remote_cid
        self.radio = radio
        self.rtt = RttEstimator()
        self.loss = PathLossDetector(self.rtt, max_ack_delay=max_ack_delay)
        self.cc = cc
        self.state = PathState.PENDING
        self.status = PathStatus.AVAILABLE
        self._next_pn = 0
        self.largest_received_pn = -1
        #: receive-side: pending ack ranges + whether an ack is owed
        self.ack_pending: list = []
        self.ack_needed = False
        #: frame-tuple cache for :meth:`ack_frame_ranges`; ``_ack_rev``
        #: is bumped whenever ``ack_pending`` is rebuilt structurally
        self._ack_rev = 0
        self._ack_frame_cache: Optional[tuple] = None
        self.largest_recv_time = 0.0
        #: when anything was last received on this path (freshness)
        self.last_recv_time = 0.0
        #: per-path traffic counters
        self.bytes_sent = 0
        self.bytes_received = 0
        self.packets_sent = 0
        self.packets_received = 0
        #: challenge data outstanding, if validating
        self.challenge_data: Optional[bytes] = None

    def next_packet_number(self) -> int:
        pn = self._next_pn
        self._next_pn += 1
        return pn

    @property
    def is_usable(self) -> bool:
        """Can the scheduler place packets here?"""
        return self.state in (PathState.ACTIVE, PathState.VALIDATING) \
            and self.status != PathStatus.ABANDON

    @property
    def is_active(self) -> bool:
        return self.state is PathState.ACTIVE

    def is_suspect(self, now: float) -> bool:
        """Heuristic path-quality check (Sec. 6 'Path close').

        A path is suspect when it has in-flight data but nothing has
        been received on it for several RTTs -- the signature of the
        sudden outages in Fig. 1a, during which the (frozen) smoothed
        RTT can no longer be trusted.
        """
        if not self.loss.has_unacked and self.packets_received == 0:
            return False
        threshold = max(4 * self.rtt.smoothed, 0.25)
        return now - self.last_recv_time > threshold

    def record_received(self, pn: int, now: float) -> bool:
        """Track a received packet number; returns False on duplicate."""
        self.last_recv_time = now
        ranges = self.ack_pending
        if ranges:
            # In-order fast path: ``ranges`` is sorted and disjoint, so
            # a pn one past the newest range extends it in place -- the
            # overwhelmingly common case on a healthy path -- and the
            # duplicate check only needs the covering candidate.
            last = ranges[-1]
            if pn == last[1] + 1:
                ranges[-1] = (last[0], pn)
                self.largest_received_pn = pn
                self.largest_recv_time = now
                self.ack_needed = True
                return True
            if last[0] <= pn <= last[1]:
                return False
            if pn > last[1] + 1:
                ranges.append((pn, pn))
                self.largest_received_pn = pn
                self.largest_recv_time = now
                self.ack_needed = True
                return True
        for rng in ranges:
            if rng[0] <= pn <= rng[1]:
                return False
        self._merge_ack_range(pn)
        if pn > self.largest_received_pn:
            self.largest_received_pn = pn
            self.largest_recv_time = now
        self.ack_needed = True
        return True

    def ack_frame_ranges(self) -> tuple:
        """``ack_pending`` as a tuple of :class:`AckRange` for ACK frames.

        Between ACKs only the newest range normally changes (it extends
        in place as in-order packets arrive), so the tuple prefix --
        potentially hundreds of ranges on a path with permanent loss
        gaps -- is cached and only the last element is rebuilt.  The
        same ``AckRange`` objects are reused across calls, which also
        lets the frame encoder's tail cache verify by identity-fast
        tuple comparison.
        """
        ranges = self.ack_pending
        n = len(ranges)
        last_s, last_e = ranges[-1]
        cached = self._ack_frame_cache
        if cached is not None and cached[0] == self._ack_rev \
                and cached[1] == n and cached[2][-1].start == last_s:
            tup = cached[2]
            if tup[-1].end != last_e:
                tup = tup[:-1] + (AckRange(start=last_s, end=last_e),)
                self._ack_frame_cache = (self._ack_rev, n, tup)
            return tup
        tup = tuple(AckRange(start=s, end=e) for s, e in ranges)
        self._ack_frame_cache = (self._ack_rev, n, tup)
        return tup

    def _merge_ack_range(self, pn: int) -> None:
        self._ack_rev += 1
        new_ranges = []
        start, end = pn, pn
        for s, e in self.ack_pending:
            if e == start - 1:
                start = s
            elif s == end + 1:
                end = e
            elif e < start - 1 or s > end + 1:
                new_ranges.append((s, e))
            else:  # overlap
                start = min(start, s)
                end = max(end, e)
        new_ranges.append((start, end))
        new_ranges.sort()
        self.ack_pending = new_ranges

    def abandon(self) -> None:
        self.state = PathState.ABANDONED
        self.status = PathStatus.ABANDON

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Path(id={self.path_id}, state={self.state.value}, "
                f"srtt={self.rtt.smoothed * 1000:.1f}ms, "
                f"cwnd={self.cc.cwnd:.0f})")
