"""BBR congestion control and a coupled multipath variant.

BBR (Cardwell et al.) models the path instead of reacting to loss: a
windowed-max filter over delivery-rate samples estimates the
bottleneck bandwidth (BtlBw), a windowed-min filter estimates the
round-trip propagation delay (RTprop), and the controller paces at
``pacing_gain * BtlBw`` while capping inflight at
``cwnd_gain * BtlBw * RTprop`` (the BDP).  The classic four-state
machine:

- STARTUP: pacing gain 2/ln2 doubles the sending rate every RTT until
  measured bandwidth plateaus (<25% growth for 3 rounds).
- DRAIN: inverse gain drains the queue startup built, until inflight
  falls to one BDP.
- PROBE_BW: an 8-phase gain cycle (1.25, 0.75, 1 x6) probes for newly
  available bandwidth, then yields, then cruises.
- PROBE_RTT: every 10 s without a new RTprop minimum, drop cwnd to
  4 packets for max(200 ms, one round) to drain queues and re-measure.

Determinism: the reference BBR randomizes its PROBE_BW entry phase;
this implementation always enters at the first cruise phase (index 2)
so fixed-seed experiments reproduce bit-for-bit.

The multipath variant (:class:`MpBbrCc` + :class:`MpBbrCoordinator`,
after "An Optimized BBR for Multipath Real Time Video Streaming")
mirrors the :class:`~repro.quic.cc.coupled.LiaCoordinator` shape:
subflows share a coordinator that (a) serializes bandwidth probing --
at most one subflow runs the 1.25 gain phase at a time, so the
aggregate overshoot at a shared bottleneck stays bounded by one
subflow's probe -- and (b) floors every subflow's cwnd at 4 packets so
a slow path keeps probing instead of starving.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.quic.cc.base import (CongestionController, INITIAL_WINDOW,
                                MAX_DATAGRAM_SIZE, MINIMUM_WINDOW, RateSample)

#: STARTUP/DRAIN pacing gains: 2/ln2 doubles delivered data each RTT.
STARTUP_GAIN = 2.0 / math.log(2.0)
DRAIN_GAIN = 1.0 / STARTUP_GAIN

#: PROBE_BW pacing-gain cycle; one phase per RTprop.
PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)

#: Deterministic PROBE_BW entry phase (reference BBR randomizes this).
PROBE_BW_ENTRY_PHASE = 2

#: cwnd = CWND_GAIN * BDP outside PROBE_RTT (2 absorbs ack aggregation).
CWND_GAIN = 2.0

#: BtlBw filter window, in packet-timed rounds.
BW_FILTER_ROUNDS = 10

#: RTprop filter window and PROBE_RTT dwell time (seconds).
MIN_RTT_WINDOW_S = 10.0
PROBE_RTT_DURATION_S = 0.2

#: cwnd while in PROBE_RTT, and the multipath non-starvation floor.
PROBE_RTT_CWND = 4 * MAX_DATAGRAM_SIZE

#: STARTUP exits after this many rounds without 25% bandwidth growth.
FULL_BW_ROUNDS = 3
FULL_BW_GROWTH = 1.25

#: Conservative RTprop guess before the first RTT sample (RFC 9002
#: kInitialRtt); only seeds the initial pacing rate.
INITIAL_RTT_GUESS_S = 0.333


class _WindowedMaxFilter:
    """Max over the last ``window`` rounds of (value, round) samples."""

    __slots__ = ("window", "_samples")

    def __init__(self, window: int) -> None:
        self.window = window
        self._samples: List[tuple] = []  # (round, value), round ascending

    def update(self, value: float, round_count: int) -> None:
        cutoff = round_count - self.window
        samples = [s for s in self._samples if s[0] > cutoff]
        # Keep only the decreasing-maxima staircase: older samples
        # dominated by a newer, larger one can never be the max again.
        while samples and samples[-1][1] <= value:
            samples.pop()
        samples.append((round_count, value))
        self._samples = samples

    def get(self, round_count: Optional[int] = None) -> float:
        samples = self._samples
        if round_count is not None:
            cutoff = round_count - self.window
            samples = [s for s in samples if s[0] > cutoff]
        return samples[0][1] if samples else 0.0

    def reset(self) -> None:
        self._samples = []


class BbrCc(CongestionController):
    """BBR v1, driven by the connection's delivery-rate samples."""

    paced = True

    STARTUP = "startup"
    DRAIN = "drain"
    PROBE_BW = "probe_bw"
    PROBE_RTT = "probe_rtt"

    def __init__(self) -> None:
        super().__init__()
        self._init_model()

    def _init_model(self) -> None:
        self.state = self.STARTUP
        self._bw_filter = _WindowedMaxFilter(BW_FILTER_ROUNDS)
        self.min_rtt: float = float("inf")
        self._min_rtt_stamp: float = 0.0
        self._round_count = 0
        self._next_round_delivered = 0
        self._round_start = False
        self._pacing_gain = STARTUP_GAIN
        self._cwnd_gain = STARTUP_GAIN
        self._full_bw = 0.0
        self._full_bw_count = 0
        self.filled_pipe = False
        self._cycle_index = PROBE_BW_ENTRY_PHASE
        self._cycle_stamp = 0.0
        self._probe_rtt_done_at: Optional[float] = None
        self._prior_cwnd = 0.0
        self._next_send_at = 0.0

    # -- model queries -----------------------------------------------------

    @property
    def bandwidth(self) -> float:
        """Current BtlBw estimate in bytes/sec (0 before any sample)."""
        return self._bw_filter.get()

    def bdp(self, gain: float = 1.0) -> float:
        """Bandwidth-delay product estimate, scaled by ``gain``."""
        if self.min_rtt == float("inf") or self.bandwidth <= 0:
            return float(INITIAL_WINDOW)
        return gain * self.bandwidth * self.min_rtt

    @property
    def pacing_rate(self) -> float:
        bw = self.bandwidth
        if bw <= 0:
            # No sample yet: pace the initial window over a conservative
            # RTT guess so startup is not one unbounded burst.
            return self._pacing_gain * INITIAL_WINDOW / INITIAL_RTT_GUESS_S
        return self._pacing_gain * bw

    def next_send_time(self, now: float) -> float:
        return self._next_send_at

    # -- events ------------------------------------------------------------

    def on_packet_sent(self, size: int, now: float) -> None:
        super().on_packet_sent(size, now)
        rate = self.pacing_rate
        if rate > 0 and rate != float("inf"):
            # Token release: ``max(..., now)`` forgives idle periods
            # instead of granting a burst allowance for them.
            self._next_send_at = max(self._next_send_at, now) + size / rate

    def on_rate_sample(self, sample: RateSample) -> None:
        """Advance the model: filters, round count, state machine."""
        self._update_round(sample)
        if sample.delivery_rate > 0 and (
                not sample.app_limited
                or sample.delivery_rate > self.bandwidth):
            self._bw_filter.update(sample.delivery_rate, self._round_count)
        # Compute expiry *before* the filter update: the expiry branch
        # below refreshes the stamp, and PROBE_RTT entry must key off
        # the same expired-filter observation (as the reference does).
        rtt_expired = (sample.now - self._min_rtt_stamp
                       > MIN_RTT_WINDOW_S)
        if 0 < sample.rtt and (sample.rtt <= self.min_rtt or rtt_expired):
            self.min_rtt = sample.rtt
            self._min_rtt_stamp = sample.now
        self._check_full_pipe(sample)
        self._advance_state(sample.now, rtt_expired)

    def _update_round(self, sample: RateSample) -> None:
        if sample.pkt_delivered >= self._next_round_delivered:
            self._next_round_delivered = sample.delivered
            self._round_count += 1
            self._round_start = True
        else:
            self._round_start = False

    def _check_full_pipe(self, sample: RateSample) -> None:
        if self.filled_pipe or not self._round_start or sample.app_limited:
            return
        bw = self.bandwidth
        if bw >= self._full_bw * FULL_BW_GROWTH:
            self._full_bw = bw
            self._full_bw_count = 0
            return
        self._full_bw_count += 1
        if self._full_bw_count >= FULL_BW_ROUNDS:
            self.filled_pipe = True

    # -- state machine -----------------------------------------------------

    def _advance_state(self, now: float, rtt_expired: bool = False) -> None:
        if self.state == self.STARTUP and self.filled_pipe:
            self.state = self.DRAIN
            self._pacing_gain = DRAIN_GAIN
            self._cwnd_gain = STARTUP_GAIN
        if self.state == self.DRAIN \
                and self.bytes_in_flight <= self.bdp(1.0):
            self._enter_probe_bw(now)
        if self.state == self.PROBE_BW:
            self._advance_cycle(now)
        self._check_probe_rtt(now, rtt_expired)
        self._set_cwnd()

    def _enter_probe_bw(self, now: float) -> None:
        self.state = self.PROBE_BW
        self._cwnd_gain = CWND_GAIN
        self._cycle_index = PROBE_BW_ENTRY_PHASE
        self._cycle_stamp = now
        self._pacing_gain = PROBE_BW_GAINS[self._cycle_index]

    def _advance_cycle(self, now: float) -> None:
        rtprop = self.min_rtt if self.min_rtt != float("inf") else 0.05
        elapsed = now - self._cycle_stamp
        gain = PROBE_BW_GAINS[self._cycle_index]
        if gain == 0.75:
            # Leave the yield phase as soon as the queue it targets is
            # drained -- lingering would give up throughput for nothing.
            if elapsed > rtprop or self.bytes_in_flight <= self.bdp(1.0):
                self._next_cycle_phase(now)
            return
        if elapsed > rtprop:
            self._next_cycle_phase(now)

    def _next_cycle_phase(self, now: float) -> None:
        prev_gain = PROBE_BW_GAINS[self._cycle_index]
        self._cycle_index = (self._cycle_index + 1) % len(PROBE_BW_GAINS)
        if PROBE_BW_GAINS[self._cycle_index] > 1.0 \
                and not self._may_probe_bw(now):
            # Coupled subflow denied the probe slot: skip the 1.25/0.75
            # pair and cruise this cycle.
            self._cycle_index = PROBE_BW_ENTRY_PHASE
        if prev_gain > 1.0:
            self._probe_released()
        self._cycle_stamp = now
        self._pacing_gain = PROBE_BW_GAINS[self._cycle_index]

    def _may_probe_bw(self, now: float) -> bool:
        """Hook for coupled variants; standalone BBR always probes."""
        return True

    def _probe_released(self) -> None:
        """Hook: the 1.25 probe phase just ended."""

    def _check_probe_rtt(self, now: float, rtt_expired: bool) -> None:
        if self.state != self.PROBE_RTT and rtt_expired \
                and self.min_rtt != float("inf"):
            self.state = self.PROBE_RTT
            self._prior_cwnd = max(self._prior_cwnd, self.cwnd)
            self._pacing_gain = 1.0
            self._cwnd_gain = 1.0
            self._probe_rtt_done_at = None
        if self.state == self.PROBE_RTT:
            if self._probe_rtt_done_at is None \
                    and self.bytes_in_flight <= PROBE_RTT_CWND:
                self._probe_rtt_done_at = now + PROBE_RTT_DURATION_S
            elif self._probe_rtt_done_at is not None \
                    and now >= self._probe_rtt_done_at:
                self._min_rtt_stamp = now
                self.cwnd = max(self.cwnd, self._prior_cwnd)
                if self.filled_pipe:
                    self._enter_probe_bw(now)
                else:
                    self.state = self.STARTUP
                    self._pacing_gain = STARTUP_GAIN
                    self._cwnd_gain = STARTUP_GAIN

    def _set_cwnd(self) -> None:
        if self.state == self.PROBE_RTT:
            self.cwnd = min(self.cwnd, float(PROBE_RTT_CWND))
            return
        target = self.bdp(self._cwnd_gain)
        if self.filled_pipe:
            self.cwnd = min(self.cwnd, target)
        self.cwnd = max(self.cwnd, float(MINIMUM_WINDOW))

    # -- base-class hooks --------------------------------------------------

    def _increase_window(self, acked_bytes: int, sent_time: float,
                         now: float, rtt: float) -> None:
        # Model-based growth: move cwnd toward the gain-scaled BDP by
        # the acked amount (slow-start-fast before the pipe is full).
        if self.state == self.PROBE_RTT:
            return
        target = self.bdp(self._cwnd_gain)
        if self.filled_pipe:
            self.cwnd = min(self.cwnd + acked_bytes, target)
        else:
            self.cwnd += acked_bytes
        self.cwnd = max(self.cwnd, float(MINIMUM_WINDOW))

    def _on_congestion_event(self, now: float) -> None:
        # BBR does not halve on loss; a mild packet-conservation
        # trim keeps chaos-grade loss bursts from locking in a cwnd
        # far above what the (possibly gone) link can carry.
        self.cwnd = max(self.cwnd * 0.85, float(MINIMUM_WINDOW))

    def reset(self) -> None:
        super().reset()
        self._init_model()


class MpBbrCoordinator:
    """Shared state across the BBR subflows of one connection.

    Mirrors :class:`~repro.quic.cc.coupled.LiaCoordinator`: one
    instance per connection, each per-path controller registers at
    construction.  Couples the subflows two ways: a single
    bandwidth-probe token (at most one subflow in the 1.25 gain phase
    at a time) and a per-subflow cwnd floor so the aggregate never
    starves a slow path out of its probe traffic.
    """

    def __init__(self) -> None:
        self._controllers: List["MpBbrCc"] = []
        self._probe_holder: Optional["MpBbrCc"] = None

    def register(self, cc: "MpBbrCc") -> None:
        self._controllers.append(cc)

    @property
    def total_bandwidth(self) -> float:
        """Aggregate BtlBw estimate across subflows (bytes/sec)."""
        return sum(c.bandwidth for c in self._controllers)

    def acquire_probe(self, cc: "MpBbrCc") -> bool:
        """Grant the 1.25 probe phase to at most one subflow at a time."""
        if self._probe_holder is None or self._probe_holder is cc:
            self._probe_holder = cc
            return True
        return False

    def release_probe(self, cc: "MpBbrCc") -> None:
        if self._probe_holder is cc:
            self._probe_holder = None


class MpBbrCc(BbrCc):
    """One subflow of a coupled multipath-BBR connection."""

    def __init__(self, coordinator: Optional[MpBbrCoordinator] = None) -> None:
        super().__init__()
        self.coordinator = coordinator if coordinator is not None \
            else MpBbrCoordinator()
        self.coordinator.register(self)

    def _may_probe_bw(self, now: float) -> bool:
        return self.coordinator.acquire_probe(self)

    def _probe_released(self) -> None:
        self.coordinator.release_probe(self)

    def _set_cwnd(self) -> None:
        super()._set_cwnd()
        if self.state != self.PROBE_RTT:
            # Non-starvation floor: a subflow whose BDP estimate has
            # collapsed keeps 4 packets of probe traffic flowing.
            self.cwnd = max(self.cwnd, float(PROBE_RTT_CWND))

    def _increase_window(self, acked_bytes: int, sent_time: float,
                         now: float, rtt: float) -> None:
        super()._increase_window(acked_bytes, sent_time, now, rtt)
        if self.state != self.PROBE_RTT:
            self.cwnd = max(self.cwnd, float(PROBE_RTT_CWND))

    def _on_congestion_event(self, now: float) -> None:
        super()._on_congestion_event(now)
        if self.state != self.PROBE_RTT:
            self.cwnd = max(self.cwnd, float(PROBE_RTT_CWND))
