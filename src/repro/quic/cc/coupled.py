"""Coupled multipath congestion control (LIA, RFC 6356).

The paper uses decoupled Cubic in production because Wi-Fi and
cellular rarely share a bottleneck, but Sec. 9 notes the coupled
variant is preferred when they do (5G SA edge).  LIA couples the
*increase* across subflows -- each ack grows the subflow window by
min(alpha * acked / cwnd_total, acked / cwnd_i) -- while decreases
stay per-subflow.
"""

from __future__ import annotations

from typing import List, Optional

from repro.quic.cc.base import (CongestionController, MAX_DATAGRAM_SIZE,
                                MINIMUM_WINDOW)


class LiaCoordinator:
    """Shared state across the subflow controllers of one connection."""

    def __init__(self) -> None:
        self._controllers: List["LiaCoupledCc"] = []

    def register(self, cc: "LiaCoupledCc") -> None:
        self._controllers.append(cc)

    @property
    def total_cwnd(self) -> float:
        return sum(c.cwnd for c in self._controllers) or 1.0

    def alpha(self) -> float:
        """LIA aggressiveness factor (RFC 6356 Sec. 3, rate-based form).

        alpha = cwnd_total * max_i(cwnd_i / rtt_i^2) / (sum_i cwnd_i/rtt_i)^2
        """
        best = 0.0
        denom = 0.0
        for c in self._controllers:
            rtt = max(c.last_rtt, 1e-3)
            best = max(best, c.cwnd / (rtt * rtt))
            denom += c.cwnd / rtt
        if denom <= 0:
            return 1.0
        return self.total_cwnd * best / (denom * denom)


class LiaCoupledCc(CongestionController):
    """One subflow of an LIA-coupled connection."""

    def __init__(self, coordinator: Optional[LiaCoordinator] = None) -> None:
        super().__init__()
        self.coordinator = coordinator if coordinator is not None \
            else LiaCoordinator()
        self.last_rtt = 0.1
        self.coordinator.register(self)

    def _increase_window(self, acked_bytes: int, sent_time: float,
                         now: float, rtt: float) -> None:
        self.last_rtt = rtt
        if self.in_slow_start:
            self.cwnd += acked_bytes
            return
        alpha = self.coordinator.alpha()
        coupled = alpha * MAX_DATAGRAM_SIZE * acked_bytes \
            / self.coordinator.total_cwnd
        uncoupled = MAX_DATAGRAM_SIZE * acked_bytes / self.cwnd
        self.cwnd += min(coupled, uncoupled)

    def _on_congestion_event(self, now: float) -> None:
        self.cwnd = max(self.cwnd * 0.5, MINIMUM_WINDOW)
        self.ssthresh = self.cwnd
