"""Congestion controller interface.

Controllers are event-driven: the loss-detection layer reports packet
sends, acks and losses; the scheduler asks ``can_send`` before placing
a packet on the path.

Two controller families share this interface:

* **Loss-based** (NewReno, Cubic, LIA): window arithmetic only.  They
  keep ``paced = False`` and the connection never consults pacing
  state or computes delivery-rate samples for them -- the hot path is
  byte-identical to the pre-pacing code.
* **Model-based** (BBR, multipath-BBR): ``paced = True``.  They expose
  a ``pacing_rate`` and a ``next_send_time`` token-release deadline,
  and consume :class:`RateSample` objects built by the connection from
  RFC-style ``delivered``/``delivered_time`` bookkeeping on each
  :class:`~repro.quic.loss_detection.SentPacket`.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass

#: Conventional max datagram size used for cwnd arithmetic.
MAX_DATAGRAM_SIZE = 1400

#: RFC 9002 initial window: min(10 * MDS, max(2 * MDS, 14720)).
INITIAL_WINDOW = min(10 * MAX_DATAGRAM_SIZE, max(2 * MAX_DATAGRAM_SIZE, 14720))

#: Minimum congestion window after collapse.
MINIMUM_WINDOW = 2 * MAX_DATAGRAM_SIZE


class CcEvent(enum.Enum):
    """Congestion-control state transitions (for tracing/tests)."""

    SLOW_START = "slow_start"
    CONGESTION_AVOIDANCE = "congestion_avoidance"
    RECOVERY = "recovery"


@dataclass(slots=True)
class RateSample:
    """One delivery-rate measurement (draft-cheng-iccrg-delivery-rate).

    Built by the connection per newly-acked in-flight packet:
    ``delivery_rate = (delivered - pkt_delivered) / (now - pkt_delivered_time)``
    where ``pkt_delivered``/``pkt_delivered_time`` were stamped on the
    packet at send time from the path's running ``delivered`` total.
    """

    delivery_rate: float     # bytes/sec over the sample interval
    rtt: float               # RTT of the sampled packet (sec)
    delivered: int           # path delivered-bytes total at ack time
    pkt_delivered: int       # delivered total stamped at send time
    acked_bytes: int         # size of the acked packet
    now: float
    #: sample taken while the sender had no data to send; must not
    #: raise the bandwidth filter (it underestimates the link)
    app_limited: bool = False


class CongestionController(abc.ABC):
    """Abstract per-path congestion controller."""

    #: Model-based controllers set True; the connection then feeds
    #: rate samples and honors ``next_send_time`` in the pump.
    paced: bool = False

    def __init__(self) -> None:
        self.cwnd: float = float(INITIAL_WINDOW)
        self.bytes_in_flight: int = 0
        self.ssthresh: float = float("inf")
        self.recovery_start_time: float = -1.0

    # -- queries ---------------------------------------------------------

    def can_send(self, size: int = MAX_DATAGRAM_SIZE) -> bool:
        """True if a packet of ``size`` bytes fits in the window."""
        return self.bytes_in_flight + size <= self.cwnd

    @property
    def available_window(self) -> float:
        return max(self.cwnd - self.bytes_in_flight, 0.0)

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def in_recovery(self, sent_time: float) -> bool:
        return sent_time <= self.recovery_start_time

    @property
    def pacing_rate(self) -> float:
        """Target send rate in bytes/sec; inf = unpaced (window-only)."""
        return float("inf")

    def next_send_time(self, now: float) -> float:
        """Earliest time the pacer releases the next packet.

        Unpaced controllers always answer ``now`` (no constraint).
        Paced controllers return their token-release deadline; the
        pump arms a lazy timer when it lies in the future.
        """
        return now

    # -- events ----------------------------------------------------------

    def on_packet_sent(self, size: int, now: float) -> None:
        self.bytes_in_flight += size

    def on_packet_acked(self, size: int, sent_time: float, now: float,
                        rtt: float) -> None:
        self.bytes_in_flight = max(self.bytes_in_flight - size, 0)
        if self.in_recovery(sent_time):
            return
        self._increase_window(size, sent_time, now, rtt)

    def on_packets_lost(self, size: int, latest_sent_time: float,
                        now: float) -> None:
        self.bytes_in_flight = max(self.bytes_in_flight - size, 0)
        if not self.in_recovery(latest_sent_time):
            self.recovery_start_time = now
            self._on_congestion_event(now)

    def on_rate_sample(self, sample: RateSample) -> None:
        """Consume a delivery-rate sample (model-based controllers).

        The connection only builds samples for controllers with
        ``paced = True``; the default is a no-op so loss-based
        controllers pay nothing.
        """

    def on_discarded(self, size: int) -> None:
        """Packet no longer tracked (e.g. path abandoned)."""
        self.bytes_in_flight = max(self.bytes_in_flight - size, 0)

    def reset(self) -> None:
        """Collapse to the initial state (used by connection migration)."""
        self.cwnd = float(INITIAL_WINDOW)
        self.bytes_in_flight = 0
        self.ssthresh = float("inf")
        self.recovery_start_time = -1.0

    # -- algorithm hooks ---------------------------------------------------

    @abc.abstractmethod
    def _increase_window(self, acked_bytes: int, sent_time: float,
                         now: float, rtt: float) -> None:
        """Grow cwnd on an ack outside recovery."""

    @abc.abstractmethod
    def _on_congestion_event(self, now: float) -> None:
        """Shrink cwnd on entering recovery."""
