"""CUBIC congestion control (RFC 8312/9438), the paper's default.

Fig. 8's result -- faster ACK return grows cwnd faster -- depends on
Cubic's time-based window growth plus slow-start's ack clocking; both
are modeled here: W(t) = C*(t - K)^3 + W_max, with standard fast
convergence and a Reno-friendly region.
"""

from __future__ import annotations

from repro.quic.cc.base import (CongestionController, MAX_DATAGRAM_SIZE,
                                MINIMUM_WINDOW)

CUBIC_C = 0.4          # scaling constant (segments/s^3)
CUBIC_BETA = 0.7       # multiplicative decrease factor
FAST_CONVERGENCE = True


class CubicCc(CongestionController):
    """CUBIC with fast convergence and TCP-friendly region."""

    def __init__(self) -> None:
        super().__init__()
        self._w_max = 0.0            # window before last reduction (bytes)
        self._k = 0.0                # time to regain w_max (seconds)
        self._epoch_start = -1.0     # start of current CA epoch
        self._w_est = 0.0            # Reno-friendly window estimate (bytes)
        self._acked_in_epoch = 0

    def _increase_window(self, acked_bytes: int, sent_time: float,
                         now: float, rtt: float) -> None:
        if self.in_slow_start:
            self.cwnd += acked_bytes
            if self.cwnd >= self.ssthresh:
                self.cwnd = self.ssthresh
                self._begin_epoch(now)
            return
        if self._epoch_start < 0:
            self._begin_epoch(now)
        t = now - self._epoch_start
        # Target window one RTT in the future, in segments -> bytes.
        seg = MAX_DATAGRAM_SIZE
        w_cubic = (CUBIC_C * ((t + rtt) - self._k) ** 3
                   + self._w_max / seg) * seg
        # Reno-friendly estimate grows ~1 segment per RTT.
        self._acked_in_epoch += acked_bytes
        alpha = 3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA)
        self._w_est += alpha * seg * acked_bytes / self.cwnd
        target = max(w_cubic, self._w_est)
        if target > self.cwnd:
            # Standard cubic pacing of the increase.
            self.cwnd += (target - self.cwnd) * acked_bytes / self.cwnd
        else:
            # Minimal growth to stay ack-clocked.
            self.cwnd += 0.01 * seg * acked_bytes / self.cwnd

    def _begin_epoch(self, now: float) -> None:
        self._epoch_start = now
        seg = MAX_DATAGRAM_SIZE
        if self.cwnd < self._w_max:
            self._k = ((self._w_max / seg - self.cwnd / seg)
                       / CUBIC_C) ** (1.0 / 3.0)
        else:
            self._k = 0.0
            self._w_max = self.cwnd
        self._w_est = self.cwnd
        self._acked_in_epoch = 0

    def _on_congestion_event(self, now: float) -> None:
        if FAST_CONVERGENCE and self.cwnd < self._w_max:
            self._w_max = self.cwnd * (1.0 + CUBIC_BETA) / 2.0
        else:
            self._w_max = self.cwnd
        self.cwnd = max(self.cwnd * CUBIC_BETA, MINIMUM_WINDOW)
        self.ssthresh = self.cwnd
        self._epoch_start = -1.0

    def reset(self) -> None:
        super().reset()
        self._w_max = 0.0
        self._k = 0.0
        self._epoch_start = -1.0
        self._w_est = 0.0
        self._acked_in_epoch = 0
