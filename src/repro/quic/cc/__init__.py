"""Per-path congestion controllers.

The paper runs "decoupled" Cubic per path (Sec. 7 / Sec. 9); we also
provide NewReno and a coupled LIA variant for the fairness discussion
in Sec. 9 and for ablation benches.
"""

from repro.quic.cc.base import CongestionController, CcEvent
from repro.quic.cc.newreno import NewRenoCc
from repro.quic.cc.cubic import CubicCc
from repro.quic.cc.coupled import LiaCoupledCc, LiaCoordinator

CC_REGISTRY = {
    "newreno": NewRenoCc,
    "cubic": CubicCc,
}


def make_cc(name: str, **kwargs) -> CongestionController:
    """Build a congestion controller by name ('cubic' or 'newreno')."""
    try:
        return CC_REGISTRY[name](**kwargs)
    except KeyError as exc:
        raise ValueError(f"unknown congestion controller {name!r}") from exc


__all__ = [
    "CongestionController",
    "CcEvent",
    "NewRenoCc",
    "CubicCc",
    "LiaCoupledCc",
    "LiaCoordinator",
    "make_cc",
    "CC_REGISTRY",
]
