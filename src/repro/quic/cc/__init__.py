"""Per-path congestion controllers.

The paper runs "decoupled" Cubic per path (Sec. 7 / Sec. 9); the
registry also provides NewReno, a coupled LIA variant for the fairness
discussion in Sec. 9, and the model-based BBR family (ROADMAP item 4):

- ``"newreno"`` -- RFC 9002 NewReno (loss-based, unpaced)
- ``"cubic"``   -- RFC 9438 Cubic, the production default (unpaced)
- ``"lia"``     -- RFC 6356 coupled LIA; subflows share a
  :class:`LiaCoordinator` (unpaced)
- ``"bbr"``     -- BBR v1 (model-based, paced; per-path, decoupled)
- ``"mpbbr"``   -- coupled multipath BBR; subflows share an
  :class:`MpBbrCoordinator` (staggered bandwidth probing + a
  non-starvation cwnd floor)

Coupled controllers take a per-connection coordinator: build one with
:func:`make_coordinator` and pass it to every :func:`make_cc` call of
that connection, or omit it for a standalone (single-path) instance.
"""

from typing import Optional

from repro.quic.cc.base import (CongestionController, CcEvent, RateSample)
from repro.quic.cc.newreno import NewRenoCc
from repro.quic.cc.cubic import CubicCc
from repro.quic.cc.coupled import LiaCoupledCc, LiaCoordinator
from repro.quic.cc.bbr import BbrCc, MpBbrCc, MpBbrCoordinator

CC_REGISTRY = {
    "newreno": NewRenoCc,
    "cubic": CubicCc,
    "lia": LiaCoupledCc,
    "bbr": BbrCc,
    "mpbbr": MpBbrCc,
}

#: coordinator factory for the coupled entries; uncoupled names map to
#: nothing and get a plain per-path controller.
COORDINATORS = {
    "lia": LiaCoordinator,
    "mpbbr": MpBbrCoordinator,
}


def make_cc(name: str, **kwargs) -> CongestionController:
    """Build a congestion controller by name.

    Registered names: ``newreno``, ``cubic``, ``lia``, ``bbr``,
    ``mpbbr`` (see the module docstring for what each is).  For the
    coupled entries pass ``coordinator=`` (one per connection, from
    :func:`make_coordinator`) to couple the subflows; without it each
    instance gets a private coordinator.
    """
    try:
        return CC_REGISTRY[name](**kwargs)
    except KeyError as exc:
        raise ValueError(f"unknown congestion controller {name!r}") from exc


def make_coordinator(name: str) -> Optional[object]:
    """Per-connection shared state for coupled controllers, else None."""
    factory = COORDINATORS.get(name)
    return factory() if factory is not None else None


__all__ = [
    "CongestionController",
    "CcEvent",
    "RateSample",
    "NewRenoCc",
    "CubicCc",
    "LiaCoupledCc",
    "LiaCoordinator",
    "BbrCc",
    "MpBbrCc",
    "MpBbrCoordinator",
    "make_cc",
    "make_coordinator",
    "CC_REGISTRY",
    "COORDINATORS",
]
