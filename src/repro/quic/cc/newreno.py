"""NewReno congestion control (RFC 9002 Sec. 7)."""

from __future__ import annotations

from repro.quic.cc.base import (CongestionController, MAX_DATAGRAM_SIZE,
                                MINIMUM_WINDOW)

LOSS_REDUCTION_FACTOR = 0.5


class NewRenoCc(CongestionController):
    """Classic AIMD: slow start doubles, CA grows one MDS per cwnd acked."""

    def _increase_window(self, acked_bytes: int, sent_time: float,
                         now: float, rtt: float) -> None:
        if self.in_slow_start:
            self.cwnd += acked_bytes
        else:
            self.cwnd += MAX_DATAGRAM_SIZE * acked_bytes / self.cwnd

    def _on_congestion_event(self, now: float) -> None:
        self.cwnd = max(self.cwnd * LOSS_REDUCTION_FACTOR, MINIMUM_WINDOW)
        self.ssthresh = self.cwnd
