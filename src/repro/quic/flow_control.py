"""Connection- and stream-level flow control.

Receivers advertise limits via MAX_DATA / MAX_STREAM_DATA; senders may
not exceed them.  Windows auto-update: when the consumed offset passes
half the window, the receiver bumps the limit by one window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.quic.errors import FlowControlError


@dataclass
class FlowControlWindow:
    """One direction of a flow-control limit."""

    limit: int
    window: int

    @classmethod
    def with_window(cls, window: int) -> "FlowControlWindow":
        return cls(limit=window, window=window)

    # -- sender side -----------------------------------------------------

    def sendable(self, offset: int) -> int:
        """Bytes the sender may still send given the highest offset used."""
        return max(self.limit - offset, 0)

    def on_peer_update(self, new_limit: int) -> None:
        """Peer raised its advertised limit (MAX_DATA/MAX_STREAM_DATA)."""
        if new_limit > self.limit:
            self.limit = new_limit

    # -- receiver side -----------------------------------------------------

    def check_receive(self, end_offset: int) -> None:
        """Validate incoming data against our advertised limit."""
        if end_offset > self.limit:
            raise FlowControlError(
                f"peer exceeded flow control: {end_offset} > {self.limit}"
            )

    def maybe_advance(self, consumed_offset: int) -> int:
        """Advance the advertised limit when the consumer catches up.

        Returns the new limit if an update frame should be sent, else 0.
        """
        if self.limit - consumed_offset < self.window // 2:
            self.limit = consumed_offset + self.window
            return self.limit
        return 0
