"""Byte-level QUIC transport with the XLINK multipath extension.

The stack implements the parts of IETF QUIC that the paper's
mechanisms live on -- varints, frames, packets, per-path packet-number
spaces, streams with flow control, loss detection with PTO, Cubic /
NewReno / coupled congestion control -- plus the multipath extension of
draft-liu-multipath-quic-02 as deployed in XLINK: paths identified by
connection-ID sequence numbers, ``ACK_MP`` (carrying the QoE control
signal field), ``PATH_STATUS``, ``QOE_CONTROL_SIGNALS``, and the
multipath AEAD nonce construction.

Crypto is a deterministic toy AEAD (see :mod:`repro.quic.crypto`):
the multipath *nonce logic* is implemented exactly as Sec. 6
describes, while the cipher itself is a keyed XOR + MAC, which is all
the emulation needs.
"""

from repro.quic.connection import Connection, ConnectionConfig
from repro.quic.frames import (AckMpFrame, AckRange, CryptoFrame,
                               MaxDataFrame, MaxStreamDataFrame,
                               NewConnectionIdFrame, PathChallengeFrame,
                               PathResponseFrame, PathStatus,
                               PathStatusFrame, PingFrame,
                               QoeControlSignalsFrame, QoeSignals,
                               StreamFrame)
from repro.quic.transport_params import TransportParameters

__all__ = [
    "Connection",
    "ConnectionConfig",
    "TransportParameters",
    "AckMpFrame",
    "AckRange",
    "CryptoFrame",
    "MaxDataFrame",
    "MaxStreamDataFrame",
    "NewConnectionIdFrame",
    "PathChallengeFrame",
    "PathResponseFrame",
    "PathStatus",
    "PathStatusFrame",
    "PingFrame",
    "QoeControlSignalsFrame",
    "QoeSignals",
    "StreamFrame",
]
