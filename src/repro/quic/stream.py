"""QUIC streams: ordered byte streams with reassembly and priorities.

XLINK's scheduler needs two extra notions beyond vanilla QUIC streams:

- a *stream priority* (earlier video chunks are more urgent -- the
  stream-priority re-injection of Fig. 4b), and
- *frame priority ranges* within a stream: the ``stream_send`` API
  lets the application mark a byte range (position, size) as the first
  video frame, at the highest priority (Fig. 4c).

The receive side reassembles out-of-order / duplicate data (duplicates
arise naturally from re-injection) and exposes in-order reads.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.quic.errors import FinalSizeError, StreamStateError

#: Default frame priority for bytes not covered by a marked range.
DEFAULT_FRAME_PRIORITY = 10

#: Highest priority, used for the first video frame.
FIRST_FRAME_PRIORITY = 0


@dataclass(frozen=True)
class PriorityRange:
    """A byte range [start, end) with an application-set priority."""

    start: int
    end: int
    priority: int

    def __contains__(self, offset: int) -> bool:
        return self.start <= offset < self.end


class SendStream:
    """Send half: an append-only buffer with priority annotations."""

    def __init__(self, stream_id: int, priority: int = 0) -> None:
        self.stream_id = stream_id
        #: stream priority; lower value = more urgent
        self.priority = priority
        self._buffer = bytearray()
        self.fin_offset: Optional[int] = None
        self._priority_ranges: List[PriorityRange] = []
        #: highest offset handed to the packetizer as NEW data
        self.next_offset = 0
        #: set when every byte (and fin) has been acked
        self.acked_ranges: "_RangeSet" = _RangeSet()
        self.fin_acked = False

    # -- application API --------------------------------------------------

    def write(self, data: bytes, fin: bool = False,
              frame_priority: Optional[int] = None,
              position: Optional[int] = None,
              size: Optional[int] = None) -> None:
        """Append data; optionally mark a priority range.

        ``frame_priority`` with ``position``/``size`` mirrors XLINK's
        ``stream_send(data, position, size, priority)``: the byte
        range [position, position+size) gets ``frame_priority``.
        When position/size are omitted the range covers this write.
        """
        if self.fin_offset is not None:
            raise StreamStateError(f"stream {self.stream_id} already FINed")
        start = len(self._buffer)
        self._buffer.extend(data)
        if fin:
            self.fin_offset = len(self._buffer)
        if frame_priority is not None:
            p_start = position if position is not None else start
            p_size = size if size is not None else len(data)
            self._priority_ranges.append(
                PriorityRange(p_start, p_start + p_size, frame_priority))

    @property
    def length(self) -> int:
        return len(self._buffer)

    @property
    def bytes_unsent(self) -> int:
        return len(self._buffer) - self.next_offset

    @property
    def fully_acked(self) -> bool:
        if self.fin_offset is None:
            return False
        data_acked = self.acked_ranges.covers(0, self.fin_offset)
        return data_acked and self.fin_acked

    def frame_priority_at(self, offset: int) -> int:
        """Priority of the byte at ``offset`` (first match wins)."""
        for rng in self._priority_ranges:
            if offset in rng:
                return rng.priority
        return DEFAULT_FRAME_PRIORITY

    def priority_segments(self, start: int,
                          end: int) -> List[Tuple[int, int, int]]:
        """Split [start, end) into maximal runs of constant priority.

        Returns ``(seg_start, seg_end, priority)`` triples, equivalent
        to -- but O(ranges log ranges) instead of O(bytes * ranges) --
        calling :meth:`frame_priority_at` on every byte and breaking
        wherever the value changes.  Priority can only change at a
        range endpoint, so it suffices to evaluate once per interval
        between endpoints and merge equal-priority neighbours.
        """
        if start >= end:
            return []
        if not self._priority_ranges:
            return [(start, end, DEFAULT_FRAME_PRIORITY)]
        points = {start, end}
        for rng in self._priority_ranges:
            if start < rng.start < end:
                points.add(rng.start)
            if start < rng.end < end:
                points.add(rng.end)
        ordered = sorted(points)
        segments: List[Tuple[int, int, int]] = []
        for i in range(len(ordered) - 1):
            seg_start = ordered[i]
            priority = self.frame_priority_at(seg_start)
            if segments and segments[-1][2] == priority:
                segments[-1] = (segments[-1][0], ordered[i + 1], priority)
            else:
                segments.append((seg_start, ordered[i + 1], priority))
        return segments

    def priority_range_end(self, priority: int) -> Optional[int]:
        """End offset of the (first) range at ``priority``, if any."""
        for rng in self._priority_ranges:
            if rng.priority == priority:
                return rng.end
        return None

    def data_for(self, offset: int, length: int) -> bytes:
        """Bytes [offset, offset+length) for (re)transmission."""
        if offset + length > len(self._buffer):
            raise StreamStateError(
                f"stream {self.stream_id}: range beyond buffer")
        return bytes(self._buffer[offset:offset + length])

    def is_fin_range(self, offset: int, length: int) -> bool:
        """True if this range's end coincides with the FIN offset."""
        return (self.fin_offset is not None
                and offset + length == self.fin_offset)

    def on_acked(self, offset: int, length: int, fin: bool) -> None:
        if length:
            self.acked_ranges.add(offset, offset + length)
        if fin:
            self.fin_acked = True


class ReceiveStream:
    """Receive half: out-of-order reassembly, duplicate-tolerant."""

    def __init__(self, stream_id: int) -> None:
        self.stream_id = stream_id
        self._segments: Dict[int, bytes] = {}
        self._received = _RangeSet()
        self._read_offset = 0
        self.final_size: Optional[int] = None
        #: total payload bytes received including duplicates (cost metric)
        self.bytes_received_raw = 0
        #: duplicate bytes discarded (already-received ranges)
        self.duplicate_bytes = 0

    def on_data(self, offset: int, data: bytes, fin: bool) -> None:
        """Accept a STREAM frame; overlapping data is deduplicated."""
        end = offset + len(data)
        if fin:
            if self.final_size is not None and self.final_size != end:
                raise FinalSizeError(
                    f"stream {self.stream_id}: conflicting final size")
            self.final_size = end
        if self.final_size is not None and end > self.final_size:
            raise FinalSizeError(
                f"stream {self.stream_id}: data beyond final size")
        self.bytes_received_raw += len(data)
        if not data:
            return
        # Clip already-received prefix/suffix; store novel middle pieces.
        novel = self._received.missing_within(offset, end)
        dup = len(data) - sum(e - s for s, e in novel)
        self.duplicate_bytes += dup
        for seg_start, seg_end in novel:
            # bytes() materializes here: ``data`` may be a memoryview of
            # the received datagram (zero-copy decode path), and stored
            # segments must not pin that buffer alive.
            self._segments[seg_start] = bytes(data[seg_start - offset:
                                                   seg_end - offset])
            self._received.add(seg_start, seg_end)

    def read_available(self) -> bytes:
        """Return (and consume) all in-order bytes available."""
        out = bytearray()
        while self._read_offset in self._segments:
            seg = self._segments.pop(self._read_offset)
            out.extend(seg)
            self._read_offset += len(seg)
        return bytes(out)

    @property
    def read_offset(self) -> int:
        return self._read_offset

    @property
    def highest_received(self) -> int:
        return self._received.upper_bound()

    @property
    def is_complete(self) -> bool:
        """All bytes up to the final size have been received."""
        return (self.final_size is not None
                and self._received.covers(0, self.final_size))

    @property
    def fully_read(self) -> bool:
        return (self.final_size is not None
                and self._read_offset >= self.final_size)


class _RangeSet:
    """Sorted set of disjoint half-open ranges [start, end)."""

    def __init__(self) -> None:
        self._ranges: List[Tuple[int, int]] = []

    def add(self, start: int, end: int) -> None:
        if start >= end:
            return
        new: List[Tuple[int, int]] = []
        placed = False
        for s, e in self._ranges:
            if e < start or s > end:
                new.append((s, e))
            else:
                start = min(start, s)
                end = max(end, e)
        bisect.insort(new, (start, end))
        self._ranges = new
        del placed

    def covers(self, start: int, end: int) -> bool:
        if start >= end:
            return True
        for s, e in self._ranges:
            if s <= start and end <= e:
                return True
        return False

    def missing_within(self, start: int, end: int) -> List[Tuple[int, int]]:
        """Sub-ranges of [start, end) not yet present."""
        missing: List[Tuple[int, int]] = []
        cursor = start
        for s, e in self._ranges:
            if e <= cursor:
                continue
            if s >= end:
                break
            if s > cursor:
                missing.append((cursor, min(s, end)))
            cursor = max(cursor, e)
            if cursor >= end:
                break
        if cursor < end:
            missing.append((cursor, end))
        return missing

    def upper_bound(self) -> int:
        return self._ranges[-1][1] if self._ranges else 0

    def __len__(self) -> int:
        return len(self._ranges)

    def total(self) -> int:
        return sum(e - s for s, e in self._ranges)
