"""QUIC variable-length integers (RFC 9000 Sec. 16).

The two high bits of the first byte select a 1/2/4/8-byte encoding,
giving ranges up to 2^6-1, 2^14-1, 2^30-1 and 2^62-1.
"""

from __future__ import annotations

from typing import Tuple

VARINT_MAX = (1 << 62) - 1

_RANGES = (
    (1 << 6, 0x00, 1),
    (1 << 14, 0x40, 2),
    (1 << 30, 0x80, 4),
    (1 << 62, 0xC0, 8),
)


def varint_size(value: int) -> int:
    """Bytes needed to encode ``value``."""
    if value < 0 or value > VARINT_MAX:
        raise ValueError(f"varint out of range: {value}")
    for limit, _prefix, size in _RANGES:
        if value < limit:
            return size
    raise AssertionError("unreachable")


def encode_varint(value: int) -> bytes:
    """Encode ``value`` as a QUIC varint."""
    if value < 0 or value > VARINT_MAX:
        raise ValueError(f"varint out of range: {value}")
    for limit, prefix, size in _RANGES:
        if value < limit:
            data = value.to_bytes(size, "big")
            return bytes([data[0] | prefix]) + data[1:]
    raise AssertionError("unreachable")


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint at ``offset``; returns (value, new_offset)."""
    if offset >= len(data):
        raise ValueError("varint truncated: empty buffer")
    first = data[offset]
    size = 1 << (first >> 6)
    if offset + size > len(data):
        raise ValueError(
            f"varint truncated: need {size} bytes at offset {offset}"
        )
    value = first & 0x3F
    for i in range(1, size):
        value = (value << 8) | data[offset + i]
    return value, offset + size


class Buffer:
    """Sequential varint/bytes reader-writer used by frame codecs."""

    def __init__(self, data: bytes = b"") -> None:
        self._chunks: list[bytes] = [data] if data else []
        self._read_data = data
        self._pos = 0

    # -- writing --------------------------------------------------------

    def push_varint(self, value: int) -> "Buffer":
        self._chunks.append(encode_varint(value))
        return self

    def push_bytes(self, data: bytes) -> "Buffer":
        self._chunks.append(bytes(data))
        return self

    def push_uint8(self, value: int) -> "Buffer":
        self._chunks.append(bytes([value & 0xFF]))
        return self

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)

    # -- reading --------------------------------------------------------

    def pull_varint(self) -> int:
        value, self._pos = decode_varint(self._read_data, self._pos)
        return value

    def pull_bytes(self, n: int) -> bytes:
        if self._pos + n > len(self._read_data):
            raise ValueError(f"buffer truncated: need {n} bytes")
        data = self._read_data[self._pos:self._pos + n]
        self._pos += n
        return data

    def pull_uint8(self) -> int:
        return self.pull_bytes(1)[0]

    @property
    def remaining(self) -> int:
        return len(self._read_data) - self._pos

    @property
    def pos(self) -> int:
        return self._pos
