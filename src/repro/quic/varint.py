"""QUIC variable-length integers (RFC 9000 Sec. 16).

The two high bits of the first byte select a 1/2/4/8-byte encoding,
giving ranges up to 2^6-1, 2^14-1, 2^30-1 and 2^62-1.

Hot-path notes: this module sits under every frame encoded or parsed,
so it avoids per-call allocations where it can.  Encodings of small
values are cached (1-byte varints in a precomputed table, larger ones
in a bounded FIFO dict), reads index straight into the underlying
buffer (a ``memoryview`` when the caller provides one, so pulling
bytes never copies), and the write side is a single ``bytearray``
builder instead of a chunk list.  All of this is invisible on the
wire: encodings are byte-identical to the naive implementation.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.quic.errors import BufferReadError

VARINT_MAX = (1 << 62) - 1

_RANGES = (
    (1 << 6, 0x00, 1),
    (1 << 14, 0x40, 2),
    (1 << 30, 0x80, 4),
    (1 << 62, 0xC0, 8),
)

#: All 1-byte varints, precomputed (the overwhelmingly common case:
#: frame type codes, flags, small lengths).
_ONE_BYTE = tuple(bytes([i]) for i in range(64))

#: Bounded FIFO cache of multi-byte encodings (stream ids, offsets and
#: window limits repeat heavily within a session).
_ENCODE_CACHE: dict = {}
_ENCODE_CACHE_MAX = 4096


def varint_size(value: int) -> int:
    """Bytes needed to encode ``value``."""
    if value < 0 or value > VARINT_MAX:
        raise ValueError(f"varint out of range: {value}")
    for limit, _prefix, size in _RANGES:
        if value < limit:
            return size
    raise AssertionError("unreachable")


def encode_varint(value: int) -> bytes:
    """Encode ``value`` as a QUIC varint."""
    if 0 <= value < 64:
        return _ONE_BYTE[value]
    cached = _ENCODE_CACHE.get(value)
    if cached is not None:
        return cached
    if value < 0 or value > VARINT_MAX:
        raise ValueError(f"varint out of range: {value}")
    for limit, prefix, size in _RANGES:
        if value < limit:
            data = value.to_bytes(size, "big")
            encoded = bytes([data[0] | prefix]) + data[1:]
            if len(_ENCODE_CACHE) >= _ENCODE_CACHE_MAX:
                _ENCODE_CACHE.pop(next(iter(_ENCODE_CACHE)))
            _ENCODE_CACHE[value] = encoded
            return encoded
    raise AssertionError("unreachable")


def decode_varint(data: Union[bytes, memoryview],
                  offset: int = 0) -> Tuple[int, int]:
    """Decode a varint at ``offset``; returns (value, new_offset)."""
    if offset >= len(data):
        raise BufferReadError("varint truncated: empty buffer")
    first = data[offset]
    size = 1 << (first >> 6)
    if size == 1:
        return first & 0x3F, offset + 1
    end = offset + size
    if end > len(data):
        raise BufferReadError(
            f"varint truncated: need {size} bytes at offset {offset}"
        )
    value = int.from_bytes(data[offset:end], "big") \
        & ((1 << (8 * size - 2)) - 1)
    return value, end


class Buffer:
    """Sequential varint/bytes reader-writer used by frame codecs.

    Reads are zero-copy: the buffer wraps the caller's data in a
    ``memoryview`` and :meth:`pull_bytes` returns slices of it, so a
    decoded STREAM frame's payload references the decrypted packet
    buffer until stream reassembly materializes it.  Writes accumulate
    in one ``bytearray``.
    """

    __slots__ = ("_wbuf", "_init_data", "_read_data", "_pos")

    def __init__(self, data: Union[bytes, memoryview] = b"") -> None:
        #: write buffer, created lazily so pure readers never copy
        self._wbuf: bytearray = None  # type: ignore[assignment]
        self._init_data = data
        self._read_data: Union[bytes, memoryview] = \
            memoryview(data) if data else b""
        self._pos = 0

    # -- writing --------------------------------------------------------

    def _writer(self) -> bytearray:
        wbuf = self._wbuf
        if wbuf is None:
            wbuf = self._wbuf = bytearray(self._init_data)
        return wbuf

    def push_varint(self, value: int) -> "Buffer":
        wbuf = self._wbuf
        if wbuf is None:
            wbuf = self._writer()
        if 0 <= value < 64:
            wbuf.append(value)  # 1-byte varint: prefix bits are 00
        else:
            wbuf.extend(encode_varint(value))
        return self

    def push_bytes(self, data: Union[bytes, memoryview]) -> "Buffer":
        self._writer().extend(data)
        return self

    def push_uint8(self, value: int) -> "Buffer":
        self._writer().append(value & 0xFF)
        return self

    def getvalue(self) -> bytes:
        if self._wbuf is None:
            return bytes(self._init_data)
        return bytes(self._wbuf)

    # -- reading --------------------------------------------------------

    def pull_varint(self) -> int:
        data = self._read_data
        pos = self._pos
        if pos < len(data):
            first = data[pos]
            if first < 0x40:  # 1-byte varint
                self._pos = pos + 1
                return first
        value, self._pos = decode_varint(data, pos)
        return value

    def pull_bytes(self, n: int) -> Union[bytes, memoryview]:
        end = self._pos + n
        if n < 0 or end > len(self._read_data):
            raise BufferReadError(f"buffer truncated: need {n} bytes")
        data = self._read_data[self._pos:end]
        self._pos = end
        return data

    def pull_uint8(self) -> int:
        if self._pos >= len(self._read_data):
            raise BufferReadError("buffer truncated: need 1 byte")
        value = self._read_data[self._pos]
        self._pos += 1
        return value

    @property
    def remaining(self) -> int:
        return len(self._read_data) - self._pos

    @property
    def pos(self) -> int:
        return self._pos
