"""Protocol error types and QUIC transport error codes."""

from __future__ import annotations

import enum


class TransportErrorCode(enum.IntEnum):
    """Subset of RFC 9000 transport error codes used by this stack."""

    NO_ERROR = 0x0
    INTERNAL_ERROR = 0x1
    CONNECTION_REFUSED = 0x2
    FLOW_CONTROL_ERROR = 0x3
    STREAM_LIMIT_ERROR = 0x4
    STREAM_STATE_ERROR = 0x5
    FINAL_SIZE_ERROR = 0x6
    FRAME_ENCODING_ERROR = 0x7
    TRANSPORT_PARAMETER_ERROR = 0x8
    PROTOCOL_VIOLATION = 0xA
    # Multipath extension error (draft): path-related violation.
    MP_PROTOCOL_VIOLATION = 0x1001


class QuicError(Exception):
    """Base class for protocol errors."""

    error_code = TransportErrorCode.INTERNAL_ERROR


class FrameEncodingError(QuicError):
    error_code = TransportErrorCode.FRAME_ENCODING_ERROR


class BufferReadError(FrameEncodingError, ValueError):
    """Truncated read from a codec buffer.

    Inherits :class:`ValueError` so pre-hardening callers that caught
    the stdlib type keep working, while the chaos drop-counters can
    classify short reads as ``malformed`` via the :class:`QuicError`
    side of the MRO instead of crashing on a bare ``IndexError``.
    """


class FlowControlError(QuicError):
    error_code = TransportErrorCode.FLOW_CONTROL_ERROR


class StreamStateError(QuicError):
    error_code = TransportErrorCode.STREAM_STATE_ERROR


class FinalSizeError(QuicError):
    error_code = TransportErrorCode.FINAL_SIZE_ERROR


class ProtocolViolation(QuicError):
    error_code = TransportErrorCode.PROTOCOL_VIOLATION


class MultipathViolation(QuicError):
    error_code = TransportErrorCode.MP_PROTOCOL_VIOLATION


class DecryptionError(QuicError):
    """Packet failed authentication; it is dropped silently on the wire."""
