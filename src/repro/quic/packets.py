"""Packet header encode/decode.

XLINK keeps QUIC's packet header formats unchanged so middleboxes see
ordinary QUIC (Sec. 6, design point 2).  We use two header forms:

- a *long header* for handshake packets (carries both CIDs), and
- a *short header* for 1-RTT packets: flags byte, DCID, and a 4-byte
  truncated packet number (we always encode 4 bytes for simplicity --
  legal in QUIC, which permits 1-4).

The receiver identifies the path from the DCID (whose sequence number
is the path identifier) and reconstructs the full 62-bit packet number
from the truncated field and the largest packet number seen on that
path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.quic.cid import CID_LENGTH
from repro.quic.errors import ProtocolViolation

PN_TRUNC_BYTES = 4
PN_TRUNC_MOD = 1 << (8 * PN_TRUNC_BYTES)


class PacketType(enum.Enum):
    HANDSHAKE = "handshake"
    ONE_RTT = "1rtt"


@dataclass(frozen=True, slots=True)
class PacketHeader:
    packet_type: PacketType
    dcid: bytes
    scid: Optional[bytes] = None  # long header only
    truncated_pn: int = 0

    @property
    def header_size(self) -> int:
        if self.packet_type is PacketType.HANDSHAKE:
            return 1 + 1 + len(self.dcid) + 1 + len(self.scid or b"") \
                + PN_TRUNC_BYTES
        return 1 + len(self.dcid) + PN_TRUNC_BYTES


def encode_header(header: PacketHeader) -> bytes:
    """Serialize a packet header (also used as AEAD associated data)."""
    if header.packet_type is PacketType.HANDSHAKE:
        if header.scid is None:
            raise ProtocolViolation("long header requires SCID")
        out = bytearray([0xC0])  # long header form, fixed bit
        out.append(len(header.dcid))
        out.extend(header.dcid)
        out.append(len(header.scid))
        out.extend(header.scid)
    else:
        out = bytearray([0x40])  # short header form, fixed bit
        out.extend(header.dcid)
    out.extend((header.truncated_pn % PN_TRUNC_MOD).to_bytes(
        PN_TRUNC_BYTES, "big"))
    return bytes(out)


#: dcid -> flags byte || dcid, the constant prefix of every short
#: header sent on that connection ID (bounded FIFO).
_SHORT_PREFIX_CACHE: dict = {}
_SHORT_PREFIX_CACHE_MAX = 4096


def encode_short_header(dcid: bytes, truncated_pn: int) -> bytes:
    """Fast path for 1-RTT headers: cached prefix + 4-byte PN.

    Byte-identical to ``encode_header(PacketHeader(ONE_RTT, dcid,
    truncated_pn=pn))`` -- the send loop calls this once per packet,
    so the flags-plus-DCID prefix is worth computing once per CID.
    """
    prefix = _SHORT_PREFIX_CACHE.get(dcid)
    if prefix is None:
        prefix = b"\x40" + dcid
        if len(_SHORT_PREFIX_CACHE) >= _SHORT_PREFIX_CACHE_MAX:
            _SHORT_PREFIX_CACHE.pop(next(iter(_SHORT_PREFIX_CACHE)))
        _SHORT_PREFIX_CACHE[dcid] = prefix
    return prefix + (truncated_pn % PN_TRUNC_MOD).to_bytes(
        PN_TRUNC_BYTES, "big")


def decode_header(data) -> Tuple[PacketHeader, int]:
    """Parse a header; returns (header, payload_offset).

    Accepts any bytes-like object (the receive path hands a
    ``memoryview`` of the datagram).  CIDs are materialized as
    ``bytes``: they key long-lived routing tables in the server host
    and LB frontend, and a view would pin the whole datagram alive.
    """
    if not len(data):
        raise ProtocolViolation("empty packet")
    first = data[0]
    if first & 0x80:  # long header
        pos = 1
        if pos >= len(data):
            raise ProtocolViolation("truncated long header")
        dcid_len = data[pos]
        pos += 1
        dcid = bytes(data[pos:pos + dcid_len])
        pos += dcid_len
        if pos >= len(data):
            raise ProtocolViolation("truncated long header")
        scid_len = data[pos]
        pos += 1
        scid = bytes(data[pos:pos + scid_len])
        pos += scid_len
        if len(dcid) != dcid_len or len(scid) != scid_len:
            raise ProtocolViolation("truncated long header")
        if pos + PN_TRUNC_BYTES > len(data):
            raise ProtocolViolation("truncated packet number")
        pn = int.from_bytes(data[pos:pos + PN_TRUNC_BYTES], "big")
        pos += PN_TRUNC_BYTES
        return PacketHeader(PacketType.HANDSHAKE, dcid=dcid, scid=scid,
                            truncated_pn=pn), pos
    # short header: fixed-length DCID
    pos = 1
    dcid = bytes(data[pos:pos + CID_LENGTH])
    if len(dcid) != CID_LENGTH:
        raise ProtocolViolation("truncated short header")
    pos += CID_LENGTH
    if pos + PN_TRUNC_BYTES > len(data):
        raise ProtocolViolation("truncated packet number")
    pn = int.from_bytes(data[pos:pos + PN_TRUNC_BYTES], "big")
    pos += PN_TRUNC_BYTES
    return PacketHeader(PacketType.ONE_RTT, dcid=dcid,
                        truncated_pn=pn), pos


def reconstruct_pn(truncated: int, largest_seen: int) -> int:
    """Recover the full packet number from its 4-byte truncation.

    Picks the candidate closest to ``largest_seen + 1`` (RFC 9000
    Appendix A semantics, fixed 32-bit window).
    """
    expected = largest_seen + 1
    candidate = (expected & ~(PN_TRUNC_MOD - 1)) | truncated
    if candidate + PN_TRUNC_MOD // 2 <= expected:
        candidate += PN_TRUNC_MOD
    elif candidate > expected + PN_TRUNC_MOD // 2 and candidate >= PN_TRUNC_MOD:
        candidate -= PN_TRUNC_MOD
    return candidate
