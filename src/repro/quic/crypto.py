"""Toy AEAD with the multipath nonce construction of Sec. 6.

The paper keeps QUIC packet protection unchanged except for the AEAD
nonce: with per-path packet-number spaces the (key, packet number)
pair no longer uniquely identifies a packet, so the draft constructs a
96-bit *path-and-packet-number* -- the 32-bit CID sequence number,
two zero bits, then the 62-bit packet number -- left-pads it to the IV
size, and XORs it with the IV.

We implement that construction verbatim.  The cipher itself is a
deterministic keyed-XOR stream with a 16-byte MAC (SHA-256 based):
not secure, but it round-trips, detects tampering, and -- the part the
protocol logic cares about -- produces distinct nonces for the same
packet number on different paths.
"""

from __future__ import annotations

import hashlib
from typing import Optional

TAG_LENGTH = 16
IV_LENGTH = 12  # 96 bits


def build_nonce(iv: bytes, cid_sequence_number: int,
                packet_number: int) -> bytes:
    """Multipath AEAD nonce: IV XOR padded path-and-packet-number."""
    if len(iv) < IV_LENGTH:
        raise ValueError(f"IV must be at least {IV_LENGTH} bytes")
    if not 0 <= cid_sequence_number < (1 << 32):
        raise ValueError("CID sequence number must fit 32 bits")
    if not 0 <= packet_number < (1 << 62):
        raise ValueError("packet number must fit 62 bits")
    # 32-bit CID seq, 2 zero bits, 62-bit packet number = 96 bits.
    combined = (cid_sequence_number << 64) | packet_number
    ppn = combined.to_bytes(IV_LENGTH, "big")
    # Left-pad to the IV size (no-op when IV is exactly 96 bits).
    ppn = b"\x00" * (len(iv) - len(ppn)) + ppn
    return bytes(a ^ b for a, b in zip(ppn, iv))


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Deterministic keystream: SHA-256(key || nonce || counter) blocks."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.sha256(
            key + nonce + counter.to_bytes(4, "big")).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


def _tag(key: bytes, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
    return hashlib.sha256(
        b"tag" + key + nonce + aad + ciphertext).digest()[:TAG_LENGTH]


class PacketProtection:
    """Seals and opens packet payloads with the multipath nonce."""

    def __init__(self, key: bytes, iv: Optional[bytes] = None) -> None:
        if not key:
            raise ValueError("key must be non-empty")
        self.key = bytes(key)
        self.iv = bytes(iv) if iv is not None else hashlib.sha256(
            b"iv" + self.key).digest()[:IV_LENGTH]

    def seal(self, plaintext: bytes, aad: bytes,
             cid_sequence_number: int, packet_number: int) -> bytes:
        """Encrypt and authenticate; returns ciphertext || tag."""
        nonce = build_nonce(self.iv, cid_sequence_number, packet_number)
        stream = _keystream(self.key, nonce, len(plaintext))
        ciphertext = bytes(a ^ b for a, b in zip(plaintext, stream))
        return ciphertext + _tag(self.key, nonce, aad, ciphertext)

    def open(self, sealed: bytes, aad: bytes,
             cid_sequence_number: int, packet_number: int) -> bytes:
        """Verify and decrypt; raises ValueError on authentication failure."""
        if len(sealed) < TAG_LENGTH:
            raise ValueError("sealed payload shorter than tag")
        ciphertext, tag = sealed[:-TAG_LENGTH], sealed[-TAG_LENGTH:]
        nonce = build_nonce(self.iv, cid_sequence_number, packet_number)
        if _tag(self.key, nonce, aad, ciphertext) != tag:
            raise ValueError("AEAD authentication failed")
        stream = _keystream(self.key, nonce, len(ciphertext))
        return bytes(a ^ b for a, b in zip(ciphertext, stream))


def derive_connection_key(secret: bytes) -> bytes:
    """Derive the shared 1-RTT key from a handshake secret."""
    return hashlib.sha256(b"quic-key" + secret).digest()
