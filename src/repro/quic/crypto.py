"""Toy AEAD with the multipath nonce construction of Sec. 6.

The paper keeps QUIC packet protection unchanged except for the AEAD
nonce: with per-path packet-number spaces the (key, packet number)
pair no longer uniquely identifies a packet, so the draft constructs a
96-bit *path-and-packet-number* -- the 32-bit CID sequence number,
two zero bits, then the 62-bit packet number -- left-pads it to the IV
size, and XORs it with the IV.

We implement that construction verbatim.  The cipher itself is a
deterministic keyed-XOR stream with a 16-byte MAC (SHA-256 based):
not secure, but it round-trips, detects tampering, and -- the part the
protocol logic cares about -- produces distinct nonces for the same
packet number on different paths.

Hot-path implementation
-----------------------

Seal/open dominate the emulator's per-datagram cost (XLINK re-injects
duplicates, so AEAD volume is *higher* than single-path QUIC), so the
implementation is vectorized while staying **bit-identical** to the
original per-block / per-byte reference:

- the keystream is still SHA-256(key || nonce || counter) blocks, but
  generated via a copy-update hash chain (the ``key`` prefix is hashed
  once per key, the ``key || nonce`` prefix once per packet) and
  XORed with the payload as one large integer instead of a per-byte
  generator expression;
- keystreams are memoized in a bounded FIFO cache keyed by
  ``(key, nonce, blocks)``.  Both endpoints of an emulated connection
  live in the same process and derive the same key, so the receiver's
  ``open`` reuses the keystream the sender's ``seal`` just computed;
- :func:`build_nonce` caches the IV-XOR-CID-sequence prefix per path,
  so per packet only the packet-number XOR and a 12-byte conversion
  remain;
- ``seal``/``open`` accept any bytes-like payload/AAD (the connection
  passes ``memoryview`` slices of the datagram, avoiding copies).

``tests/test_hotpath_reference.py`` pins the output to reference
vectors generated from the pre-optimization implementation.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple, Union

BytesLike = Union[bytes, bytearray, memoryview]

TAG_LENGTH = 16
IV_LENGTH = 12  # 96 bits

#: (iv, cid_sequence_number) -> int(iv) XOR (cid_sequence_number << 64)
_NONCE_PREFIX_CACHE: Dict[Tuple[bytes, int], Tuple[int, int]] = {}
_NONCE_PREFIX_CACHE_MAX = 4096

#: (key, nonce, blocks) -> keystream as a big integer
_KEYSTREAM_CACHE: Dict[Tuple[bytes, bytes, int], int] = {}
_KEYSTREAM_CACHE_MAX = 1024

#: (key, nonce) -> (sealed, aad, plaintext) recorded by ``seal``.
#: Both endpoints of an emulated connection share the process and the
#: key, so ``open`` first compares the incoming packet -- sealed bytes
#: AND associated data -- byte-for-byte against what ``seal`` produced
#: for that nonce: an exact match *implies* the tag check passes (the
#: tag is a deterministic function of key/nonce/aad/ciphertext) and
#: returns the recorded plaintext without re-hashing.  Any mismatch
#: (bit corruption, altered header) falls through to the full verify,
#: which rejects exactly as the reference implementation would.
_SEAL_CACHE: Dict[Tuple[bytes, bytes], Tuple[bytes, bytes, bytes]] = {}
_SEAL_CACHE_MAX = 512

#: key -> sha256 hash object primed with the key bytes
_KEY_HASH_CACHE: Dict[bytes, "hashlib._Hash"] = {}
_KEY_HASH_CACHE_MAX = 256

#: precomputed 4-byte big-endian counters (48 blocks cover 1536 bytes,
#: beyond any datagram this stack emits)
_COUNTERS = tuple(i.to_bytes(4, "big") for i in range(48))


def build_nonce(iv: bytes, cid_sequence_number: int,
                packet_number: int) -> bytes:
    """Multipath AEAD nonce: IV XOR padded path-and-packet-number."""
    cached = _NONCE_PREFIX_CACHE.get((iv, cid_sequence_number))
    if cached is None:
        if len(iv) < IV_LENGTH:
            raise ValueError(f"IV must be at least {IV_LENGTH} bytes")
        if not 0 <= cid_sequence_number < (1 << 32):
            raise ValueError("CID sequence number must fit 32 bits")
        # 32-bit CID seq, 2 zero bits, 62-bit packet number = 96 bits,
        # left-padded to the IV size; the packet number occupies bits
        # 0..61, so the xor below composes the same 96-bit value the
        # reference implementation built byte-by-byte.
        prefix = int.from_bytes(iv, "big") ^ (cid_sequence_number << 64)
        cached = (prefix, len(iv))
        if len(_NONCE_PREFIX_CACHE) >= _NONCE_PREFIX_CACHE_MAX:
            _NONCE_PREFIX_CACHE.pop(next(iter(_NONCE_PREFIX_CACHE)))
        _NONCE_PREFIX_CACHE[(iv, cid_sequence_number)] = cached
    if not 0 <= packet_number < (1 << 62):
        raise ValueError("packet number must fit 62 bits")
    prefix, iv_len = cached
    return (prefix ^ packet_number).to_bytes(iv_len, "big")


def _key_hash(key: bytes) -> "hashlib._Hash":
    base = _KEY_HASH_CACHE.get(key)
    if base is None:
        base = hashlib.sha256(key)
        if len(_KEY_HASH_CACHE) >= _KEY_HASH_CACHE_MAX:
            _KEY_HASH_CACHE.pop(next(iter(_KEY_HASH_CACHE)))
        _KEY_HASH_CACHE[key] = base
    return base


def _keystream_int(key: bytes, nonce: bytes, blocks: int) -> int:
    """``blocks`` SHA-256 keystream blocks as one big-endian integer."""
    cache_key = (key, nonce, blocks)
    stream = _KEYSTREAM_CACHE.get(cache_key)
    if stream is None:
        prefix = _key_hash(key).copy()
        prefix.update(nonce)
        counters = _COUNTERS if blocks <= len(_COUNTERS) else \
            tuple(i.to_bytes(4, "big") for i in range(blocks))
        parts = []
        append = parts.append
        copy = prefix.copy
        for i in range(blocks):
            h = copy()
            h.update(counters[i])
            append(h.digest())
        stream = int.from_bytes(b"".join(parts), "big")
        if len(_KEYSTREAM_CACHE) >= _KEYSTREAM_CACHE_MAX:
            _KEYSTREAM_CACHE.pop(next(iter(_KEYSTREAM_CACHE)))
        _KEYSTREAM_CACHE[cache_key] = stream
    return stream


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Deterministic keystream: SHA-256(key || nonce || counter) blocks."""
    if length == 0:
        return b""
    blocks = (length + 31) >> 5
    stream = _keystream_int(key, nonce, blocks)
    return (stream >> ((blocks * 32 - length) << 3)).to_bytes(length, "big")


def _xor_keystream(key: bytes, nonce: bytes, data: BytesLike) -> bytes:
    """``data`` XOR keystream, as a single large-integer operation."""
    length = len(data)
    if length == 0:
        return b""
    blocks = (length + 31) >> 5
    stream = _keystream_int(key, nonce, blocks) \
        >> ((blocks * 32 - length) << 3)
    return (int.from_bytes(data, "big") ^ stream).to_bytes(length, "big")


def _tag(key: bytes, nonce: bytes, aad: BytesLike,
         ciphertext: BytesLike) -> bytes:
    return hashlib.sha256(
        b"tag" + key + nonce + bytes(aad) + bytes(ciphertext)
    ).digest()[:TAG_LENGTH]


class PacketProtection:
    """Seals and opens packet payloads with the multipath nonce."""

    __slots__ = ("key", "iv", "_tag_base")

    def __init__(self, key: bytes, iv: Optional[bytes] = None) -> None:
        if not key:
            raise ValueError("key must be non-empty")
        self.key = bytes(key)
        self.iv = bytes(iv) if iv is not None else hashlib.sha256(
            b"iv" + self.key).digest()[:IV_LENGTH]
        #: sha256 primed with b"tag" || key; copied per tag computation
        self._tag_base = hashlib.sha256(b"tag" + self.key)

    def _tag_for(self, nonce: bytes, aad: BytesLike,
                 ciphertext: BytesLike) -> bytes:
        h = self._tag_base.copy()
        h.update(nonce)
        h.update(aad)
        h.update(ciphertext)
        return h.digest()[:TAG_LENGTH]

    def seal(self, plaintext: BytesLike, aad: BytesLike,
             cid_sequence_number: int, packet_number: int) -> bytes:
        """Encrypt and authenticate; returns ciphertext || tag."""
        nonce = build_nonce(self.iv, cid_sequence_number, packet_number)
        ciphertext = _xor_keystream(self.key, nonce, plaintext)
        sealed = ciphertext + self._tag_for(nonce, aad, ciphertext)
        if len(_SEAL_CACHE) >= _SEAL_CACHE_MAX:
            _SEAL_CACHE.pop(next(iter(_SEAL_CACHE)))
        _SEAL_CACHE[(self.key, nonce)] = (sealed, bytes(aad),
                                          bytes(plaintext))
        return sealed

    def open(self, sealed: BytesLike, aad: BytesLike,
             cid_sequence_number: int, packet_number: int) -> bytes:
        """Verify and decrypt; raises ValueError on authentication failure."""
        if len(sealed) < TAG_LENGTH:
            raise ValueError("sealed payload shorter than tag")
        nonce = build_nonce(self.iv, cid_sequence_number, packet_number)
        cached = _SEAL_CACHE.get((self.key, nonce))
        if cached is not None and cached[0] == sealed and cached[1] == aad:
            return cached[2]
        view = memoryview(sealed)
        ciphertext, tag = view[:-TAG_LENGTH], view[-TAG_LENGTH:]
        if self._tag_for(nonce, aad, ciphertext) != tag:
            raise ValueError("AEAD authentication failed")
        return _xor_keystream(self.key, nonce, ciphertext)


def derive_connection_key(secret: bytes) -> bytes:
    """Derive the shared 1-RTT key from a handshake secret."""
    return hashlib.sha256(b"quic-key" + secret).digest()
