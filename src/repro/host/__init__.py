"""Layered endpoint runtime: one emulated CDN node, many sessions.

- :class:`ServerHost` -- owns the listening endpoint, demultiplexes
  datagrams to per-connection state by DCID, serves everything from
  one shared media catalog.
- :class:`ClientEndpoint` -- one user's device behind explicit
  ``on_datagram`` / ``on_established`` hooks.
- :class:`SessionRuntime` -- provisions N concurrent sessions and
  drives the event loop; the single-session harness is its N=1 case.
"""

from repro.host.client import ClientEndpoint, MigrationMonitor
from repro.host.runtime import (SessionHandle, SessionResult, SessionRuntime,
                                VideoSessionSpec)
from repro.host.server import ServerHost
from repro.host.specs import (SCHEMES, Interface, PathSpec, SchemeConfig,
                              build_network, make_scheduler, scheme_with_cc)

__all__ = [
    "SCHEMES",
    "ClientEndpoint",
    "Interface",
    "MigrationMonitor",
    "PathSpec",
    "SchemeConfig",
    "ServerHost",
    "SessionHandle",
    "SessionResult",
    "SessionRuntime",
    "VideoSessionSpec",
    "build_network",
    "make_scheduler",
    "scheme_with_cc",
]
