"""The session runtime: N concurrent sessions against one ServerHost.

This is the layered endpoint architecture the experiments run on:

    MultipathNetwork -- emulated paths (shared-link attachment for
        multi-user cells)
    CdnFrontend      -- the QUIC-LB front door; consistent-hashes
        handshake DCIDs and routes server-ID-embedding CIDs, exactly
        the Sec. 6 deployment shape
    ServerHost       -- one CDN node; demultiplexes datagrams to
        per-connection state, serves all of them from one shared
        MediaServer catalog
    ClientEndpoint   -- one user's device; connection + player + CM
        monitor behind explicit hooks

``repro.experiments.harness.run_video_session`` is the N=1 case of
this runtime (bit-identical to the pre-runtime harness by test);
``repro.experiments.contention`` is the N>1 shared-cell case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.host.client import ClientEndpoint
from repro.host.server import ServerHost
from repro.host.specs import SCHEMES, SchemeConfig
from repro.lb.frontend import CdnFrontend
from repro.metrics.qoe import SessionMetrics
from repro.netem import MultipathNetwork
from repro.quic.connection import Connection
from repro.quic.trace import ConnectionTracer
from repro.sim import EventLoop
from repro.traces.radio_profiles import RadioType
from repro.video import PlayerConfig, VideoPlayer
from repro.video.media import Video


@dataclass
class SessionResult:
    """Everything a bench may want from one finished session."""

    scheme: str
    completed: bool
    duration_s: float
    metrics: SessionMetrics
    #: raw objects for deep inspection
    player: Optional[VideoPlayer] = None
    client: Optional[Connection] = None
    server: Optional[Connection] = None
    net: Optional[MultipathNetwork] = None
    #: bulk-download completion time (bulk mode only)
    download_time_s: Optional[float] = None
    reinjected_bytes: int = 0
    new_stream_bytes: int = 0

    @property
    def redundancy_percent(self) -> float:
        if self.new_stream_bytes == 0:
            return 0.0
        return self.reinjected_bytes / self.new_stream_bytes * 100.0


@dataclass
class VideoSessionSpec:
    """Everything needed to stand up one video session on the runtime."""

    scheme_name: str
    interfaces: Sequence[Tuple[int, RadioType]]
    video: Video
    player_config: Optional[PlayerConfig] = None
    seed: int = 0
    primary_order: Optional[Sequence[RadioType]] = None
    #: client endpoint name; ``None`` uses the network's default client
    client_addr: Optional[str] = None
    #: shared-secret identity; ``None`` derives ``session-<seed>``
    connection_name: Optional[str] = None
    #: virtual time at which the session connects
    start_at: float = 0.0
    #: optional qlog-style tracer installed on the client connection
    tracer: Optional[ConnectionTracer] = None


@dataclass
class SessionHandle:
    """A live session inside the runtime."""

    spec: VideoSessionSpec
    client: ClientEndpoint
    server: Connection
    player: VideoPlayer

    @property
    def finished(self) -> bool:
        return self.player.finished


class SessionRuntime:
    """Drives N concurrent video sessions through one ServerHost."""

    def __init__(self, loop: EventLoop, net: MultipathNetwork,
                 videos: Optional[Dict[str, Video]] = None,
                 server_id: int = 1,
                 use_frontend: bool = True,
                 idle_timeout_s: Optional[float] = None) -> None:
        self.loop = loop
        self.net = net
        self.idle_timeout_s = idle_timeout_s
        self.host = ServerHost(loop, net, videos=videos,
                               server_id=server_id)
        if idle_timeout_s is not None:
            self.host.start_eviction(idle_timeout_s)
        self.frontend: Optional[CdnFrontend] = None
        if use_frontend:
            self.frontend = CdnFrontend({server_id: self.host})
            self.frontend.attach(net.server)
        else:
            self.host.listen()
        self.sessions: List[SessionHandle] = []
        #: sessions whose playback has not finished yet; maintained by
        #: per-player finish callbacks so :meth:`run` never has to poll
        self._unfinished = 0

    def add_session(self, spec: VideoSessionSpec) -> SessionHandle:
        """Provision both endpoints of one session.

        A session starting at ``start_at == 0`` connects immediately;
        later starts are scheduled on the loop (staggered arrivals).
        """
        scheme = SCHEMES[spec.scheme_name]
        if scheme.is_mptcp:
            raise ValueError("the MPTCP baseline does not run on the "
                             "QUIC host runtime")
        if spec.client_addr is None:
            endpoint = self.net.client
        else:
            endpoint = self.net.clients.get(spec.client_addr)
            if endpoint is None:
                endpoint = self.net.add_client(spec.client_addr)
        connection_name = (spec.connection_name
                           if spec.connection_name is not None
                           else f"session-{spec.seed}")

        client = ClientEndpoint(self.loop, endpoint, scheme,
                                spec.interfaces, seed=spec.seed,
                                connection_name=connection_name,
                                primary_order=spec.primary_order,
                                idle_timeout_s=self.idle_timeout_s)
        server = self.host.register_session(
            endpoint.name, connection_name, scheme, spec.seed,
            client.primary_net, radio=client.primary_radio,
            first_frame_acceleration=scheme.first_frame_acceleration,
            idle_timeout_s=self.idle_timeout_s)
        self._add_to_catalog(spec.video)
        player = client.attach_player(spec.video, spec.player_config)
        self._unfinished += 1
        chained = player.on_finished

        def _finished() -> None:
            self._unfinished -= 1
            if self._unfinished <= 0:
                self.loop.request_stop()
            if chained is not None:
                chained()

        player.on_finished = _finished
        if spec.tracer is not None:
            spec.tracer.install(client.conn)
        if spec.start_at <= 0:
            client.start()
        else:
            self.loop.schedule_at(spec.start_at, client.start,
                                  label="session-start")
        handle = SessionHandle(spec=spec, client=client, server=server,
                               player=player)
        self.sessions.append(handle)
        return handle

    def _add_to_catalog(self, video: Video) -> None:
        existing = self.host.media.videos.get(video.name)
        if existing is None:
            self.host.media.add_video(video)
        elif existing is not video:
            raise ValueError(
                f"catalog already holds a different video named "
                f"{video.name!r}")

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    @property
    def all_finished(self) -> bool:
        return all(h.finished for h in self.sessions)

    def run(self, timeout_s: float = 120.0) -> None:
        """Run the loop until every session's playback finishes.

        Batched driver: instead of re-evaluating ``all_finished`` (an
        O(sessions) poll) between every pair of events, the loop runs
        run-until-blocked and the finish callback installed by
        :meth:`add_session` stops it the instant the last player
        completes.  ``stop_before`` preserves the historical timeout
        semantics exactly: the event that crosses ``timeout_s`` still
        runs, then the loop returns.
        """
        if self._unfinished <= 0:
            return
        self.loop.run(stop_before=timeout_s)

    def result(self, handle: SessionHandle) -> SessionResult:
        """Assemble the metrics bundle for one session."""
        server = handle.server
        metrics = SessionMetrics.from_player(
            handle.player.stats,
            redundant_bytes=server.stats.stream_bytes_reinjected,
            useful_bytes=server.stats.stream_bytes_new)
        return SessionResult(
            scheme=handle.spec.scheme_name,
            completed=handle.player.finished,
            duration_s=self.loop.now, metrics=metrics,
            player=handle.player, client=handle.client.conn,
            server=server, net=self.net,
            reinjected_bytes=server.stats.stream_bytes_reinjected,
            new_stream_bytes=server.stats.stream_bytes_new)

    def results(self) -> List[SessionResult]:
        return [self.result(h) for h in self.sessions]
