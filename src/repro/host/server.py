"""The server-side endpoint runtime: one emulated CDN node.

A :class:`ServerHost` owns the server network endpoint and serves many
concurrent QUIC connections from one shared :class:`MediaServer`
catalog, the way one XLINK real server behind the QUIC-LB front door
serves many users (Sec. 6).  Incoming datagrams are demultiplexed to
per-connection state by DCID:

- *Handshake* packets carry a client-chosen random DCID the host has
  never issued.  The first one from a client address pins that DCID to
  the connection registered for the address (the emulator's stand-in
  for the UDP 4-tuple), so handshake retransmits keep routing stably.
- *Short-header* packets carry a host-issued CID; the host resolves it
  against its connections' CID registries (caching the mapping), which
  is exactly how all paths of one multipath connection -- each path on
  a different CID -- land on the same per-connection state.

Datagrams that resolve to no connection are dropped and classified:
``misrouted`` (the CID embeds another host's server-ID byte -- the
load balancer sent it to the wrong place), ``unknown_cid`` (our
server-ID byte but no matching connection), or ``post_close`` (the
connection already closed).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.host.specs import SchemeConfig, make_scheduler
from repro.netem import Datagram, MultipathNetwork
from repro.quic.cid import SERVER_ID_OFFSET
from repro.quic.connection import (Connection, ConnectionConfig,
                                   derive_initial_dcid)
from repro.quic.packets import PacketType, decode_header
from repro.sim import EventLoop
from repro.traces.radio_profiles import RadioType
from repro.video import MediaServer
from repro.video.media import Video


class ServerHost:
    """One emulated CDN node serving many concurrent connections."""

    def __init__(self, loop: EventLoop, net: MultipathNetwork,
                 videos: Optional[Dict[str, Video]] = None,
                 server_id: int = 1, name: Optional[str] = None,
                 first_frame_acceleration: bool = True) -> None:
        self.loop = loop
        self.net = net
        self.server_id = server_id
        self.name = name if name is not None else f"host-{server_id}"
        #: the shared media catalog every connection is served from
        self.media = MediaServer(
            videos=dict(videos or {}),
            first_frame_acceleration=first_frame_acceleration)
        self.connections: List[Connection] = []
        self._by_addr: Dict[str, Connection] = {}
        #: client handshake DCID -> connection (pinned on first sight)
        self._initial_route: Dict[bytes, Connection] = {}
        #: host-issued CID bytes -> connection (filled lazily)
        self._cid_route: Dict[bytes, Connection] = {}
        self.datagrams_routed = 0
        self.datagrams_dropped = 0
        self.misrouted = 0
        self.unknown_cid = 0
        self.post_close_drops = 0
        #: eviction accounting (see :meth:`start_eviction`)
        self.evicted_closed = 0
        self.evicted_idle = 0
        self._eviction_event = None
        self._eviction_idle_s: Optional[float] = None
        self._eviction_interval_s = 1.0

    # ------------------------------------------------------------------
    # session provisioning
    # ------------------------------------------------------------------

    def listen(self) -> None:
        """Receive directly from the network's server endpoint.

        Single-host deployments may skip the :class:`CdnFrontend`; the
        runtime normally wires the frontend in between instead.
        """
        self.net.server.on_receive(self.on_datagram)

    def register_session(self, client_addr: str, connection_name: str,
                         scheme: SchemeConfig, seed: int,
                         primary_net: int,
                         radio: Optional[RadioType] = None,
                         first_frame_acceleration: Optional[bool] = None,
                         idle_timeout_s: Optional[float] = None
                         ) -> Connection:
        """Provision the server side of one expected session.

        Creates the per-connection state (transport config mirrors the
        scheme, path 0 bound to the client's primary interface),
        addresses its egress to ``client_addr``, and attaches it to the
        shared media catalog.  Returns the server connection.
        """
        if client_addr in self._by_addr:
            raise ValueError(f"address {client_addr!r} already registered")
        conn = Connection(
            self.loop,
            ConnectionConfig(is_client=False,
                             enable_multipath=scheme.multipath,
                             cc_algorithm=scheme.cc_algorithm,
                             ack_path_policy=scheme.ack_path_policy,
                             seed=seed,
                             idle_timeout_s=idle_timeout_s),
            transmit=self._transmit_to(client_addr),
            scheduler=make_scheduler(scheme),
            connection_name=connection_name,
            server_id=self.server_id)
        conn.add_local_path(0, primary_net, radio=radio)
        self.media.attach(
            conn, first_frame_acceleration=first_frame_acceleration)
        self.connections.append(conn)
        self._by_addr[client_addr] = conn
        # Pre-pin the client's (deterministic) initial DCID: handshake
        # datagrams then route even if the source address changed (NAT
        # rebind) before the first packet could pin it by address.
        self._initial_route[
            derive_initial_dcid(seed, connection_name)] = conn
        return conn

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------

    def start_eviction(self, idle_timeout_s: float,
                       interval_s: float = 1.0) -> None:
        """Periodically evict dead and idle connections.

        Closed connections (protocol-error closes, idle timeouts,
        client-initiated closes) are purged from the routing tables so
        late datagrams land in ``post_close``/``unknown_cid`` drop
        accounting instead of touching dead state; connections silent
        beyond ``idle_timeout_s`` are closed and purged -- the host's
        defence against clients that vanish without closing.
        """
        self._eviction_idle_s = idle_timeout_s
        self._eviction_interval_s = interval_s
        if self._eviction_event is None:
            self._eviction_event = self.loop.schedule_after(
                interval_s, self._eviction_sweep, label="host-evict")

    def _eviction_sweep(self) -> None:
        self._eviction_event = None
        now = self.loop.now
        for conn in list(self.connections):
            if conn.closed:
                self._evict(conn)
                self.evicted_closed += 1
            elif self._eviction_idle_s is not None \
                    and now - conn.last_activity_at > self._eviction_idle_s:
                conn.silent_close()
                self._evict(conn)
                self.evicted_idle += 1
        # Re-arm only while there is anything left to watch, so
        # drain-to-empty simulations still terminate.
        if self.connections:
            self._eviction_event = self.loop.schedule_after(
                self._eviction_interval_s, self._eviction_sweep,
                label="host-evict")

    def _evict(self, conn: Connection) -> None:
        if conn in self.connections:
            self.connections.remove(conn)
        for table in (self._by_addr, self._initial_route, self._cid_route):
            for key in [k for k, v in table.items() if v is conn]:
                del table[key]

    def _transmit_to(self, client_addr: str) -> Callable[[int, bytes], None]:
        endpoint = self.net.server

        def transmit(net_path_id: int, payload: bytes) -> None:
            endpoint.send(Datagram(payload=payload, path_id=net_path_id,
                                   dst=client_addr))

        return transmit

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------

    def on_datagram(self, dgram: Datagram) -> None:
        """Demultiplex one incoming datagram to its connection."""
        conn = self.route_connection(dgram)
        if conn is None:
            self.datagrams_dropped += 1
            return
        if conn.closed:
            self.post_close_drops += 1
            self.datagrams_dropped += 1
            return
        self.datagrams_routed += 1
        conn.datagram_received(dgram.payload, dgram.path_id)

    def route_connection(self, dgram: Datagram) -> Optional[Connection]:
        """Resolve the connection a datagram belongs to, or ``None``."""
        try:
            header, _offset = decode_header(dgram.payload)
        except Exception:
            return None
        if header.packet_type is PacketType.HANDSHAKE:
            conn = self._initial_route.get(header.dcid)
            if conn is None:
                conn = self._by_addr.get(dgram.src)
                if conn is not None:
                    self._initial_route[header.dcid] = conn
            return conn
        conn = self._cid_route.get(header.dcid)
        if conn is not None:
            return conn
        for candidate in self.connections:
            if candidate.cids.lookup_issued(header.dcid) is not None:
                self._cid_route[header.dcid] = candidate
                return candidate
        if header.dcid and header.dcid[SERVER_ID_OFFSET] != self.server_id:
            self.misrouted += 1
        else:
            self.unknown_cid += 1
        return None
