"""Session vocabulary shared by the host runtime and the experiments.

========== =============================================================
scheme      configuration
========== =============================================================
sp          single-path QUIC on the primary interface
cm          single-path QUIC with connection migration (probe + cwnd
            reset) -- the CM baseline of Fig. 13
vanilla_mp  multipath QUIC, min-RTT scheduler, no re-injection
            (MPQUIC default; Sec. 3)
reinject    XLINK re-injection *without* QoE control (always on) --
            the 15%-overhead configuration of Sec. 5.2
xlink       full XLINK: priority-based re-injection gated by the
            double-threshold QoE controller
xlink_nofa  XLINK without first-video-frame acceleration (Fig. 12's
            ablation)
mptcp       the MPTCP baseline (bulk transfers; single ordered stream)
========== =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, NamedTuple, Optional, Sequence

from repro.core import (MinRttScheduler, ReinjectionMode, SinglePathScheduler,
                        ThresholdConfig, XlinkScheduler)
from repro.netem import MultipathNetwork, OutageSchedule
from repro.sim import EventLoop
from repro.sim.rng import make_rng
from repro.traces.radio_profiles import RadioType


@dataclass
class PathSpec:
    """One emulated network path."""

    net_path_id: int
    radio: RadioType
    one_way_delay_s: float
    rate_bps: Optional[float] = None
    trace_ms: Optional[List[int]] = None
    loss_rate: float = 0.0
    queue_limit_bytes: int = 192 * 1024
    outages: Optional[OutageSchedule] = None

    def __post_init__(self) -> None:
        if (self.rate_bps is None) == (self.trace_ms is None):
            raise ValueError("specify exactly one of rate_bps / trace_ms")


class Interface(NamedTuple):
    """A client NIC: which emulated path it attaches to, and its radio.

    Unpacks like a plain ``(net_path_id, radio)`` tuple, so it is
    accepted anywhere the path manager expects interface pairs.
    """

    net_path_id: int
    radio: RadioType


@dataclass
class SchemeConfig:
    """Resolved transport configuration for one scheme."""

    name: str
    multipath: bool
    reinjection_mode: ReinjectionMode = ReinjectionMode.NONE
    thresholds: Optional[ThresholdConfig] = None
    connection_migration: bool = False
    first_frame_acceleration: bool = True
    ack_path_policy: str = "fastest"
    cc_algorithm: str = "cubic"
    is_mptcp: bool = False


def _xlink_scheme(name: str, **kw) -> SchemeConfig:
    base = dict(multipath=True,
                reinjection_mode=ReinjectionMode.FRAME_PRIORITY,
                thresholds=ThresholdConfig(t_th1=0.5, t_th2=2.0))
    base.update(kw)
    return SchemeConfig(name=name, **base)


SCHEMES: Dict[str, SchemeConfig] = {
    "sp": SchemeConfig(name="sp", multipath=False),
    "cm": SchemeConfig(name="cm", multipath=False,
                       connection_migration=True),
    "vanilla_mp": SchemeConfig(name="vanilla_mp", multipath=True,
                               reinjection_mode=ReinjectionMode.NONE),
    "reinject": _xlink_scheme(
        "reinject", thresholds=ThresholdConfig(always_on=True)),
    "xlink": _xlink_scheme("xlink"),
    "xlink_nofa": _xlink_scheme(
        "xlink_nofa", reinjection_mode=ReinjectionMode.STREAM_PRIORITY,
        first_frame_acceleration=False),
    "mptcp": SchemeConfig(name="mptcp", multipath=True, is_mptcp=True),
}


def scheme_with_cc(scheme_name: str, cc: str) -> str:
    """Register (idempotently) and name a scheme × CC variant.

    ``scheme_with_cc("xlink", "bbr")`` returns ``"xlink+bbr"`` backed
    by the xlink :class:`SchemeConfig` with ``cc_algorithm="bbr"``.
    The base scheme's default CC returns the base name unchanged, so
    experiment drivers can map every scheme through this without
    perturbing the default (bit-pinned) configurations.  The MPTCP
    baseline has its own fixed controller and is returned unchanged.

    The variant is inserted into ``SCHEMES``, which is exactly what
    :class:`~repro.experiments.parallel.SessionTask.scheme_config`
    ships to fork workers, so dynamically created variants work under
    parallel fan-out too.
    """
    base = SCHEMES[scheme_name]
    if base.is_mptcp or cc == base.cc_algorithm:
        return scheme_name
    name = f"{scheme_name}+{cc}"
    if name not in SCHEMES:
        # Validate eagerly: an unknown CC should fail at configuration
        # time, not inside a worker process mid-experiment.
        from repro.quic.cc import CC_REGISTRY
        if cc not in CC_REGISTRY:
            raise ValueError(f"unknown congestion controller {cc!r}")
        SCHEMES[name] = replace(base, name=name, cc_algorithm=cc)
    return name


def make_scheduler(scheme: SchemeConfig):
    """The packet scheduler both endpoints of a scheme run."""
    if not scheme.multipath:
        return SinglePathScheduler()
    if scheme.reinjection_mode is ReinjectionMode.NONE:
        return MinRttScheduler()
    return XlinkScheduler(mode=scheme.reinjection_mode,
                          thresholds=scheme.thresholds)


def build_network(loop: EventLoop, paths: Sequence[PathSpec],
                  seed: int) -> MultipathNetwork:
    """Instantiate the emulated paths of a session network."""
    net = MultipathNetwork(loop)
    for spec in paths:
        rng = make_rng(seed, f"path-{spec.net_path_id}")
        if spec.trace_ms is not None:
            net.add_trace_path(
                spec.net_path_id, spec.trace_ms, spec.one_way_delay_s,
                loss_rate=spec.loss_rate,
                queue_limit_bytes=spec.queue_limit_bytes,
                outages=spec.outages, rng=rng)
        else:
            net.add_simple_path(
                spec.net_path_id, spec.rate_bps, spec.one_way_delay_s,
                loss_rate=spec.loss_rate,
                queue_limit_bytes=spec.queue_limit_bytes,
                outages=spec.outages, rng=rng)
    return net
