"""The client-side endpoint runtime.

A :class:`ClientEndpoint` wraps one client connection together with its
application wiring -- video player, secondary-path bring-up, and the
CM baseline's migration monitor -- behind explicit ``on_datagram`` /
``on_established`` hooks.  Nothing monkey-patches the connection: the
migration monitor observes traffic through the connection's
receive-hook API, the same mechanism :class:`ConnectionTracer` uses.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Sequence, Tuple

from repro.core import select_primary_path
from repro.host.specs import SchemeConfig, make_scheduler
from repro.netem import Datagram
from repro.netem.network import Endpoint
from repro.quic.connection import Connection, ConnectionConfig
from repro.quic.path import PathState
from repro.sim import EventLoop
from repro.traces.radio_profiles import RadioType
from repro.video import PlayerConfig, VideoPlayer
from repro.video.media import Video


class ClientEndpoint:
    """One user's device: connection + player + path management."""

    def __init__(self, loop: EventLoop, endpoint: Endpoint,
                 scheme: SchemeConfig,
                 interfaces: Sequence[Tuple[int, RadioType]],
                 seed: int = 0,
                 connection_name: Optional[str] = None,
                 primary_order: Optional[Sequence[RadioType]] = None,
                 idle_timeout_s: Optional[float] = None
                 ) -> None:
        self.loop = loop
        self.endpoint = endpoint
        self.scheme = scheme
        self.interfaces = [tuple(i) for i in interfaces]
        self.seed = seed
        self.connection_name = (connection_name if connection_name is not None
                                else f"session-{seed}")
        self.player: Optional[VideoPlayer] = None
        self.monitor: Optional[MigrationMonitor] = None
        #: user hook, fired after secondary paths open and playback starts
        self.on_established: Optional[Callable[[], None]] = None

        # The client runs the same scheduler family as the server: the
        # XLINK client (Taobao app) schedules its request packets with
        # the same QoE-driven logic, which matters when the primary
        # path dies holding an un-acked HTTP request.
        self.conn = Connection(
            loop,
            ConnectionConfig(is_client=True,
                             enable_multipath=scheme.multipath,
                             cc_algorithm=scheme.cc_algorithm,
                             ack_path_policy=scheme.ack_path_policy,
                             seed=seed,
                             idle_timeout_s=idle_timeout_s),
            transmit=lambda pid, data: endpoint.send(
                Datagram(payload=data, path_id=pid)),
            scheduler=make_scheduler(scheme),
            connection_name=self.connection_name)
        endpoint.on_receive(self.on_datagram)

        # Wireless-aware primary path selection (Sec. 5.3): QUIC path 0
        # maps to the preferred interface.
        if primary_order is not None:
            self.primary_net = select_primary_path(self.interfaces,
                                                   order=primary_order)
        else:
            self.primary_net = select_primary_path(self.interfaces)
        self.primary_radio = next(
            radio for net_id, radio in self.interfaces
            if net_id == self.primary_net)
        self.secondaries = [(net_id, radio)
                            for net_id, radio in self.interfaces
                            if net_id != self.primary_net]
        self.conn.add_local_path(0, self.primary_net,
                                 radio=self.primary_radio)
        self.conn.on_established = self._established

    # -- datagram + lifecycle hooks -------------------------------------

    def on_datagram(self, dgram: Datagram) -> None:
        """Entry point for datagrams from this host's network endpoint."""
        self.conn.datagram_received(dgram.payload, dgram.path_id)

    def _established(self) -> None:
        if self.scheme.multipath and self.conn.multipath_negotiated:
            for i, (net_id, radio) in enumerate(self.secondaries, start=1):
                self.conn.open_path(i, net_id, radio=radio)
        if self.player is not None:
            self.player.start()
        if self.on_established is not None:
            self.on_established()

    # -- application wiring ---------------------------------------------

    def attach_player(self, video: Video,
                      config: Optional[PlayerConfig] = None) -> VideoPlayer:
        """Create the video player (started once the handshake finishes)."""
        self.player = VideoPlayer(self.loop, self.conn, video, config=config)
        return self.player

    def start(self) -> None:
        """Connect; enable the CM migration monitor when the scheme asks."""
        self.conn.connect()
        if self.scheme.connection_migration:
            self.monitor = MigrationMonitor(
                self.loop, self.conn,
                [net_id for net_id, _radio in self.interfaces],
                self.primary_net)

    @property
    def finished(self) -> bool:
        return self.player is not None and self.player.finished


class MigrationMonitor:
    """CM baseline: probe the active path, migrate on stall.

    QUIC connection migration is client-driven: when nothing has been
    received for a degradation threshold, the client migrates to the
    other interface, which resets the congestion window (Sec. 2).  The
    monitor observes traffic via the connection's receive-hook API.
    """

    #: idle time on the active path that forces a migration
    STALL_THRESHOLD_S = 0.6
    #: a path is degraded when its short-window goodput falls below
    #: this fraction of the session's running average
    DEGRADED_FRACTION = 0.2
    WINDOW_S = 0.7
    PROBE_INTERVAL_S = 0.1

    def __init__(self, loop: EventLoop, conn: Connection,
                 net_path_ids: Sequence[int], primary_net: int) -> None:
        self.loop = loop
        self.conn = conn
        self.current_net = primary_net
        self.others = [n for n in net_path_ids if n != primary_net]
        self.last_rx = 0.0
        self._started_at = loop.now
        self.bytes = 0
        #: (time, cumulative bytes) samples; old entries age off the left
        self.window: Deque[Tuple[float, int]] = deque()
        self.migrated_at = -1.0
        self.migrations = 0
        self._next_quic_id = 1
        conn.add_receive_hook(self._on_datagram)
        loop.schedule_after(self.PROBE_INTERVAL_S, self._probe,
                            label="cm-probe")

    def _on_datagram(self, payload: bytes, net_path_id: int = -1) -> None:
        self.last_rx = self.loop.now
        self.bytes += len(payload)

    def _degraded(self) -> bool:
        """Idle too long, or goodput collapsed vs the session average."""
        now = self.loop.now
        if now - self.last_rx > self.STALL_THRESHOLD_S:
            return True
        window = self.window
        window.append((now, self.bytes))
        while window and window[0][0] < now - self.WINDOW_S:
            window.popleft()
        if now < 1.0 or len(window) < 3:
            return False
        recent_rate = (window[-1][1] - window[0][1]) / self.WINDOW_S
        average_rate = self.bytes / max(now, 1e-9)
        return recent_rate < self.DEGRADED_FRACTION * average_rate

    def _probe(self) -> None:
        conn = self.conn
        if conn.closed:
            return
        # Outstanding work: a request stream was FINed but its response
        # is missing or incomplete (the response may not have *started*,
        # so checking recv_streams alone is not enough).
        have_work = False
        for sid in conn.send_streams:
            recv = conn.recv_streams.get(sid)
            if recv is None or not recv.is_complete:
                have_work = True
                break
        recently_migrated = \
            self.loop.now - self.migrated_at < 1.0
        if not conn.established:
            # Mid-handshake outage: nothing has ever been received, so
            # goodput heuristics are useless -- a silent handshake is
            # itself the stall signal (Wi-Fi died under the first
            # flight).  Rebind to the other interface and retransmit.
            stalled = self.loop.now - max(self.last_rx, self._started_at) \
                > self.STALL_THRESHOLD_S
            if stalled and self.others and not recently_migrated:
                self._migrate_handshake()
            self.loop.schedule_after(self.PROBE_INTERVAL_S, self._probe,
                                     label="cm-probe")
            return
        if (have_work and not recently_migrated
                and self._degraded() and self.others):
            if not self._migrate():
                return  # path bring-up failed; stop probing
        self.loop.schedule_after(self.PROBE_INTERVAL_S, self._probe,
                                 label="cm-probe")

    def _migrate_handshake(self) -> None:
        """Rebind path 0 to the other interface before establishment.

        There is no validated secondary path to migrate onto yet, so
        this is the pure CM rebind: point path 0's egress at the other
        interface, reset congestion state, and retransmit the
        handshake immediately.  The server follows the new source
        interface when the retransmit arrives.
        """
        conn = self.conn
        target_net = self.others[0]
        self.others[0] = self.current_net
        self.current_net = target_net
        conn.net_path_of[0] = target_net
        conn.paths[0].cc.reset()
        conn.retransmit_handshake()
        self.last_rx = self.loop.now
        self.migrated_at = self.loop.now
        self.window.clear()
        self.migrations += 1

    def _migrate(self) -> bool:
        """Open (or reuse) a path on the other interface and make it
        the only active one, resetting its cwnd."""
        conn = self.conn
        target_net = self.others[0]
        self.others[0] = self.current_net
        self.current_net = target_net
        existing = next(
            (p for p in conn.paths.values()
             if conn.net_path_of.get(p.path_id) == target_net
             and p.state is not PathState.ABANDONED), None)
        if existing is None and conn.multipath_negotiated:
            quic_id = self._next_quic_id
            self._next_quic_id += 1
            try:
                conn.open_path(quic_id, target_net)
            except Exception:
                return False
            conn.migrate(quic_id)
        elif existing is not None:
            conn.migrate(existing.path_id)
        else:
            # Pure single-path CM: rebind path 0 to the new interface
            # and reset its congestion state; the probe teaches the
            # server the client's new address.
            conn.net_path_of[0] = target_net
            conn.paths[0].cc.reset()
            conn.send_ping(0)
        self.last_rx = self.loop.now
        self.migrated_at = self.loop.now
        self.window.clear()
        self.migrations += 1
        return True
