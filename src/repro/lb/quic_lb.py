"""QUIC-LB-style connection-ID routing.

The paper's CDN deployment (Sec. 6) routes with consistent hashing on
connection IDs: a real server encodes its server ID into the CIDs it
issues, so every path of one connection -- each using a different CID
-- reaches the same backend.  A second level of the same trick encodes
a process ID so the right worker process gets the packet.

Two routers are provided:

- :class:`QuicLbRouter` -- deterministic routing by the embedded
  server-ID byte (the QUIC-LB draft's encoded mode).
- :class:`ConsistentHashRing` -- hash-ring fallback for CIDs without
  an encoded ID (e.g. the client's initial random DCID).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Sequence

from repro.quic.cid import SERVER_ID_OFFSET


class ConsistentHashRing:
    """Classic consistent hashing with virtual nodes."""

    def __init__(self, nodes: Sequence[str], replicas: int = 64) -> None:
        if not nodes:
            raise ValueError("ring needs at least one node")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._ring: List[int] = []
        self._owner: Dict[int, str] = {}
        for node in nodes:
            self.add_node(node)

    @staticmethod
    def _hash(data: bytes) -> int:
        return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")

    def add_node(self, node: str) -> None:
        for i in range(self.replicas):
            point = self._hash(f"{node}:{i}".encode())
            if point in self._owner:
                continue
            bisect.insort(self._ring, point)
            self._owner[point] = node

    def remove_node(self, node: str) -> None:
        for i in range(self.replicas):
            point = self._hash(f"{node}:{i}".encode())
            if self._owner.get(point) == node:
                del self._owner[point]
                idx = bisect.bisect_left(self._ring, point)
                if idx < len(self._ring) and self._ring[idx] == point:
                    self._ring.pop(idx)

    def node_for(self, key: bytes) -> str:
        if not self._ring:
            raise RuntimeError("empty hash ring")
        point = self._hash(key)
        idx = bisect.bisect(self._ring, point) % len(self._ring)
        return self._owner[self._ring[idx]]


class QuicLbRouter:
    """Routes datagrams to backends by the CID's embedded server ID."""

    def __init__(self, backends: Dict[int, str]) -> None:
        """``backends`` maps server-ID byte -> backend name."""
        if not backends:
            raise ValueError("router needs at least one backend")
        self.backends = dict(backends)
        self._fallback = ConsistentHashRing(sorted(backends.values()))
        self.routed_by_id = 0
        self.routed_by_hash = 0

    def route(self, dcid: bytes) -> str:
        """Backend for a packet with destination CID ``dcid``."""
        if len(dcid) > SERVER_ID_OFFSET:
            server_id = dcid[SERVER_ID_OFFSET]
            backend = self.backends.get(server_id)
            if backend is not None:
                self.routed_by_id += 1
                return backend
        self.routed_by_hash += 1
        return self._fallback.node_for(dcid)
