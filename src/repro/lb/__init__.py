"""QUIC-LB load balancing (Sec. 6, 'Work with Load Balancers')."""

from repro.lb.quic_lb import ConsistentHashRing, QuicLbRouter

__all__ = ["ConsistentHashRing", "QuicLbRouter"]
