"""CDN frontend: a QUIC-LB load balancer carrying live traffic.

Sec. 6 describes the deployment: multiple real servers sit behind a
load balancer that routes on connection IDs.  Each server encodes its
server ID into every CID it issues, so all paths of one connection --
each path using a different CID -- reach the same backend.  The
client's *initial* packet carries a random DCID the balancer has never
seen; it is routed by consistent hashing, and the chosen backend's
CIDs take over from there.

:class:`CdnFrontend` implements exactly that on top of the emulator:
it owns the server-side endpoint of a :class:`MultipathNetwork` and
demultiplexes datagrams to backend
:class:`~repro.quic.connection.Connection` objects.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.lb.quic_lb import ConsistentHashRing, QuicLbRouter
from repro.netem.packet import Datagram
from repro.quic.packets import PacketType, decode_header


class CdnFrontend:
    """Routes datagrams from one network endpoint to N backends."""

    def __init__(self, backends: Dict[int, object]) -> None:
        """``backends`` maps server-ID byte -> server Connection."""
        if not backends:
            raise ValueError("frontend needs at least one backend")
        self.backends = dict(backends)
        self._router = QuicLbRouter(
            {sid: str(sid) for sid in backends})
        #: handshake DCID (bytes) -> server id, for initial packets
        self._initial_route: Dict[bytes, int] = {}
        self._hash_ring = ConsistentHashRing(
            [str(sid) for sid in sorted(backends)])
        self.datagrams_routed = 0
        self.datagrams_dropped = 0

    def attach(self, endpoint) -> None:
        """Listen on a network endpoint (e.g. ``net.server``)."""
        endpoint.on_receive(self.on_datagram)

    def on_datagram(self, dgram: Datagram) -> None:
        backend = self.route_backend(dgram.payload)
        if backend is None:
            self.datagrams_dropped += 1
            return
        self.datagrams_routed += 1
        deliver = getattr(backend, "on_datagram", None)
        if deliver is not None:
            # Multi-connection backend (a ServerHost): it demultiplexes
            # per-connection state itself and needs the full datagram.
            deliver(dgram)
        else:
            backend.datagram_received(dgram.payload, dgram.path_id)

    def route_backend(self, payload: bytes):
        """Resolve the backend Connection for a datagram."""
        try:
            header, _offset = decode_header(payload)
        except Exception:
            return None
        if header.packet_type is PacketType.HANDSHAKE:
            # Initial packets carry a client-chosen DCID: consistent-
            # hash it once and pin the mapping for retransmits.
            sid = self._initial_route.get(header.dcid)
            if sid is None:
                sid = int(self._hash_ring.node_for(header.dcid))
                self._initial_route[header.dcid] = sid
            return self.backends.get(sid)
        # Short header: the DCID is a backend-issued CID with the
        # server ID embedded at a fixed offset.
        sid = header.dcid[0] if header.dcid else None
        backend = self.backends.get(sid)
        if backend is not None:
            return backend
        # Unknown ID byte (e.g. a backend was removed): fall back to
        # hashing so the packet at least lands somewhere deterministic.
        return self.backends.get(int(self._hash_ring.node_for(header.dcid)))
