"""Core performance microbenchmarks.

Four measurements track the simulator's hot paths across PRs:

- ``event_loop``: events/sec through a raw self-rescheduling event
  chain -- the floor every simulated second stands on;
- ``trace_link``: packets/sec through a Mahimahi-style
  :class:`TraceDrivenLink` with multi-opportunity slots (exercises the
  batched same-slot delivery path);
- ``session_xlink``: wall-clock seconds for one reference ``xlink``
  video session (the end-to-end unit every population driver repeats);
- ``multi_session``: sessions/sec of one :class:`ServerHost` driving
  N=16 concurrent sessions on a shared cell (the host-runtime demux
  and shared-link machinery under load);
- ``ab_day_parallel``: wall-clock of one A/B day serial vs fanned out
  over the process pool, plus the speedup ratio and a checksum-style
  equality flag for the determinism contract (and the same day again
  through the shard-reduced fleet tier, with its own speedup/digest);
- ``fleet_10k``: users/sec of a sharded 10K-user fleet day reduced
  into streaming metric sketches, with workers requested/effective and
  the sink-bucket count as the bounded-memory proxy;
- ``fleet_checkpoint``: per-day checkpoint serialization cost of a
  :class:`~repro.experiments.campaign.FleetCampaign` as a percentage
  of day wall-clock -- the price of multi-day resumability.

:func:`collect` gathers everything into a JSON-serializable report and
:func:`write_report` persists it to ``BENCH_core.json`` so future PRs
have a trajectory to beat.  Writes refuse to *overwrite* an existing
report from a dirty git tree (the numbers would not be attributable to
a commit); pass ``force=True`` to override.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional

from repro.experiments.abtest import ABTestConfig, run_ab_day
from repro.experiments.harness import PathSpec, run_video_session
from repro.netem.link import TraceDrivenLink
from repro.netem.packet import Datagram
from repro.sim.event_loop import EventLoop
from repro.traces.radio_profiles import RadioType

#: Default output file, relative to the current working directory.
DEFAULT_REPORT_PATH = "BENCH_core.json"


# ---------------------------------------------------------------------------
# microbenchmarks
# ---------------------------------------------------------------------------


def bench_event_loop(n_events: int = 200_000) -> Dict[str, Any]:
    """Events/sec of a raw self-rescheduling event chain."""
    loop = EventLoop()
    state = {"left": n_events}

    def tick() -> None:
        state["left"] -= 1
        if state["left"] > 0:
            loop.schedule_after(0.001, tick)

    loop.schedule_at(0.0, tick)
    t0 = time.perf_counter()
    loop.run()
    elapsed = time.perf_counter() - t0
    return {
        "events": n_events,
        "seconds": elapsed,
        "events_per_sec": n_events / elapsed if elapsed > 0 else 0.0,
    }


def bench_trace_link(n_packets: int = 50_000) -> Dict[str, Any]:
    """Packets/sec through a trace link with 4 opportunities per slot."""
    loop = EventLoop()
    delivered: List[Datagram] = []
    link = TraceDrivenLink(loop, trace_ms=[0, 0, 0, 0, 1, 1, 1, 1],
                           deliver=delivered.append,
                           queue_limit_bytes=1 << 30)
    payload = b"x" * 1200
    for _ in range(n_packets):
        link.send(Datagram(payload=payload))
    t0 = time.perf_counter()
    loop.run()
    elapsed = time.perf_counter() - t0
    if len(delivered) != n_packets:
        raise RuntimeError(
            f"trace link delivered {len(delivered)} != {n_packets}")
    return {
        "packets": n_packets,
        "seconds": elapsed,
        "packets_per_sec": n_packets / elapsed if elapsed > 0 else 0.0,
    }


def _reference_paths() -> List[PathSpec]:
    return [
        PathSpec(net_path_id=0, radio=RadioType.WIFI,
                 one_way_delay_s=0.012, rate_bps=10e6),
        PathSpec(net_path_id=1, radio=RadioType.LTE,
                 one_way_delay_s=0.040, rate_bps=5e6),
    ]


def bench_reference_session(seed: int = 7) -> Dict[str, Any]:
    """Wall-clock of one reference ``xlink`` video session."""
    t0 = time.perf_counter()
    result = run_video_session("xlink", _reference_paths(),
                               timeout_s=60.0, seed=seed)
    elapsed = time.perf_counter() - t0
    return {
        "seconds": elapsed,
        "completed": result.completed,
        "virtual_seconds": result.duration_s,
        "virtual_per_wall": (result.duration_s / elapsed
                             if elapsed > 0 else 0.0),
    }


def bench_multi_session(sessions: int = 16, seed: int = 11) -> Dict[str, Any]:
    """Sessions/sec of one ServerHost serving N concurrent sessions."""
    from repro.experiments.contention import ContentionConfig, run_contention
    config = ContentionConfig(sessions=sessions, seed=seed,
                              video_duration_s=4.0)
    t0 = time.perf_counter()
    result = run_contention(config)
    elapsed = time.perf_counter() - t0
    return {
        "sessions": sessions,
        "seconds": elapsed,
        "sessions_per_sec": sessions / elapsed if elapsed > 0 else 0.0,
        "completed": result.completed,
        "virtual_seconds": result.duration_s,
        "datagrams_routed": result.datagrams_routed,
        "datagrams_dropped": result.datagrams_dropped,
    }


def bench_chaos_soak(scenarios: int = 6, seed: int = 7) -> Dict[str, Any]:
    """Scenarios/sec of the chaos soak (fault pipeline + hardening)."""
    from repro.experiments.chaos import ChaosSoakConfig, run_chaos_soak
    config = ChaosSoakConfig(scenarios=scenarios, seed=seed)
    t0 = time.perf_counter()
    result = run_chaos_soak(config)
    elapsed = time.perf_counter() - t0
    return {
        "scenarios": scenarios,
        "seconds": elapsed,
        "scenarios_per_sec": scenarios / elapsed if elapsed > 0 else 0.0,
        "ok": result.ok,
        "digest": result.digest,
    }


def bench_parallel_ab_day(users_per_day: int = 10,
                          workers: Optional[int] = None,
                          seed: int = 3) -> Dict[str, Any]:
    """One A/B day serial vs parallel: wall-clock, speedup, identity.

    ``workers=None`` requests ``max(2, cpu_count)`` rather than the
    plain ``cpu_count`` default: on a 1-CPU container the old default
    resolved to 1 and the "parallel" leg silently ran the serial
    fallback, so the bench measured nothing and recorded
    ``workers_effective: 1``.  Requesting 2 keeps the pool (and the
    serial-vs-parallel identity check) exercised everywhere; the
    speedup column is then honestly ~1.0 on a single core instead of
    vacuously 1.0.
    """
    from repro.experiments.parallel import available_workers, effective_workers
    cfg = ABTestConfig(users_per_day=users_per_day, seed=seed,
                       video_duration_s=6.0)
    schemes = ["sp", "xlink"]
    requested = workers if workers else max(2, available_workers())
    n_tasks = users_per_day * len(schemes)

    t0 = time.perf_counter()
    serial = run_ab_day(cfg, 1, schemes, workers=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_ab_day(cfg, 1, schemes, workers=requested)
    parallel_s = time.perf_counter() - t0

    identical = all(serial[s].sessions == parallel[s].sessions
                    for s in schemes)
    effective = effective_workers(requested, n_tasks)

    # Shard-reduced legs: the same day through the fleet tier, where
    # workers ship one merged MetricSink per shard instead of N pickled
    # SessionOutcomes.  fleet_speedup isolates what the reduced pickle
    # volume buys over the outcome path's parallel leg.
    from repro.experiments.abtest import build_ab_day_tasks
    from repro.experiments.parallel import run_fleet
    tasks = build_ab_day_tasks(cfg, 1, schemes)
    # two shards per worker, so the pool engages at any bench scale
    shard_size = max(1, n_tasks // (2 * requested))
    t0 = time.perf_counter()
    fleet_serial = run_fleet(iter(tasks), workers=1,
                             shard_size=shard_size)
    fleet_serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    fleet_sharded = run_fleet(iter(tasks), workers=requested,
                              shard_size=shard_size)
    fleet_sharded_s = time.perf_counter() - t0

    return {
        "users_per_day": users_per_day,
        "sessions": n_tasks,
        # "workers" kept for report-format compatibility; requested is
        # what the parallel leg asked the pool for, effective is what
        # fan_out's dispatch decision actually used.
        "workers": effective,
        "workers_requested": requested,
        "workers_effective": effective,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
        "identical_metrics": identical,
        "fleet_serial_seconds": fleet_serial_s,
        "fleet_parallel_seconds": fleet_sharded_s,
        "fleet_speedup": (fleet_serial_s / fleet_sharded_s
                          if fleet_sharded_s > 0 else 0.0),
        "fleet_workers_effective": fleet_sharded.workers_effective,
        "fleet_digest_identical": (fleet_serial.sink.digest()
                                   == fleet_sharded.sink.digest()),
    }


def bench_fleet(users: int = 10_000, workers: int = 2,
                shard_size: int = 64, seed: int = 5) -> Dict[str, Any]:
    """Users/sec of a sharded split-population fleet day.

    The 10K-user acceptance run of the fleet tier: one A/B day at
    population scale, reduced shard-by-shard into streaming sketches.
    ``sink_buckets`` is the peak-RSS proxy -- the number of occupied
    sketch slots crossing the pool boundary, which stays O(hundreds)
    no matter how many users run.
    """
    from repro.experiments.fleet import (ABPopulationDriver, FleetConfig,
                                         run_fleet_driver)
    cfg = FleetConfig(users=users, seed=seed)
    run = run_fleet_driver(ABPopulationDriver(cfg), workers=workers,
                           shard_size=shard_size)
    result = run.result
    return {
        "users": users,
        "sessions": result.tasks,
        "failed": result.failed,
        "shards": result.shards,
        "seconds": run.seconds,
        "users_per_sec": users / run.seconds if run.seconds > 0 else 0.0,
        "sessions_per_sec": run.sessions_per_sec,
        "workers_requested": result.workers_requested,
        "workers_effective": result.workers_effective,
        "sink_buckets": run.sink.n_buckets,
        "digest": run.sink.digest(),
    }


def bench_fleet_checkpoint(users: int = 48, days: int = 2,
                           seed: int = 5) -> Dict[str, Any]:
    """Checkpoint-write overhead of a day-checkpointed campaign.

    Runs a small campaign with per-day persistence and reports the
    wall-clock spent serializing/replacing ``campaign.json`` as a
    percentage of total campaign wall-clock.  The checkpoint is
    O(schemes x sketch buckets) -- independent of population size --
    so the percentage *shrinks* as days get bigger; this small run is
    therefore an upper-bound shape for the 100K-user figure.
    """
    import tempfile

    from repro.experiments.campaign import FleetCampaign
    from repro.experiments.fleet import FleetConfig
    cfg = FleetConfig(users=users, days=days, seed=seed)
    with tempfile.TemporaryDirectory() as ckpt_dir:
        campaign = FleetCampaign(cfg, checkpoint_dir=ckpt_dir, workers=1)
        result = campaign.run()
        checkpoint_bytes = os.path.getsize(campaign.checkpoint_path)
    overhead = (result.checkpoint_seconds / result.seconds * 100.0
                if result.seconds > 0 else 0.0)
    return {
        "users": users,
        "days": days,
        "sessions": result.tasks,
        "seconds": result.seconds,
        "checkpoint_seconds": result.checkpoint_seconds,
        "checkpoint_overhead_percent": overhead,
        "checkpoint_bytes": checkpoint_bytes,
        "completed": result.completed,
        "digest": result.digest,
    }


# ---------------------------------------------------------------------------
# hotpath family: the per-datagram pipeline, measured in isolation
# ---------------------------------------------------------------------------


def _legacy_seal_open(key: bytes, iv: bytes, plaintext: bytes, aad: bytes,
                      cid_seq: int, pn: int) -> bytes:
    """Frozen pre-overhaul AEAD (commit d4d478e): the bench baseline.

    Per-call nonce construction, one sha256 per 32-byte block over
    ``key || nonce || counter`` concatenations, and per-byte generator
    XOR -- kept verbatim so ``speedup_vs_baseline`` measures the
    vectorized implementation against the real predecessor rather than
    a strawman.
    """
    import hashlib

    def nonce_of() -> bytes:
        combined = (cid_seq << 64) | pn
        ppn = combined.to_bytes(12, "big")
        ppn = b"\x00" * (len(iv) - len(ppn)) + ppn
        return bytes(a ^ b for a, b in zip(ppn, iv))

    def keystream(nonce: bytes, length: int) -> bytes:
        out = bytearray()
        counter = 0
        while len(out) < length:
            out.extend(hashlib.sha256(
                key + nonce + counter.to_bytes(4, "big")).digest())
            counter += 1
        return bytes(out[:length])

    def tag(nonce: bytes, ct: bytes) -> bytes:
        return hashlib.sha256(b"tag" + key + nonce + aad + ct).digest()[:16]

    # seal
    nonce = nonce_of()
    stream = keystream(nonce, len(plaintext))
    ct = bytes(a ^ b for a, b in zip(plaintext, stream))
    sealed = ct + tag(nonce, ct)
    # open
    ct2, tag2 = sealed[:-16], sealed[-16:]
    nonce = nonce_of()
    if tag(nonce, ct2) != tag2:
        raise ValueError("AEAD authentication failed")
    stream = keystream(nonce, len(ct2))
    bytes(a ^ b for a, b in zip(ct2, stream))
    return sealed


def bench_hotpath_crypto(payload_bytes: int = 1350,
                         iters: int = 1500) -> Dict[str, Any]:
    """Seal+open bytes/sec, current vs the frozen pre-overhaul AEAD."""
    from repro.quic.crypto import PacketProtection
    prot = PacketProtection(key=b"hotpath-bench-key")
    payload = bytes(range(256)) * (payload_bytes // 256 + 1)
    payload = payload[:payload_bytes]
    aad = b"\x40" + b"\x07" * 8 + b"\x00\x00\x00\x2a"

    # bit-identity spot check against the frozen baseline
    reference = _legacy_seal_open(prot.key, prot.iv, payload, aad, 1, 99)
    assert prot.seal(payload, aad, 1, 99) == reference

    t0 = time.perf_counter()
    for pn in range(iters):
        sealed = prot.seal(payload, aad, 1, pn)
        prot.open(sealed, aad, 1, pn)
    current_s = time.perf_counter() - t0

    baseline_iters = max(iters // 10, 50)
    t0 = time.perf_counter()
    for pn in range(baseline_iters):
        _legacy_seal_open(prot.key, prot.iv, payload, aad, 1, pn)
    baseline_s = (time.perf_counter() - t0) * (iters / baseline_iters)

    total_bytes = payload_bytes * iters
    return {
        "payload_bytes": payload_bytes,
        "iters": iters,
        "seconds": current_s,
        "seal_open_bytes_per_sec": (total_bytes / current_s
                                    if current_s > 0 else 0.0),
        "baseline_bytes_per_sec": (total_bytes / baseline_s
                                   if baseline_s > 0 else 0.0),
        "speedup_vs_baseline": baseline_s / current_s if current_s else 0.0,
    }


def _established_pair():
    """A client/server connection pair, established over a fast link."""
    from repro.core import MinRttScheduler
    from repro.netem import MultipathNetwork
    from repro.quic.connection import Connection, ConnectionConfig

    loop = EventLoop()
    net = MultipathNetwork(loop)
    net.add_simple_path(0, 1e9, 0.001)
    client = Connection(
        loop, ConnectionConfig(is_client=True, enable_multipath=True),
        transmit=lambda pid, d: net.client.send(
            Datagram(payload=d, path_id=pid)),
        scheduler=MinRttScheduler(), connection_name="bench")
    server = Connection(
        loop, ConnectionConfig(is_client=False, enable_multipath=True),
        transmit=lambda pid, d: net.server.send(
            Datagram(payload=d, path_id=pid)),
        scheduler=MinRttScheduler(), connection_name="bench")
    net.client.on_receive(lambda d: client.datagram_received(d.payload,
                                                            d.path_id))
    net.server.on_receive(lambda d: server.datagram_received(d.payload,
                                                             d.path_id))
    client.add_local_path(0, 0)
    server.add_local_path(0, 0)
    client.connect()
    loop.run(until=0.5)
    if not (client.established and server.established):
        raise RuntimeError("bench pair failed to establish")
    return loop, client, server


def bench_hotpath_datagrams(n_datagrams: int = 2000) -> Dict[str, Any]:
    """Datagrams/sec through ``Connection.datagram_received``.

    Pre-crafts ``n_datagrams`` valid 1-RTT packets (each a 1200-byte
    STREAM frame on its own stream, distinct packet numbers) and times
    only the receive loop: header decode, AEAD open, frame decode,
    stream reassembly and ACK bookkeeping.
    """
    from repro.quic.frames import StreamFrame, encode_frames
    from repro.quic.packets import encode_short_header

    _loop, _client, server = _established_pair()
    dcid = server.cids.issued[0].cid
    data = b"d" * 1200
    base_pn = 1 << 20
    wire: List[bytes] = []
    for i in range(n_datagrams):
        payload = encode_frames([StreamFrame(stream_id=4 * i, offset=0,
                                             data=data, fin=True)])
        pn = base_pn + i
        aad = encode_short_header(dcid, pn)
        wire.append(aad + server.protection.seal(payload, aad, 0, pn))

    before = server.stats.packets_received
    t0 = time.perf_counter()
    for datagram in wire:
        server.datagram_received(datagram, 0)
    elapsed = time.perf_counter() - t0
    processed = server.stats.packets_received - before
    if processed != n_datagrams:
        raise RuntimeError(
            f"hotpath bench processed {processed} != {n_datagrams}")
    return {
        "datagrams": n_datagrams,
        "payload_bytes": len(data),
        "seconds": elapsed,
        "datagrams_per_sec": n_datagrams / elapsed if elapsed > 0 else 0.0,
    }


def bench_hotpath_pump(transfer_bytes: int = 4_000_000) -> Dict[str, Any]:
    """Packets/sec through the send pump during a bulk transfer."""
    loop, client, server = _established_pair()
    stream_id = client.create_stream()
    before = client.stats.packets_sent
    t0 = time.perf_counter()
    client.stream_send(stream_id, b"p" * transfer_bytes, fin=True)
    loop.run(until=loop.now + 60.0)
    elapsed = time.perf_counter() - t0
    sent = client.stats.packets_sent - before
    recv_stream = server.recv_streams.get(stream_id)
    complete = recv_stream is not None and recv_stream.is_complete
    return {
        "transfer_bytes": transfer_bytes,
        "packets_sent": sent,
        "seconds": elapsed,
        "packets_per_sec": sent / elapsed if elapsed > 0 else 0.0,
        "complete": complete,
    }


# ---------------------------------------------------------------------------
# report assembly / persistence
# ---------------------------------------------------------------------------


def collect(n_events: int = 200_000, n_packets: int = 50_000,
            ab_users: int = 10, fleet_users: int = 10_000,
            workers: Optional[int] = None) -> Dict[str, Any]:
    """Run the whole suite once (``rounds=1``) and assemble the report.

    ``fleet_users`` sizes the ``fleet_10k`` entry (the dominant cost of
    the suite at the default 10K; pass something small for a dry run).
    """
    return {
        "meta": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "git_commit": _git_commit(),
        },
        "benchmarks": {
            "event_loop": bench_event_loop(n_events),
            "trace_link": bench_trace_link(n_packets),
            "session_xlink": bench_reference_session(),
            "multi_session": bench_multi_session(),
            "chaos_soak": bench_chaos_soak(),
            "ab_day_parallel": bench_parallel_ab_day(ab_users,
                                                     workers=workers),
            "fleet_10k": bench_fleet(fleet_users),
            "fleet_checkpoint": bench_fleet_checkpoint(),
            "hotpath_crypto": bench_hotpath_crypto(),
            "hotpath_datagrams": bench_hotpath_datagrams(),
            "hotpath_pump": bench_hotpath_pump(),
        },
    }


def _git(*args: str) -> Optional[str]:
    try:
        out = subprocess.run(["git", *args], capture_output=True,
                             text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout


def _git_commit() -> Optional[str]:
    out = _git("rev-parse", "--short", "HEAD")
    return out.strip() if out else None


def git_tree_dirty() -> Optional[bool]:
    """True/False from ``git status --porcelain``; None outside a repo."""
    out = _git("status", "--porcelain")
    if out is None:
        return None
    return bool(out.strip())


def write_report(report: Dict[str, Any],
                 path: str = DEFAULT_REPORT_PATH,
                 force: bool = False) -> str:
    """Write the report; guard overwrites from a dirty working tree.

    A fresh ``BENCH_core.json`` may always be written, but replacing an
    existing one requires a clean tree (so the recorded numbers always
    correspond to a commit) unless ``force`` is set.
    """
    if os.path.exists(path) and not force and git_tree_dirty():
        raise RuntimeError(
            f"refusing to overwrite {path}: git tree is dirty "
            "(commit first, or pass --force)")
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of a collected report."""
    b = report["benchmarks"]
    ab = b["ab_day_parallel"]
    lines = [
        f"event_loop      {b['event_loop']['events_per_sec']:>12,.0f} events/sec",
        f"trace_link      {b['trace_link']['packets_per_sec']:>12,.0f} packets/sec",
        f"session_xlink   {b['session_xlink']['seconds']:>12.3f} s wall-clock "
        f"({b['session_xlink']['virtual_per_wall']:.1f}x realtime)",
        f"multi_session   {b['multi_session']['sessions_per_sec']:>12.2f} "
        f"sessions/sec (N={b['multi_session']['sessions']}, "
        f"{b['multi_session']['completed']} completed)",
        f"chaos_soak      {b['chaos_soak']['scenarios_per_sec']:>12.2f} "
        f"scenarios/sec (N={b['chaos_soak']['scenarios']}, "
        f"ok={b['chaos_soak']['ok']})",
        f"ab_day          {ab['serial_seconds']:>12.3f} s serial / "
        f"{ab['parallel_seconds']:.3f} s x{ab['workers']} workers "
        f"(speedup {ab['speedup']:.2f}, "
        f"identical={ab['identical_metrics']})",
    ]
    if "fleet_speedup" in ab:
        lines.append(
            f"ab_day_fleet    {ab['fleet_serial_seconds']:>12.3f} s serial / "
            f"{ab['fleet_parallel_seconds']:.3f} s sharded "
            f"(speedup {ab['fleet_speedup']:.2f}, "
            f"digest_identical={ab['fleet_digest_identical']})")
    fl = b.get("fleet_10k")
    if fl:
        lines.append(
            f"fleet_10k       {fl['users_per_sec']:>12.1f} users/sec "
            f"({fl['users']:,} users, {fl['shards']} shards, "
            f"workers {fl['workers_requested']}/{fl['workers_effective']}, "
            f"{fl['sink_buckets']} sink buckets)")
    fc = b.get("fleet_checkpoint")
    if fc:
        lines.append(
            f"fleet_ckpt      {fc['checkpoint_overhead_percent']:>12.2f} "
            f"% of day wall-clock ({fc['checkpoint_bytes']:,} bytes, "
            f"{fc['days']} days)")
    hc = b.get("hotpath_crypto")
    if hc:
        lines.append(
            f"hotpath_crypto  {hc['seal_open_bytes_per_sec'] / 1e6:>12.1f} "
            f"MB/s seal+open ({hc['speedup_vs_baseline']:.1f}x baseline)")
    hd = b.get("hotpath_datagrams")
    if hd:
        lines.append(
            f"hotpath_dgrams  {hd['datagrams_per_sec']:>12,.0f} "
            f"datagrams/sec through datagram_received")
    hp = b.get("hotpath_pump")
    if hp:
        lines.append(
            f"hotpath_pump    {hp['packets_per_sec']:>12,.0f} "
            f"packets/sec bulk transfer (complete={hp['complete']})")
    return "\n".join(lines)
