"""Path assembly and the multipath shell.

:class:`EmulatedPath` wires the stages for one bidirectional path:

    client --> [loss] --> [uplink] --> [delay] --> server
    server --> [loss] --> [downlink] --> [delay] --> client

:class:`MultipathNetwork` hosts N such paths between two
:class:`Endpoint` objects -- the equivalent of running a client inside
``mpshell`` with per-path traces, as the paper's Appendix B describes.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Union

from repro.netem.chaos import ChaosBox, ChaosSchedule
from repro.netem.link import ConstantRateLink, TraceDrivenLink
from repro.netem.packet import Datagram
from repro.netem.pipes import DelayBox, LossBox, OutageSchedule
from repro.sim.event_loop import EventLoop

LinkFactory = Callable[[EventLoop, Callable[[Datagram], None]],
                       Union[ConstantRateLink, TraceDrivenLink]]


class Endpoint:
    """A host attached to the network.

    Protocol stacks register a receive callback; ``send`` injects a
    datagram into a specific path direction.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._receive_cb: Optional[Callable[[Datagram], None]] = None
        self._send_fn: Optional[Callable[[Datagram], None]] = None

    def on_receive(self, callback: Callable[[Datagram], None]) -> None:
        self._receive_cb = callback

    def _deliver(self, dgram: Datagram) -> None:
        if self._receive_cb is not None:
            self._receive_cb(dgram)

    def send(self, dgram: Datagram) -> None:
        if self._send_fn is None:
            raise RuntimeError(f"endpoint {self.name} is not attached")
        dgram.src = self.name
        self._send_fn(dgram)


class _Direction:
    """One direction of a path: loss -> link -> delay -> endpoint."""

    def __init__(self, loop: EventLoop, link_factory: LinkFactory,
                 delay_s: float, loss_rate: float,
                 outages: Optional[OutageSchedule],
                 rng: random.Random,
                 deliver: Callable[[Datagram], None]) -> None:
        self.delay_box = DelayBox(loop, delay_s, deliver)
        self.link = link_factory(loop, self.delay_box.send)
        self.loss_box = LossBox(loop, self.link.send, loss_rate=loss_rate,
                                outages=outages, rng=rng)

    def send(self, dgram: Datagram) -> None:
        self.loss_box.send(dgram)


class EmulatedPath:
    """A bidirectional emulated path between client and server."""

    def __init__(self, loop: EventLoop, path_id: int,
                 up_link_factory: LinkFactory,
                 down_link_factory: LinkFactory,
                 one_way_delay_s: float,
                 deliver_to_client: Callable[[Datagram], None],
                 deliver_to_server: Callable[[Datagram], None],
                 loss_rate: float = 0.0,
                 outages: Optional[OutageSchedule] = None,
                 rng: Optional[random.Random] = None,
                 up_delay_s: Optional[float] = None,
                 down_delay_s: Optional[float] = None) -> None:
        self.path_id = path_id
        rng = rng if rng is not None else random.Random(path_id)
        up_delay = up_delay_s if up_delay_s is not None else one_way_delay_s
        down_delay = (down_delay_s if down_delay_s is not None
                      else one_way_delay_s)
        self.uplink = _Direction(loop, up_link_factory, up_delay,
                                 loss_rate, outages, rng, deliver_to_server)
        self.downlink = _Direction(loop, down_link_factory, down_delay,
                                   loss_rate, outages, rng, deliver_to_client)
        self.enabled = True
        self._loop = loop
        #: optional chaos-injection stages (see :mod:`repro.netem.chaos`)
        self.up_chaos: Optional[ChaosBox] = None
        self.down_chaos: Optional[ChaosBox] = None

    def attach_chaos(self, up: Optional[ChaosSchedule] = None,
                     down: Optional[ChaosSchedule] = None,
                     rng: Optional[random.Random] = None) -> None:
        """Insert chaos boxes in front of either direction's pipeline."""
        if up is not None and not up.is_noop():
            self.up_chaos = ChaosBox(self._loop, self.uplink.send, up,
                                     rng=rng)
        if down is not None and not down.is_noop():
            self.down_chaos = ChaosBox(self._loop, self.downlink.send, down,
                                       rng=rng)

    def send_from_client(self, dgram: Datagram) -> None:
        if not self.enabled:
            return
        if self.up_chaos is not None:
            self.up_chaos.send(dgram)
        else:
            self.uplink.send(dgram)

    def send_from_server(self, dgram: Datagram) -> None:
        if not self.enabled:
            return
        if self.down_chaos is not None:
            self.down_chaos.send(dgram)
        else:
            self.downlink.send(dgram)

    @property
    def down_bytes_out(self) -> int:
        """Downlink bytes delivered -- used for traffic-cost accounting."""
        return self.downlink.link.stats.bytes_out

    @property
    def down_bytes_in(self) -> int:
        """Downlink bytes offered (before queue drops)."""
        return self.downlink.link.stats.bytes_in


class MultipathNetwork:
    """N emulated paths between client hosts and a server (mpshell).

    The classic shape is one client and one server.  For multi-user
    contention workloads, :meth:`add_client` attaches additional client
    endpoints to the *same* set of paths: every endpoint's datagrams
    share each path's link capacity and queue (one cell, many users),
    and downlink delivery is dispatched by the datagram's ``dst``
    address.  A datagram without a known ``dst`` goes to the default
    client, which keeps single-session usage unchanged.
    """

    def __init__(self, loop: EventLoop, client_name: str = "client",
                 server_name: str = "server") -> None:
        self.loop = loop
        self.client = Endpoint(client_name)
        self.server = Endpoint(server_name)
        self.paths: Dict[int, EmulatedPath] = {}
        self.client._send_fn = self._from_client
        self.server._send_fn = self._from_server
        #: all client endpoints by name (shared-link attachment)
        self.clients: Dict[str, Endpoint] = {client_name: self.client}

    def add_client(self, name: str) -> Endpoint:
        """Attach another client host to the shared paths.

        The new endpoint sends into the same per-path links as every
        other client (contending for capacity and queue space) and
        receives the downlink datagrams addressed to ``name``.
        """
        if name in self.clients or name == self.server.name:
            raise ValueError(f"duplicate endpoint name {name!r}")
        endpoint = Endpoint(name)
        endpoint._send_fn = self._from_client
        self.clients[name] = endpoint
        return endpoint

    def add_path(self, path: EmulatedPath) -> None:
        if path.path_id in self.paths:
            raise ValueError(f"duplicate path id {path.path_id}")
        self.paths[path.path_id] = path

    def add_simple_path(self, path_id: int, rate_bps: float,
                        one_way_delay_s: float, loss_rate: float = 0.0,
                        queue_limit_bytes: int = 256 * 1024,
                        outages: Optional[OutageSchedule] = None,
                        rng: Optional[random.Random] = None) -> EmulatedPath:
        """Convenience: symmetric constant-rate path."""

        def factory(loop: EventLoop, deliver: Callable[[Datagram], None]):
            return ConstantRateLink(loop, rate_bps, deliver,
                                    queue_limit_bytes=queue_limit_bytes)

        path = EmulatedPath(
            self.loop, path_id, factory, factory, one_way_delay_s,
            deliver_to_client=self._deliver_client,
            deliver_to_server=self.server._deliver,
            loss_rate=loss_rate, outages=outages, rng=rng,
        )
        self.add_path(path)
        return path

    def add_trace_path(self, path_id: int, down_trace_ms: List[int],
                       one_way_delay_s: float,
                       up_trace_ms: Optional[List[int]] = None,
                       loss_rate: float = 0.0,
                       queue_limit_bytes: int = 256 * 1024,
                       outages: Optional[OutageSchedule] = None,
                       rng: Optional[random.Random] = None) -> EmulatedPath:
        """Convenience: trace-driven path (uplink defaults to downlink trace)."""
        up_trace = up_trace_ms if up_trace_ms is not None else down_trace_ms

        def down_factory(loop: EventLoop,
                         deliver: Callable[[Datagram], None]):
            return TraceDrivenLink(loop, down_trace_ms, deliver,
                                   queue_limit_bytes=queue_limit_bytes)

        def up_factory(loop: EventLoop, deliver: Callable[[Datagram], None]):
            return TraceDrivenLink(loop, up_trace, deliver,
                                   queue_limit_bytes=queue_limit_bytes)

        path = EmulatedPath(
            self.loop, path_id, up_factory, down_factory, one_way_delay_s,
            deliver_to_client=self._deliver_client,
            deliver_to_server=self.server._deliver,
            loss_rate=loss_rate, outages=outages, rng=rng,
        )
        self.add_path(path)
        return path

    def _deliver_client(self, dgram: Datagram) -> None:
        """Dispatch a downlink datagram to the addressed client."""
        endpoint = self.clients.get(dgram.dst)
        (endpoint if endpoint is not None else self.client)._deliver(dgram)

    def _from_client(self, dgram: Datagram) -> None:
        path = self.paths.get(dgram.path_id)
        if path is None:
            raise KeyError(f"no path {dgram.path_id}")
        dgram.dst = self.server.name
        path.send_from_client(dgram)

    def _from_server(self, dgram: Datagram) -> None:
        path = self.paths.get(dgram.path_id)
        if path is None:
            raise KeyError(f"no path {dgram.path_id}")
        if dgram.dst not in self.clients:
            # Unaddressed (or unknown) traffic goes to the default
            # client -- the single-session wiring never sets ``dst``.
            dgram.dst = self.client.name
        path.send_from_server(dgram)

    def total_down_bytes(self) -> int:
        """Total server->client bytes across paths (CDN egress cost)."""
        return sum(p.down_bytes_out for p in self.paths.values())
