"""Seeded chaos-injection pipeline for emulated paths.

Mahimahi-style boxes model *clean* pathology (loss, outages, queues);
real RAN edges also corrupt, reorder, duplicate, and rebind.  A
:class:`ChaosBox` wraps one direction of an :class:`EmulatedPath` and
injects those fault classes, driven by a scripted
:class:`ChaosSchedule` so every run is deterministic and replayable
from a seed:

- **bit corruption** -- one random bit of the payload is flipped; the
  receiver's AEAD must reject the datagram (never crash).
- **duplication** -- a clone of the datagram is delivered slightly
  later (middlebox retransmit / route flap).
- **reordering** -- a datagram is held back by an extra random delay,
  letting later packets overtake it.
- **burst blackholes** -- absolute-time windows during which every
  datagram vanishes (deterministic, unlike LossBox's Bernoulli drop).
- **jitter spikes** -- windows that add extra one-way delay
  (bufferbloat bursts, RAN scheduling stalls).
- **NAT rebind** -- from a scheduled instant on, the datagram's source
  address is rewritten (``addr#r1``, ``#r2``, ...), the way a NAT
  timeout re-binds a flow to a new public 4-tuple mid-connection.

The box sits *before* the loss/link/delay pipeline, so chaos-injected
datagrams still contend for link capacity and queue space.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.netem.packet import Datagram
from repro.sim.event_loop import EventLoop

DeliverFn = Callable[[Datagram], None]


class ChaosStats:
    """Per-direction accounting of injected faults."""

    def __init__(self) -> None:
        self.forwarded = 0
        self.corrupted = 0
        self.duplicated = 0
        self.reordered = 0
        self.blackholed = 0
        self.jitter_delayed = 0
        self.rebinds = 0

    def as_dict(self) -> dict:
        return {
            "forwarded": self.forwarded,
            "corrupted": self.corrupted,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "blackholed": self.blackholed,
            "jitter_delayed": self.jitter_delayed,
            "rebinds": self.rebinds,
        }


@dataclass
class ChaosSchedule:
    """Scripted fault plan for one path direction.

    Rates are per-datagram probabilities drawn from the box's seeded
    RNG; windows are absolute virtual-time intervals, so the same
    schedule over the same traffic produces the same faults.
    """

    #: probability a datagram gets one bit flipped
    corrupt_rate: float = 0.0
    #: probability a datagram is delivered twice
    duplicate_rate: float = 0.0
    #: extra delay before the duplicate copy enters the pipeline
    duplicate_delay_s: float = 0.005
    #: probability a datagram is held back (overtaken by later ones)
    reorder_rate: float = 0.0
    #: (min, max) extra delay for held-back datagrams
    reorder_delay_s: Tuple[float, float] = (0.002, 0.05)
    #: absolute (start, end) windows during which everything is dropped
    blackholes: List[Tuple[float, float]] = field(default_factory=list)
    #: (start, end, extra_delay) windows adding one-way delay
    jitter_spikes: List[Tuple[float, float, float]] = field(
        default_factory=list)
    #: instants after which the source address is rewritten (NAT rebind)
    rebinds: List[float] = field(default_factory=list)

    def is_noop(self) -> bool:
        return (self.corrupt_rate == 0.0 and self.duplicate_rate == 0.0
                and self.reorder_rate == 0.0 and not self.blackholes
                and not self.jitter_spikes and not self.rebinds)

    def in_blackhole(self, t: float) -> bool:
        return any(start <= t < end for start, end in self.blackholes)

    def blackhole_seconds(self) -> float:
        return sum(end - start for start, end in self.blackholes)

    def jitter_at(self, t: float) -> float:
        return sum(extra for start, end, extra in self.jitter_spikes
                   if start <= t < end)

    def rebind_count(self, t: float) -> int:
        """How many rebinds have occurred by time ``t``."""
        return sum(1 for at in self.rebinds if at <= t)

    @classmethod
    def randomized(cls, rng: random.Random, duration_s: float,
                   corrupt: bool = True, duplicate: bool = True,
                   reorder: bool = True, blackhole: bool = True,
                   jitter: bool = True, rebind: bool = False,
                   ) -> "ChaosSchedule":
        """Draw one direction's fault plan from ``rng``.

        Each fault class is included with moderate probability so
        scenarios differ in *shape*, not just intensity; flags gate
        classes off entirely (e.g. ``rebind`` only makes sense on the
        client-to-server direction).
        """
        sched = cls()
        if corrupt and rng.random() < 0.7:
            sched.corrupt_rate = rng.uniform(0.001, 0.03)
        if duplicate and rng.random() < 0.6:
            sched.duplicate_rate = rng.uniform(0.005, 0.05)
            sched.duplicate_delay_s = rng.uniform(0.001, 0.02)
        if reorder and rng.random() < 0.6:
            sched.reorder_rate = rng.uniform(0.01, 0.10)
            sched.reorder_delay_s = (0.002, rng.uniform(0.01, 0.06))
        if blackhole and rng.random() < 0.5:
            for _ in range(rng.randint(1, 3)):
                start = rng.uniform(1.0, max(duration_s - 1.0, 1.5))
                sched.blackholes.append(
                    (start, start + rng.uniform(0.1, 1.2)))
        if jitter and rng.random() < 0.5:
            for _ in range(rng.randint(1, 3)):
                start = rng.uniform(0.5, max(duration_s - 0.5, 1.0))
                sched.jitter_spikes.append(
                    (start, start + rng.uniform(0.1, 0.8),
                     rng.uniform(0.01, 0.12)))
        if rebind and rng.random() < 0.4:
            sched.rebinds.append(rng.uniform(0.5, max(duration_s, 1.0)))
        return sched


class ChaosBox:
    """Injects scheduled faults into one path direction.

    Sits in front of the loss/link/delay pipeline (``deliver`` is the
    direction's normal entry point).  All randomness comes from the
    box's own RNG, so a fixed seed replays the identical fault
    sequence for the identical traffic.
    """

    def __init__(self, loop: EventLoop, deliver: DeliverFn,
                 schedule: ChaosSchedule,
                 rng: Optional[random.Random] = None) -> None:
        self.loop = loop
        self.deliver = deliver
        self.schedule = schedule
        self.rng = rng if rng is not None else random.Random(0)
        self.stats = ChaosStats()
        self._rebinds_applied = 0

    def send(self, dgram: Datagram) -> None:
        now = self.loop.now
        sched = self.schedule
        if sched.in_blackhole(now):
            self.stats.blackholed += 1
            return
        if sched.rebinds and dgram.src:
            n = sched.rebind_count(now)
            if n > 0:
                if n > self._rebinds_applied:
                    self.stats.rebinds += n - self._rebinds_applied
                    self._rebinds_applied = n
                dgram.src = f"{dgram.src}#r{n}"
        if (sched.corrupt_rate > 0.0 and dgram.payload
                and self.rng.random() < sched.corrupt_rate):
            dgram.payload = self._flip_bit(dgram.payload)
            self.stats.corrupted += 1
        extra = sched.jitter_at(now)
        if extra > 0.0:
            self.stats.jitter_delayed += 1
        if sched.reorder_rate > 0.0 \
                and self.rng.random() < sched.reorder_rate:
            lo, hi = sched.reorder_delay_s
            extra += self.rng.uniform(lo, hi)
            self.stats.reordered += 1
        if sched.duplicate_rate > 0.0 \
                and self.rng.random() < sched.duplicate_rate:
            clone = Datagram(payload=dgram.payload, src=dgram.src,
                             dst=dgram.dst, path_id=dgram.path_id,
                             sent_at=dgram.sent_at, tag="chaos-dup")
            self.stats.duplicated += 1
            self.loop.schedule_after(extra + sched.duplicate_delay_s,
                                     lambda: self._forward(clone),
                                     label="chaos-dup")
        if extra > 0.0:
            self.loop.schedule_after(extra, lambda: self._forward(dgram),
                                     label="chaos-delay")
        else:
            self._forward(dgram)

    def _forward(self, dgram: Datagram) -> None:
        self.stats.forwarded += 1
        self.deliver(dgram)

    def _flip_bit(self, payload: bytes) -> bytes:
        bit = self.rng.randrange(len(payload) * 8)
        corrupted = bytearray(payload)
        corrupted[bit // 8] ^= 1 << (bit % 8)
        return bytes(corrupted)
