"""Link models.

:class:`TraceDrivenLink` reproduces Mahimahi's ``mm-link`` semantics:
a trace is a list of millisecond timestamps; each timestamp grants one
delivery opportunity of up to ``MTU`` bytes.  Unused opportunity bytes
within a slot may be used by the next queued packet (packet-granular,
as in Mahimahi: an opportunity delivers at most one packet; a packet
larger than MTU would consume multiple opportunities, but we cap
datagrams at MTU so one opportunity == up to one packet).  The trace
wraps around when exhausted.  Packets wait in a droptail FIFO queue
bounded in bytes.

:class:`ConstantRateLink` is a fluid-approximation link used in unit
tests and calibration: serialization time = size / rate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional

from repro.netem.packet import MTU, Datagram
from repro.sim.event_loop import EventLoop

DeliverFn = Callable[[Datagram], None]


@dataclass
class LinkStats:
    """Counters every link keeps; benches read these for cost metrics."""

    packets_in: int = 0
    packets_out: int = 0
    packets_dropped: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    bytes_dropped: int = 0
    busy_until: float = 0.0

    def as_dict(self) -> dict:
        """Counters as a plain dict (what benches serialize).

        ``busy_until`` is intentionally omitted: it is a transient
        virtual-time scheduling artifact (the instant the current
        serialization finishes), not a monotonic counter, so it is
        meaningless once a run has ended and would make otherwise
        identical runs diff on their stats dumps.  Read
        ``stats.busy_until`` directly if you need the live value.
        """
        return {
            "packets_in": self.packets_in,
            "packets_out": self.packets_out,
            "packets_dropped": self.packets_dropped,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "bytes_dropped": self.bytes_dropped,
        }


class _QueueMixin:
    """Shared droptail queue behaviour."""

    queue_limit_bytes: int
    stats: LinkStats
    _queue: Deque[Datagram]
    _queued_bytes: int

    def _enqueue(self, dgram: Datagram) -> bool:
        """Add to the FIFO; drop (and count) if the queue is full."""
        self.stats.packets_in += 1
        self.stats.bytes_in += dgram.wire_size
        if self._queued_bytes + dgram.wire_size > self.queue_limit_bytes:
            self.stats.packets_dropped += 1
            self.stats.bytes_dropped += dgram.wire_size
            return False
        self._queue.append(dgram)
        self._queued_bytes += dgram.wire_size
        return True

    def _dequeue(self) -> Datagram:
        dgram = self._queue.popleft()
        self._queued_bytes -= dgram.wire_size
        return dgram

    @property
    def queue_depth_bytes(self) -> int:
        """Bytes currently waiting in the queue."""
        return self._queued_bytes

    @property
    def queue_depth_packets(self) -> int:
        return len(self._queue)

    def stats_dict(self) -> dict:
        """Counters plus live queue-depth gauges, for bench dumps."""
        out = self.stats.as_dict()
        out["queue_depth_packets"] = len(self._queue)
        out["queue_depth_bytes"] = self._queued_bytes
        return out


class ConstantRateLink(_QueueMixin):
    """Fluid link: serialization delay = wire_size / rate."""

    def __init__(self, loop: EventLoop, rate_bps: float, deliver: DeliverFn,
                 queue_limit_bytes: int = 256 * 1024) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.loop = loop
        self.rate_bps = float(rate_bps)
        self.deliver = deliver
        self.queue_limit_bytes = queue_limit_bytes
        self.stats = LinkStats()
        self._queue: Deque[Datagram] = deque()
        self._queued_bytes = 0
        self._busy = False
        self._transmitting: Optional[Datagram] = None

    def send(self, dgram: Datagram) -> None:
        """Accept a datagram for transmission."""
        if not self._enqueue(dgram):
            return
        if not self._busy:
            self._transmit_next()

    def set_rate(self, rate_bps: float) -> None:
        """Change the link rate (applies to subsequent serializations)."""
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.rate_bps = float(rate_bps)

    def _transmit_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        dgram = self._dequeue()
        tx_time = dgram.wire_size * 8.0 / self.rate_bps
        self.stats.busy_until = self.loop.now + tx_time
        # At most one datagram serializes at a time, so a single slot
        # replaces the per-packet closure the loop used to allocate.
        self._transmitting = dgram
        self.loop.schedule_after(tx_time, self._tx_done, label="link-tx")

    def _tx_done(self) -> None:
        dgram = self._transmitting
        self._transmitting = None
        self.stats.packets_out += 1
        self.stats.bytes_out += dgram.wire_size
        self.deliver(dgram)
        self._transmit_next()


class TraceDrivenLink(_QueueMixin):
    """Mahimahi-style trace-replaying link.

    ``trace_ms`` is a sorted list of integer millisecond offsets; each
    entry is one opportunity to deliver one packet of up to MTU bytes.
    The trace wraps: after the last entry, it repeats shifted by the
    trace duration.  An empty region in the trace (no timestamps) is a
    link outage -- exactly how Mahimahi models the zero-throughput
    window in the paper's Fig. 1a.
    """

    def __init__(self, loop: EventLoop, trace_ms: List[int],
                 deliver: DeliverFn,
                 queue_limit_bytes: int = 256 * 1024,
                 start_time: float = 0.0) -> None:
        if not trace_ms:
            raise ValueError("trace must contain at least one opportunity")
        if any(b < a for a, b in zip(trace_ms, trace_ms[1:])):
            raise ValueError("trace timestamps must be non-decreasing")
        self.loop = loop
        self.trace_ms = list(trace_ms)
        # Trace duration for wrap-around: at least the last timestamp + 1ms.
        self.period_ms = max(self.trace_ms[-1] + 1, 1)
        self.deliver = deliver
        self.queue_limit_bytes = queue_limit_bytes
        self.start_time = start_time
        self.stats = LinkStats()
        self._queue: Deque[Datagram] = deque()
        self._queued_bytes = 0
        self._opportunity_idx = 0
        self._wraps = 0
        self._pump_scheduled = False

    # -- public API ----------------------------------------------------

    def send(self, dgram: Datagram) -> None:
        """Accept a datagram; it departs at the next delivery opportunity."""
        if dgram.wire_size > MTU:
            raise ValueError(
                f"datagram wire size {dgram.wire_size} exceeds MTU {MTU}"
            )
        if not self._enqueue(dgram):
            return
        self._schedule_pump()

    def capacity_between(self, t0: float, t1: float) -> int:
        """Bytes of delivery opportunity in virtual [t0, t1) -- test hook."""
        count = 0
        for wrap in range(int(t1 / (self.period_ms / 1000.0)) + 2):
            base = self.start_time + wrap * self.period_ms / 1000.0
            for ms in self.trace_ms:
                t = base + ms / 1000.0
                if t0 <= t < t1:
                    count += 1
        return count * MTU

    # -- internals -----------------------------------------------------

    def _next_opportunity_time(self) -> float:
        """Virtual time of the next unused delivery opportunity."""
        ms = self.trace_ms[self._opportunity_idx]
        return self.start_time + (self._wraps * self.period_ms + ms) / 1000.0

    def _consume_opportunity(self) -> None:
        self._opportunity_idx += 1
        if self._opportunity_idx >= len(self.trace_ms):
            self._opportunity_idx = 0
            self._wraps += 1

    def _schedule_pump(self) -> None:
        if self._pump_scheduled or not self._queue:
            return
        # Fast-forward past opportunities that are already in the past.
        # Everything lives in locals: dense traces can skip thousands of
        # expired slots per call after an idle period.
        now = self.loop.now
        trace = self.trace_ms
        n = len(trace)
        period = self.period_ms
        start = self.start_time
        idx = self._opportunity_idx
        wraps = self._wraps
        t = start + (wraps * period + trace[idx]) / 1000.0
        limit = now - 1e-12
        while t < limit:
            idx += 1
            if idx >= n:
                idx = 0
                wraps += 1
            t = start + (wraps * period + trace[idx]) / 1000.0
        self._opportunity_idx = idx
        self._wraps = wraps
        self._pump_scheduled = True
        self.loop.schedule_at(t if t > now else now, self._pump,
                              label="trace-link-pump")

    def _pump(self) -> None:
        # One event drains *every* opportunity in the current slot
        # (high-rate traces put many identical ms timestamps in a row),
        # instead of re-scheduling one event per packet at the same
        # virtual instant.  ``_pump_scheduled`` stays True while we
        # drain so reentrant send() calls from deliver() cannot
        # schedule a second pump against opportunities this loop is
        # about to consume.
        queue = self._queue
        stats = self.stats
        deliver = self.deliver
        trace = self.trace_ms
        n = len(trace)
        period = self.period_ms
        start = self.start_time
        limit = self.loop.now + 1e-12
        while queue:
            idx = self._opportunity_idx
            t = start + (self._wraps * period + trace[idx]) / 1000.0
            if t > limit:
                break
            idx += 1
            if idx >= n:
                idx = 0
                self._wraps += 1
            self._opportunity_idx = idx
            dgram = queue.popleft()
            self._queued_bytes -= dgram.wire_size
            stats.packets_out += 1
            stats.bytes_out += dgram.wire_size
            deliver(dgram)
        self._pump_scheduled = False
        if queue:
            self._schedule_pump()
