"""Network emulation substrate (Mahimahi / mpshell equivalent).

The paper's controlled evaluation replays packet-delivery traces with
Mahimahi's ``mpshell``.  This package reimplements that model inside
the discrete-event engine:

- :class:`Datagram` -- an opaque UDP-like payload with source/dest.
- :class:`TraceDrivenLink` -- one MTU-sized delivery opportunity per
  trace timestamp, with a droptail queue (Mahimahi's link model).
- :class:`ConstantRateLink` -- fluid-rate link for calibration tests.
- :class:`DelayBox`, :class:`LossBox` -- fixed one-way delay and
  stochastic/outage loss, composable around a link.
- :class:`EmulatedPath` -- the full pipeline uplink+downlink with
  per-direction delay, matching one ``mm-link`` inside ``mm-delay``.
- :class:`MultipathNetwork` -- N independent paths between a client
  and a server endpoint (the ``mpshell`` equivalent).
"""

from repro.netem.packet import Datagram
from repro.netem.link import ConstantRateLink, TraceDrivenLink, LinkStats
from repro.netem.pipes import DelayBox, LossBox, OutageSchedule
from repro.netem.chaos import ChaosBox, ChaosSchedule, ChaosStats
from repro.netem.network import Endpoint, EmulatedPath, MultipathNetwork

__all__ = [
    "Datagram",
    "ConstantRateLink",
    "TraceDrivenLink",
    "LinkStats",
    "DelayBox",
    "LossBox",
    "OutageSchedule",
    "ChaosBox",
    "ChaosSchedule",
    "ChaosStats",
    "Endpoint",
    "EmulatedPath",
    "MultipathNetwork",
]
