"""Composable pipeline stages: fixed delay, stochastic loss, outages.

These mirror Mahimahi's ``mm-delay`` and ``mm-loss`` shells.  Each
stage takes a ``deliver`` continuation, so a path is assembled by
nesting stages: loss -> link -> delay -> receiver.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.netem.packet import Datagram
from repro.sim.event_loop import EventLoop

DeliverFn = Callable[[Datagram], None]


class DelayBox:
    """Fixed one-way propagation delay (mm-delay).

    Batched delivery: a run-until-blocked sender hands the box a whole
    burst of datagrams at one virtual instant, and a fixed delay maps
    the burst onto one arrival instant -- so the box schedules a single
    loop event per burst and fans the datagrams out in send order when
    it fires, instead of one closure + heap push per packet.
    """

    def __init__(self, loop: EventLoop, delay_s: float,
                 deliver: DeliverFn) -> None:
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        self.loop = loop
        self.delay_s = float(delay_s)
        self.deliver = deliver
        self.packets_forwarded = 0
        self._batch: List[Datagram] = []
        self._batch_time = -1.0

    def send(self, dgram: Datagram) -> None:
        self.packets_forwarded += 1
        arrival = self.loop.now + self.delay_s
        if self._batch and self._batch_time == arrival:
            self._batch.append(dgram)
            return
        self._batch = batch = [dgram]
        self._batch_time = arrival
        self.loop.schedule_at(arrival, lambda: self._deliver_batch(batch),
                              label="delay-box")

    def _deliver_batch(self, batch: List[Datagram]) -> None:
        if self._batch is batch:
            self._batch = []
        deliver = self.deliver
        for dgram in batch:
            deliver(dgram)

    def set_delay(self, delay_s: float) -> None:
        """Change the delay for subsequently entering packets."""
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        self.delay_s = float(delay_s)


@dataclass
class OutageSchedule:
    """Deterministic link blackout windows, e.g. tunnels on a subway.

    ``windows`` is a list of (start, end) virtual-time intervals during
    which every packet is dropped.  Windows repeat every ``period``
    seconds if ``period`` is set.
    """

    windows: List[Tuple[float, float]]
    period: Optional[float] = None

    def in_outage(self, t: float) -> bool:
        if self.period:
            t = t % self.period
        return any(start <= t < end for start, end in self.windows)


class LossBox:
    """Bernoulli random loss plus optional deterministic outages (mm-loss)."""

    def __init__(self, loop: EventLoop, deliver: DeliverFn,
                 loss_rate: float = 0.0,
                 outages: Optional[OutageSchedule] = None,
                 rng: Optional[random.Random] = None) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self.loop = loop
        self.deliver = deliver
        self.loss_rate = float(loss_rate)
        self.outages = outages
        self.rng = rng if rng is not None else random.Random(0)
        self.packets_dropped = 0
        self.packets_forwarded = 0

    def send(self, dgram: Datagram) -> None:
        if self.outages is not None and self.outages.in_outage(self.loop.now):
            self.packets_dropped += 1
            return
        if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self.packets_dropped += 1
            return
        self.packets_forwarded += 1
        self.deliver(dgram)
