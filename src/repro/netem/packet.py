"""Datagram container carried by the emulated network.

The emulator moves opaque byte payloads; the QUIC layer serializes
packets into ``payload`` and parses them back on arrival.  ``wire_size``
adds UDP/IP overhead so trace-driven links charge realistic bytes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

#: UDP + IPv4 header overhead charged per datagram on the wire.
UDP_IP_OVERHEAD = 28

#: Conventional MTU used throughout (Mahimahi charges 1500-byte slots).
MTU = 1500

_dgram_ids = itertools.count(1)


@dataclass(slots=True)
class Datagram:
    """One UDP-like datagram in flight."""

    payload: bytes
    src: str = ""
    dst: str = ""
    path_id: int = 0
    #: virtual time the sender handed the datagram to the network
    sent_at: float = 0.0
    #: unique id for tracing / debugging
    dgram_id: int = field(default_factory=lambda: next(_dgram_ids))
    #: optional tag for experiment bookkeeping (e.g. "reinjected")
    tag: Optional[str] = None

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return len(self.payload)

    @property
    def wire_size(self) -> int:
        """Bytes charged on the wire (payload + UDP/IP headers)."""
        return len(self.payload) + UDP_IP_OVERHEAD

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Datagram(id={self.dgram_id}, {self.src}->{self.dst}, "
                f"path={self.path_id}, {self.size}B)")
