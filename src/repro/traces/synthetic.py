"""Synthetic trace generators shaped after the paper's captures.

The paper's controlled experiments replay traces from four
environments: walking on campus (Wi-Fi with a near-total outage around
t=1.7-2.2s; Fig. 1a), stable LTE (Fig. 1b), subways and high-speed
rail (deep periodic fades from tunnels/handoffs; Fig. 15).  Each
generator returns millisecond delivery-opportunity lists compatible
with :class:`repro.netem.TraceDrivenLink`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.sim.rng import make_rng
from repro.traces.format import trace_from_rate_series

MBPS = 1e6


@dataclass(frozen=True)
class TraceSpec:
    """Descriptor for a generated trace (used by the catalog)."""

    name: str
    duration_s: float
    mean_mbps: float
    environment: str


def constant_rate_trace(rate_bps: float, duration_s: float) -> List[int]:
    """Uniform delivery opportunities at a fixed rate."""
    n_windows = int(round(duration_s / 0.1))
    return trace_from_rate_series([rate_bps] * n_windows, interval_s=0.1)


def _rates_to_trace(rates: List[float], interval_s: float) -> List[int]:
    return trace_from_rate_series(rates, interval_s=interval_s)


def campus_walk_wifi_trace(duration_s: float = 3.0,
                           seed: int = 1,
                           peak_mbps: float = 30.0,
                           outage_start_s: float = 1.7,
                           outage_end_s: float = 2.2) -> List[int]:
    """Fast-varying Wi-Fi with a throughput collapse, as in Fig. 1a.

    Rate oscillates between ~20% and 100% of peak on a 100 ms grid and
    drops to (almost) zero during the outage window.
    """
    rng = make_rng(seed, "campus-wifi")
    interval = 0.1
    rates: List[float] = []
    level = 0.8
    for i in range(int(duration_s / interval)):
        t = i * interval
        # Random-walk the level with heavy swings (walking past obstacles).
        level += rng.uniform(-0.35, 0.35)
        level = min(1.0, max(0.15, level))
        rate = level * peak_mbps * MBPS
        if outage_start_s <= t < outage_end_s:
            rate = 0.02 * peak_mbps * MBPS  # near-zero residual
        rates.append(rate)
    return _rates_to_trace(rates, interval)


def stable_lte_trace(duration_s: float = 3.0, seed: int = 2,
                     mean_mbps: float = 24.0) -> List[int]:
    """Relatively stable LTE, as in Fig. 1b: small jitter around the mean."""
    rng = make_rng(seed, "stable-lte")
    interval = 0.1
    rates = []
    for _ in range(int(duration_s / interval)):
        rates.append(mean_mbps * MBPS * rng.uniform(0.85, 1.15))
    return _rates_to_trace(rates, interval)


def _fading_trace(duration_s: float, seed: int, label: str,
                  peak_mbps: float, fade_period_s: float,
                  fade_depth: float, fade_width_s: float,
                  jitter: float = 0.25,
                  phase_s: float = 0.0) -> List[int]:
    """Shared generator for mobility traces with periodic deep fades."""
    rng = make_rng(seed, label)
    interval = 0.1
    rates = []
    for i in range(int(duration_s / interval)):
        t = i * interval + phase_s
        base = peak_mbps * (0.55 + 0.45 * math.sin(2 * math.pi * t / 7.0))
        base = max(base, 0.15 * peak_mbps)
        # Periodic deep fades: tunnels / cell handoffs.
        pos = t % fade_period_s
        if pos < fade_width_s:
            base *= (1.0 - fade_depth)
        rate = base * MBPS * (1.0 + rng.uniform(-jitter, jitter))
        rates.append(max(rate, 0.0))
    return _rates_to_trace(rates, interval)


def subway_cellular_trace(duration_s: float = 30.0,
                          seed: int = 10) -> List[int]:
    """Cellular on a subway: moderate rate, deep fades in tunnel sections."""
    return _fading_trace(duration_s, seed, "subway-cell", peak_mbps=12.0,
                         fade_period_s=8.0, fade_depth=0.97,
                         fade_width_s=2.0)


def subway_wifi_trace(duration_s: float = 30.0, seed: int = 11) -> List[int]:
    """Onboard subway Wi-Fi: bursty, fades offset from the cellular ones."""
    return _fading_trace(duration_s, seed, "subway-wifi", peak_mbps=8.0,
                         fade_period_s=11.0, fade_depth=0.95,
                         fade_width_s=2.5, jitter=0.4, phase_s=4.0)


def high_speed_rail_cellular_trace(duration_s: float = 30.0,
                                   seed: int = 12) -> List[int]:
    """Cellular on high-speed rail: frequent handoffs (Fig. 15a shape)."""
    return _fading_trace(duration_s, seed, "hsr-cell", peak_mbps=10.0,
                         fade_period_s=5.0, fade_depth=0.9,
                         fade_width_s=1.2, jitter=0.35)


def high_speed_rail_wifi_trace(duration_s: float = 30.0,
                               seed: int = 13) -> List[int]:
    """Onboard HSR Wi-Fi, backhauled over cellular: low and choppy."""
    return _fading_trace(duration_s, seed, "hsr-wifi", peak_mbps=6.0,
                         fade_period_s=6.5, fade_depth=0.92,
                         fade_width_s=1.5, jitter=0.45, phase_s=2.5)
