"""Mahimahi packet-delivery trace format.

A Mahimahi trace file is one integer millisecond timestamp per line;
each line is an opportunity to deliver one 1500-byte packet.  N lines
with the same timestamp = N x 1500 bytes deliverable that millisecond.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Sequence, Union

from repro.netem.packet import MTU


def load_mahimahi_trace(path: Union[str, Path]) -> List[int]:
    """Read a Mahimahi trace file into a sorted list of ms timestamps."""
    timestamps: List[int] = []
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                timestamps.append(int(line))
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{lineno}: bad trace line {line!r}"
                ) from exc
    if any(b < a for a, b in zip(timestamps, timestamps[1:])):
        timestamps.sort()
    return timestamps


def save_mahimahi_trace(trace_ms: Sequence[int],
                        path: Union[str, Path]) -> None:
    """Write timestamps in Mahimahi's one-per-line format."""
    with open(path, "w") as f:
        for ts in trace_ms:
            f.write(f"{int(ts)}\n")


def trace_from_rate_series(rates_bps: Iterable[float],
                           interval_s: float = 0.1) -> List[int]:
    """Convert a throughput time series into delivery opportunities.

    ``rates_bps[i]`` is the link rate over window ``[i*interval,
    (i+1)*interval)``.  Opportunities are spread uniformly within each
    window, carrying fractional-packet credit across windows so the
    long-run average matches the series exactly.
    """
    if interval_s <= 0:
        raise ValueError("interval must be positive")
    trace: List[int] = []
    credit = 0.0
    for i, rate in enumerate(rates_bps):
        if rate < 0:
            raise ValueError("rates must be non-negative")
        start_ms = i * interval_s * 1000.0
        credit += rate * interval_s / 8.0 / MTU
        n = int(credit)
        credit -= n
        if n <= 0:
            continue
        step = interval_s * 1000.0 / n
        for k in range(n):
            trace.append(int(start_ms + k * step))
    return trace


def trace_mean_throughput_bps(trace_ms: Sequence[int]) -> float:
    """Mean throughput implied by a trace (bytes of opportunity / duration)."""
    if not trace_ms:
        return 0.0
    duration_s = max(trace_ms[-1] + 1, 1) / 1000.0
    return len(trace_ms) * MTU * 8.0 / duration_s
