"""Per-radio path-delay statistics and cross-ISP inflation.

Sec. 3.2 of the paper reports that the median path delay of LTE is
2.7x Wi-Fi and 5.5x 5G SA, with the 90th-percentile LTE delay 3.3x
Wi-Fi.  Table 4 reports the relative cross-ISP LTE delay increase.
This module encodes those statistics as lognormal delay models so the
experiments can sample per-user path delays with the published shape.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass
from typing import Dict, Optional


class RadioType(enum.Enum):
    """Wireless access technology of a path."""

    WIFI = "wifi"
    LTE = "lte"
    NR_SA = "5g_sa"     # standalone 5G
    NR_NSA = "5g_nsa"   # non-standalone 5G (LTE core)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.value


@dataclass(frozen=True)
class RadioProfile:
    """Lognormal one-way-delay model plus typical bandwidth for a radio.

    ``median_rtt_s`` and ``p90_rtt_s`` pin the lognormal parameters:
    mu = ln(median), sigma = (ln(p90) - mu) / 1.2816.
    """

    radio: RadioType
    median_rtt_s: float
    p90_rtt_s: float
    typical_rate_mbps: float
    #: wireless-aware primary-path preference (higher = preferred);
    #: the paper's ordering is 5G SA > 5G NSA > WiFi > LTE.
    preference: int

    @property
    def mu(self) -> float:
        return math.log(self.median_rtt_s)

    @property
    def sigma(self) -> float:
        return max((math.log(self.p90_rtt_s) - self.mu) / 1.2816, 1e-6)

    def sample_rtt(self, rng: random.Random) -> float:
        """Sample an RTT from the lognormal model (clamped to >= 2 ms)."""
        return max(rng.lognormvariate(self.mu, self.sigma), 0.002)


# Calibrated to Sec. 3.2: LTE median = 2.7x Wi-Fi, 5.5x 5G SA;
# LTE p90 = 3.3x Wi-Fi p90.  Absolute values anchored at a typical
# enterprise-Wi-Fi RTT of 20 ms to the edge CDN.
RADIO_PROFILES: Dict[RadioType, RadioProfile] = {
    RadioType.WIFI: RadioProfile(RadioType.WIFI, median_rtt_s=0.020,
                                 p90_rtt_s=0.045, typical_rate_mbps=30.0,
                                 preference=2),
    RadioType.LTE: RadioProfile(RadioType.LTE, median_rtt_s=0.054,
                                p90_rtt_s=0.149, typical_rate_mbps=24.0,
                                preference=1),
    RadioType.NR_SA: RadioProfile(RadioType.NR_SA, median_rtt_s=0.0098,
                                  p90_rtt_s=0.020, typical_rate_mbps=80.0,
                                  preference=4),
    RadioType.NR_NSA: RadioProfile(RadioType.NR_NSA, median_rtt_s=0.030,
                                   p90_rtt_s=0.070, typical_rate_mbps=60.0,
                                   preference=3),
}

# Table 4: relative increase (fraction) of cross-ISP LTE delay.
# CROSS_ISP_DELAY_INCREASE[client_isp][server_isp]
CROSS_ISP_DELAY_INCREASE: Dict[str, Dict[str, float]] = {
    "A": {"A": 0.00, "B": 0.21, "C": 0.17},
    "B": {"A": 0.42, "B": 0.00, "C": 0.54},
    "C": {"A": 0.39, "B": 0.34, "C": 0.00},
}


def cross_isp_delay(base_delay_s: float, client_isp: str,
                    server_isp: str) -> float:
    """Inflate a path delay by the Table-4 cross-ISP factor."""
    try:
        factor = CROSS_ISP_DELAY_INCREASE[client_isp][server_isp]
    except KeyError as exc:
        raise KeyError(f"unknown ISP pair ({client_isp}, {server_isp})") from exc
    return base_delay_s * (1.0 + factor)


def sample_path_delay(radio: RadioType, rng: random.Random,
                      client_isp: Optional[str] = None,
                      server_isp: Optional[str] = None) -> float:
    """Sample a one-way path delay for ``radio`` (RTT/2), ISP-adjusted."""
    rtt = RADIO_PROFILES[radio].sample_rtt(rng)
    if client_isp is not None and server_isp is not None:
        rtt = cross_isp_delay(rtt, client_isp, server_isp)
    return rtt / 2.0
