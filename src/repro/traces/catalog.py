"""Named trace sets used by benchmarks.

``extreme_mobility_trace_pairs`` builds the 10 trace pairs of Fig. 13:
five subway pairs and five high-speed-rail pairs, each pair being a
(cellular, onboard-Wi-Fi) capture from the same environment -- the
paper always replays traces collected in the same environment on the
two paths (Appendix B).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.traces.synthetic import (high_speed_rail_cellular_trace,
                                    high_speed_rail_wifi_trace,
                                    subway_cellular_trace,
                                    subway_wifi_trace)


def extreme_mobility_trace_pairs(
        duration_s: float = 30.0) -> List[Dict[str, object]]:
    """The 10 (cellular, wifi) trace pairs used by the Fig. 13 bench.

    Returns a list of dicts with keys ``trace_id``, ``environment``,
    ``cellular_ms``, ``wifi_ms``.
    """
    pairs: List[Dict[str, object]] = []
    for i in range(5):
        pairs.append({
            "trace_id": i + 1,
            "environment": "subway",
            "cellular_ms": subway_cellular_trace(duration_s, seed=100 + i),
            "wifi_ms": subway_wifi_trace(duration_s, seed=200 + i),
        })
    for i in range(5):
        pairs.append({
            "trace_id": i + 6,
            "environment": "high_speed_rail",
            "cellular_ms": high_speed_rail_cellular_trace(
                duration_s, seed=300 + i),
            "wifi_ms": high_speed_rail_wifi_trace(duration_s, seed=400 + i),
        })
    return pairs
