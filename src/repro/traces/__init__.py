"""Network traces: file format, synthetic generators, radio profiles.

Real captures (saturatr on campus walks, subways, high-speed rail) are
unavailable, so :mod:`repro.traces.synthetic` generates traces shaped
like the paper's descriptions, and :mod:`repro.traces.radio_profiles`
encodes the measured per-technology delay statistics of Sec. 3.2 and
the cross-ISP inflation of Table 4.
"""

from repro.traces.format import (load_mahimahi_trace, save_mahimahi_trace,
                                 trace_from_rate_series,
                                 trace_mean_throughput_bps)
from repro.traces.synthetic import (TraceSpec, campus_walk_wifi_trace,
                                    constant_rate_trace,
                                    high_speed_rail_cellular_trace,
                                    high_speed_rail_wifi_trace,
                                    stable_lte_trace, subway_cellular_trace,
                                    subway_wifi_trace)
from repro.traces.radio_profiles import (CROSS_ISP_DELAY_INCREASE, RadioType,
                                         RADIO_PROFILES, cross_isp_delay,
                                         sample_path_delay)
from repro.traces.catalog import extreme_mobility_trace_pairs

__all__ = [
    "load_mahimahi_trace",
    "save_mahimahi_trace",
    "trace_from_rate_series",
    "trace_mean_throughput_bps",
    "TraceSpec",
    "campus_walk_wifi_trace",
    "constant_rate_trace",
    "stable_lte_trace",
    "subway_cellular_trace",
    "subway_wifi_trace",
    "high_speed_rail_cellular_trace",
    "high_speed_rail_wifi_trace",
    "RadioType",
    "RADIO_PROFILES",
    "CROSS_ISP_DELAY_INCREASE",
    "cross_isp_delay",
    "sample_path_delay",
    "extreme_mobility_trace_pairs",
]
