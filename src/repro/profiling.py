"""Profiling harness: run a scenario under cProfile, report hotspots.

The perf work in this repo is measured, not asserted: `perfbench`
tracks throughput numbers across PRs, and this module answers the
*why* question -- where does a scenario actually spend its time?

Usage (CLI)::

    python -m repro profile contention
    python -m repro profile session --top 15 --out profile.json

Each run executes the named scenario under :mod:`cProfile`, prints a
top-N hotspot table (sorted by cumulative time), and writes a JSON
artifact with the full top-N rows plus scenario metadata so results
can be diffed across commits.

Scenarios are deliberately the same workloads the benchmarks use, so a
hotspot found here maps directly onto a `BENCH_core.json` number.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: Registered scenarios: name -> (description, zero-arg runner factory).
_SCENARIOS: Dict[str, tuple] = {}


def _scenario(name: str, description: str) -> Callable:
    def register(fn: Callable[[], Any]) -> Callable[[], Any]:
        _SCENARIOS[name] = (description, fn)
        return fn
    return register


@_scenario("session", "one reference xlink video session (seed 7)")
def _run_session() -> Any:
    from repro.experiments.harness import PathSpec, run_video_session
    from repro.traces.radio_profiles import RadioType
    paths = [
        PathSpec(net_path_id=0, radio=RadioType.WIFI,
                 one_way_delay_s=0.012, rate_bps=10e6),
        PathSpec(net_path_id=1, radio=RadioType.LTE,
                 one_way_delay_s=0.040, rate_bps=5e6),
    ]
    return run_video_session("xlink", paths, timeout_s=60.0, seed=7)


@_scenario("contention", "ServerHost with 8 concurrent sessions (seed 11)")
def _run_contention() -> Any:
    from repro.experiments.contention import ContentionConfig, run_contention
    return run_contention(ContentionConfig(sessions=8, seed=11,
                                           video_duration_s=4.0))


@_scenario("chaos", "chaos soak, 4 fault scenarios (seed 7)")
def _run_chaos() -> Any:
    from repro.experiments.chaos import ChaosSoakConfig, run_chaos_soak
    return run_chaos_soak(ChaosSoakConfig(scenarios=4, seed=7))


@_scenario("ab_day", "one serial A/B day, sp vs xlink (seed 3)")
def _run_ab_day() -> Any:
    from repro.experiments.abtest import ABTestConfig, run_ab_day
    cfg = ABTestConfig(users_per_day=6, seed=3, video_duration_s=6.0)
    return run_ab_day(cfg, 1, ["sp", "xlink"], workers=1)


@_scenario("hotpath", "tight seal/open + datagram_received loop")
def _run_hotpath() -> Any:
    from repro.perfbench import bench_hotpath_crypto, bench_hotpath_datagrams
    return {"crypto": bench_hotpath_crypto(),
            "datagrams": bench_hotpath_datagrams()}


@_scenario("pump", "batched-pump 1 MB bulk download, full stack")
def _run_pump() -> Any:
    from repro.perfbench import bench_hotpath_pump
    return bench_hotpath_pump(1_000_000)


def scenario_names() -> List[str]:
    return sorted(_SCENARIOS)


def scenarios() -> Dict[str, str]:
    """Mapping of scenario name -> one-line description."""
    return {name: desc for name, (desc, _fn) in sorted(_SCENARIOS.items())}


def scenario_help() -> str:
    return "; ".join(f"{name}: {desc}"
                     for name, (desc, _fn) in sorted(_SCENARIOS.items()))


@dataclass
class Hotspot:
    """One row of the profile table."""

    function: str
    file: str
    line: int
    ncalls: int
    tottime: float
    cumtime: float

    def to_dict(self) -> Dict[str, Any]:
        return {"function": self.function, "file": self.file,
                "line": self.line, "ncalls": self.ncalls,
                "tottime": self.tottime, "cumtime": self.cumtime}


@dataclass
class ProfileReport:
    """Outcome of one profiled scenario run."""

    scenario: str
    seconds: float
    total_calls: int
    hotspots: List[Hotspot] = field(default_factory=list)
    artifact_path: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seconds": self.seconds,
            "total_calls": self.total_calls,
            "hotspots": [h.to_dict() for h in self.hotspots],
        }


def _extract_hotspots(stats: pstats.Stats, top: int) -> List[Hotspot]:
    rows: List[Hotspot] = []
    entries = sorted(stats.stats.items(),  # type: ignore[attr-defined]
                     key=lambda item: item[1][3], reverse=True)
    for (file, line, func), (cc, nc, tt, ct, _callers) in entries[:top]:
        rows.append(Hotspot(function=func, file=file, line=line,
                            ncalls=nc, tottime=tt, cumtime=ct))
    return rows


def run_profile(scenario: str, top: int = 25,
                out_path: Optional[str] = None) -> ProfileReport:
    """Run ``scenario`` under cProfile; optionally write a JSON artifact."""
    if scenario not in _SCENARIOS:
        raise ValueError(
            f"unknown scenario {scenario!r}; choose from {scenario_names()}")
    _desc, fn = _SCENARIOS[scenario]
    profiler = cProfile.Profile()
    profiler.enable()
    fn()
    profiler.disable()
    stats = pstats.Stats(profiler, stream=io.StringIO())
    report = ProfileReport(
        scenario=scenario,
        seconds=stats.total_tt,  # type: ignore[attr-defined]
        total_calls=stats.total_calls,  # type: ignore[attr-defined]
        hotspots=_extract_hotspots(stats, top),
    )
    if out_path:
        with open(out_path, "w") as f:
            json.dump(report.to_dict(), f, indent=2)
            f.write("\n")
        report.artifact_path = out_path
    return report


def format_report(report: ProfileReport) -> str:
    """Render a hotspot table (cumulative-time order)."""
    lines = [
        f"scenario {report.scenario}: {report.seconds:.3f}s profiled, "
        f"{report.total_calls:,} calls",
        f"{'ncalls':>10}  {'tottime':>8}  {'cumtime':>8}  function",
    ]
    for h in report.hotspots:
        where = h.file
        if "/" in where:
            where = where.rsplit("/", 1)[-1]
        label = f"{h.function} ({where}:{h.line})" if h.line else h.function
        lines.append(f"{h.ncalls:>10,}  {h.tottime:>8.3f}  "
                     f"{h.cumtime:>8.3f}  {label}")
    if report.artifact_path:
        lines.append(f"artifact written to {report.artifact_path}")
    return "\n".join(lines)
