"""Streaming per-scheme QoE accumulation for fleet runs.

A :class:`MetricSink` is what crosses the process-pool boundary in a
sharded fleet run: each worker folds its slice of session outcomes
into one sink and ships only the sink back, so memory on both sides
is O(schemes x buckets) regardless of population size.

Per scheme it accumulates the QoE fields the paper's Tables 1/3
report -- request completion times, startup delay, rebuffer rate,
re-injection overhead -- as :class:`~repro.metrics.sketch.DistSketch`
distributions plus integer/fixed-point totals, all with the same
order-independent merge contract as the sketches: merging shard sinks
in any order yields a digest identical to the serial run.

Empty state is well-defined everywhere: a scheme with zero sessions
reports ``count=0``, ``None`` percentiles and zero rates instead of
raising, so a fleet report can render empty cells for a scheme that
never completed a session.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from repro.metrics.sketch import (DEFAULT_ALPHA, DEFAULT_EXACT_LIMIT,
                                  DistSketch, _quantize)

__all__ = ["SchemeSink", "MetricSink", "QUANTUM"]

QUANTUM = 1e-9

#: The sketched distribution fields of one scheme sink, in canonical
#: order (used by merge, digest and the memory-footprint proxy).
SKETCH_FIELDS = ("rct", "startup", "session_rebuffer_rate",
                 "buffer_level", "duration")


class SchemeSink:
    """Streaming QoE aggregate for one transport scheme."""

    __slots__ = ("scheme", "sessions", "completed", "failures",
                 "rct", "startup", "session_rebuffer_rate", "buffer_level",
                 "duration", "rebuffer_q", "play_q",
                 "redundant_bytes", "useful_bytes",
                 "reinjected_bytes", "new_stream_bytes")

    def __init__(self, scheme: str, alpha: float = DEFAULT_ALPHA,
                 exact_limit: int = DEFAULT_EXACT_LIMIT) -> None:
        self.scheme = scheme
        self.sessions = 0
        self.completed = 0
        #: execution failures, keyed by exception type name
        self.failures: Dict[str, int] = {}
        self.rct = DistSketch(alpha, exact_limit)
        self.startup = DistSketch(alpha, exact_limit)
        self.session_rebuffer_rate = DistSketch(alpha, exact_limit)
        self.buffer_level = DistSketch(alpha, exact_limit)
        self.duration = DistSketch(alpha, exact_limit)
        self.rebuffer_q = 0      # fixed-point totals (nanoseconds)
        self.play_q = 0
        self.redundant_bytes = 0
        self.useful_bytes = 0
        self.reinjected_bytes = 0
        self.new_stream_bytes = 0

    # -- ingest ---------------------------------------------------------

    def observe(self, outcome) -> None:
        """Fold one ``SessionOutcome`` into the running aggregates."""
        metrics = outcome.metrics
        self.sessions += 1
        if outcome.completed:
            self.completed += 1
        for t in metrics.request_completion_times:
            self.rct.add(t)
        if metrics.first_frame_latency is not None:
            self.startup.add(metrics.first_frame_latency)
        self.rebuffer_q += _quantize(metrics.rebuffer_time)
        self.play_q += _quantize(metrics.play_time)
        if metrics.play_time > 0:
            self.session_rebuffer_rate.add(
                metrics.rebuffer_time / metrics.play_time)
        for level in metrics.buffer_level_samples:
            self.buffer_level.add(level)
        self.duration.add(outcome.duration_s)
        self.redundant_bytes += metrics.redundant_bytes
        self.useful_bytes += metrics.useful_bytes
        self.reinjected_bytes += outcome.reinjected_bytes
        self.new_stream_bytes += outcome.new_stream_bytes

    def observe_failure(self, kind: str) -> None:
        self.failures[kind] = self.failures.get(kind, 0) + 1

    # -- merge ----------------------------------------------------------

    def merge(self, other: "SchemeSink") -> "SchemeSink":
        if other.scheme != self.scheme:
            raise ValueError(f"cannot merge sink for {other.scheme!r} "
                             f"into {self.scheme!r}")
        self.sessions += other.sessions
        self.completed += other.completed
        for kind, n in other.failures.items():
            self.failures[kind] = self.failures.get(kind, 0) + n
        for field in SKETCH_FIELDS:
            getattr(self, field).merge(getattr(other, field))
        self.rebuffer_q += other.rebuffer_q
        self.play_q += other.play_q
        self.redundant_bytes += other.redundant_bytes
        self.useful_bytes += other.useful_bytes
        self.reinjected_bytes += other.reinjected_bytes
        self.new_stream_bytes += other.new_stream_bytes
        return self

    # -- reads ----------------------------------------------------------

    @property
    def rebuffer_rate(self) -> float:
        """Aggregate sum(rebuffer)/sum(play) (Sec. 7.2); 0 when empty."""
        if self.play_q <= 0:
            return 0.0
        return self.rebuffer_q / self.play_q

    @property
    def traffic_overhead_percent(self) -> float:
        if self.useful_bytes <= 0:
            return 0.0
        return self.redundant_bytes / self.useful_bytes * 100.0

    @property
    def reinjection_overhead_percent(self) -> float:
        if self.new_stream_bytes <= 0:
            return 0.0
        return self.reinjected_bytes / self.new_stream_bytes * 100.0

    @property
    def failed(self) -> int:
        return sum(self.failures.values())

    @property
    def n_buckets(self) -> int:
        return sum(getattr(self, field).n_buckets
                   for field in SKETCH_FIELDS)

    def canonical(self) -> Tuple:
        return (self.scheme, self.sessions, self.completed,
                tuple(sorted(self.failures.items())),
                tuple(getattr(self, field).canonical()
                      for field in SKETCH_FIELDS),
                self.rebuffer_q, self.play_q,
                self.redundant_bytes, self.useful_bytes,
                self.reinjected_bytes, self.new_stream_bytes)

    def digest(self) -> str:
        return hashlib.sha256(repr(self.canonical()).encode()).hexdigest()

    # -- checkpoint serialization ---------------------------------------

    def to_dict(self) -> Dict:
        """Full-state JSON-safe form (contrast :meth:`as_dict`, the
        human-facing summary).  Digest-exact round trip via
        :meth:`from_dict`: counters are ints, sketches serialize
        through :meth:`DistSketch.to_dict`."""
        state = {
            "scheme": self.scheme,
            "sessions": self.sessions,
            "completed": self.completed,
            "failures": dict(sorted(self.failures.items())),
            "rebuffer_q": self.rebuffer_q,
            "play_q": self.play_q,
            "redundant_bytes": self.redundant_bytes,
            "useful_bytes": self.useful_bytes,
            "reinjected_bytes": self.reinjected_bytes,
            "new_stream_bytes": self.new_stream_bytes,
        }
        for field in SKETCH_FIELDS:
            state[field] = getattr(self, field).to_dict()
        return state

    @classmethod
    def from_dict(cls, state: Dict) -> "SchemeSink":
        first = DistSketch.from_dict(state[SKETCH_FIELDS[0]])
        sink = cls(state["scheme"], alpha=first.alpha,
                   exact_limit=first.exact_limit)
        sink.sessions = state["sessions"]
        sink.completed = state["completed"]
        sink.failures = {str(k): int(v)
                         for k, v in state["failures"].items()}
        for field in SKETCH_FIELDS:
            setattr(sink, field, DistSketch.from_dict(state[field]))
        sink.rebuffer_q = state["rebuffer_q"]
        sink.play_q = state["play_q"]
        sink.redundant_bytes = state["redundant_bytes"]
        sink.useful_bytes = state["useful_bytes"]
        sink.reinjected_bytes = state["reinjected_bytes"]
        sink.new_stream_bytes = state["new_stream_bytes"]
        return sink

    def as_dict(self) -> Dict:
        """JSON-friendly summary (None percentiles when empty)."""
        return {
            "scheme": self.scheme,
            "sessions": self.sessions,
            "completed": self.completed,
            "failed": self.failed,
            "rct_p50": self.rct.percentile(50),
            "rct_p90": self.rct.percentile(90),
            "rct_p95": self.rct.percentile(95),
            "rct_p99": self.rct.percentile(99),
            "startup_p50": self.startup.percentile(50),
            "startup_p95": self.startup.percentile(95),
            "rebuffer_rate": self.rebuffer_rate,
            "traffic_overhead_percent": self.traffic_overhead_percent,
        }


class MetricSink:
    """Per-scheme :class:`SchemeSink` collection with reduce semantics."""

    __slots__ = ("alpha", "exact_limit", "schemes")

    def __init__(self, alpha: float = DEFAULT_ALPHA,
                 exact_limit: int = DEFAULT_EXACT_LIMIT) -> None:
        self.alpha = alpha
        self.exact_limit = exact_limit
        self.schemes: Dict[str, SchemeSink] = {}

    def scheme(self, name: str) -> SchemeSink:
        sink = self.schemes.get(name)
        if sink is None:
            sink = SchemeSink(name, self.alpha, self.exact_limit)
            self.schemes[name] = sink
        return sink

    def observe(self, outcome) -> None:
        self.scheme(outcome.scheme).observe(outcome)

    def observe_failure(self, scheme: str, kind: str) -> None:
        self.scheme(scheme).observe_failure(kind)

    def merge(self, other: "MetricSink") -> "MetricSink":
        if (other.alpha != self.alpha
                or other.exact_limit != self.exact_limit):
            raise ValueError("cannot merge sinks with different grids")
        for name, scheme_sink in other.schemes.items():
            if name in self.schemes:
                self.schemes[name].merge(scheme_sink)
            else:
                self.schemes[name] = scheme_sink
        return self

    # -- reads ----------------------------------------------------------

    @property
    def sessions(self) -> int:
        return sum(s.sessions for s in self.schemes.values())

    @property
    def failed(self) -> int:
        return sum(s.failed for s in self.schemes.values())

    @property
    def n_buckets(self) -> int:
        """Total occupied sketch slots: the fleet's peak-RSS proxy."""
        return sum(s.n_buckets for s in self.schemes.values())

    def digest(self) -> str:
        """Order-independent digest over every scheme's canonical state."""
        parts = sorted((name, sink.digest())
                       for name, sink in self.schemes.items())
        return hashlib.sha256(repr(parts).encode()).hexdigest()

    def as_dict(self) -> Dict[str, Dict]:
        return {name: sink.as_dict()
                for name, sink in sorted(self.schemes.items())}

    # -- checkpoint serialization ---------------------------------------

    def to_dict(self) -> Dict:
        """Full-state JSON-safe form; digest-exact round trip."""
        return {
            "alpha": self.alpha,
            "exact_limit": self.exact_limit,
            "schemes": {name: sink.to_dict()
                        for name, sink in sorted(self.schemes.items())},
        }

    @classmethod
    def from_dict(cls, state: Dict) -> "MetricSink":
        sink = cls(alpha=state["alpha"], exact_limit=state["exact_limit"])
        sink.schemes = {name: SchemeSink.from_dict(scheme_state)
                        for name, scheme_state
                        in state["schemes"].items()}
        return sink

    def scheme_names(self) -> List[str]:
        return sorted(self.schemes)

    def get(self, name: str) -> Optional[SchemeSink]:
        return self.schemes.get(name)
