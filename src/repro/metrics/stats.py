"""Percentiles and summary statistics.

The paper reports medians, 90/95/99-th percentiles throughout; this
module provides the single implementation every bench uses (linear
interpolation, matching numpy's default).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile, pct in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile {pct} out of range")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = pct / 100.0 * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    value = ordered[lo] * (1 - frac) + ordered[hi] * frac
    # Interpolation rounding must not escape the sample range.
    return min(max(value, ordered[lo]), ordered[hi])


@dataclass(frozen=True)
class Summary:
    """Distribution summary for one metric."""

    count: int
    mean: float
    p50: float
    p90: float
    p95: float
    p99: float
    maximum: float
    minimum: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count, "mean": self.mean, "p50": self.p50,
            "p90": self.p90, "p95": self.p95, "p99": self.p99,
            "max": self.maximum, "min": self.minimum,
        }


def maybe_percentile(values: Sequence[float], pct: float
                     ) -> Optional[float]:
    """:func:`percentile`, but ``None`` on empty input.

    The exact :func:`percentile` stays raising (it is the pinned
    reference implementation); population reports that may legitimately
    see a zero-completion scheme use this to render an empty cell
    instead of crashing.
    """
    if not values:
        return None
    return percentile(values, pct)


def maybe_summarize(values: Iterable[float]) -> Optional[Summary]:
    """:func:`summarize`, but ``None`` on empty input."""
    data = list(values)
    if not data:
        return None
    return summarize(data)


def summarize(values: Iterable[float]) -> Summary:
    """Build a :class:`Summary` from raw samples."""
    data: List[float] = list(values)
    if not data:
        raise ValueError("cannot summarize empty data")
    return Summary(
        count=len(data),
        mean=sum(data) / len(data),
        p50=percentile(data, 50),
        p90=percentile(data, 90),
        p95=percentile(data, 95),
        p99=percentile(data, 99),
        maximum=max(data),
        minimum=min(data),
    )
