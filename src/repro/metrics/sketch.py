"""Mergeable streaming distribution sketch.

The fleet layer runs tens of thousands of sessions per invocation;
keeping every request-completion time in a list (the small-N drivers'
approach) would make memory grow with the population.  ``DistSketch``
is a fixed-grid log-bucket histogram in the DDSketch family: a value
``v`` lands in bucket ``ceil(log_gamma(v))`` where
``gamma = (1 + alpha) / (1 - alpha)``, so any quantile read back from
bucket midpoints carries at most ``alpha`` relative error.  Buckets
are a sparse dict, so memory is O(occupied buckets) -- a few hundred
entries for values spanning ``1e-6 .. 1e4`` -- independent of sample
count.

Small populations stay *exact*: until ``exact_limit`` samples the
sketch keeps the raw values and answers percentiles through
:func:`repro.metrics.stats.percentile`, bit-identical to the reference
implementation.  Past the limit it converts to buckets; because the
value->bucket mapping is a pure function, the final bucket counts do
not depend on *when* the conversion happened.

Merge contract (the property the sharded fleet runner leans on):
``merge`` is associative and commutative, and every accumulated
scalar is order-independent -- counts and bucket counts are integers,
and sums are kept in fixed-point (integer nanounits) so float
rounding cannot differ between a serial run and any shuffling of
shard merges.  A serial fleet run and a sharded one therefore produce
**identical digests**, not merely close ones.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.metrics.stats import Summary, percentile
from repro.sim.rng import make_rng

__all__ = [
    "DistSketch",
    "PermutationTest",
    "permutation_mean_test",
]

#: Default relative-accuracy target for bucketed percentiles.
DEFAULT_ALPHA = 0.01

#: Default exact-mode capacity (raw samples kept before bucketing).
DEFAULT_EXACT_LIMIT = 512

#: Values below this are counted in the zero bucket (QoE metrics are
#: non-negative; exact zeros are common for e.g. rebuffer time).
TINY = 1e-9

#: Fixed-point quantum for order-independent sums (nanounits).
QUANTUM = 1e-9


def _quantize(value: float) -> int:
    """Map a float to integer nanounits (pure, order-independent)."""
    return int(round(value / QUANTUM))


class DistSketch:
    """Streaming distribution sketch with exact small-N fallback.

    Not thread-safe; one sketch per (shard, metric) is the intended
    usage, reduced with :meth:`merge`.
    """

    __slots__ = ("alpha", "exact_limit", "_gamma_log", "count",
                 "_zero", "_exact", "_buckets", "_sum_q", "_min", "_max")

    def __init__(self, alpha: float = DEFAULT_ALPHA,
                 exact_limit: int = DEFAULT_EXACT_LIMIT) -> None:
        if not 0 < alpha < 1:
            raise ValueError(f"alpha {alpha} out of range (0, 1)")
        self.alpha = alpha
        self.exact_limit = exact_limit
        self._gamma_log = math.log((1 + alpha) / (1 - alpha))
        self.count = 0
        self._zero = 0                      # samples below TINY
        self._exact: Optional[List[float]] = []   # None once bucketed
        self._buckets: Dict[int, int] = {}
        self._sum_q = 0                     # fixed-point sum (nanounits)
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    # -- ingest ---------------------------------------------------------

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self._sum_q += _quantize(value)
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if self._exact is not None:
            self._exact.append(value)
            if self.count > self.exact_limit:
                self._spill()
        elif value < TINY:
            self._zero += 1
        else:
            index = self._bucket_index(value)
            self._buckets[index] = self._buckets.get(index, 0) + 1

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def _bucket_index(self, value: float) -> int:
        return int(math.ceil(math.log(value) / self._gamma_log))

    def _representative(self, index: int) -> float:
        """Geometric midpoint of bucket ``(gamma^(i-1), gamma^i]``."""
        return math.exp((index - 0.5) * self._gamma_log)

    def _spill(self) -> None:
        """Convert exact samples to buckets (pure per-value mapping)."""
        assert self._exact is not None
        for value in self._exact:
            if value < TINY:
                self._zero += 1
            else:
                index = self._bucket_index(value)
                self._buckets[index] = self._buckets.get(index, 0) + 1
        self._exact = None

    # -- merge ----------------------------------------------------------

    def merge(self, other: "DistSketch") -> "DistSketch":
        """Fold ``other`` into self (associative, commutative)."""
        if (other.alpha != self.alpha
                or other.exact_limit != self.exact_limit):
            raise ValueError("cannot merge sketches with different grids")
        self.count += other.count
        self._sum_q += other._sum_q
        if other._min is not None and (self._min is None
                                       or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None
                                       or other._max > self._max):
            self._max = other._max
        if self._exact is not None and other._exact is not None \
                and self.count <= self.exact_limit:
            self._exact.extend(other._exact)
            return self
        if self._exact is not None:
            self._spill()
        self._zero += other._zero
        if other._exact is not None:
            for value in other._exact:
                if value < TINY:
                    self._zero += 1
                else:
                    index = self._bucket_index(value)
                    self._buckets[index] = self._buckets.get(index, 0) + 1
        else:
            for index, n in other._buckets.items():
                self._buckets[index] = self._buckets.get(index, 0) + n
        return self

    # -- reads ----------------------------------------------------------

    @property
    def is_exact(self) -> bool:
        return self._exact is not None

    @property
    def sum(self) -> float:
        return self._sum_q * QUANTUM

    @property
    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.sum / self.count

    @property
    def minimum(self) -> Optional[float]:
        return self._min

    @property
    def maximum(self) -> Optional[float]:
        return self._max

    def percentile(self, pct: float) -> Optional[float]:
        """Percentile in [0, 100]; ``None`` on an empty sketch.

        Exact mode matches :func:`repro.metrics.stats.percentile`
        bit-for-bit; bucket mode returns the midpoint of the bucket
        holding the target rank (<= ``alpha`` relative error for
        values above ``TINY``).
        """
        if self.count == 0:
            return None
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile {pct} out of range")
        if self._exact is not None:
            return percentile(self._exact, pct)
        rank = pct / 100.0 * (self.count - 1)
        seen = self._zero
        if rank < seen:
            return 0.0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank < seen:
                return self._representative(index)
        return self._max if self._max is not None else 0.0

    def fraction_below(self, threshold: float) -> float:
        """Fraction of samples strictly below ``threshold``.

        Exact in exact mode; in bucket mode a bucket straddling the
        threshold counts by its midpoint (error bounded by the mass of
        that single bucket).
        """
        if self.count == 0:
            return 0.0
        if self._exact is not None:
            return sum(1 for v in self._exact if v < threshold) / self.count
        below = self._zero if threshold > 0.0 else 0
        for index, n in self._buckets.items():
            if self._representative(index) < threshold:
                below += n
        return below / self.count

    def summary(self) -> Optional[Summary]:
        """A :class:`Summary` mirror; ``None`` on an empty sketch."""
        if self.count == 0:
            return None
        return Summary(
            count=self.count,
            mean=self.mean if self.mean is not None else 0.0,
            p50=self.percentile(50) or 0.0,
            p90=self.percentile(90) or 0.0,
            p95=self.percentile(95) or 0.0,
            p99=self.percentile(99) or 0.0,
            maximum=self._max if self._max is not None else 0.0,
            minimum=self._min if self._min is not None else 0.0,
        )

    @property
    def n_buckets(self) -> int:
        """Occupied storage slots (the fleet's memory-footprint proxy)."""
        if self._exact is not None:
            return len(self._exact)
        return len(self._buckets) + (1 if self._zero else 0)

    # -- canonical form / digest ----------------------------------------

    def canonical(self) -> Tuple:
        """Order-independent canonical state (digest/equality input)."""
        if self._exact is not None:
            body: Tuple = ("exact", tuple(sorted(repr(v)
                                                 for v in self._exact)))
        else:
            body = ("buckets", self._zero,
                    tuple(sorted(self._buckets.items())))
        return (repr(self.alpha), self.exact_limit, self.count,
                self._sum_q, repr(self._min), repr(self._max), body)

    def digest(self) -> str:
        return hashlib.sha256(repr(self.canonical()).encode()).hexdigest()

    # -- checkpoint serialization ---------------------------------------

    def to_dict(self) -> Dict:
        """Full-state JSON-safe form (the campaign checkpoint format).

        Everything is either an int or a float: Python's ``json``
        round-trips both exactly (floats serialize via their shortest
        ``repr``), so ``from_dict(to_dict(s))`` reproduces the
        *identical* canonical state and digest -- the property the
        checkpointed multi-day campaigns lean on.  Bucket indices are
        emitted as sorted ``[index, count]`` pairs because JSON object
        keys must be strings.
        """
        return {
            "alpha": self.alpha,
            "exact_limit": self.exact_limit,
            "count": self.count,
            "sum_q": self._sum_q,
            "min": self._min,
            "max": self._max,
            "zero": self._zero,
            "exact": (list(self._exact)
                      if self._exact is not None else None),
            "buckets": sorted(self._buckets.items()),
        }

    @classmethod
    def from_dict(cls, state: Dict) -> "DistSketch":
        """Reconstruct a sketch from :meth:`to_dict` output, exactly."""
        sketch = cls(alpha=state["alpha"],
                     exact_limit=state["exact_limit"])
        sketch.count = state["count"]
        sketch._sum_q = state["sum_q"]
        sketch._min = state["min"]
        sketch._max = state["max"]
        sketch._zero = state["zero"]
        exact = state["exact"]
        sketch._exact = [float(v) for v in exact] \
            if exact is not None else None
        sketch._buckets = {int(index): int(n)
                           for index, n in state["buckets"]}
        return sketch

    def items(self) -> List[Tuple[float, int]]:
        """(value, count) pairs; exact values or bucket midpoints."""
        if self._exact is not None:
            return [(v, 1) for v in self._exact]
        out: List[Tuple[float, int]] = []
        if self._zero:
            out.append((0.0, self._zero))
        for index in sorted(self._buckets):
            out.append((self._representative(index), self._buckets[index]))
        return out


# ---------------------------------------------------------------------------
# permutation significance test over two sketches
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PermutationTest:
    """Result of a two-sample permutation test on sketch means."""

    delta: float          # mean(a) - mean(b), from sketch items
    p_value: float        # two-sided, add-one smoothed
    rounds: int


def permutation_mean_test(a: DistSketch, b: DistSketch,
                          rounds: int = 200,
                          seed: int = 0) -> Optional[PermutationTest]:
    """Seeded two-sided permutation test for ``mean(a) != mean(b)``.

    Works directly on the sketch histograms: each permutation round
    reassigns the pooled samples to group A by sampling without
    replacement (sequential Bernoulli draws with shrinking odds, an
    exact multivariate-hypergeometric split), so the test needs no raw
    per-session lists -- O(total samples) work per round, O(buckets)
    memory.  Returns ``None`` when either group is empty.
    """
    if a.count == 0 or b.count == 0 or rounds <= 0:
        return None
    items = a.items() + b.items()
    n_a, n_b = a.count, b.count
    total = n_a + n_b
    sum_all = sum(v * c for v, c in items)
    sum_a_obs = sum(v * c for v, c in a.items())
    delta_obs = sum_a_obs / n_a - (sum_all - sum_a_obs) / n_b
    rng: random.Random = make_rng(seed, "permutation")
    uniform = rng.random
    hits = 0
    for _ in range(rounds):
        a_left = n_a
        t_left = total
        sum_a = 0.0
        for value, c in items:
            if a_left == 0:
                break
            k = 0
            for _draw in range(c):
                if uniform() * t_left < a_left:
                    a_left -= 1
                    k += 1
                t_left -= 1
            if k:
                sum_a += value * k
        delta = sum_a / n_a - (sum_all - sum_a) / n_b
        if abs(delta) >= abs(delta_obs) - 1e-15:
            hits += 1
    return PermutationTest(delta=delta_obs,
                           p_value=(hits + 1) / (rounds + 1),
                           rounds=rounds)
