"""QoE metrics: session aggregation and A/B comparison helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.video.player import PlayerStats


@dataclass
class SessionMetrics:
    """Flattened per-session results for population aggregation."""

    request_completion_times: List[float] = field(default_factory=list)
    first_frame_latency: Optional[float] = None
    rebuffer_time: float = 0.0
    play_time: float = 0.0
    redundant_bytes: int = 0
    useful_bytes: int = 0
    buffer_level_samples: List[float] = field(default_factory=list)

    @classmethod
    def from_player(cls, stats: PlayerStats, redundant_bytes: int = 0,
                    useful_bytes: int = 0) -> "SessionMetrics":
        return cls(
            request_completion_times=list(stats.request_completion_times),
            first_frame_latency=stats.first_frame_latency,
            rebuffer_time=stats.rebuffer_time,
            play_time=stats.play_time,
            redundant_bytes=redundant_bytes,
            useful_bytes=useful_bytes,
            buffer_level_samples=[s[2] for s in stats.buffer_level_samples],
        )


def aggregate_rebuffer_rate(sessions: Iterable[SessionMetrics]) -> float:
    """sum(rebuffer time) / sum(play time) over a population (Sec. 7.2)."""
    total_rebuffer = 0.0
    total_play = 0.0
    for s in sessions:
        total_rebuffer += s.rebuffer_time
        total_play += s.play_time
    if total_play <= 0:
        return 0.0
    return total_rebuffer / total_play


def improvement_percent(baseline: float, treatment: float) -> float:
    """Relative improvement of treatment over baseline, in percent.

    Positive = treatment is better (smaller metric).  Matches how the
    paper reports 'XX% improvement in rebuffer rate / RCT'.
    """
    if baseline == 0:
        return 0.0
    return (baseline - treatment) / baseline * 100.0


def traffic_overhead_percent(sessions: Iterable[SessionMetrics]) -> float:
    """Redundant bytes as a percentage of useful bytes (cost metric)."""
    redundant = 0
    useful = 0
    for s in sessions:
        redundant += s.redundant_bytes
        useful += s.useful_bytes
    if useful <= 0:
        return 0.0
    return redundant / useful * 100.0
