"""Statistics and QoE metrics used across the evaluation."""

from repro.metrics.stats import Summary, percentile, summarize
from repro.metrics.qoe import (SessionMetrics, aggregate_rebuffer_rate,
                               improvement_percent)

__all__ = [
    "Summary",
    "percentile",
    "summarize",
    "SessionMetrics",
    "aggregate_rebuffer_rate",
    "improvement_percent",
]
