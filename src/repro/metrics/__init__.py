"""Statistics and QoE metrics used across the evaluation.

Two tiers: the exact reference implementations (``percentile`` /
``summarize`` over raw sample lists, used by every small-N driver and
pinned by the equivalence tests) and the streaming fleet tier
(``DistSketch`` / ``MetricSink``), which trades ``alpha`` relative
percentile error for O(buckets) memory and an order-independent merge
so 10K-user populations reduce across process shards.
"""

from repro.metrics.stats import (Summary, maybe_percentile,
                                 maybe_summarize, percentile, summarize)
from repro.metrics.qoe import (SessionMetrics, aggregate_rebuffer_rate,
                               improvement_percent)
from repro.metrics.sketch import (DistSketch, PermutationTest,
                                  permutation_mean_test)
from repro.metrics.sink import MetricSink, SchemeSink

__all__ = [
    "Summary",
    "percentile",
    "summarize",
    "maybe_percentile",
    "maybe_summarize",
    "SessionMetrics",
    "aggregate_rebuffer_rate",
    "improvement_percent",
    "DistSketch",
    "PermutationTest",
    "permutation_mean_test",
    "MetricSink",
    "SchemeSink",
]
