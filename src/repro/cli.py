"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``play``      -- run one emulated video session under a scheme
- ``race``      -- bulk-download race across schemes on one network
- ``serve``     -- one CDN host serving N concurrent sessions on a
  shared cell (the multi-user contention experiment)
- ``ab``        -- run one A/B day (SP vs a treatment) and print stats
- ``fleet``     -- supervised sharded population run (10K-user scale)
  reduced into streaming metric sketches; prints per-scheme QoE
  percentiles, SP-vs-treatment deltas, retry/abandon accounting and
  the merged digest.  With ``--checkpoint-dir`` the run becomes a
  day-checkpointed campaign that ``--resume`` continues after a kill.
  Exit codes: 0 clean, 3 sessions failed, 4 shards abandoned,
  130 interrupted.
- ``fleet-chaos`` -- seeded worker-fault soak over the fleet
  supervisor (crash/hang/raise/corrupt shards plus a campaign
  kill-and-resume); exits non-zero on any violated invariant
- ``mobility``  -- replay one extreme-mobility trace pair (Fig. 13 row)
- ``schemes``   -- list the available transport schemes
- ``bench``     -- run the core perf suite, write ``BENCH_core.json``
- ``chaos``     -- seeded chaos soak over the multi-session runtime;
  exits non-zero on any uncaught exception or invariant violation

``play`` and ``race`` accept ``--qlog PATH`` to record a qlog-style
event trace of the client connection (``race`` writes one file per
scheme, suffixing the scheme name).

Population commands accept ``--workers N`` to fan independent sessions
out over a process pool (0 = ``os.cpu_count()``); results are
bit-identical to ``--workers 1``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments import (ABTestConfig, PathSpec, SCHEMES,
                               run_ab_day, run_bulk_download,
                               run_video_session)
from repro.experiments.harness import scheme_with_cc
from repro.experiments.contention import ContentionConfig, run_contention
from repro.experiments.mobility import FIG13_SCHEMES, run_mobility_trace
from repro.metrics import percentile
from repro.netem import OutageSchedule
from repro.quic.connection import aggregate_robustness
from repro.quic.trace import ConnectionTracer
from repro.traces.catalog import extreme_mobility_trace_pairs
from repro.traces.radio_profiles import RadioType
from repro.video import PlayerConfig, make_video


def _standard_paths(args) -> List[PathSpec]:
    wifi_outages = None
    if args.wifi_outage:
        start, end = args.wifi_outage
        wifi_outages = OutageSchedule(windows=[(start, end)])
    return [
        PathSpec(net_path_id=0, radio=RadioType.WIFI,
                 one_way_delay_s=args.wifi_delay_ms / 1000.0,
                 rate_bps=args.wifi_mbps * 1e6, outages=wifi_outages),
        PathSpec(net_path_id=1, radio=RadioType.LTE,
                 one_way_delay_s=args.lte_delay_ms / 1000.0,
                 rate_bps=args.lte_mbps * 1e6),
    ]


def _add_workers_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="process-pool fan-out for independent sessions "
             "(0 = all cores, 1 = in-process; default: all cores)")


def _add_cc_arg(parser: argparse.ArgumentParser) -> None:
    from repro.quic.cc import CC_REGISTRY
    parser.add_argument(
        "--cc", default="cubic", choices=sorted(CC_REGISTRY),
        help="congestion controller the QUIC schemes run "
             "(default: cubic, the paper's production choice)")


def _add_network_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--wifi-mbps", type=float, default=10.0)
    parser.add_argument("--wifi-delay-ms", type=float, default=12.0)
    parser.add_argument("--lte-mbps", type=float, default=5.0)
    parser.add_argument("--lte-delay-ms", type=float, default=40.0)
    parser.add_argument("--wifi-outage", type=float, nargs=2,
                        metavar=("START", "END"),
                        help="blackout window on the Wi-Fi path (s)")
    parser.add_argument("--seed", type=int, default=0)


def _format_robustness(robustness) -> str:
    """Render the non-zero robustness counters as ``k=v`` pairs."""
    parts = [f"{key}={value}" for key, value in sorted(robustness.items())
             if value]
    return " ".join(parts) if parts else "clean"


def cmd_play(args) -> int:
    scheme = args.scheme
    if scheme not in SCHEMES or SCHEMES[scheme].is_mptcp:
        print(f"unknown or unsupported scheme for play: {scheme}",
              file=sys.stderr)
        return 2
    paths = _standard_paths(args)
    if not SCHEMES[scheme].multipath:
        paths = paths[:1]
    video = make_video(duration_s=args.duration,
                       bitrate_bps=args.bitrate_mbps * 1e6,
                       seed=args.seed)
    tracer = ConnectionTracer() if args.qlog else None
    result = run_video_session(
        scheme, paths, video=video,
        player_config=PlayerConfig(max_buffer_s=args.buffer),
        timeout_s=args.timeout, seed=args.seed, tracer=tracer)
    if tracer is not None:
        tracer.save(args.qlog)
        print(f"qlog: {args.qlog} ({len(tracer.events)} events)")
    m = result.metrics
    print(f"scheme={scheme} completed={result.completed} "
          f"virtual_time={result.duration_s:.2f}s")
    if m.first_frame_latency is not None:
        print(f"first_frame_latency_ms="
              f"{m.first_frame_latency * 1000:.0f}")
    if m.request_completion_times:
        print(f"chunk_rct_median_s="
              f"{percentile(m.request_completion_times, 50):.3f}")
        print(f"chunk_rct_max_s={max(m.request_completion_times):.3f}")
    print(f"rebuffer_s={m.rebuffer_time:.2f}")
    print(f"redundancy_pct={result.redundancy_percent:.1f}")
    if result.client is not None and result.server is not None:
        print("robustness: " + _format_robustness(aggregate_robustness(
            [result.client.stats, result.server.stats])))
    return 0


def cmd_race(args) -> int:
    paths = _standard_paths(args)
    print(f"{'scheme':<12} {'download (s)':>12}")
    for scheme in args.schemes:
        if scheme not in SCHEMES:
            print(f"unknown scheme: {scheme}", file=sys.stderr)
            return 2
        use = paths if SCHEMES[scheme].multipath else paths[:1]
        tracer = None
        if args.qlog and not SCHEMES[scheme].is_mptcp:
            tracer = ConnectionTracer()
        result = run_bulk_download(scheme, use, args.bytes,
                                   timeout_s=args.timeout,
                                   seed=args.seed, tracer=tracer)
        if tracer is not None:
            base, ext = os.path.splitext(args.qlog)
            tracer.save(f"{base}.{scheme}{ext or '.jsonl'}")
        time_s = result.download_time_s
        print(f"{scheme:<12} "
              f"{time_s:>12.3f}" if time_s is not None
              else f"{scheme:<12} {'timeout':>12}")
    return 0


def cmd_serve(args) -> int:
    if args.scheme not in SCHEMES or SCHEMES[args.scheme].is_mptcp:
        print(f"unknown or unsupported scheme for serve: {args.scheme}",
              file=sys.stderr)
        return 2
    config = ContentionConfig(
        sessions=args.sessions, scheme=args.scheme, seed=args.seed,
        video_duration_s=args.duration,
        cell_mean_mbps=args.cell_mbps, timeout_s=args.timeout)
    result = run_contention(config)
    print(f"sessions={config.sessions} scheme={args.scheme} "
          f"completed={result.completed} "
          f"virtual_time={result.duration_s:.2f}s")
    if result.first_frame_latencies:
        ffl = result.first_frame_latencies
        print(f"first_frame_p50_ms={percentile(ffl, 50) * 1000:.0f} "
              f"p95_ms={percentile(ffl, 95) * 1000:.0f}")
    print(f"rebuffer_rate_pct={result.rebuffer_rate * 100:.2f}")
    print(f"redundancy_pct={result.redundancy_percent:.1f}")
    print(f"host: routed={result.datagrams_routed} "
          f"dropped={result.datagrams_dropped} "
          f"evicted_closed={result.evicted_closed} "
          f"evicted_idle={result.evicted_idle}")
    print(f"cell_down_mb={result.cell_down_bytes / 1e6:.2f}")
    print("robustness: " + _format_robustness(result.robustness))
    return 0


def cmd_chaos(args) -> int:
    from repro.experiments.chaos import ChaosSoakConfig, run_chaos_soak
    config = ChaosSoakConfig(scenarios=args.scenarios, seed=args.seed,
                             stall_bound_s=args.stall_bound,
                             idle_timeout_s=args.idle_timeout,
                             cc_algorithm=args.cc)
    result = run_chaos_soak(config)
    print(f"{'#':>3} {'scheme':<12} {'sess':>4} {'done':>4} "
          f"{'evict':>5} {'verdict':<8} faults")
    for o in result.outcomes:
        verdict = "ok" if o.ok else ("ERROR" if o.error else "VIOLATION")
        faults = " ".join(f"{k}={v}" for k, v in sorted(o.injected.items())
                          if v) or "-"
        print(f"{o.index:>3} {o.scheme:<12} {o.sessions:>4} "
              f"{o.completed:>4} {o.evicted_closed + o.evicted_idle:>5} "
              f"{verdict:<8} {faults}")
    totals = {}
    for o in result.outcomes:
        for key, value in o.robustness.items():
            if key == "reorder_max_depth":
                totals[key] = max(totals.get(key, 0), value)
            else:
                totals[key] = totals.get(key, 0) + value
    print("robustness: " + _format_robustness(totals))
    print(f"digest: {result.digest}")
    for line in result.errors:
        print(f"error: {line}", file=sys.stderr)
    for line in result.violations:
        print(f"violation: {line}", file=sys.stderr)
    if not result.ok:
        print(f"chaos soak FAILED ({len(result.errors)} errors, "
              f"{len(result.violations)} violations)", file=sys.stderr)
        return 1
    print(f"chaos soak passed: {args.scenarios} scenarios, seed {args.seed}")
    return 0


def cmd_ab(args) -> int:
    cfg = ABTestConfig(users_per_day=args.users, seed=args.seed)
    schemes = ["sp", args.treatment]
    if args.cc != "cubic":
        # Scheme × CC variants registered here ride to fork workers on
        # SessionTask.scheme_config.
        schemes = [scheme_with_cc(s, args.cc) for s in schemes]
    results = run_ab_day(cfg, args.day, schemes,
                         workers=args.workers or None)
    for scheme in schemes:
        day = results[scheme]
        rcts = day.rcts
        print(f"{scheme:<12} rct_p50={percentile(rcts, 50):.3f} "
              f"rct_p95={percentile(rcts, 95):.3f} "
              f"rct_p99={percentile(rcts, 99):.3f} "
              f"rebuffer_pct={day.rebuffer_rate * 100:.2f} "
              f"cost_pct={day.traffic_overhead_percent:.1f}")
    return 0


#: ``fleet`` exit codes: distinct failure classes for scripting.
EXIT_SESSIONS_FAILED = 3
EXIT_SHARDS_ABANDONED = 4
EXIT_INTERRUPTED = 130


def _fleet_exit_code(failed: int, abandoned_shards: int,
                     interrupted: bool) -> int:
    """Most-severe-wins mapping from run outcome to exit code."""
    if interrupted:
        return EXIT_INTERRUPTED
    if abandoned_shards:
        return EXIT_SHARDS_ABANDONED
    if failed:
        return EXIT_SESSIONS_FAILED
    return 0


def _print_failure_tally(failures, abandoned_tasks: int = 0) -> None:
    """Per-exception-type session-failure tally (one line, sorted)."""
    if not failures:
        return
    parts = " ".join(f"{kind}={n}" for kind, n in sorted(failures.items()))
    print(f"failures: {parts}")
    if abandoned_tasks:
        print(f"  ({abandoned_tasks} of these are sessions inside "
              f"abandoned shards)")


def _print_sink_stats(sink, seed: int, permutation_rounds: int) -> None:
    from repro.metrics import improvement_percent, permutation_mean_test

    def cell(value, spec="{:.3f}"):
        return "-" if value is None else spec.format(value)

    for name in sink.scheme_names():
        s = sink.scheme(name)
        startup = s.startup.percentile(50)
        print(f"{name:<12} sessions={s.sessions} "
              f"rct_p50={cell(s.rct.percentile(50))} "
              f"rct_p95={cell(s.rct.percentile(95))} "
              f"rct_p99={cell(s.rct.percentile(99))} "
              f"startup_p50_ms="
              f"{cell(None if startup is None else startup * 1000, '{:.0f}')} "
              f"rebuffer_pct={s.rebuffer_rate * 100:.2f} "
              f"cost_pct={s.traffic_overhead_percent:.1f}")
    baseline = sink.get("sp")
    if (baseline is not None and baseline.play_q > 0
            and permutation_rounds > 0):
        for name in sink.scheme_names():
            if name == "sp":
                continue
            treat = sink.scheme(name)
            if treat.play_q <= 0:
                continue
            sig = permutation_mean_test(
                baseline.session_rebuffer_rate,
                treat.session_rebuffer_rate,
                rounds=permutation_rounds, seed=seed)
            print(f"sp->{name:<9} rebuffer_improvement_pct="
                  f"{improvement_percent(baseline.rebuffer_rate, treat.rebuffer_rate):+.1f} "
                  f"p_value={cell(sig.p_value if sig else None)}")


def _cmd_fleet_campaign(args, cfg) -> int:
    """The ``--checkpoint-dir``/``--resume`` path: day-by-day campaign."""
    from repro.experiments.campaign import CampaignError, FleetCampaign
    campaign = FleetCampaign(
        cfg, checkpoint_dir=args.checkpoint_dir,
        workers=args.workers or None, shard_size=args.shard_size,
        max_retries=args.max_retries, shard_timeout_s=args.shard_timeout)
    try:
        result = campaign.run(resume=args.resume, max_days=args.max_days)
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for rec in result.days:
        print(f"day {rec.day:>3}: sessions={rec.sessions} "
              f"failed={rec.failed} retries={rec.retries} "
              f"abandoned={rec.abandoned_shards} "
              f"wall={rec.seconds:.1f}s digest={rec.digest[:12]}")
    state = ("interrupted" if result.interrupted
             else ("complete" if result.completed else "partial"))
    print(f"campaign: {state} days={len(result.days)}/{result.days_planned} "
          f"(resumed={result.resumed_days} executed={result.executed_days}) "
          f"sessions={result.tasks} failed={result.failed} "
          f"retries={result.retries} "
          f"abandoned_shards={result.abandoned_shards}")
    if result.checkpoint_path:
        print(f"checkpoint: {result.checkpoint_path} "
              f"(write overhead {result.checkpoint_seconds:.2f}s "
              f"of {result.seconds:.1f}s)")
    _print_failure_tally(result.failures, result.abandoned_tasks)
    _print_sink_stats(result.sink, cfg.seed, args.permutation_rounds)
    print(f"digest={result.digest}")
    return _fleet_exit_code(result.failed, result.abandoned_shards,
                            result.interrupted)


def cmd_fleet(args) -> int:
    from repro.experiments.fleet import (ABPopulationDriver, FleetConfig,
                                         run_fleet_driver)
    schemes = tuple(args.schemes)
    for scheme in schemes:
        if scheme not in SCHEMES or SCHEMES[scheme].is_mptcp:
            print(f"unknown or unsupported scheme for fleet: {scheme}",
                  file=sys.stderr)
            return 2
    cfg = FleetConfig(users=args.users, days=args.days, schemes=schemes,
                      paired=args.paired, timeout_s=args.timeout,
                      seed=args.seed)
    if args.checkpoint_dir or args.resume:
        if args.resume and not args.checkpoint_dir:
            print("error: --resume requires --checkpoint-dir",
                  file=sys.stderr)
            return 2
        return _cmd_fleet_campaign(args, cfg)
    run = run_fleet_driver(ABPopulationDriver(cfg),
                           workers=args.workers or None,
                           shard_size=args.shard_size,
                           max_retries=args.max_retries,
                           shard_timeout_s=args.shard_timeout)
    result = run.result
    print(f"users={cfg.users} days={cfg.days} "
          f"sessions={result.tasks} failed={result.failed} "
          f"shards={result.shards} "
          f"workers={result.workers_requested}/"
          f"{result.workers_effective} (requested/effective)")
    print(f"wall={run.seconds:.1f}s "
          f"sessions_per_sec={run.sessions_per_sec:.1f} "
          f"sink_buckets={run.sink.n_buckets}")
    if result.retries or result.abandoned_shards or result.interrupted:
        faults = " ".join(f"{k}={v}" for k, v
                          in sorted(result.shard_faults.items()))
        print(f"supervision: retries={result.retries} "
              f"abandoned_shards={result.abandoned_shards} "
              f"abandoned_tasks={result.abandoned_tasks} "
              f"interrupted={result.interrupted}"
              + (f" faults[{faults}]" if faults else ""))
    _print_failure_tally(result.failures)
    _print_sink_stats(run.sink, cfg.seed, args.permutation_rounds)
    print(f"digest={run.sink.digest()}")
    return _fleet_exit_code(result.failed, result.abandoned_shards,
                            result.interrupted)


def cmd_fleet_chaos(args) -> int:
    from repro.experiments.fleetchaos import (FleetChaosConfig,
                                              run_fleet_chaos)
    config = FleetChaosConfig(users=args.users, shard_size=args.shard_size,
                              workers=args.workers or 2, seed=args.seed,
                              shard_timeout_s=args.shard_timeout)
    result = run_fleet_chaos(config)
    for name, ok, detail in result.checks:
        print(f"{'ok  ' if ok else 'FAIL'} {name}"
              + ("" if ok else f"  [{detail}]"))
    print(f"reference_digest={result.reference_digest}")
    if not result.ok:
        print(f"fleet-chaos FAILED ({len(result.failures)} violations)",
              file=sys.stderr)
        return 1
    print(f"fleet-chaos passed: {len(result.checks)} invariants, "
          f"seed {config.seed}")
    return 0


def cmd_mobility(args) -> int:
    pairs = extreme_mobility_trace_pairs(duration_s=args.duration)
    if not 1 <= args.trace <= len(pairs):
        print(f"trace id must be 1..{len(pairs)}", file=sys.stderr)
        return 2
    pair = pairs[args.trace - 1]
    result = run_mobility_trace(pair, schemes=args.schemes,
                                seed=args.seed,
                                workers=args.workers or None,
                                cc=None if args.cc == "cubic" else args.cc)
    print(f"trace {pair['trace_id']} ({pair['environment']}):")
    for scheme in args.schemes:
        print(f"  {scheme:<12} median={result.median(scheme):.2f}s "
              f"max={result.maximum(scheme):.2f}s")
    return 0


def cmd_schemes(_args) -> int:
    for name, scheme in SCHEMES.items():
        kind = "mptcp" if scheme.is_mptcp else \
            ("multipath" if scheme.multipath else "single-path")
        print(f"{name:<12} {kind}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="XLINK reproduction experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    play = sub.add_parser("play", help="run one video session")
    play.add_argument("--scheme", default="xlink")
    play.add_argument("--duration", type=float, default=10.0)
    play.add_argument("--bitrate-mbps", type=float, default=2.0)
    play.add_argument("--buffer", type=float, default=3.0)
    play.add_argument("--timeout", type=float, default=120.0)
    play.add_argument("--qlog", metavar="PATH",
                      help="write a qlog-style event trace of the "
                           "client connection to PATH")
    _add_network_args(play)
    play.set_defaults(func=cmd_play)

    race = sub.add_parser("race", help="bulk download race")
    race.add_argument("--schemes", nargs="+",
                      default=["sp", "vanilla_mp", "xlink", "mptcp"])
    race.add_argument("--bytes", type=int, default=2_000_000)
    race.add_argument("--timeout", type=float, default=120.0)
    race.add_argument("--qlog", metavar="PATH",
                      help="write one qlog-style trace per scheme "
                           "(PATH gets a .<scheme> suffix)")
    _add_network_args(race)
    race.set_defaults(func=cmd_race)

    serve = sub.add_parser(
        "serve", help="one CDN host, N sessions on a shared cell")
    serve.add_argument("--sessions", type=int, default=8)
    serve.add_argument("--scheme", default="xlink")
    serve.add_argument("--duration", type=float, default=8.0,
                       help="per-user video length (s)")
    serve.add_argument("--cell-mbps", type=float, default=24.0,
                       help="mean capacity of the shared LTE cell")
    serve.add_argument("--timeout", type=float, default=240.0)
    serve.add_argument("--seed", type=int, default=0)
    serve.set_defaults(func=cmd_serve)

    chaos = sub.add_parser(
        "chaos", help="seeded chaos soak over the multi-session runtime")
    chaos.add_argument("--scenarios", type=int, default=12)
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--stall-bound", type=float, default=5.0,
                       help="rebuffer allowance beyond injected "
                            "blackhole seconds")
    chaos.add_argument("--idle-timeout", type=float, default=4.0,
                       help="endpoint idle timeout / host eviction age (s)")
    _add_cc_arg(chaos)
    chaos.set_defaults(func=cmd_chaos)

    ab = sub.add_parser("ab", help="one A/B day vs single-path")
    ab.add_argument("--treatment", default="xlink")
    ab.add_argument("--users", type=int, default=10)
    ab.add_argument("--day", type=int, default=1)
    ab.add_argument("--seed", type=int, default=0)
    _add_cc_arg(ab)
    _add_workers_arg(ab)
    ab.set_defaults(func=cmd_ab)

    fleet = sub.add_parser(
        "fleet", help="sharded population run on streaming sketches")
    fleet.add_argument("--users", type=int, default=1000,
                       help="population size per day (default 1000)")
    fleet.add_argument("--days", type=int, default=1)
    fleet.add_argument("--schemes", nargs="+", default=["sp", "xlink"])
    fleet.add_argument("--paired", action="store_true",
                       help="every user plays every scheme (default: "
                            "split population, one scheme per user)")
    fleet.add_argument("--shard-size", type=int, default=64,
                       help="sessions reduced per pool task (default 64)")
    fleet.add_argument("--timeout", type=float, default=30.0)
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--permutation-rounds", type=int, default=200,
                       help="rounds for the significance test "
                            "(0 disables; default 200)")
    fleet.add_argument("--max-retries", type=int, default=2,
                       help="re-executions granted to a failed/hung/"
                            "lost shard before it is abandoned "
                            "(default 2)")
    fleet.add_argument("--shard-timeout", type=float, default=None,
                       metavar="S",
                       help="per-shard wall-clock deadline; a worker "
                            "past it is killed and the shard retried "
                            "(pool mode only; default: none)")
    fleet.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                       help="run as a day-checkpointed campaign, "
                            "writing DIR/campaign.json after each day")
    fleet.add_argument("--resume", action="store_true",
                       help="continue the campaign in --checkpoint-dir, "
                            "skipping completed days")
    fleet.add_argument("--max-days", type=int, default=None, metavar="N",
                       help="execute at most N new days this invocation "
                            "(campaign mode)")
    _add_workers_arg(fleet)
    fleet.set_defaults(func=cmd_fleet)

    fchaos = sub.add_parser(
        "fleet-chaos",
        help="seeded worker-fault soak over the fleet supervisor")
    fchaos.add_argument("--users", type=int, default=24)
    fchaos.add_argument("--shard-size", type=int, default=4)
    fchaos.add_argument("--seed", type=int, default=11)
    fchaos.add_argument("--shard-timeout", type=float, default=5.0,
                        help="deadline that converts a hung worker "
                             "into a timeout fault (default 5s)")
    _add_workers_arg(fchaos)
    fchaos.set_defaults(func=cmd_fleet_chaos)

    mobility = sub.add_parser("mobility", help="replay a mobility trace")
    mobility.add_argument("--trace", type=int, default=1,
                          help="trace id 1-10")
    mobility.add_argument("--duration", type=float, default=30.0)
    mobility.add_argument("--schemes", nargs="+",
                          default=list(FIG13_SCHEMES))
    mobility.add_argument("--seed", type=int, default=0)
    _add_cc_arg(mobility)
    _add_workers_arg(mobility)
    mobility.set_defaults(func=cmd_mobility)

    schemes = sub.add_parser("schemes", help="list transport schemes")
    schemes.set_defaults(func=cmd_schemes)

    report = sub.add_parser(
        "report", help="regenerate the evaluation into a markdown file")
    report.add_argument("--scale", default="quick",
                        choices=["quick", "standard", "full"])
    report.add_argument("--out", default="report.md")
    report.add_argument("--sections", nargs="+", default=None,
                        help="subset, e.g. fig6 fig8 ab")
    report.set_defaults(func=cmd_report)

    bench = sub.add_parser(
        "bench", help="run the core perf suite (writes BENCH_core.json)")
    bench.add_argument("--out", default="BENCH_core.json")
    bench.add_argument("--events", type=int, default=200_000)
    bench.add_argument("--packets", type=int, default=50_000)
    bench.add_argument("--ab-users", type=int, default=10)
    bench.add_argument("--fleet-users", type=int, default=10_000,
                       help="population size for the fleet_10k entry "
                            "(the dominant suite cost; default 10000)")
    bench.add_argument("--force", action="store_true",
                       help="overwrite the report even on a dirty git tree")
    bench.add_argument("--dry-run", action="store_true",
                       help="measure and print, but do not write")
    _add_workers_arg(bench)
    bench.set_defaults(func=cmd_bench)

    profile = sub.add_parser(
        "profile", help="run a scenario under cProfile, print hotspots")
    profile.add_argument("scenario",
                         help="scenario name, or 'list' to enumerate")
    profile.add_argument("--top", type=int, default=25,
                         help="number of hotspot rows (default 25)")
    profile.add_argument("--out", default=None,
                         help="write a JSON artifact to this path")
    profile.set_defaults(func=cmd_profile)
    return parser


def cmd_bench(args) -> int:
    from repro import perfbench
    report = perfbench.collect(n_events=args.events, n_packets=args.packets,
                               ab_users=args.ab_users,
                               fleet_users=args.fleet_users,
                               workers=args.workers or None)
    print(perfbench.format_report(report))
    if args.dry_run:
        return 0
    try:
        path = perfbench.write_report(report, path=args.out,
                                      force=args.force)
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"wrote {path}")
    return 0


def cmd_profile(args) -> int:
    from repro import profiling
    if args.scenario == "list":
        for name, desc in profiling.scenarios().items():
            print(f"{name:<12} {desc}")
        return 0
    try:
        report = profiling.run_profile(args.scenario, top=args.top,
                                       out_path=args.out)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(profiling.format_report(report))
    return 0


def cmd_report(args) -> int:
    from repro.experiments.report import generate_report
    text = generate_report(scale=args.scale, sections=args.sections)
    with open(args.out, "w") as f:
        f.write(text)
    print(f"wrote {args.out} ({len(text)} chars)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
