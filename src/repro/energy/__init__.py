"""Radio energy model (Fig. 14 substrate)."""

from repro.energy.model import (EnergyAccount, RadioPowerModel,
                                POWER_MODELS, energy_per_bit)

__all__ = ["EnergyAccount", "RadioPowerModel", "POWER_MODELS",
           "energy_per_bit"]
