"""Smartphone radio power models and energy-per-bit accounting.

The paper measures normalized communication energy per bit vs.
throughput on 5G-NSA-capable Android phones (Snapdragon 765G /
Kirin 990), with each link capped at 30 Mbps (Fig. 14).  We model each
radio with the standard affine power model P(r) = P_idle_active + k*r
(active baseline power plus a per-throughput slope), with parameters
shaped after published measurements: Wi-Fi is the most efficient per
bit, NR draws the most power, LTE sits in between.  Energy per bit
falls with throughput because the active baseline is amortized --
which is exactly why multipath (higher throughput, two radios) can
still land in Fig. 14's top-left region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.traces.radio_profiles import RadioType


@dataclass(frozen=True)
class RadioPowerModel:
    """Affine active-power model for one radio."""

    radio: RadioType
    #: power drawn while the radio is active, regardless of rate (W)
    base_active_w: float
    #: incremental power per Mbps of goodput (W / Mbps)
    per_mbps_w: float

    def power_at(self, throughput_mbps: float) -> float:
        if throughput_mbps < 0:
            raise ValueError("throughput must be non-negative")
        return self.base_active_w + self.per_mbps_w * throughput_mbps


# Parameters shaped after measurement studies the paper cites ([36] for
# 5G; MobiSys/IMC Wi-Fi-vs-LTE studies): 5G NR draws ~2x LTE's active
# power; Wi-Fi is cheapest both in baseline and slope.
POWER_MODELS: Dict[RadioType, RadioPowerModel] = {
    RadioType.WIFI: RadioPowerModel(RadioType.WIFI, base_active_w=0.6,
                                    per_mbps_w=0.010),
    RadioType.LTE: RadioPowerModel(RadioType.LTE, base_active_w=1.2,
                                   per_mbps_w=0.025),
    RadioType.NR_NSA: RadioPowerModel(RadioType.NR_NSA, base_active_w=2.3,
                                      per_mbps_w=0.030),
    RadioType.NR_SA: RadioPowerModel(RadioType.NR_SA, base_active_w=2.1,
                                     per_mbps_w=0.028),
}


def energy_per_bit(radio: RadioType, throughput_mbps: float) -> float:
    """Joules per bit when running ``radio`` at ``throughput_mbps``."""
    if throughput_mbps <= 0:
        raise ValueError("throughput must be positive")
    power = POWER_MODELS[radio].power_at(throughput_mbps)
    return power / (throughput_mbps * 1e6)


class EnergyAccount:
    """Integrates per-radio energy over a download.

    The harness reports, per radio, the bytes carried and the wall
    time during which the radio was active; the account produces total
    energy and energy per (delivered) bit.
    """

    def __init__(self) -> None:
        self._entries: List[Tuple[RadioType, int, float]] = []

    def add(self, radio: RadioType, bytes_carried: int,
            active_time_s: float) -> None:
        if bytes_carried < 0 or active_time_s < 0:
            raise ValueError("negative energy account entry")
        self._entries.append((radio, bytes_carried, active_time_s))

    @property
    def total_bytes(self) -> int:
        return sum(b for _r, b, _t in self._entries)

    def total_energy_j(self) -> float:
        total = 0.0
        for radio, bytes_carried, active_time in self._entries:
            if active_time <= 0:
                continue
            mbps = bytes_carried * 8.0 / active_time / 1e6
            total += POWER_MODELS[radio].power_at(mbps) * active_time
        return total

    def energy_per_bit_j(self) -> float:
        bits = self.total_bytes * 8
        if bits == 0:
            return 0.0
        return self.total_energy_j() / bits
