"""One-shot evaluation report: regenerate every figure/table to a file.

``python -m repro report --out report.md`` runs scaled-down versions
of every experiment and writes a self-contained markdown report with
the regenerated rows/series -- the quickest way to eyeball the whole
reproduction without reading bench output.  Scale knobs trade fidelity
for runtime ("quick" finishes in a couple of minutes).
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.abtest import (ABTestConfig, daily_improvement,
                                      run_ab_day, run_ab_test)
from repro.experiments.harness import scheme_with_cc
from repro.experiments.dynamics import FIG6_MODES, run_fig6_dynamics
from repro.experiments.energyexp import normalize, run_fig14
from repro.experiments.firstframe import FIG12_PERCENTILES, run_fig12
from repro.experiments.mobility import FIG13_SCHEMES, run_fig13
from repro.experiments.pathexp import run_fig7, run_fig8
from repro.metrics import (MetricSink, improvement_percent, percentile,
                           permutation_mean_test)

#: scale name -> (ab users, ab days, mobility traces)
SCALES = {
    "quick": (6, 2, 2),
    "standard": (12, 4, 4),
    "full": (20, 7, 10),
}


@dataclass
class ReportSection:
    title: str
    body: str


def _table(header: Sequence[str], rows: Sequence[Sequence]) -> str:
    out = ["| " + " | ".join(str(h) for h in header) + " |",
           "|" + "---|" * len(header)]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def section_fig6() -> ReportSection:
    rows = []
    for mode in FIG6_MODES:
        series = run_fig6_dynamics(mode)
        rows.append([mode,
                     f"{series.min_buffer_in(2.0, 5.2) / 1e3:.0f} KB",
                     f"{series.rebuffer_time:.2f} s",
                     f"{series.redundancy_percent:.1f}%"])
    body = _table(["mode", "min buffer (blackout)", "rebuffer",
                   "redundancy"], rows)
    return ReportSection("Fig. 6 — re-injection & QoE control dynamics",
                         body)


def section_fig7() -> ReportSection:
    sweep = run_fig7(frame_sizes=(128 * 1024, 512 * 1024, 2 * 1024 ** 2))
    rows = []
    for (size, wifi_t), (_s, nr_t) in zip(sweep["wifi"], sweep["5g"]):
        rows.append([f"{size // 1024} KB", f"{wifi_t * 1000:.0f} ms",
                     f"{nr_t * 1000:.0f} ms"])
    return ReportSection(
        "Fig. 7 — first-frame delivery vs primary path",
        _table(["first frame", "WiFi primary", "5G primary"], rows))


def section_fig8() -> ReportSection:
    sweep = run_fig8(ratios=(1, 4, 8))
    rows = []
    for (ratio, fast), (_r, orig) in zip(sweep["fastest"],
                                         sweep["original"]):
        rows.append([f"{ratio}:1", f"{fast:.2f} s", f"{orig:.2f} s"])
    return ReportSection(
        "Fig. 8 — ACK_MP return-path strategies (4 MB, Cubic)",
        _table(["RTT ratio", "min-RTT path", "original path"], rows))


def section_ab(users: int, days: int) -> List[ReportSection]:
    sections = []
    # Fig. 1c + Table 1 (vanilla-MP study population).
    cfg = ABTestConfig(users_per_day=users, days=days, seed=3)
    results = run_ab_test(cfg, ["sp", "vanilla_mp"])
    rows = []
    for sp, mp in zip(results["sp"], results["vanilla_mp"]):
        rows.append([sp.day, f"{sp.rct_percentile(99):.2f}",
                     f"{mp.rct_percentile(99):.2f}",
                     f"{improvement_percent(sp.rebuffer_rate, mp.rebuffer_rate):+.0f}%"])
    sections.append(ReportSection(
        "Fig. 1c + Table 1 — vanilla-MP vs SP",
        _table(["day", "SP p99 RCT (s)", "MP p99 RCT (s)",
                "rebuffer change"], rows)))
    # Fig. 11 + Table 3 (XLINK study population).
    cfg = ABTestConfig(users_per_day=users, days=days, seed=3,
                       wifi_rate_mu=15.5, wifi_outage_prob=0.25)
    results = run_ab_test(cfg, ["sp", "xlink"])
    rows = []
    for sp, xl in zip(results["sp"], results["xlink"]):
        rows.append([sp.day, f"{sp.rct_percentile(99):.2f}",
                     f"{xl.rct_percentile(99):.2f}",
                     f"{improvement_percent(sp.rebuffer_rate, xl.rebuffer_rate):+.0f}%",
                     f"{xl.traffic_overhead_percent:.1f}%"])
    sections.append(ReportSection(
        "Fig. 11 + Table 3 — XLINK vs SP",
        _table(["day", "SP p99 RCT (s)", "XLINK p99 RCT (s)",
                "rebuffer improvement", "cost"], rows)))
    return sections


#: the scheme × CC matrix swept by the ``ccmatrix`` report section
CC_MATRIX_SCHEMES = ("sp", "xlink")
CC_MATRIX_CCS = ("cubic", "newreno", "lia", "bbr", "mpbbr")


def section_ccmatrix(users: int) -> ReportSection:
    """One A/B day per congestion controller (ROADMAP item 4).

    Every controller in the registry drives the SP baseline and full
    XLINK over the same seeded population, so the per-CC QoE rows are
    directly comparable down the table.
    """
    cfg = ABTestConfig(users_per_day=users, seed=5)
    rows = []
    for cc in CC_MATRIX_CCS:
        schemes = [scheme_with_cc(s, cc) for s in CC_MATRIX_SCHEMES]
        results = run_ab_day(cfg, 1, schemes)
        for base, name in zip(CC_MATRIX_SCHEMES, schemes):
            day = results[name]
            rcts = day.rcts
            rows.append([base, cc,
                         f"{percentile(rcts, 50):.3f}",
                         f"{percentile(rcts, 95):.3f}",
                         f"{percentile(rcts, 99):.3f}",
                         f"{day.rebuffer_rate * 100:.2f}%",
                         f"{day.traffic_overhead_percent:.1f}%"])
    return ReportSection(
        "Scheme × CC matrix — per-controller QoE (one A/B day)",
        _table(["scheme", "cc", "RCT p50 (s)", "RCT p95 (s)",
                "RCT p99 (s)", "rebuffer", "cost"], rows))


def section_fig12(users: int) -> ReportSection:
    cfg = ABTestConfig(users_per_day=users, seed=7)
    result = run_fig12(cfg)
    rows = []
    for pct in FIG12_PERCENTILES:
        rows.append([f"p{pct}",
                     f"{result.with_acceleration[pct]:+.1f}%",
                     f"{result.without_acceleration[pct]:+.1f}%"])
    return ReportSection(
        "Fig. 12 — first-frame latency improvement over SP",
        _table(["percentile", "with acceleration", "without"], rows))


def section_fig13(n_traces: int) -> ReportSection:
    results = run_fig13(n_traces=n_traces, seed=2)
    rows = []
    for r in results:
        row = [f"{r.trace_id} ({r.environment[:6]})"]
        for scheme in FIG13_SCHEMES:
            row.append(f"{r.median(scheme):.2f}/{r.maximum(scheme):.2f}")
        rows.append(row)
    return ReportSection(
        "Fig. 13 — extreme mobility, request download time median/max (s)",
        _table(["trace"] + list(FIG13_SCHEMES), rows))


#: CDF grid rendered in the fleet section's percentile tables.
FLEET_CDF_PCTS = (10, 25, 50, 75, 90, 95, 99)


def _fmt(value, spec: str = "{:.3f}", empty: str = "—") -> str:
    """Render a metric cell; ``None`` (empty sketch) becomes a dash."""
    return empty if value is None else spec.format(value)


def fleet_sections(sink: MetricSink, baseline: str = "sp",
                   seed: int = 0, rounds: int = 200
                   ) -> List[ReportSection]:
    """Render a fleet sink: CDFs, SP-vs-MP deltas, significance.

    Pure rendering over an already-merged :class:`MetricSink`, so the
    report, the CLI and the tests all share one code path.  Schemes
    with zero completed sessions get dash cells instead of a crash --
    the fleet sink's empty state is well-defined (``None``
    percentiles), unlike the exact ``summarize()`` reference which
    keeps raising on empty input.
    """
    sections: List[ReportSection] = []
    names = sink.scheme_names()

    rows = []
    for name in names:
        s = sink.scheme(name)
        startup_p50 = s.startup.percentile(50)
        rows.append([
            name, s.sessions, s.completed, s.failed,
            _fmt(s.rebuffer_rate * 100 if s.play_q else None, "{:.2f}%"),
            _fmt(None if startup_p50 is None else startup_p50 * 1000,
                 "{:.0f} ms"),
            _fmt(s.reinjection_overhead_percent, "{:.1f}%"),
        ])
    sections.append(ReportSection(
        "Fleet population — per-scheme QoE (Tables 1/3 shape)",
        _table(["scheme", "sessions", "completed", "failed",
                "rebuffer rate", "startup p50", "reinjection cost"],
               rows)))

    rows = []
    for name in names:
        sketch = sink.scheme(name).rct
        rows.append([name] + [_fmt(sketch.percentile(p), "{:.3f}")
                              for p in FLEET_CDF_PCTS])
    sections.append(ReportSection(
        "Fleet population — request completion time CDF (s)",
        _table(["scheme"] + [f"p{p}" for p in FLEET_CDF_PCTS], rows)))

    treatments = [n for n in names if n != baseline]
    if baseline in names and treatments:
        base = sink.scheme(baseline)
        rows = []
        for name in treatments:
            treat = sink.scheme(name)
            delta = (improvement_percent(base.rebuffer_rate,
                                         treat.rebuffer_rate)
                     if base.play_q and treat.play_q else None)
            p99_b, p99_t = base.rct.percentile(99), treat.rct.percentile(99)
            rct_delta = (improvement_percent(p99_b, p99_t)
                         if p99_b is not None and p99_t is not None
                         else None)
            sig = permutation_mean_test(base.session_rebuffer_rate,
                                        treat.session_rebuffer_rate,
                                        rounds=rounds, seed=seed)
            sig_rct = permutation_mean_test(base.rct, treat.rct,
                                            rounds=rounds, seed=seed)
            rows.append([
                f"{baseline} → {name}",
                _fmt(delta, "{:+.1f}%"),
                _fmt(rct_delta, "{:+.1f}%"),
                _fmt(sig.p_value if sig else None, "{:.3f}"),
                _fmt(sig_rct.p_value if sig_rct else None, "{:.3f}"),
            ])
        sections.append(ReportSection(
            "Fleet population — treatment deltas vs single-path",
            _table(["contrast", "rebuffer improvement", "RCT p99 improvement",
                    "p (rebuffer)", "p (RCT)"], rows)
            + f"\n\np-values: seeded permutation test over the merged "
              f"sketches ({rounds} rounds, seed {seed})."))
    return sections


def section_fleet(users: int, seed: int = 11) -> List[ReportSection]:
    """Run a split-population fleet day and render its sink."""
    from repro.experiments.fleet import (ABPopulationDriver, FleetConfig,
                                         run_fleet_driver)
    cfg = FleetConfig(users=users, seed=seed)
    run = run_fleet_driver(ABPopulationDriver(cfg))
    header = (f"{users} users split-population over "
              f"{', '.join(cfg.schemes)}; {run.result.shards} shards, "
              f"{run.result.workers_effective} effective workers, "
              f"{run.sessions_per_sec:.1f} sessions/sec.\n"
              f"Merged digest `{run.sink.digest()[:16]}`.")
    sections = fleet_sections(run.sink, seed=seed)
    first = sections[0]
    sections[0] = ReportSection(first.title, header + "\n\n" + first.body)
    return sections


def campaign_day_section(result, baseline: str = "sp"
                         ) -> ReportSection:
    """Day-over-day series from a campaign ledger (Fig. 11's shape).

    Pure rendering over a :class:`~repro.experiments.campaign.
    CampaignResult`: each :class:`DayRecord` carries that day's
    per-scheme summary, so the paper's daily SP-vs-treatment trend can
    be tabulated without re-running anything -- including from a
    checkpoint of a still-running multi-day campaign.
    """
    treatments = sorted({name for rec in result.days
                         for name in rec.schemes if name != baseline})
    rows = []
    for rec in result.days:
        base = rec.schemes.get(baseline, {})
        row = [rec.day, rec.sessions,
               _fmt(base.get("rct_p99"), "{:.2f}")]
        for name in treatments:
            treat = rec.schemes.get(name, {})
            row.append(_fmt(treat.get("rct_p99"), "{:.2f}"))
            base_rb, treat_rb = base.get("rebuffer_rate"), \
                treat.get("rebuffer_rate")
            row.append(_fmt(
                improvement_percent(base_rb, treat_rb)
                if base_rb and treat_rb is not None else None, "{:+.0f}%"))
        row.append(rec.failed + rec.retries + rec.abandoned_shards or "—")
        rows.append(row)
    header = ["day", "sessions", f"{baseline} p99 RCT (s)"]
    for name in treatments:
        header += [f"{name} p99 RCT (s)", f"{name} rebuffer Δ"]
    header.append("faults")
    state = "interrupted" if result.interrupted else (
        "complete" if result.completed else "partial")
    footer = (f"\n\nCampaign {state}: {len(result.days)}/"
              f"{result.days_planned} days, {result.tasks} sessions, "
              f"{result.retries} shard retries, "
              f"{result.abandoned_shards} abandoned shards. "
              f"Merged digest `{result.digest[:16]}`.")
    return ReportSection(
        "Fig. 11 — day-over-day campaign series",
        _table(header, rows) + footer)


def section_campaign(users: int, days: int,
                     seed: int = 11) -> List[ReportSection]:
    """Run a multi-day campaign and render its day-over-day ledger."""
    from repro.experiments.campaign import FleetCampaign
    from repro.experiments.fleet import FleetConfig
    cfg = FleetConfig(users=users, days=days, seed=seed)
    result = FleetCampaign(cfg).run()
    return [campaign_day_section(result)]


def section_fig14() -> ReportSection:
    points = normalize(run_fig14(sizes=(4_000_000,)))
    rows = [[p.config, f"{p.energy_per_bit_j:.2f}",
             f"{p.throughput_mbps:.2f}"] for p in points]
    return ReportSection(
        "Fig. 14 — normalized energy/bit vs throughput",
        _table(["config", "norm J/bit", "norm throughput"], rows))


def generate_report(scale: str = "quick",
                    sections: Optional[Sequence[str]] = None) -> str:
    """Build the markdown report; ``sections`` filters by fig name."""
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; pick from {list(SCALES)}")
    users, days, traces = SCALES[scale]

    builders: Dict[str, Callable[[], List[ReportSection]]] = {
        "fig6": lambda: [section_fig6()],
        "fig7": lambda: [section_fig7()],
        "fig8": lambda: [section_fig8()],
        "ab": lambda: section_ab(users, days),
        # the fleet tier is cheap per session (2s clip), so its
        # population is scaled 8x the per-day A/B cohort
        "fleet": lambda: section_fleet(users * 8),
        "campaign": lambda: section_campaign(users * 4, days),
        "ccmatrix": lambda: [section_ccmatrix(users)],
        "fig12": lambda: [section_fig12(users)],
        "fig13": lambda: [section_fig13(traces)],
        "fig14": lambda: [section_fig14()],
    }
    chosen = sections or list(builders)
    out = io.StringIO()
    out.write("# XLINK reproduction — regenerated evaluation\n\n")
    out.write(f"Scale: `{scale}` ({users} users/day, {days} days, "
              f"{traces} mobility traces). Shapes, not absolute\n"
              f"numbers, are the comparison target; see EXPERIMENTS.md.\n")
    for key in chosen:
        if key not in builders:
            raise ValueError(f"unknown section {key!r}")
        for section in builders[key]():
            out.write(f"\n## {section.title}\n\n{section.body}\n")
    return out.getvalue()
