"""Double-threshold sweep driver: Fig. 10 and Table 2.

The paper sweeps threshold pairs expressed as percentiles of the
measured play-time-left distribution: (95,80), (90,80), (90,60),
(60,50), (60,1) and (1,1), plus re-injection off.  Recall the
convention (Sec. 7.1): th(X) is the value such that X% of play-time
samples are *above* it, so th(95) is a small number of seconds and
th(1) is large -- (1,1) effectively means "QoE control off".

The driver first measures the play-time-left distribution with the
control off, converts the percentile pairs into seconds, then runs the
population once per setting, reporting:

- buffer-level improvement over SP at p90/p95/p99 (improvement in the
  *low tail*: we compare the (100-p)-th percentile of buffer levels,
  so "p99" reflects the worst 1% of samples -- the tail the paper's
  buffer improvements describe);
- redundant-traffic cost (% of useful bytes);
- the percentage reduction of buffer-level samples below 50 ms
  (Table 2's rebuffer-danger metric).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.core import ThresholdConfig
from repro.experiments.abtest import (ABTestConfig, iter_ab_day_tasks,
                                      run_ab_day)
from repro.experiments.harness import SCHEMES
from repro.metrics.sketch import DistSketch
from repro.metrics.stats import percentile

#: The paper's threshold settings, as (X, Y) percentile pairs.
PAPER_THRESHOLD_SETTINGS = ((95, 80), (90, 80), (90, 60), (60, 50),
                            (60, 1), (1, 1))

#: Table 2's rebuffer-danger level: 50 ms of play-time left.
DANGER_LEVEL_S = 0.050


def measure_playtime_distribution(cfg: ABTestConfig,
                                  scheme: str = "vanilla_mp",
                                  workers: Optional[int] = None
                                  ) -> List[float]:
    """Buffer play-time-left samples with re-injection control off."""
    day = run_ab_day(cfg, 1, [scheme], workers=workers)[scheme]
    samples: List[float] = []
    for session in day.sessions:
        samples.extend(session.buffer_level_samples)
    if not samples:
        raise RuntimeError("no buffer samples collected")
    return samples


def measure_playtime_sketch(cfg: ABTestConfig,
                            scheme: str = "vanilla_mp",
                            workers: Optional[int] = None) -> DistSketch:
    """Fleet-tier playtime distribution: same population, O(buckets).

    Runs the measurement day through the sharded fleet runner and
    returns the buffer-level sketch instead of the raw sample list, so
    threshold calibration scales to 10K-user populations.
    """
    from repro.experiments.parallel import run_fleet
    result = run_fleet(iter_ab_day_tasks(cfg, 1, [scheme]), workers=workers)
    sink = result.sink.get(scheme)
    if sink is None or sink.buffer_level.count == 0:
        raise RuntimeError("no buffer samples collected")
    return sink.buffer_level


PlaytimeDistribution = Union[Sequence[float], DistSketch]


def _distribution_percentile(samples: PlaytimeDistribution,
                             pct: float) -> float:
    if isinstance(samples, DistSketch):
        value = samples.percentile(pct)
        if value is None:
            raise ValueError("percentile of empty sketch")
        return value
    return percentile(samples, pct)


def percentile_pair_to_seconds(samples: PlaytimeDistribution,
                               x: int, y: int) -> ThresholdConfig:
    """Convert (X, Y) percentile thresholds into seconds.

    th(X) is the value with X% of samples above it, i.e. the
    (100-X)-th percentile of the distribution.  Accepts either a raw
    sample list (the exact small-N path) or a :class:`DistSketch`
    (the fleet path, within the sketch's alpha relative error).
    """
    t1 = _distribution_percentile(samples, 100 - x)
    t2 = _distribution_percentile(samples, 100 - y)
    if t1 > t2:  # degenerate distributions: keep the config valid
        t1 = t2
    return ThresholdConfig(t_th1=t1, t_th2=t2)


@dataclass
class ThresholdResult:
    """One Fig. 10 bar group + its Table 2 entry."""

    label: str
    thresholds: Optional[ThresholdConfig]
    buffer_improvement_p90: float
    buffer_improvement_p95: float
    buffer_improvement_p99: float
    cost_percent: float
    danger_reduction_percent: float


def _low_tail(samples: PlaytimeDistribution, pct: float) -> float:
    """The (100-pct)-th percentile: the 'worst pct%' buffer level."""
    return _distribution_percentile(samples, 100 - pct)


def _danger_fraction(samples: PlaytimeDistribution) -> float:
    if isinstance(samples, DistSketch):
        return samples.fraction_below(DANGER_LEVEL_S)
    if not samples:
        return 0.0
    return sum(1 for s in samples if s < DANGER_LEVEL_S) / len(samples)


def _population_buffer_stats(cfg: ABTestConfig, scheme_name: str,
                             workers: Optional[int],
                             use_sketch: bool
                             ) -> Tuple[PlaytimeDistribution, float]:
    """One population's buffer-level distribution + traffic cost.

    The exact path materializes every session (bit-identical to the
    original sweep); the sketch path reduces through the sharded
    fleet runner in O(buckets) memory, enabling 10K-user sweeps.
    """
    if use_sketch:
        from repro.experiments.parallel import run_fleet
        result = run_fleet(iter_ab_day_tasks(cfg, 2, [scheme_name]),
                           workers=workers)
        sink = result.sink.scheme(scheme_name)
        return sink.buffer_level, sink.traffic_overhead_percent
    day = run_ab_day(cfg, 2, [scheme_name], workers=workers)[scheme_name]
    samples = [s for sess in day.sessions
               for s in sess.buffer_level_samples]
    return samples, day.traffic_overhead_percent


def run_threshold_sweep(cfg: ABTestConfig,
                        settings: Sequence[Tuple[int, int]] =
                        PAPER_THRESHOLD_SETTINGS,
                        include_off: bool = True,
                        workers: Optional[int] = None,
                        use_sketch: bool = False) -> List[ThresholdResult]:
    """Fig. 10 / Table 2: sweep threshold settings over one population.

    ``workers`` fans each population's sessions out over processes
    (``None``/``0`` = ``os.cpu_count()``); results are bit-identical
    to the serial run.  ``use_sketch`` reroutes every population loop
    (calibration, SP baseline, each setting) through the fleet tier's
    shard-reduced streaming sketches -- within the sketch's alpha
    relative percentile error of the exact path, but with memory
    independent of population size.
    """
    if use_sketch:
        distribution: PlaytimeDistribution = measure_playtime_sketch(
            cfg, workers=workers)
    else:
        distribution = measure_playtime_distribution(cfg, workers=workers)
    sp_samples, _sp_cost = _population_buffer_stats(cfg, "sp", workers,
                                                    use_sketch)

    def run_with(label: str, thresholds: Optional[ThresholdConfig]
                 ) -> ThresholdResult:
        if thresholds is None:
            scheme_name = "vanilla_mp"  # re-injection off entirely
        else:
            scheme_name = f"_sweep_{label}"
            base = SCHEMES["xlink"]
            import dataclasses
            SCHEMES[scheme_name] = dataclasses.replace(
                base, name=scheme_name, thresholds=thresholds)
        try:
            samples, cost = _population_buffer_stats(cfg, scheme_name,
                                                     workers, use_sketch)
        finally:
            if thresholds is not None:
                del SCHEMES[scheme_name]

        def improvement(pct: float) -> float:
            sp_val = _low_tail(sp_samples, pct)
            val = _low_tail(samples, pct)
            if sp_val <= 0:
                return 0.0 if val <= 0 else 100.0
            return (val - sp_val) / sp_val * 100.0

        sp_danger = _danger_fraction(sp_samples)
        danger = _danger_fraction(samples)
        danger_reduction = (0.0 if sp_danger == 0 else
                            (sp_danger - danger) / sp_danger * 100.0)
        return ThresholdResult(
            label=label, thresholds=thresholds,
            buffer_improvement_p90=improvement(90),
            buffer_improvement_p95=improvement(95),
            buffer_improvement_p99=improvement(99),
            cost_percent=cost,
            danger_reduction_percent=danger_reduction)

    results: List[ThresholdResult] = []
    if include_off:
        results.append(run_with("re-inj. off", None))
    for x, y in settings:
        thresholds = percentile_pair_to_seconds(distribution, x, y)
        results.append(run_with(f"{x}-{y}", thresholds))
    return results
