"""Path-management experiment drivers: Fig. 7 and Fig. 8.

Fig. 7 measures first-video-frame delivery time vs first-frame size
when the multipath connection starts from a Wi-Fi primary vs a 5G SA
primary (wireless-aware primary path selection, Sec. 5.3).

Fig. 8 measures the request completion time of a 4 MB load over two
equal-bandwidth paths while sweeping the RTT ratio, comparing the two
ACK_MP return-path strategies (min-RTT vs original) under Cubic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import PathSpec, run_bulk_download, run_video_session
from repro.experiments.parallel import fan_out
from repro.traces.radio_profiles import RADIO_PROFILES, RadioType
from repro.video import PlayerConfig
from repro.video.media import Video

#: Fig. 7's first-frame sizes.
FIG7_FRAME_SIZES = (128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024,
                    2 * 1024 * 1024)


def _first_frame_video(first_frame_size: int) -> Video:
    """A video whose first (key) frame is ``first_frame_size`` bytes."""
    tail = [4_000] * 50
    return Video(name="fig7", fps=25,
                 frame_sizes=[first_frame_size] + tail,
                 chunk_size=first_frame_size + sum(tail))


def run_fig7_point(primary: str, first_frame_size: int,
                   seed: int = 0) -> float:
    """First-video-frame delivery time (s) for one (primary, size).

    The network has a Wi-Fi path and a 5G SA path with
    profile-calibrated delays; ``primary`` ("wifi" or "5g") selects
    which one carries the handshake and first data.
    """
    wifi_profile = RADIO_PROFILES[RadioType.WIFI]
    nr_profile = RADIO_PROFILES[RadioType.NR_SA]
    paths = [
        PathSpec(net_path_id=0, radio=RadioType.WIFI,
                 one_way_delay_s=wifi_profile.median_rtt_s / 2,
                 rate_bps=wifi_profile.typical_rate_mbps * 1e6),
        PathSpec(net_path_id=1, radio=RadioType.NR_SA,
                 one_way_delay_s=nr_profile.median_rtt_s / 2,
                 rate_bps=nr_profile.typical_rate_mbps * 1e6),
    ]
    if primary == "wifi":
        order = (RadioType.WIFI, RadioType.NR_SA)
    elif primary == "5g":
        order = (RadioType.NR_SA, RadioType.WIFI)
    else:
        raise ValueError(f"unknown primary {primary!r}")
    video = _first_frame_video(first_frame_size)
    player_config = PlayerConfig(concurrent_requests=1, max_buffer_s=1e9,
                                 startup_frames=1, resume_frames=1)
    result = run_video_session("xlink", paths, video=video,
                               player_config=player_config,
                               timeout_s=30.0, seed=seed,
                               primary_order=order)
    if result.metrics.first_frame_latency is None:
        raise RuntimeError("first frame never delivered")
    return result.metrics.first_frame_latency


def run_fig7(frame_sizes: Sequence[int] = FIG7_FRAME_SIZES,
             seed: int = 0,
             workers: Optional[int] = None
             ) -> Dict[str, List[Tuple[int, float]]]:
    """Full Fig. 7 sweep: {primary: [(frame_size, latency_s), ...]}.

    The (primary, size) grid fans out over ``workers`` processes.
    """
    out: Dict[str, List[Tuple[int, float]]] = {"wifi": [], "5g": []}
    grid = [(primary, size) for primary in out for size in frame_sizes]
    jobs = [{"primary": primary, "first_frame_size": size, "seed": seed}
            for primary, size in grid]
    for (primary, size), latency in zip(grid, fan_out(run_fig7_point, jobs,
                                                      workers=workers)):
        out[primary].append((size, latency))
    return out


#: Fig. 8's RTT ratios between the two paths.
FIG8_RTT_RATIOS = (1, 2, 3, 4, 5, 6, 7, 8)

#: Base RTT of the fast path in the Fig. 8 setup.
FIG8_BASE_RTT_S = 0.04

#: Load size of Fig. 8 (4 MB).
FIG8_LOAD_BYTES = 4 * 1024 * 1024


def run_fig8_point(rtt_ratio: float, ack_policy: str,
                   rate_bps: float = 20e6, seed: int = 0) -> float:
    """Completion time of the 4 MB load at one RTT ratio and policy."""
    paths = [
        PathSpec(net_path_id=0, radio=RadioType.WIFI,
                 one_way_delay_s=FIG8_BASE_RTT_S / 2, rate_bps=rate_bps),
        PathSpec(net_path_id=1, radio=RadioType.LTE,
                 one_way_delay_s=FIG8_BASE_RTT_S * rtt_ratio / 2,
                 rate_bps=rate_bps),
    ]
    from repro.experiments.harness import SCHEMES, SchemeConfig
    import dataclasses
    # Temporarily register a vanilla-MP variant with the chosen policy.
    scheme = dataclasses.replace(SCHEMES["vanilla_mp"],
                                 ack_path_policy=ack_policy,
                                 cc_algorithm="cubic")
    key = f"_fig8_{ack_policy}"
    SCHEMES[key] = scheme
    try:
        result = run_bulk_download(key, paths, FIG8_LOAD_BYTES,
                                   timeout_s=120.0, seed=seed)
    finally:
        del SCHEMES[key]
    if result.download_time_s is None:
        raise RuntimeError("fig8 download did not complete")
    return result.download_time_s


def run_fig8(ratios: Sequence[float] = FIG8_RTT_RATIOS,
             seed: int = 0,
             workers: Optional[int] = None
             ) -> Dict[str, List[Tuple[float, float]]]:
    """Full Fig. 8 sweep: {policy: [(ratio, completion_s), ...]}.

    The (policy, ratio) grid fans out over ``workers`` processes.
    """
    out: Dict[str, List[Tuple[float, float]]] = {"fastest": [],
                                                 "original": []}
    grid = [(policy, ratio) for policy in out for ratio in ratios]
    jobs = [{"rtt_ratio": ratio, "ack_policy": policy, "seed": seed}
            for policy, ratio in grid]
    for (policy, ratio), time_s in zip(grid, fan_out(run_fig8_point, jobs,
                                                     workers=workers)):
        out[policy].append((ratio, time_s))
    return out
