"""Time-series experiment drivers: Fig. 1(a/b) and Fig. 6.

Fig. 1a/1b replays a fast-varying Wi-Fi trace and a stable LTE trace
under vanilla-MP and samples each path's in-flight bytes and CWND
against the trace capacity -- showing the CWND failing to track the
Wi-Fi collapse.

Fig. 6 replays a two-path network where path 1 deteriorates and logs
the client's buffer level and the server's cumulative re-injected
bytes for (b) vanilla-MP, (c) re-injection without QoE control and
(d) re-injection with QoE control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import (MinRttScheduler, ReinjectionMode, SinglePathScheduler,
                        ThresholdConfig, XlinkScheduler)
from repro.netem import Datagram, MultipathNetwork
from repro.quic.connection import Connection, ConnectionConfig
from repro.sim import EventLoop
from repro.traces import (campus_walk_wifi_trace, stable_lte_trace,
                          trace_from_rate_series)
from repro.video import MediaServer, PlayerConfig, VideoPlayer, make_video


@dataclass
class PathDynamics:
    """Sampled per-path time series (Fig. 1a/1b content)."""

    times: List[float] = field(default_factory=list)
    inflight_bytes: List[int] = field(default_factory=list)
    cwnd_bytes: List[float] = field(default_factory=list)

    def max_inflight_in(self, t0: float, t1: float) -> int:
        values = [v for t, v in zip(self.times, self.inflight_bytes)
                  if t0 <= t < t1]
        return max(values) if values else 0


@dataclass
class SessionDynamics:
    """Sampled session time series (Fig. 6 content)."""

    times: List[float] = field(default_factory=list)
    buffer_bytes: List[int] = field(default_factory=list)
    reinjected_bytes: List[int] = field(default_factory=list)
    rebuffer_time: float = 0.0
    redundancy_percent: float = 0.0

    def min_buffer_in(self, t0: float, t1: float) -> int:
        values = [v for t, v in zip(self.times, self.buffer_bytes)
                  if t0 <= t < t1]
        return min(values) if values else 0

    def total_reinjected(self) -> int:
        return self.reinjected_bytes[-1] if self.reinjected_bytes else 0


def _wire_session(loop: EventLoop, net: MultipathNetwork, scheduler,
                  video, player_config, seed: int = 0,
                  client_scheduler=None):
    client = Connection(
        loop, ConnectionConfig(is_client=True, seed=seed),
        transmit=lambda pid, d: net.client.send(
            Datagram(payload=d, path_id=pid)),
        scheduler=client_scheduler or MinRttScheduler(),
        connection_name=f"dyn-{seed}")
    server = Connection(
        loop, ConnectionConfig(is_client=False, seed=seed),
        transmit=lambda pid, d: net.server.send(
            Datagram(payload=d, path_id=pid)),
        scheduler=scheduler, connection_name=f"dyn-{seed}")
    net.client.on_receive(lambda d: client.datagram_received(d.payload,
                                                             d.path_id))
    net.server.on_receive(lambda d: server.datagram_received(d.payload,
                                                             d.path_id))
    client.add_local_path(0, 0)
    server.add_local_path(0, 0)
    MediaServer(server, {video.name: video})
    player = VideoPlayer(loop, client, video, config=player_config)

    def on_established() -> None:
        if client.multipath_negotiated and 1 in net.paths:
            client.open_path(1, 1)
        player.start()

    client.on_established = on_established
    return client, server, player


def run_fig1_dynamics(duration_s: float = 3.0, sample_interval_s: float = 0.02,
                      seed: int = 1) -> Dict[int, PathDynamics]:
    """Fig. 1a/1b: vanilla-MP on campus Wi-Fi (path 0) + stable LTE
    (path 1); returns per-path (in-flight, cwnd) time series."""
    loop = EventLoop()
    net = MultipathNetwork(loop)
    net.add_trace_path(0, campus_walk_wifi_trace(duration_s, seed=seed),
                       one_way_delay_s=0.015)
    net.add_trace_path(1, stable_lte_trace(duration_s, seed=seed + 1),
                       one_way_delay_s=0.035)
    # A heavy workload keeps both pipes full, matching the replay.
    video = make_video(name="fig1", duration_s=duration_s + 5,
                       bitrate_bps=20_000_000, seed=seed,
                       chunk_size=512 * 1024)
    player_config = PlayerConfig(concurrent_requests=4, max_buffer_s=1e9)
    client, server, player = _wire_session(
        loop, net, MinRttScheduler(), video, player_config, seed=seed)
    client.connect()

    dynamics = {0: PathDynamics(), 1: PathDynamics()}

    def sample() -> None:
        for pid, series in dynamics.items():
            path = server.paths.get(pid)
            if path is None:
                continue
            series.times.append(loop.now)
            series.inflight_bytes.append(path.loss.bytes_in_flight)
            series.cwnd_bytes.append(path.cc.cwnd)
        if loop.now < duration_s:
            loop.schedule_after(sample_interval_s, sample)

    loop.schedule_after(sample_interval_s, sample)
    loop.run(until=duration_s)
    return dynamics


#: The three Fig. 6 configurations.
FIG6_MODES = ("vanilla_mp", "reinject_no_qoe", "reinject_with_qoe")


def _fig6_network(loop: EventLoop, duration_s: float,
                  seed: int) -> MultipathNetwork:
    """Two paths; path 1 deteriorates to near-zero at t in [2, 4.5)."""
    rates1 = []
    rates2 = []
    interval = 0.1
    for i in range(int((duration_s + 5) / interval)):
        t = i * interval
        # Path 1 deteriorates to a total blackout in [2.0, 5.0) --
        # the Fig. 6a shape.  Path 2 alone can sustain the bitrate,
        # so the stall vanilla-MP suffers is pure MP-HoL blocking.
        rates1.append(0.0 if 2.0 <= t < 5.0 else 10e6)
        rates2.append(6e6)
    net = MultipathNetwork(loop)
    net.add_trace_path(0, trace_from_rate_series(rates1, interval),
                       one_way_delay_s=0.015)
    net.add_trace_path(1, trace_from_rate_series(rates2, interval),
                       one_way_delay_s=0.040)
    return net


def run_fig6_dynamics(mode: str, duration_s: float = 7.0,
                      sample_interval_s: float = 0.05,
                      thresholds: Optional[ThresholdConfig] = None,
                      seed: int = 4) -> SessionDynamics:
    """One Fig. 6 panel: buffer level + re-injected bytes vs time."""
    if mode not in FIG6_MODES:
        raise ValueError(f"unknown fig6 mode {mode!r}")
    loop = EventLoop()
    net = _fig6_network(loop, duration_s, seed)
    # The client is an XLINK endpoint in the re-injection variants
    # (the deployed app ships the full client); vanilla-MP keeps a
    # plain min-RTT client, whose requests can wedge on a dead primary
    # -- part of the failure Fig. 6b illustrates.
    client_scheduler = None
    if mode == "vanilla_mp":
        scheduler = MinRttScheduler()
    elif mode == "reinject_no_qoe":
        scheduler = XlinkScheduler(thresholds=ThresholdConfig(always_on=True))
        client_scheduler = XlinkScheduler(
            thresholds=ThresholdConfig(always_on=True))
    else:
        gate = thresholds or ThresholdConfig(t_th1=0.5, t_th2=2.0)
        scheduler = XlinkScheduler(thresholds=gate)
        client_scheduler = XlinkScheduler(thresholds=gate)
    video = make_video(name="fig6", duration_s=duration_s + 4,
                       bitrate_bps=4_000_000, seed=seed,
                       chunk_size=256 * 1024)
    player_config = PlayerConfig(max_buffer_s=2.5)
    client, server, player = _wire_session(
        loop, net, scheduler, video, player_config, seed=seed,
        client_scheduler=client_scheduler)
    client.connect()

    series = SessionDynamics()

    def sample() -> None:
        series.times.append(loop.now)
        series.buffer_bytes.append(player.buffered_bytes())
        series.reinjected_bytes.append(
            server.stats.stream_bytes_reinjected)
        if loop.now < duration_s:
            loop.schedule_after(sample_interval_s, sample)

    loop.schedule_after(sample_interval_s, sample)
    loop.run(until=duration_s)
    series.rebuffer_time = player.stats.rebuffer_time
    if server.stats.stream_bytes_new:
        series.redundancy_percent = (
            server.stats.stream_bytes_reinjected
            / server.stats.stream_bytes_new * 100.0)
    return series
