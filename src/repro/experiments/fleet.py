"""Fleet layer: sharded population runs on streaming metric sketches.

XLINK's headline evaluation is a 100K-participant production A/B test
(Sec. 7.2, Tables 1/3).  The small-N drivers in this repository
materialize every session's metrics in-process, which tops out around
tens of sessions; this module is the population tier above them.  A
fleet run is the composition of three pieces, the ``FleetDriver``
protocol:

- a **task generator** -- a lazy stream of independent
  :class:`~repro.experiments.parallel.SessionTask`, each carrying its
  fully-derived seed;
- the **shard executor** -- :func:`repro.experiments.parallel.run_fleet`
  slices the stream into shards, runs each in a pool worker, and each
  worker reduces its slice into one
  :class:`~repro.metrics.sink.MetricSink` locally;
- the **sink reducer** -- shard sinks merge (associatively,
  commutatively, with exactly order-independent arithmetic) into the
  final population sink.

Memory is bounded by in-flight shards plus O(schemes x buckets) sink
state, so ``users=10_000`` runs in the same footprint as ``users=40``,
and a fixed seed gives an identical merged digest whether the run was
serial or sharded.

Two population drivers ship here: :class:`ABPopulationDriver` (the
paper's A/B day shape: Wi-Fi + LTE condition sampling per user, SP
control group vs multipath treatments, optionally split-population
like the production test) and :class:`MobilityPopulationDriver` (the
Fig. 13 trace catalog replayed as a population with per-repeat
reseeding).  The threshold sweep's population loop reuses the AB
driver through :func:`repro.experiments.thresholds.run_threshold_sweep`
with ``use_sketch=True``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, Optional, Protocol, Sequence, Tuple

from repro.experiments.abtest import ABTestConfig, iter_ab_day_tasks
from repro.experiments.harness import SCHEMES
from repro.experiments.parallel import (DEFAULT_SHARD_SIZE, FleetResult,
                                        SessionTask, run_fleet)
from repro.metrics.sink import MetricSink

__all__ = [
    "FleetConfig",
    "FleetDriver",
    "FleetRun",
    "ABPopulationDriver",
    "MobilityPopulationDriver",
    "run_fleet_driver",
]


class FleetDriver(Protocol):
    """What the fleet runner needs from a population experiment."""

    name: str

    def task_iter(self) -> Iterator[SessionTask]:
        """Lazily yield every session task of the population."""
        ...


@dataclass
class FleetConfig:
    """Population knobs for a fleet-scale A/B run.

    The per-session workload is deliberately lighter than the small-N
    :class:`ABTestConfig` defaults (a 2s clip instead of 10s): the
    fleet reproduces *population distribution* shapes -- percentile
    tails over thousands of users -- where the small drivers study
    per-session dynamics, and a 10K-user day has to finish in minutes
    on one container.  Condition sampling (outage/cross-ISP mix) is
    inherited unchanged from :class:`ABTestConfig`.
    """

    users: int = 1000
    days: int = 1
    schemes: Tuple[str, ...] = ("sp", "xlink")
    #: False = split population (each user plays one scheme,
    #: round-robin -- the paper's production A/B shape); True = every
    #: user plays every scheme (the paired small-N design).
    paired: bool = False
    video_duration_s: float = 2.0
    video_bitrate_bps: float = 1_000_000
    chunk_size: int = 64 * 1024
    max_buffer_s: float = 2.0
    timeout_s: float = 30.0
    seed: int = 0
    #: extra overrides forwarded into ABTestConfig (condition mix etc.)
    ab_overrides: Dict[str, float] = field(default_factory=dict)

    def ab_config(self) -> ABTestConfig:
        return ABTestConfig(
            users_per_day=self.users, days=self.days,
            video_duration_s=self.video_duration_s,
            video_bitrate_bps=self.video_bitrate_bps,
            chunk_size=self.chunk_size, max_buffer_s=self.max_buffer_s,
            timeout_s=self.timeout_s, seed=self.seed,
            **self.ab_overrides)

    @property
    def sessions_expected(self) -> int:
        per_day = self.users * (len(self.schemes) if self.paired else 1)
        return per_day * self.days


@dataclass
class ABPopulationDriver:
    """Task generator for the paper-shaped A/B population."""

    cfg: FleetConfig
    name: str = "ab_population"

    def assign(self, user: int) -> Sequence[str]:
        """Scheme(s) a user plays; round-robin keeps groups balanced."""
        if self.cfg.paired:
            return self.cfg.schemes
        return (self.cfg.schemes[user % len(self.cfg.schemes)],)

    def day_iter(self, day: int) -> Iterator[SessionTask]:
        """One day's slice of the population stream.

        Day seeds are derived independently (``derive_seed(seed,
        "day-<d>")``), so the concatenation of ``day_iter(1..D)`` is
        *exactly* ``task_iter()`` -- the property that lets a
        checkpointed campaign resume day-by-day and still merge to the
        digest of an uninterrupted run.
        """
        return iter_ab_day_tasks(self.cfg.ab_config(), day,
                                 self.cfg.schemes, assign=self.assign)

    def task_iter(self) -> Iterator[SessionTask]:
        for day in range(1, self.cfg.days + 1):
            yield from self.day_iter(day)


@dataclass
class MobilityPopulationDriver:
    """Fig. 13's trace catalog as a fleet population.

    Replays ``repeats`` reseeded passes of every (trace, scheme) cell;
    schemes are paired per (repeat, trace) so the per-scheme sketches
    stay directly comparable.  ``mptcp`` is excluded -- its driver
    needs the bespoke paced loop in ``mobility.py``, not a
    :class:`SessionTask` (use the small-N ``run_fig13`` for the full
    five-bar figure).
    """

    traces: int = 10
    repeats: int = 2
    schemes: Tuple[str, ...] = ("sp", "vanilla_mp", "cm", "xlink")
    duration_s: float = 30.0
    timeout_s: float = 60.0
    seed: int = 0
    name: str = "mobility_population"

    def task_iter(self) -> Iterator[SessionTask]:
        from repro.experiments.mobility import iter_mobility_fleet_tasks
        return iter_mobility_fleet_tasks(
            n_traces=self.traces, repeats=self.repeats,
            schemes=self.schemes, duration_s=self.duration_s,
            timeout_s=self.timeout_s, seed=self.seed)


@dataclass
class FleetRun:
    """A finished fleet run plus its wall-clock accounting."""

    driver: str
    result: FleetResult
    seconds: float

    @property
    def sink(self) -> MetricSink:
        return self.result.sink

    @property
    def sessions_per_sec(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.result.tasks / self.seconds


def run_fleet_driver(driver: FleetDriver,
                     workers: Optional[int] = None,
                     shard_size: int = DEFAULT_SHARD_SIZE,
                     sink: Optional[MetricSink] = None,
                     **supervision) -> FleetRun:
    """Execute one driver's population through the supervised runner.

    ``supervision`` kwargs (``max_retries``, ``shard_timeout_s``,
    ``retry_backoff_s``, ``fault_plan``) pass straight through to
    :func:`repro.experiments.parallel.run_fleet`.
    """
    t0 = time.perf_counter()
    result = run_fleet(driver.task_iter(), sink=sink, workers=workers,
                       shard_size=shard_size, **supervision)
    return FleetRun(driver=getattr(driver, "name", type(driver).__name__),
                    result=result, seconds=time.perf_counter() - t0)


def sweep_scheme_config(base_scheme: str, name: str, **changes):
    """A dynamically-derived scheme config for population sweeps.

    Returns a :class:`SchemeConfig` clone that task generators attach
    to every task (``scheme_config``), so pool workers can register it
    on arrival -- the same mechanism the threshold sweep uses.
    """
    return replace(SCHEMES[base_scheme], name=name, **changes)
