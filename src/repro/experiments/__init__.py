"""Experiment harness and per-figure drivers.

:mod:`repro.experiments.harness` runs one video session end-to-end
inside the discrete-event emulator under a chosen transport scheme
(SP / CM / vanilla-MP / MPTCP / XLINK variants); the other modules
build the paper's experiments on top of it.
"""

from repro.experiments.harness import (PathSpec, SchemeConfig, SessionResult,
                                       run_video_session, run_bulk_download,
                                       SCHEMES)
from repro.experiments.abtest import ABTestConfig, run_ab_day, run_ab_test
from repro.experiments.chaos import (ChaosSoakConfig, ChaosSoakResult,
                                     ScenarioOutcome, run_chaos_scenario,
                                     run_chaos_soak)
from repro.experiments.contention import (ContentionConfig, ContentionResult,
                                          run_contention,
                                          run_contention_sweep)
from repro.experiments.parallel import (FleetResult, SessionOutcome,
                                        SessionTask, ShardResult,
                                        available_workers, fan_out,
                                        run_fleet, run_session_tasks)
from repro.experiments.fleet import (ABPopulationDriver, FleetConfig,
                                     FleetRun, MobilityPopulationDriver,
                                     run_fleet_driver)

__all__ = [
    "ContentionConfig",
    "ContentionResult",
    "run_contention",
    "run_contention_sweep",
    "PathSpec",
    "SchemeConfig",
    "SessionResult",
    "run_video_session",
    "run_bulk_download",
    "SCHEMES",
    "ABTestConfig",
    "run_ab_day",
    "run_ab_test",
    "ChaosSoakConfig",
    "ChaosSoakResult",
    "ScenarioOutcome",
    "run_chaos_scenario",
    "run_chaos_soak",
    "SessionOutcome",
    "SessionTask",
    "ShardResult",
    "FleetResult",
    "available_workers",
    "fan_out",
    "run_session_tasks",
    "run_fleet",
    "ABPopulationDriver",
    "FleetConfig",
    "FleetRun",
    "MobilityPopulationDriver",
    "run_fleet_driver",
]
