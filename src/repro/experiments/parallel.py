"""Parallel experiment fan-out.

Every experiment in this repository decomposes into *independent*
discrete-event sessions: each one builds its own :class:`EventLoop`,
network and endpoints from a ``(spec, seed)`` pair and never touches
another session's state.  That makes the population drivers (the
Fig. 11 A/B day, threshold sweeps, mobility replays, path experiments)
embarrassingly parallel -- the same reason Mahimahi-style emulation
farms run one shell per experiment.

Two layers:

- :func:`fan_out` -- ordered process-pool map of any *module-level*
  callable over a list of kwargs dicts.  Results come back in
  submission order regardless of which worker finished first, so a
  parallel run is **bit-identical** to the serial loop it replaces.
- :class:`SessionTask` / :func:`run_session_tasks` -- a picklable
  description of one video-session or bulk-download simulation plus a
  worker entry point that strips the (unpicklable) live objects out of
  :class:`~repro.experiments.harness.SessionResult`, returning only the
  plain-data :class:`SessionOutcome`.

Determinism contract
--------------------

Each task carries its own fully-derived seed (the caller derives it
from the experiment seed exactly as the serial code did), so a worker
reconstructs the identical RNG streams no matter which process it runs
in.  The only cross-session global is the debug-only ``dgram_id``
counter, which no metric reads.  ``tests/test_parallel.py`` guards the
contract: serial and parallel A/B days must produce identical metrics.

Dispatch is chunked (``chunksize`` tasks per worker round-trip) to
amortize pickling, and falls back to a plain in-process loop when
``workers`` resolves to 1, when there is at most one task, or when the
platform cannot ``fork`` (the pool relies on fork inheriting the
parent's imports and dynamically-registered schemes cheaply; spawn
would work for the built-in schemes but costs an interpreter boot per
worker, so we keep the fallback simple and serial instead).

Fleet tier
----------

The per-outcome path above returns one pickled ``SessionOutcome`` per
session, which is exactly right for the small-N drivers (they need
raw per-session lists) and exactly wrong at 10K users.  The fleet
tier reduces *inside* the worker instead: :func:`execute_shard` runs
a slice of tasks and folds every outcome into one
:class:`~repro.metrics.sink.MetricSink`, so only a
:class:`ShardResult` (sink + counters + failure tallies, O(buckets))
crosses the process boundary.  :func:`run_fleet` shards a task
*iterator* lazily and merges shard results as they complete; because
sink merge is associative, commutative and exactly order-independent
(fixed-point sums, pure bucket mapping), a sharded run's merged digest
is **identical** to the serial run's, whatever the completion order.

Shard supervision
-----------------

At ~90 minutes per 100K-user day, a single OOM-killed worker or hung
shard must not void the run.  :func:`run_fleet` therefore *supervises*
its shards instead of consuming a bare pool iterator: every shard
attempt runs in its own forked process with a one-shot result pipe,
the supervisor tracks in-flight deadlines (``shard_timeout_s``),
detects worker death (pipe EOF without a result), validates returned
:class:`ShardResult` payloads, and re-executes failed / timed-out /
lost / corrupted shards with bounded retries and exponential backoff.
A retry re-runs the shard **from its task list** -- never from a
partial sink -- and every task carries its fully-derived seed, so a
retried shard folds in bit-identically and cannot double-count.
After ``max_retries`` failed attempts a shard is *quarantined*: its
tasks are tallied as ``ShardAbandoned`` per scheme in the merged sink
and counted in ``FleetResult.abandoned_shards`` / ``abandoned_tasks``
instead of voiding the run.  ``KeyboardInterrupt`` terminates every
in-flight worker (no orphaned children) and returns the
partially-folded result with ``interrupted=True``.

:class:`FaultPlan` is the worker-fault analog of the transport tier's
``ChaosSchedule``: a seeded, scripted plan that makes selected shards
crash the worker process, hang past the deadline, raise, or return a
corrupted result -- the harness the supervisor invariants are soaked
against (``repro.experiments.fleetchaos``, ``make fleet-chaos``).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time
from dataclasses import dataclass, field
from itertools import islice
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)

from repro.experiments.harness import (SCHEMES, PathSpec, SchemeConfig,
                                       run_bulk_download, run_video_session)
from repro.metrics.qoe import SessionMetrics
from repro.metrics.sink import MetricSink
from repro.traces.radio_profiles import RadioType
from repro.video import PlayerConfig
from repro.video.media import Video

__all__ = [
    "SessionTask",
    "SessionOutcome",
    "ShardResult",
    "FleetResult",
    "FaultPlan",
    "FaultInjected",
    "available_workers",
    "resolve_workers",
    "effective_workers",
    "fan_out",
    "execute_session_task",
    "run_session_tasks",
    "execute_shard",
    "iter_shards",
    "validate_shard_result",
    "run_fleet",
    "DEFAULT_SHARD_SIZE",
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_RETRY_BACKOFF_S",
    "ABANDONED_KIND",
]


def available_workers() -> int:
    """Number of workers ``workers=None`` resolves to (``os.cpu_count``)."""
    return max(os.cpu_count() or 1, 1)


def resolve_workers(workers: Optional[int]) -> int:
    """Map the public ``workers`` argument to a concrete worker count."""
    if workers is None or workers <= 0:
        return available_workers()
    return int(workers)


def effective_workers(workers: Optional[int], n_tasks: int) -> int:
    """Worker count :func:`fan_out` will *actually* use for a task list.

    This is the single source of truth for the pool-vs-serial decision,
    so callers that record worker counts (the perf benches) cannot
    drift from the dispatch behavior.  An explicitly requested count is
    honored even when ``os.cpu_count()`` is smaller -- workers are
    processes, and an experiment fan-out on a small container may still
    want real sharding -- but it is clamped to the task count, and the
    serial fallback applies when the resolved count is 1, there is at
    most one task, or the platform cannot fork.
    """
    n_workers = resolve_workers(workers)
    if n_workers <= 1 or n_tasks <= 1 or not _fork_available():
        return 1
    return min(n_workers, n_tasks)


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


def _invoke(job: Tuple[Callable[..., Any], Dict[str, Any]]) -> Any:
    fn, kwargs = job
    return fn(**kwargs)


def fan_out(fn: Callable[..., Any], kwargs_list: Sequence[Dict[str, Any]],
            workers: Optional[int] = None,
            chunksize: Optional[int] = None) -> List[Any]:
    """Run ``fn(**kwargs)`` for every dict, preserving submission order.

    ``fn`` must be a module-level callable (pickled by reference) and
    both its kwargs and return value must be picklable.  ``workers``
    follows the repo-wide convention: ``None``/``0`` means
    ``os.cpu_count()``, ``1`` forces the in-process serial path.
    """
    jobs = list(kwargs_list)
    n_workers = effective_workers(workers, len(jobs))
    if n_workers <= 1:
        return [fn(**kwargs) for kwargs in jobs]
    if chunksize is None:
        # ~4 dispatch rounds per worker balances pickling overhead
        # against tail latency from uneven session costs.
        chunksize = max(1, len(jobs) // (n_workers * 4))
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(processes=n_workers) as pool:
        return pool.map(_invoke, [(fn, kwargs) for kwargs in jobs],
                        chunksize=chunksize)


@dataclass
class SessionTask:
    """Picklable spec for one independent simulated session.

    ``key`` is an opaque caller-side handle (e.g. ``(user, scheme)``)
    echoed back on the outcome so results can be re-grouped without
    relying on list positions.  ``scheme_config`` carries dynamically
    registered scheme variants (threshold sweeps, ACK-policy ablations)
    into the worker process, where they may not exist in the inherited
    ``SCHEMES`` registry.
    """

    key: Any
    scheme: str
    paths: List[PathSpec]
    video: Optional[Video] = None
    player_config: Optional[PlayerConfig] = None
    timeout_s: float = 120.0
    seed: int = 0
    primary_order: Optional[Sequence[RadioType]] = None
    kwargs: Dict[str, Any] = field(default_factory=dict)
    scheme_config: Optional[SchemeConfig] = None
    #: "video" plays ``video``; "bulk" downloads ``total_bytes``
    mode: str = "video"
    total_bytes: int = 0


@dataclass
class SessionOutcome:
    """The picklable subset of ``SessionResult`` population drivers use."""

    key: Any
    scheme: str
    completed: bool
    duration_s: float
    metrics: SessionMetrics
    reinjected_bytes: int = 0
    new_stream_bytes: int = 0
    download_time_s: Optional[float] = None


def execute_session_task(task: SessionTask) -> SessionOutcome:
    """Worker entry point: run one session, return plain data only."""
    if task.scheme_config is not None and task.scheme not in SCHEMES:
        SCHEMES[task.scheme] = task.scheme_config
    if task.mode == "bulk":
        result = run_bulk_download(task.scheme, task.paths, task.total_bytes,
                                   timeout_s=task.timeout_s, seed=task.seed)
    elif task.mode == "video":
        result = run_video_session(
            task.scheme, task.paths, video=task.video,
            player_config=task.player_config, timeout_s=task.timeout_s,
            seed=task.seed, primary_order=task.primary_order, **task.kwargs)
    else:
        raise ValueError(f"unknown session task mode {task.mode!r}")
    return SessionOutcome(
        key=task.key, scheme=task.scheme, completed=result.completed,
        duration_s=result.duration_s, metrics=result.metrics,
        reinjected_bytes=result.reinjected_bytes,
        new_stream_bytes=result.new_stream_bytes,
        download_time_s=result.download_time_s)


def run_session_tasks(tasks: Sequence[SessionTask],
                      workers: Optional[int] = None,
                      chunksize: Optional[int] = None
                      ) -> List[SessionOutcome]:
    """Execute tasks (parallel when ``workers`` allows), in task order."""
    return fan_out(execute_session_task, [{"task": t} for t in tasks],
                   workers=workers, chunksize=chunksize)


# ---------------------------------------------------------------------------
# fleet tier: shard-level reduction
# ---------------------------------------------------------------------------

#: Tasks per shard.  Big enough that shard dispatch overhead (one
#: fork + pickle round trip per shard) is noise against ~50ms/session
#: DES work, small enough that 10K tasks still spread over >100 shards.
DEFAULT_SHARD_SIZE = 64

#: Re-execution attempts granted to a failed/timed-out/lost shard
#: before it is quarantined into the abandoned tallies.
DEFAULT_MAX_RETRIES = 2

#: Base of the exponential retry backoff (pool mode only; the serial
#: path re-runs immediately -- there is no crashed worker to cool off).
DEFAULT_RETRY_BACKOFF_S = 0.25

#: Failure kind recorded (per scheme, per task) in the merged sink when
#: a shard exhausts its retries and is quarantined.
ABANDONED_KIND = "ShardAbandoned"

#: Exit code an injected worker crash dies with (``os._exit``).
_FAULT_EXIT_CODE = 86


class FaultInjected(RuntimeError):
    """Raised inside a worker by a :class:`FaultPlan` 'raise' fault."""


@dataclass(frozen=True)
class FaultPlan:
    """Scripted worker-fault plan for fleet shards.

    The experiment-infrastructure analog of the transport tier's
    ``ChaosSchedule`` (PR 3): a seeded, deterministic plan that makes
    selected shards misbehave *at the worker level* so the supervisor
    in :func:`run_fleet` can be tested against real process death:

    - **crash** -- the worker process dies with ``os._exit`` (the
      OOM-kill shape: no exception, no result, pipe EOF);
    - **hang** -- the worker sleeps ``hang_s`` before executing, so a
      ``shard_timeout_s`` deadline must kill it;
    - **raise** -- the worker raises :class:`FaultInjected` out of the
      shard body (a bug in harness code, as opposed to the per-task
      failures ``execute_shard`` already tallies);
    - **corrupt** -- the worker returns a :class:`ShardResult` whose
      accounting is inconsistent, which result validation must catch.

    Shards are selected either explicitly (``*_shards`` index tuples)
    or probabilistically: a per-shard RNG derived from
    ``(seed, shard index)`` draws once against the cumulative rates,
    so membership is a pure function of the shard index -- independent
    of execution order and of how many shards exist.

    By default a fault fires only on a shard's **first** attempt, so a
    retried shard succeeds and the run's merged digest must equal the
    fault-free digest.  ``sticky=True`` fires the fault on every
    attempt, driving the shard to abandonment (the non-retryable
    case).
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    raise_rate: float = 0.0
    corrupt_rate: float = 0.0
    crash_shards: Tuple[int, ...] = ()
    hang_shards: Tuple[int, ...] = ()
    raise_shards: Tuple[int, ...] = ()
    corrupt_shards: Tuple[int, ...] = ()
    #: how long a hung worker sleeps (should exceed ``shard_timeout_s``)
    hang_s: float = 3600.0
    #: False: fault fires on attempt 0 only (retry succeeds);
    #: True: fault fires on every attempt (shard ends up abandoned).
    sticky: bool = False

    def fault_kind(self, shard_index: int) -> Optional[str]:
        """The fault class afflicting a shard, or ``None``."""
        if shard_index in self.crash_shards:
            return "crash"
        if shard_index in self.hang_shards:
            return "hang"
        if shard_index in self.raise_shards:
            return "raise"
        if shard_index in self.corrupt_shards:
            return "corrupt"
        rates = (("crash", self.crash_rate), ("hang", self.hang_rate),
                 ("raise", self.raise_rate), ("corrupt", self.corrupt_rate))
        if any(rate > 0.0 for _, rate in rates):
            from repro.sim.rng import make_rng
            draw = make_rng(self.seed, f"fleet-fault-{shard_index}").random()
            for kind, rate in rates:
                if draw < rate:
                    return kind
                draw -= rate
        return None

    def fires(self, shard_index: int, attempt: int) -> Optional[str]:
        """The fault to inject on this attempt (``None`` = run clean)."""
        kind = self.fault_kind(shard_index)
        if kind is None or (attempt > 0 and not self.sticky):
            return None
        return kind

    def is_noop(self) -> bool:
        return (not any((self.crash_rate, self.hang_rate, self.raise_rate,
                         self.corrupt_rate))
                and not any((self.crash_shards, self.hang_shards,
                             self.raise_shards, self.corrupt_shards)))


@dataclass
class ShardResult:
    """What one worker returns for a whole slice of tasks.

    This -- not a list of per-session outcomes -- is the only thing
    crossing the pool boundary in a fleet run; its size is
    O(schemes x sketch buckets) regardless of how many sessions the
    shard executed.
    """

    sink: MetricSink
    tasks: int = 0
    #: execution failures, keyed by exception type name
    failures: Dict[str, int] = field(default_factory=dict)


def execute_shard(tasks: Sequence[SessionTask]) -> ShardResult:
    """Worker entry point: run a task slice, reduce locally.

    A task that raises is tallied (per exception type, and per scheme
    inside the sink) instead of poisoning the whole shard -- at 10K
    users a single pathological parameter draw must not void the run.
    """
    result = ShardResult(sink=MetricSink())
    for task in tasks:
        result.tasks += 1
        try:
            outcome = execute_session_task(task)
        except Exception as exc:  # noqa: BLE001 - tallied, not hidden
            kind = type(exc).__name__
            result.failures[kind] = result.failures.get(kind, 0) + 1
            result.sink.observe_failure(task.scheme, kind)
            continue
        result.sink.observe(outcome)
    return result


def iter_shards(tasks: Iterable[SessionTask],
                shard_size: int = DEFAULT_SHARD_SIZE
                ) -> Iterator[List[SessionTask]]:
    """Lazily slice a task iterable into shard-sized lists."""
    if shard_size <= 0:
        raise ValueError(f"shard_size must be positive, got {shard_size}")
    it = iter(tasks)
    while True:
        shard = list(islice(it, shard_size))
        if not shard:
            return
        yield shard


@dataclass
class FleetResult:
    """Merged outcome of a (possibly sharded, supervised) fleet run.

    ``failures`` are *per-task* execution failures tallied inside
    healthy shards; ``shard_faults`` are *supervision-level* events --
    worker crashes, deadline kills (``timeout``), shard-body exception
    type names, and ``corrupt`` result rejections -- each of which
    triggered a retry or, past the budget, abandonment.
    """

    sink: MetricSink
    tasks: int = 0
    shards: int = 0
    workers_requested: int = 1
    workers_effective: int = 1
    failures: Dict[str, int] = field(default_factory=dict)
    #: shard re-executions granted (one per retryable fault)
    retries: int = 0
    #: shards quarantined after exhausting their retry budget
    abandoned_shards: int = 0
    #: tasks inside those shards (tallied as ABANDONED_KIND in the sink)
    abandoned_tasks: int = 0
    #: supervision fault tallies, keyed by kind
    shard_faults: Dict[str, int] = field(default_factory=dict)
    #: True when a KeyboardInterrupt cut the run short (partial fold)
    interrupted: bool = False

    @property
    def failed(self) -> int:
        return sum(self.failures.values())

    @property
    def ok(self) -> bool:
        """Every session ran, nothing abandoned, nothing cut short."""
        return (not self.failed and not self.abandoned_shards
                and not self.interrupted)


def validate_shard_result(result: Any, expected_tasks: int
                          ) -> Optional[str]:
    """Check a worker's returned payload; ``None`` if sound.

    A shard result that crosses a process boundary is untrusted input
    to the merge: a worker dying mid-pickle, a fault injector, or a
    harness bug can hand back garbage that would silently skew a
    population merge.  Returns a human-readable defect description so
    the supervisor can treat the shard as failed (and retry it).
    """
    if not isinstance(result, ShardResult):
        return f"not a ShardResult: {type(result).__name__}"
    if not isinstance(result.sink, MetricSink):
        return f"sink is not a MetricSink: {type(result.sink).__name__}"
    if result.tasks != expected_tasks:
        return (f"task count {result.tasks} != shard size "
                f"{expected_tasks}")
    if not isinstance(result.failures, dict) or not all(
            isinstance(k, str) and isinstance(v, int) and v >= 0
            for k, v in result.failures.items()):
        return "malformed failure tally"
    accounted = result.sink.sessions + sum(result.failures.values())
    if accounted != expected_tasks:
        return (f"sessions+failures {accounted} != shard size "
                f"{expected_tasks}")
    return None


def _corrupt_shard_result(result: ShardResult) -> ShardResult:
    """The payload an injected 'corrupt' fault returns (inconsistent
    task accounting, so validation must reject it)."""
    return ShardResult(sink=result.sink, tasks=result.tasks + 1,
                       failures=result.failures)


def _shard_worker(conn, shard_index: int, tasks: List[SessionTask],
                  attempt: int, fault_plan: Optional[FaultPlan]) -> None:
    """Child-process entry: run one shard attempt, send one payload.

    The payload is either ``("ok", ShardResult)`` or
    ``("error", exception type name, message)``.  A worker that dies
    without sending (crash fault, OOM kill, segfault) is detected by
    the parent as EOF on the pipe.
    """
    payload: Tuple
    try:
        if fault_plan is not None:
            kind = fault_plan.fires(shard_index, attempt)
            if kind == "crash":
                os._exit(_FAULT_EXIT_CODE)
            elif kind == "hang":
                time.sleep(fault_plan.hang_s)
            elif kind == "raise":
                raise FaultInjected(
                    f"injected shard failure (shard {shard_index}, "
                    f"attempt {attempt})")
        shard_result = execute_shard(tasks)
        if (fault_plan is not None
                and fault_plan.fires(shard_index, attempt) == "corrupt"):
            shard_result = _corrupt_shard_result(shard_result)
        payload = ("ok", shard_result)
    except BaseException as exc:  # noqa: BLE001 - reported, not hidden
        payload = ("error", type(exc).__name__, str(exc))
    try:
        conn.send(payload)
        conn.close()
    except Exception:  # pragma: no cover - parent vanished
        os._exit(1)


@dataclass
class _ShardAttempt:
    """Supervisor bookkeeping for one shard across its attempts."""

    index: int
    tasks: List[SessionTask]
    attempt: int = 0
    #: wall-clock gate for the next launch (exponential backoff)
    ready_at: float = 0.0


class _Supervisor:
    """Shared retry/abandon state machine for both execution modes.

    A shard attempt ends in one of three supervision states:

    - **folded** -- the validated result merged into the sink;
    - **retrying** -- a retryable fault (crash, timeout, raise,
      corrupt) consumed one unit of the retry budget; the shard
      re-enters the queue after exponential backoff, re-run from its
      original task list so the fold stays bit-identical;
    - **abandoned** -- the budget is exhausted; every task in the
      shard is tallied as :data:`ABANDONED_KIND` under its scheme so
      the loss is visible in the merged sink, the CLI and the report.
    """

    def __init__(self, merged: MetricSink, result: FleetResult,
                 max_retries: int, retry_backoff_s: float) -> None:
        self.merged = merged
        self.result = result
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.retry_queue: List[_ShardAttempt] = []

    def fold(self, shard_result: ShardResult) -> None:
        self.merged.merge(shard_result.sink)
        self.result.tasks += shard_result.tasks
        self.result.shards += 1
        for kind, n in shard_result.failures.items():
            self.result.failures[kind] = \
                self.result.failures.get(kind, 0) + n

    def complete(self, spec: _ShardAttempt, payload: Any) -> None:
        """Handle an attempt's validated outcome or failure kind."""
        error = validate_shard_result(payload, len(spec.tasks))
        if error is None:
            self.fold(payload)
        else:
            self.fail(spec, "corrupt")

    def fail(self, spec: _ShardAttempt, kind: str) -> None:
        self.result.shard_faults[kind] = \
            self.result.shard_faults.get(kind, 0) + 1
        if spec.attempt >= self.max_retries:
            self.abandon(spec)
            return
        self.result.retries += 1
        spec.attempt += 1
        spec.ready_at = time.monotonic() + \
            self.retry_backoff_s * (2 ** (spec.attempt - 1))
        self.retry_queue.append(spec)

    def abandon(self, spec: _ShardAttempt) -> None:
        self.result.abandoned_shards += 1
        self.result.abandoned_tasks += len(spec.tasks)
        for task in spec.tasks:
            self.merged.observe_failure(task.scheme, ABANDONED_KIND)

    def pop_ready(self, now: float) -> Optional[_ShardAttempt]:
        """The most-cooled retry whose backoff has elapsed, if any."""
        best = None
        for spec in self.retry_queue:
            if spec.ready_at <= now and (best is None
                                         or spec.ready_at < best.ready_at):
                best = spec
        if best is not None:
            self.retry_queue.remove(best)
        return best

    def next_ready_at(self) -> Optional[float]:
        if not self.retry_queue:
            return None
        return min(spec.ready_at for spec in self.retry_queue)


def _kill_process(proc) -> None:
    """Terminate a worker without leaving a zombie behind."""
    try:
        proc.terminate()
        proc.join(timeout=2.0)
        if proc.is_alive():  # pragma: no cover - SIGTERM ignored
            proc.kill()
            proc.join()
    except Exception:  # pragma: no cover - already-reaped races
        pass


def _run_fleet_serial(shard_iter: Iterator[List[SessionTask]],
                      sup: _Supervisor, result: FleetResult,
                      fault_plan: Optional[FaultPlan]) -> FleetResult:
    """In-process supervised execution (``workers=1`` / no fork).

    The serial tier cannot kill or preempt its own process, so
    'crash' and 'hang' faults surface as injected raises (tallied
    under their own kind for honest reporting) and ``shard_timeout_s``
    is not enforced -- deadline supervision needs the pool tier.
    Retries skip the backoff sleep: there is no crashed worker or
    poisoned host to cool off in-process.
    """
    next_index = 0
    try:
        for shard in shard_iter:
            spec = _ShardAttempt(index=next_index, tasks=shard)
            next_index += 1
            while True:
                kind = (fault_plan.fires(spec.index, spec.attempt)
                        if fault_plan is not None else None)
                if kind in ("crash", "hang", "raise"):
                    sup.fail(spec, kind if kind != "raise"
                             else FaultInjected.__name__)
                elif kind == "corrupt":
                    sup.complete(spec, _corrupt_shard_result(
                        execute_shard(spec.tasks)))
                else:
                    try:
                        shard_result = execute_shard(spec.tasks)
                    except Exception as exc:  # noqa: BLE001
                        sup.fail(spec, type(exc).__name__)
                    else:
                        sup.complete(spec, shard_result)
                if spec not in sup.retry_queue:
                    break
                sup.retry_queue.remove(spec)
    except KeyboardInterrupt:
        result.interrupted = True
    result.workers_effective = 1
    return result


def _run_fleet_supervised(shard_iter: Iterator[List[SessionTask]],
                          sup: _Supervisor, result: FleetResult,
                          n_workers: int, shard_timeout_s: Optional[float],
                          fault_plan: Optional[FaultPlan]) -> FleetResult:
    """Pool-mode supervision: forked shard workers, deadlines, retries.

    Each shard attempt is its own forked process with a one-shot
    result pipe; ``multiprocessing.connection.wait`` multiplexes the
    in-flight pipes, so worker death (EOF without a payload), results,
    and deadline expiry are all observed from one loop.  Fork cost is
    amortized by shard size (~ms against seconds of DES work per
    shard), and buys crash isolation the shared-pool design cannot
    offer: a dying worker takes exactly one shard attempt with it.
    """
    ctx = multiprocessing.get_context("fork")
    inflight: Dict[Any, Tuple[_ShardAttempt, Any, Optional[float]]] = {}
    next_index = 0
    exhausted = False

    def launch(spec: _ShardAttempt) -> None:
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_shard_worker,
            args=(send_conn, spec.index, spec.tasks, spec.attempt,
                  fault_plan),
            daemon=True)
        proc.start()
        send_conn.close()
        deadline = (time.monotonic() + shard_timeout_s
                    if shard_timeout_s is not None else None)
        inflight[recv_conn] = (spec, proc, deadline)

    def reap(conn) -> None:
        spec, proc, _deadline = inflight.pop(conn)
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            payload = None
        finally:
            conn.close()
        proc.join()
        if payload is None:
            # Pipe EOF without a payload: the worker died (OOM kill,
            # os._exit, segfault) before reporting.
            sup.fail(spec, "crash")
        elif payload[0] == "ok":
            sup.complete(spec, payload[1])
        else:
            sup.fail(spec, payload[1])

    try:
        while True:
            now = time.monotonic()
            while len(inflight) < n_workers:
                spec = sup.pop_ready(now)
                if spec is None and not exhausted:
                    shard = next(shard_iter, None)
                    if shard is None:
                        exhausted = True
                        continue
                    spec = _ShardAttempt(index=next_index, tasks=shard)
                    next_index += 1
                if spec is None:
                    break
                launch(spec)
            if not inflight:
                if exhausted and not sup.retry_queue:
                    break
                # Only backoff-gated retries remain: sleep them ready.
                ready_at = sup.next_ready_at()
                if ready_at is not None:
                    time.sleep(max(0.0, ready_at - time.monotonic()))
                continue
            timeouts = [deadline for (_s, _p, deadline) in inflight.values()
                        if deadline is not None]
            ready_at = sup.next_ready_at()
            if ready_at is not None:
                timeouts.append(ready_at)
            wait_s = (max(0.0, min(timeouts) - now) if timeouts else None)
            for conn in multiprocessing.connection.wait(
                    list(inflight), timeout=wait_s):
                reap(conn)
            now = time.monotonic()
            for conn, (spec, proc, deadline) in list(inflight.items()):
                if deadline is not None and now >= deadline:
                    del inflight[conn]
                    _kill_process(proc)
                    conn.close()
                    sup.fail(spec, "timeout")
    except KeyboardInterrupt:
        result.interrupted = True
    finally:
        # Leave no forked child behind -- on clean exit this is a
        # no-op; on interrupt it terminates every in-flight worker.
        for conn, (_spec, proc, _deadline) in list(inflight.items()):
            _kill_process(proc)
            conn.close()
        inflight.clear()
    result.workers_effective = min(n_workers, result.shards) \
        if result.shards else 1
    return result


def run_fleet(tasks: Iterable[SessionTask],
              sink: Optional[MetricSink] = None,
              workers: Optional[int] = None,
              shard_size: int = DEFAULT_SHARD_SIZE,
              max_retries: int = DEFAULT_MAX_RETRIES,
              shard_timeout_s: Optional[float] = None,
              retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
              fault_plan: Optional[FaultPlan] = None) -> FleetResult:
    """Supervised reduce-style fleet execution: tasks -> shards -> sink.

    ``tasks`` may be (and for large populations should be) a lazy
    generator; the parent materializes only in-flight and
    awaiting-retry shards, and workers never return per-session
    outcomes, so memory stays bounded by ``workers * shard_size``
    tasks plus the O(buckets) sinks.  ``workers`` follows the
    repo-wide convention (``None``/``0`` = ``os.cpu_count()``, ``1`` =
    in-process serial).

    Supervision: each shard gets ``max_retries`` re-executions (with
    ``retry_backoff_s``-based exponential backoff in pool mode) after
    a worker crash, a ``shard_timeout_s`` deadline kill, a shard-body
    exception, or a corrupted result; a shard that exhausts the budget
    is quarantined into the abandoned tallies.  ``fault_plan`` injects
    exactly those fault classes for testing.  ``KeyboardInterrupt``
    terminates all workers and returns the partial fold with
    ``interrupted=True``.

    Determinism: every task carries its fully-derived seed, retries
    re-run from the original task list (never from a partial sink),
    and the sink merge is exactly order-independent -- so serial,
    sharded, and fault-retried runs produce identical merged digests
    for the same task stream whenever every fault was retryable.
    """
    merged = sink if sink is not None else MetricSink()
    result = FleetResult(sink=merged)
    n_workers = resolve_workers(workers)
    result.workers_requested = n_workers
    shard_iter = iter_shards(tasks, shard_size)
    sup = _Supervisor(merged, result, max_retries=max_retries,
                      retry_backoff_s=retry_backoff_s)
    if n_workers <= 1 or not _fork_available():
        return _run_fleet_serial(shard_iter, sup, result, fault_plan)
    return _run_fleet_supervised(shard_iter, sup, result, n_workers,
                                 shard_timeout_s, fault_plan)
