"""Parallel experiment fan-out.

Every experiment in this repository decomposes into *independent*
discrete-event sessions: each one builds its own :class:`EventLoop`,
network and endpoints from a ``(spec, seed)`` pair and never touches
another session's state.  That makes the population drivers (the
Fig. 11 A/B day, threshold sweeps, mobility replays, path experiments)
embarrassingly parallel -- the same reason Mahimahi-style emulation
farms run one shell per experiment.

Two layers:

- :func:`fan_out` -- ordered process-pool map of any *module-level*
  callable over a list of kwargs dicts.  Results come back in
  submission order regardless of which worker finished first, so a
  parallel run is **bit-identical** to the serial loop it replaces.
- :class:`SessionTask` / :func:`run_session_tasks` -- a picklable
  description of one video-session or bulk-download simulation plus a
  worker entry point that strips the (unpicklable) live objects out of
  :class:`~repro.experiments.harness.SessionResult`, returning only the
  plain-data :class:`SessionOutcome`.

Determinism contract
--------------------

Each task carries its own fully-derived seed (the caller derives it
from the experiment seed exactly as the serial code did), so a worker
reconstructs the identical RNG streams no matter which process it runs
in.  The only cross-session global is the debug-only ``dgram_id``
counter, which no metric reads.  ``tests/test_parallel.py`` guards the
contract: serial and parallel A/B days must produce identical metrics.

Dispatch is chunked (``chunksize`` tasks per worker round-trip) to
amortize pickling, and falls back to a plain in-process loop when
``workers`` resolves to 1, when there is at most one task, or when the
platform cannot ``fork`` (the pool relies on fork inheriting the
parent's imports and dynamically-registered schemes cheaply; spawn
would work for the built-in schemes but costs an interpreter boot per
worker, so we keep the fallback simple and serial instead).

Fleet tier
----------

The per-outcome path above returns one pickled ``SessionOutcome`` per
session, which is exactly right for the small-N drivers (they need
raw per-session lists) and exactly wrong at 10K users.  The fleet
tier reduces *inside* the worker instead: :func:`execute_shard` runs
a slice of tasks and folds every outcome into one
:class:`~repro.metrics.sink.MetricSink`, so only a
:class:`ShardResult` (sink + counters + failure tallies, O(buckets))
crosses the pool boundary.  :func:`run_fleet` shards a task *iterator*
lazily -- tasks are generated, pickled and executed in bounded flights
(OS pipe backpressure throttles the feeder), and shard results are
merged as they arrive via ``imap_unordered``.  Because sink merge is
associative, commutative and exactly order-independent (fixed-point
sums, pure bucket mapping), a sharded run's merged digest is
**identical** to the serial run's, whatever the completion order.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from itertools import islice
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)

from repro.experiments.harness import (SCHEMES, PathSpec, SchemeConfig,
                                       run_bulk_download, run_video_session)
from repro.metrics.qoe import SessionMetrics
from repro.metrics.sink import MetricSink
from repro.traces.radio_profiles import RadioType
from repro.video import PlayerConfig
from repro.video.media import Video

__all__ = [
    "SessionTask",
    "SessionOutcome",
    "ShardResult",
    "FleetResult",
    "available_workers",
    "resolve_workers",
    "effective_workers",
    "fan_out",
    "execute_session_task",
    "run_session_tasks",
    "execute_shard",
    "iter_shards",
    "run_fleet",
    "DEFAULT_SHARD_SIZE",
]


def available_workers() -> int:
    """Number of workers ``workers=None`` resolves to (``os.cpu_count``)."""
    return max(os.cpu_count() or 1, 1)


def resolve_workers(workers: Optional[int]) -> int:
    """Map the public ``workers`` argument to a concrete worker count."""
    if workers is None or workers <= 0:
        return available_workers()
    return int(workers)


def effective_workers(workers: Optional[int], n_tasks: int) -> int:
    """Worker count :func:`fan_out` will *actually* use for a task list.

    This is the single source of truth for the pool-vs-serial decision,
    so callers that record worker counts (the perf benches) cannot
    drift from the dispatch behavior.  An explicitly requested count is
    honored even when ``os.cpu_count()`` is smaller -- workers are
    processes, and an experiment fan-out on a small container may still
    want real sharding -- but it is clamped to the task count, and the
    serial fallback applies when the resolved count is 1, there is at
    most one task, or the platform cannot fork.
    """
    n_workers = resolve_workers(workers)
    if n_workers <= 1 or n_tasks <= 1 or not _fork_available():
        return 1
    return min(n_workers, n_tasks)


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


def _invoke(job: Tuple[Callable[..., Any], Dict[str, Any]]) -> Any:
    fn, kwargs = job
    return fn(**kwargs)


def fan_out(fn: Callable[..., Any], kwargs_list: Sequence[Dict[str, Any]],
            workers: Optional[int] = None,
            chunksize: Optional[int] = None) -> List[Any]:
    """Run ``fn(**kwargs)`` for every dict, preserving submission order.

    ``fn`` must be a module-level callable (pickled by reference) and
    both its kwargs and return value must be picklable.  ``workers``
    follows the repo-wide convention: ``None``/``0`` means
    ``os.cpu_count()``, ``1`` forces the in-process serial path.
    """
    jobs = list(kwargs_list)
    n_workers = effective_workers(workers, len(jobs))
    if n_workers <= 1:
        return [fn(**kwargs) for kwargs in jobs]
    if chunksize is None:
        # ~4 dispatch rounds per worker balances pickling overhead
        # against tail latency from uneven session costs.
        chunksize = max(1, len(jobs) // (n_workers * 4))
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(processes=n_workers) as pool:
        return pool.map(_invoke, [(fn, kwargs) for kwargs in jobs],
                        chunksize=chunksize)


@dataclass
class SessionTask:
    """Picklable spec for one independent simulated session.

    ``key`` is an opaque caller-side handle (e.g. ``(user, scheme)``)
    echoed back on the outcome so results can be re-grouped without
    relying on list positions.  ``scheme_config`` carries dynamically
    registered scheme variants (threshold sweeps, ACK-policy ablations)
    into the worker process, where they may not exist in the inherited
    ``SCHEMES`` registry.
    """

    key: Any
    scheme: str
    paths: List[PathSpec]
    video: Optional[Video] = None
    player_config: Optional[PlayerConfig] = None
    timeout_s: float = 120.0
    seed: int = 0
    primary_order: Optional[Sequence[RadioType]] = None
    kwargs: Dict[str, Any] = field(default_factory=dict)
    scheme_config: Optional[SchemeConfig] = None
    #: "video" plays ``video``; "bulk" downloads ``total_bytes``
    mode: str = "video"
    total_bytes: int = 0


@dataclass
class SessionOutcome:
    """The picklable subset of ``SessionResult`` population drivers use."""

    key: Any
    scheme: str
    completed: bool
    duration_s: float
    metrics: SessionMetrics
    reinjected_bytes: int = 0
    new_stream_bytes: int = 0
    download_time_s: Optional[float] = None


def execute_session_task(task: SessionTask) -> SessionOutcome:
    """Worker entry point: run one session, return plain data only."""
    if task.scheme_config is not None and task.scheme not in SCHEMES:
        SCHEMES[task.scheme] = task.scheme_config
    if task.mode == "bulk":
        result = run_bulk_download(task.scheme, task.paths, task.total_bytes,
                                   timeout_s=task.timeout_s, seed=task.seed)
    elif task.mode == "video":
        result = run_video_session(
            task.scheme, task.paths, video=task.video,
            player_config=task.player_config, timeout_s=task.timeout_s,
            seed=task.seed, primary_order=task.primary_order, **task.kwargs)
    else:
        raise ValueError(f"unknown session task mode {task.mode!r}")
    return SessionOutcome(
        key=task.key, scheme=task.scheme, completed=result.completed,
        duration_s=result.duration_s, metrics=result.metrics,
        reinjected_bytes=result.reinjected_bytes,
        new_stream_bytes=result.new_stream_bytes,
        download_time_s=result.download_time_s)


def run_session_tasks(tasks: Sequence[SessionTask],
                      workers: Optional[int] = None,
                      chunksize: Optional[int] = None
                      ) -> List[SessionOutcome]:
    """Execute tasks (parallel when ``workers`` allows), in task order."""
    return fan_out(execute_session_task, [{"task": t} for t in tasks],
                   workers=workers, chunksize=chunksize)


# ---------------------------------------------------------------------------
# fleet tier: shard-level reduction
# ---------------------------------------------------------------------------

#: Tasks per shard.  Big enough that shard dispatch overhead (one
#: pickle round trip per shard) is noise against ~50ms/session DES
#: work, small enough that 10K tasks still spread over >100 shards.
DEFAULT_SHARD_SIZE = 64


@dataclass
class ShardResult:
    """What one worker returns for a whole slice of tasks.

    This -- not a list of per-session outcomes -- is the only thing
    crossing the pool boundary in a fleet run; its size is
    O(schemes x sketch buckets) regardless of how many sessions the
    shard executed.
    """

    sink: MetricSink
    tasks: int = 0
    #: execution failures, keyed by exception type name
    failures: Dict[str, int] = field(default_factory=dict)


def execute_shard(tasks: Sequence[SessionTask]) -> ShardResult:
    """Worker entry point: run a task slice, reduce locally.

    A task that raises is tallied (per exception type, and per scheme
    inside the sink) instead of poisoning the whole shard -- at 10K
    users a single pathological parameter draw must not void the run.
    """
    result = ShardResult(sink=MetricSink())
    for task in tasks:
        result.tasks += 1
        try:
            outcome = execute_session_task(task)
        except Exception as exc:  # noqa: BLE001 - tallied, not hidden
            kind = type(exc).__name__
            result.failures[kind] = result.failures.get(kind, 0) + 1
            result.sink.observe_failure(task.scheme, kind)
            continue
        result.sink.observe(outcome)
    return result


def iter_shards(tasks: Iterable[SessionTask],
                shard_size: int = DEFAULT_SHARD_SIZE
                ) -> Iterator[List[SessionTask]]:
    """Lazily slice a task iterable into shard-sized lists."""
    if shard_size <= 0:
        raise ValueError(f"shard_size must be positive, got {shard_size}")
    it = iter(tasks)
    while True:
        shard = list(islice(it, shard_size))
        if not shard:
            return
        yield shard


@dataclass
class FleetResult:
    """Merged outcome of a (possibly sharded) fleet run."""

    sink: MetricSink
    tasks: int = 0
    shards: int = 0
    workers_requested: int = 1
    workers_effective: int = 1
    failures: Dict[str, int] = field(default_factory=dict)

    @property
    def failed(self) -> int:
        return sum(self.failures.values())


def run_fleet(tasks: Iterable[SessionTask],
              sink: Optional[MetricSink] = None,
              workers: Optional[int] = None,
              shard_size: int = DEFAULT_SHARD_SIZE) -> FleetResult:
    """Reduce-style fleet execution: tasks -> shards -> merged sink.

    ``tasks`` may be (and for large populations should be) a lazy
    generator; the parent never materializes the task list, and
    workers never return per-session outcomes, so memory stays bounded
    by ``workers * shard_size`` in-flight tasks plus the O(buckets)
    sinks.  ``workers`` follows the repo-wide convention
    (``None``/``0`` = ``os.cpu_count()``, ``1`` = in-process serial).

    Determinism: every task carries its fully-derived seed and the
    sink merge is exactly order-independent, so serial and sharded
    runs produce identical merged digests for the same task stream --
    ``imap_unordered`` completion order does not matter.
    """
    merged = sink if sink is not None else MetricSink()
    result = FleetResult(sink=merged)
    n_workers = resolve_workers(workers)
    result.workers_requested = n_workers
    shard_iter = iter_shards(tasks, shard_size)

    def fold(shard_result: ShardResult) -> None:
        merged.merge(shard_result.sink)
        result.tasks += shard_result.tasks
        result.shards += 1
        for kind, n in shard_result.failures.items():
            result.failures[kind] = result.failures.get(kind, 0) + n

    if n_workers <= 1 or not _fork_available():
        for shard in shard_iter:
            fold(execute_shard(shard))
        result.workers_effective = 1
        return result

    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(processes=n_workers) as pool:
        for shard_result in pool.imap_unordered(execute_shard, shard_iter,
                                                chunksize=1):
            fold(shard_result)
    result.workers_effective = min(n_workers, result.shards) \
        if result.shards else 1
    return result
