"""Parallel experiment fan-out.

Every experiment in this repository decomposes into *independent*
discrete-event sessions: each one builds its own :class:`EventLoop`,
network and endpoints from a ``(spec, seed)`` pair and never touches
another session's state.  That makes the population drivers (the
Fig. 11 A/B day, threshold sweeps, mobility replays, path experiments)
embarrassingly parallel -- the same reason Mahimahi-style emulation
farms run one shell per experiment.

Two layers:

- :func:`fan_out` -- ordered process-pool map of any *module-level*
  callable over a list of kwargs dicts.  Results come back in
  submission order regardless of which worker finished first, so a
  parallel run is **bit-identical** to the serial loop it replaces.
- :class:`SessionTask` / :func:`run_session_tasks` -- a picklable
  description of one video-session or bulk-download simulation plus a
  worker entry point that strips the (unpicklable) live objects out of
  :class:`~repro.experiments.harness.SessionResult`, returning only the
  plain-data :class:`SessionOutcome`.

Determinism contract
--------------------

Each task carries its own fully-derived seed (the caller derives it
from the experiment seed exactly as the serial code did), so a worker
reconstructs the identical RNG streams no matter which process it runs
in.  The only cross-session global is the debug-only ``dgram_id``
counter, which no metric reads.  ``tests/test_parallel.py`` guards the
contract: serial and parallel A/B days must produce identical metrics.

Dispatch is chunked (``chunksize`` tasks per worker round-trip) to
amortize pickling, and falls back to a plain in-process loop when
``workers`` resolves to 1, when there is at most one task, or when the
platform cannot ``fork`` (the pool relies on fork inheriting the
parent's imports and dynamically-registered schemes cheaply; spawn
would work for the built-in schemes but costs an interpreter boot per
worker, so we keep the fallback simple and serial instead).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import (SCHEMES, PathSpec, SchemeConfig,
                                       run_bulk_download, run_video_session)
from repro.metrics.qoe import SessionMetrics
from repro.traces.radio_profiles import RadioType
from repro.video import PlayerConfig
from repro.video.media import Video

__all__ = [
    "SessionTask",
    "SessionOutcome",
    "available_workers",
    "resolve_workers",
    "effective_workers",
    "fan_out",
    "execute_session_task",
    "run_session_tasks",
]


def available_workers() -> int:
    """Number of workers ``workers=None`` resolves to (``os.cpu_count``)."""
    return max(os.cpu_count() or 1, 1)


def resolve_workers(workers: Optional[int]) -> int:
    """Map the public ``workers`` argument to a concrete worker count."""
    if workers is None or workers <= 0:
        return available_workers()
    return int(workers)


def effective_workers(workers: Optional[int], n_tasks: int) -> int:
    """Worker count :func:`fan_out` will *actually* use for a task list.

    This is the single source of truth for the pool-vs-serial decision,
    so callers that record worker counts (the perf benches) cannot
    drift from the dispatch behavior.  An explicitly requested count is
    honored even when ``os.cpu_count()`` is smaller -- workers are
    processes, and an experiment fan-out on a small container may still
    want real sharding -- but it is clamped to the task count, and the
    serial fallback applies when the resolved count is 1, there is at
    most one task, or the platform cannot fork.
    """
    n_workers = resolve_workers(workers)
    if n_workers <= 1 or n_tasks <= 1 or not _fork_available():
        return 1
    return min(n_workers, n_tasks)


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


def _invoke(job: Tuple[Callable[..., Any], Dict[str, Any]]) -> Any:
    fn, kwargs = job
    return fn(**kwargs)


def fan_out(fn: Callable[..., Any], kwargs_list: Sequence[Dict[str, Any]],
            workers: Optional[int] = None,
            chunksize: Optional[int] = None) -> List[Any]:
    """Run ``fn(**kwargs)`` for every dict, preserving submission order.

    ``fn`` must be a module-level callable (pickled by reference) and
    both its kwargs and return value must be picklable.  ``workers``
    follows the repo-wide convention: ``None``/``0`` means
    ``os.cpu_count()``, ``1`` forces the in-process serial path.
    """
    jobs = list(kwargs_list)
    n_workers = effective_workers(workers, len(jobs))
    if n_workers <= 1:
        return [fn(**kwargs) for kwargs in jobs]
    if chunksize is None:
        # ~4 dispatch rounds per worker balances pickling overhead
        # against tail latency from uneven session costs.
        chunksize = max(1, len(jobs) // (n_workers * 4))
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(processes=n_workers) as pool:
        return pool.map(_invoke, [(fn, kwargs) for kwargs in jobs],
                        chunksize=chunksize)


@dataclass
class SessionTask:
    """Picklable spec for one independent simulated session.

    ``key`` is an opaque caller-side handle (e.g. ``(user, scheme)``)
    echoed back on the outcome so results can be re-grouped without
    relying on list positions.  ``scheme_config`` carries dynamically
    registered scheme variants (threshold sweeps, ACK-policy ablations)
    into the worker process, where they may not exist in the inherited
    ``SCHEMES`` registry.
    """

    key: Any
    scheme: str
    paths: List[PathSpec]
    video: Optional[Video] = None
    player_config: Optional[PlayerConfig] = None
    timeout_s: float = 120.0
    seed: int = 0
    primary_order: Optional[Sequence[RadioType]] = None
    kwargs: Dict[str, Any] = field(default_factory=dict)
    scheme_config: Optional[SchemeConfig] = None
    #: "video" plays ``video``; "bulk" downloads ``total_bytes``
    mode: str = "video"
    total_bytes: int = 0


@dataclass
class SessionOutcome:
    """The picklable subset of ``SessionResult`` population drivers use."""

    key: Any
    scheme: str
    completed: bool
    duration_s: float
    metrics: SessionMetrics
    reinjected_bytes: int = 0
    new_stream_bytes: int = 0
    download_time_s: Optional[float] = None


def execute_session_task(task: SessionTask) -> SessionOutcome:
    """Worker entry point: run one session, return plain data only."""
    if task.scheme_config is not None and task.scheme not in SCHEMES:
        SCHEMES[task.scheme] = task.scheme_config
    if task.mode == "bulk":
        result = run_bulk_download(task.scheme, task.paths, task.total_bytes,
                                   timeout_s=task.timeout_s, seed=task.seed)
    elif task.mode == "video":
        result = run_video_session(
            task.scheme, task.paths, video=task.video,
            player_config=task.player_config, timeout_s=task.timeout_s,
            seed=task.seed, primary_order=task.primary_order, **task.kwargs)
    else:
        raise ValueError(f"unknown session task mode {task.mode!r}")
    return SessionOutcome(
        key=task.key, scheme=task.scheme, completed=result.completed,
        duration_s=result.duration_s, metrics=result.metrics,
        reinjected_bytes=result.reinjected_bytes,
        new_stream_bytes=result.new_stream_bytes,
        download_time_s=result.download_time_s)


def run_session_tasks(tasks: Sequence[SessionTask],
                      workers: Optional[int] = None,
                      chunksize: Optional[int] = None
                      ) -> List[SessionOutcome]:
    """Execute tasks (parallel when ``workers`` allows), in task order."""
    return fan_out(execute_session_task, [{"task": t} for t in tasks],
                   workers=workers, chunksize=chunksize)
