"""Multi-user cell contention on one CDN host.

The paper's deployment numbers (Sec. 7) come from sessions that share
infrastructure twice over: many users camp on the same cellular cell,
and all of them are served by the same CDN machines.  This experiment
reproduces that shape in one emulation: N video sessions, each with a
*private* Wi-Fi path, all attached to one *shared* trace-driven LTE
cell, all served by a single :class:`~repro.host.ServerHost` behind
the QUIC-LB frontend.

Each user's Wi-Fi suffers a staggered outage window, which is exactly
when XLINK re-injects over the cell -- so as N grows, the recovery
paths contend for the same cell capacity and queue.  The run is fully
deterministic for a given config (the N=8 determinism test pins it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.host import SessionRuntime, VideoSessionSpec
from repro.host.specs import build_network, PathSpec
from repro.metrics.qoe import SessionMetrics, aggregate_rebuffer_rate
from repro.netem import OutageSchedule
from repro.quic.connection import aggregate_robustness
from repro.sim import EventLoop
from repro.traces.radio_profiles import RadioType
from repro.traces.synthetic import stable_lte_trace
from repro.video import PlayerConfig, make_video

#: the shared cell is always emulated path 0
CELL_PATH_ID = 0


@dataclass
class ContentionConfig:
    """One multi-user cell-contention run."""

    sessions: int = 8
    scheme: str = "xlink"
    seed: int = 0
    #: length of each user's video
    video_duration_s: float = 8.0
    #: shared LTE cell: mean capacity for the whole cell
    cell_mean_mbps: float = 24.0
    cell_trace_duration_s: float = 60.0
    cell_delay_s: float = 0.035
    #: per-user private Wi-Fi
    wifi_rate_bps: float = 10e6
    wifi_delay_s: float = 0.015
    #: each user i loses Wi-Fi for [outage_start + i*stagger, +outage_len)
    outage_start_s: float = 0.5
    outage_len_s: float = 1.2
    outage_stagger_s: float = 0.3
    #: session i connects at i * start_spacing_s
    start_spacing_s: float = 0.2
    timeout_s: float = 240.0


@dataclass
class ContentionResult:
    """Aggregate and per-session outcomes of a contention run."""

    config: ContentionConfig
    completed: int
    duration_s: float
    per_session: List[SessionMetrics]
    rebuffer_rate: float
    first_frame_latencies: List[float]
    reinjected_bytes: int
    new_stream_bytes: int
    #: ServerHost demux counters
    datagrams_routed: int
    datagrams_dropped: int
    #: total bytes the shared cell's downlink carried
    cell_down_bytes: int
    #: merged transport robustness counters, client + server sides
    #: (kept out of :meth:`fingerprint` -- reporting only)
    robustness: Dict[str, int] = field(default_factory=dict)
    evicted_closed: int = 0
    evicted_idle: int = 0

    @property
    def redundancy_percent(self) -> float:
        if self.new_stream_bytes == 0:
            return 0.0
        return self.reinjected_bytes / self.new_stream_bytes * 100.0

    def fingerprint(self) -> Tuple:
        """A hashable digest of the run, for determinism checks."""
        return (self.completed, self.duration_s, self.rebuffer_rate,
                tuple(self.first_frame_latencies),
                self.reinjected_bytes, self.new_stream_bytes,
                self.datagrams_routed, self.datagrams_dropped,
                self.cell_down_bytes)


def run_contention(config: ContentionConfig) -> ContentionResult:
    """Run N concurrent sessions against one host on a shared cell."""
    loop = EventLoop()
    paths = [PathSpec(CELL_PATH_ID, RadioType.LTE, config.cell_delay_s,
                      trace_ms=stable_lte_trace(
                          config.cell_trace_duration_s, seed=config.seed,
                          mean_mbps=config.cell_mean_mbps))]
    for i in range(config.sessions):
        start = config.outage_start_s + i * config.outage_stagger_s
        paths.append(PathSpec(
            1 + i, RadioType.WIFI, config.wifi_delay_s,
            rate_bps=config.wifi_rate_bps,
            outages=OutageSchedule([(start, start + config.outage_len_s)])))
    net = build_network(loop, paths, config.seed)
    runtime = SessionRuntime(loop, net)

    handles = []
    for i in range(config.sessions):
        video = make_video(name=f"video-{i}",
                           duration_s=config.video_duration_s,
                           seed=config.seed + i)
        handles.append(runtime.add_session(VideoSessionSpec(
            scheme_name=config.scheme,
            # Wi-Fi is the preferred primary; the shared cell is the
            # secondary every user re-injects (or migrates) onto.
            interfaces=[(1 + i, RadioType.WIFI),
                        (CELL_PATH_ID, RadioType.LTE)],
            video=video,
            player_config=PlayerConfig(),
            seed=config.seed + i,
            client_addr=f"client-{i}",
            connection_name=f"user-{i}",
            start_at=i * config.start_spacing_s)))
    runtime.run(timeout_s=config.timeout_s)

    results = [runtime.result(h) for h in handles]
    metrics = [r.metrics for r in results]
    host = runtime.host
    cell = net.paths[CELL_PATH_ID]
    return ContentionResult(
        config=config,
        completed=sum(1 for r in results if r.completed),
        duration_s=loop.now,
        per_session=metrics,
        rebuffer_rate=aggregate_rebuffer_rate(metrics),
        first_frame_latencies=[m.first_frame_latency for m in metrics
                               if m.first_frame_latency is not None],
        reinjected_bytes=sum(r.reinjected_bytes for r in results),
        new_stream_bytes=sum(r.new_stream_bytes for r in results),
        datagrams_routed=host.datagrams_routed,
        datagrams_dropped=host.datagrams_dropped,
        cell_down_bytes=cell.down_bytes_out,
        robustness=aggregate_robustness(
            [r.client.stats for r in results]
            + [r.server.stats for r in results]),
        evicted_closed=host.evicted_closed,
        evicted_idle=host.evicted_idle)


def run_contention_sweep(sessions_list: List[int],
                         scheme: str = "xlink",
                         seed: int = 0) -> Dict[int, ContentionResult]:
    """Sweep the user count on one cell (the N-axis of contention)."""
    return {n: run_contention(ContentionConfig(sessions=n, scheme=scheme,
                                               seed=seed))
            for n in sessions_list}
