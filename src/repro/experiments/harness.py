"""Single-session experiment harness, built on the host runtime.

``run_video_session`` plays one video under a scheme and collects
metrics.  It is the N=1 case of :class:`repro.host.SessionRuntime`:
one :class:`~repro.host.ServerHost` behind the QUIC-LB frontend, one
:class:`~repro.host.ClientEndpoint`, one shared event loop -- the
equivalence tests pin it bit-identical to the pre-runtime harness.

The scheme vocabulary (``SCHEMES``, :class:`SchemeConfig`,
:class:`PathSpec`) lives in :mod:`repro.host.specs` and is re-exported
here for the experiment drivers.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.host.runtime import (SessionResult, SessionRuntime,
                                VideoSessionSpec)
from repro.host.specs import (SCHEMES, PathSpec, SchemeConfig, build_network,
                              make_scheduler, scheme_with_cc)
from repro.metrics.qoe import SessionMetrics
from repro.mptcp import MptcpConnection
from repro.netem import Datagram, MultipathNetwork
from repro.quic.trace import ConnectionTracer
from repro.sim import EventLoop
from repro.traces.radio_profiles import RadioType
from repro.video import PlayerConfig, make_video
from repro.video.media import Video

#: historical private names, kept for the experiment drivers
_build_network = build_network
_make_server_scheduler = make_scheduler

__all__ = [
    "SCHEMES",
    "PathSpec",
    "SchemeConfig",
    "SessionResult",
    "run_bulk_download",
    "run_video_session",
    "scheme_with_cc",
]


def run_video_session(scheme_name: str, paths: Sequence[PathSpec],
                      video: Optional[Video] = None,
                      player_config: Optional[PlayerConfig] = None,
                      timeout_s: float = 120.0,
                      seed: int = 0,
                      primary_order: Optional[Sequence[RadioType]] = None,
                      tracer: Optional[ConnectionTracer] = None
                      ) -> SessionResult:
    """Play one video under ``scheme_name`` and collect metrics.

    ``tracer``, when given, is installed on the client connection and
    records a qlog-style event stream of the session.
    """
    scheme = SCHEMES[scheme_name]
    if scheme.is_mptcp:
        raise ValueError("use run_bulk_download for the MPTCP baseline")
    if video is None:
        video = make_video(seed=seed)
    loop = EventLoop()
    net = build_network(loop, paths, seed)
    runtime = SessionRuntime(loop, net)
    handle = runtime.add_session(VideoSessionSpec(
        scheme_name=scheme_name,
        interfaces=[(spec.net_path_id, spec.radio) for spec in paths],
        video=video,
        player_config=(player_config if player_config is not None
                       else PlayerConfig()),
        seed=seed,
        primary_order=primary_order,
        tracer=tracer))
    runtime.run(timeout_s=timeout_s)
    return runtime.result(handle)


def run_bulk_download(scheme_name: str, paths: Sequence[PathSpec],
                      total_bytes: int, timeout_s: float = 120.0,
                      seed: int = 0,
                      tracer: Optional[ConnectionTracer] = None
                      ) -> SessionResult:
    """Download ``total_bytes`` as fast as possible; measures completion.

    Used by Fig. 8 (4 MB load), Fig. 13 (request download time) and
    Fig. 14 (10-50 MB loads).  Works for every scheme including MPTCP.
    """
    scheme = SCHEMES[scheme_name]
    loop = EventLoop()
    net = build_network(loop, paths, seed)
    if scheme.is_mptcp:
        return _run_mptcp_download(loop, net, paths, total_bytes, timeout_s)

    # Many equal frames: the "first video frame" is then a negligible
    # slice of the load, so first-frame acceleration cannot distort a
    # raw-throughput measurement by duplicating half the file.
    n_frames = 50
    frame = max(total_bytes // n_frames, 1)
    sizes = [frame] * n_frames
    sizes[-1] += total_bytes - sum(sizes)
    video = Video(name="bulk", fps=25, frame_sizes=sizes,
                  chunk_size=total_bytes)
    player_config = PlayerConfig(startup_frames=2, resume_frames=1,
                                 concurrent_requests=1, max_buffer_s=1e9,
                                 tick_s=0.1)
    result = run_video_session(scheme_name, paths, video=video,
                               player_config=player_config,
                               timeout_s=timeout_s, seed=seed,
                               tracer=tracer)
    if result.metrics.request_completion_times:
        result.download_time_s = result.metrics.request_completion_times[0]
    elif result.completed:
        result.download_time_s = result.duration_s
    return result


def _run_mptcp_download(loop: EventLoop, net: MultipathNetwork,
                        paths: Sequence[PathSpec], total_bytes: int,
                        timeout_s: float) -> SessionResult:
    server = MptcpConnection(loop, is_server=True,
                             transmit=lambda pid, data: net.server.send(
                                 Datagram(payload=data, path_id=pid)))
    client = MptcpConnection(loop, is_server=False,
                             transmit=lambda pid, data: net.client.send(
                                 Datagram(payload=data, path_id=pid)))
    for spec in paths:
        server.add_subflow(spec.net_path_id)
        client.add_subflow(spec.net_path_id)
    net.client.on_receive(
        lambda d: client.datagram_received(d.payload, d.path_id))
    net.server.on_receive(
        lambda d: server.datagram_received(d.payload, d.path_id))
    start = loop.now
    client.on_complete = loop.request_stop
    client.request(total_bytes)
    if client.completed_at is None and loop.now < timeout_s:
        loop.run(stop_before=timeout_s)
    completed = client.completed_at is not None
    download_time = (client.completed_at - start) if completed else None
    return SessionResult(
        scheme="mptcp", completed=completed, duration_s=loop.now,
        metrics=SessionMetrics(), net=net, download_time_s=download_time)
