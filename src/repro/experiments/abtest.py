"""A/B population simulator (Sec. 7.2 methodology, emulated).

The paper's online evaluation runs two contrast groups in parallel --
single-path QUIC vs. the treatment (vanilla-MP in Sec. 3.3, XLINK in
Sec. 7.2) -- and reports day-by-day request completion time
percentiles and aggregate rebuffer rates.

Here each "user session" samples realistic network conditions:

- a Wi-Fi path (the better path; the SP group uses only it) with a
  lognormal rate, profile-sampled delay, and with some probability a
  multi-second outage window (the walking/hand-off cases that create
  the paper's tails);
- an LTE path with the heavier-tailed delay profile of Sec. 3.2,
  cross-ISP inflation for a fraction of users (Table 4), and its own
  (rarer) degradation;

and plays one short video.  Day-to-day variation comes from re-seeding
and mildly shifting the condition mix per day.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.experiments.harness import SCHEMES, PathSpec
from repro.experiments.parallel import SessionTask, run_session_tasks
from repro.metrics.qoe import (SessionMetrics, aggregate_rebuffer_rate,
                               improvement_percent, traffic_overhead_percent)
from repro.metrics.stats import percentile
from repro.netem import OutageSchedule
from repro.sim.rng import derive_seed, make_rng
from repro.traces.radio_profiles import (RADIO_PROFILES, RadioType,
                                         cross_isp_delay)
from repro.video import PlayerConfig, make_video


@dataclass
class ABTestConfig:
    """Knobs for the population simulation.

    Default condition mix is calibrated so the paper's comparative
    shapes emerge: Wi-Fi is usually the better path but occasionally
    blacks out (walking/hand-off); LTE has the heavy-tailed delays of
    Sec. 3.2 (worse across ISP borders, Table 4) and its own outages,
    which is what makes vanilla-MP's tail *worse* than SP while
    XLINK's re-injection rescues the stragglers.
    """

    users_per_day: int = 40
    days: int = 7
    video_duration_s: float = 10.0
    video_bitrate_bps: float = 2_000_000
    chunk_size: int = 160 * 1024
    #: probability a user's Wi-Fi suffers an outage during the play
    wifi_outage_prob: float = 0.15
    #: probability the LTE path crosses an ISP border (Table 4 inflation)
    cross_isp_prob: float = 0.5
    #: probability the LTE path degrades (outage) during play
    lte_degraded_prob: float = 0.35
    #: lognormal parameters for link rates (median ~ e^mu)
    wifi_rate_mu: float = 16.1   # ~9.8 Mbps median
    wifi_rate_sigma: float = 0.45
    lte_rate_mu: float = 14.7    # ~2.4 Mbps median
    lte_rate_sigma: float = 0.7
    #: player buffer cap; small = streaming stays "live" and stalls bite
    max_buffer_s: float = 2.0
    seed: int = 0
    timeout_s: float = 60.0
    #: extra scheme kwargs forwarded to run_video_session
    primary_order: Optional[Sequence[RadioType]] = None

    def player_config(self) -> PlayerConfig:
        return PlayerConfig(max_buffer_s=self.max_buffer_s)


@dataclass
class UserConditions:
    """Sampled network conditions for one user session."""

    wifi: PathSpec
    lte: PathSpec

    def paths_for(self, scheme: str) -> List[PathSpec]:
        if scheme == "sp":
            return [self.wifi]
        return [self.wifi, self.lte]


def sample_user_conditions(cfg: ABTestConfig, rng: random.Random
                           ) -> UserConditions:
    """Draw one user's Wi-Fi + LTE path pair."""
    wifi_profile = RADIO_PROFILES[RadioType.WIFI]
    lte_profile = RADIO_PROFILES[RadioType.LTE]

    wifi_rate = min(max(rng.lognormvariate(cfg.wifi_rate_mu,
                                           cfg.wifi_rate_sigma), 1.2e6), 60e6)
    lte_rate = min(max(rng.lognormvariate(cfg.lte_rate_mu,
                                          cfg.lte_rate_sigma), 0.8e6), 40e6)
    wifi_delay = wifi_profile.sample_rtt(rng) / 2.0
    lte_rtt = lte_profile.sample_rtt(rng)
    if rng.random() < cfg.cross_isp_prob:
        isps = ("A", "B", "C")
        lte_rtt = cross_isp_delay(lte_rtt, rng.choice(isps),
                                  rng.choice(isps))
    # Rate-delay correlation: a starved cell (weak signal, congestion)
    # also shows elevated latency; an ultra-low-RTT 1 Mbps LTE cell is
    # not a condition that occurs in practice.
    if lte_rate < 3e6:
        lte_rtt = max(lte_rtt, 0.030 * 3e6 / lte_rate)
    lte_delay = lte_rtt / 2.0

    wifi_outages = None
    if rng.random() < cfg.wifi_outage_prob:
        start = rng.uniform(0.5, cfg.video_duration_s * 0.8)
        length = rng.uniform(1.5, 4.5)
        wifi_outages = OutageSchedule(windows=[(start, start + length)])
    lte_outages = None
    if rng.random() < cfg.lte_degraded_prob:
        start = rng.uniform(0.3, cfg.video_duration_s * 0.8)
        length = rng.uniform(1.0, 3.0)
        lte_outages = OutageSchedule(windows=[(start, start + length)])

    wifi = PathSpec(net_path_id=0, radio=RadioType.WIFI,
                    one_way_delay_s=wifi_delay, rate_bps=wifi_rate,
                    loss_rate=rng.uniform(0.0, 0.01),
                    outages=wifi_outages)
    lte = PathSpec(net_path_id=1, radio=RadioType.LTE,
                   one_way_delay_s=lte_delay, rate_bps=lte_rate,
                   loss_rate=rng.uniform(0.0, 0.02),
                   outages=lte_outages)
    return UserConditions(wifi=wifi, lte=lte)


@dataclass
class DayResult:
    """Per-day, per-scheme aggregates."""

    day: int
    scheme: str
    sessions: List[SessionMetrics] = field(default_factory=list)

    @property
    def rcts(self) -> List[float]:
        out: List[float] = []
        for s in self.sessions:
            out.extend(s.request_completion_times)
        return out

    @property
    def first_frame_latencies(self) -> List[float]:
        return [s.first_frame_latency for s in self.sessions
                if s.first_frame_latency is not None]

    def rct_percentile(self, pct: float) -> float:
        return percentile(self.rcts, pct)

    @property
    def rebuffer_rate(self) -> float:
        return aggregate_rebuffer_rate(self.sessions)

    @property
    def traffic_overhead_percent(self) -> float:
        return traffic_overhead_percent(self.sessions)


def iter_ab_day_tasks(cfg: ABTestConfig, day: int, schemes: Sequence[str],
                      scheme_overrides: Optional[Dict[str, dict]] = None,
                      assign: Optional[Callable[[int], Sequence[str]]] = None
                      ) -> Iterator[SessionTask]:
    """Lazily generate the per-session tasks for one A/B day.

    Condition sampling stays *serial* (it consumes a shared per-day RNG
    stream exactly as the original nested loop did) -- only the
    expensive discrete-event sessions fan out.  Each task carries its
    fully-derived session seed, so the results are bit-identical
    however the tasks are executed.

    ``assign`` maps a user index to the subset of ``schemes`` that user
    actually plays (default: all of them, the paired small-N design).
    The fleet drivers pass a split-population assignment -- the paper's
    real A/B shape, one scheme per user -- and crucially the per-day
    condition RNG stream is consumed *before* assignment, so paired and
    split runs sample identical user populations.
    """
    day_seed = derive_seed(cfg.seed, f"day-{day}")
    rng = make_rng(day_seed, "conditions")
    for user in range(cfg.users_per_day):
        conditions = sample_user_conditions(cfg, rng)
        video = make_video(
            name=f"v{day}-{user}", duration_s=cfg.video_duration_s,
            bitrate_bps=cfg.video_bitrate_bps, chunk_size=cfg.chunk_size,
            seed=derive_seed(day_seed, f"video-{user}"))
        session_seed = derive_seed(day_seed, f"user-{user}")
        for scheme in (schemes if assign is None else assign(user)):
            kwargs = dict(scheme_overrides.get(scheme, {})) \
                if scheme_overrides else {}
            yield SessionTask(
                key=(user, scheme), scheme=scheme,
                paths=conditions.paths_for(scheme), video=video,
                player_config=cfg.player_config(),
                timeout_s=cfg.timeout_s, seed=session_seed,
                primary_order=cfg.primary_order, kwargs=kwargs,
                scheme_config=SCHEMES.get(scheme))


def build_ab_day_tasks(cfg: ABTestConfig, day: int, schemes: Sequence[str],
                       scheme_overrides: Optional[Dict[str, dict]] = None
                       ) -> List[SessionTask]:
    """The materialized task list (the small-N drivers' entry point)."""
    return list(iter_ab_day_tasks(cfg, day, schemes, scheme_overrides))


def run_ab_day(cfg: ABTestConfig, day: int, schemes: Sequence[str],
               scheme_overrides: Optional[Dict[str, dict]] = None,
               workers: Optional[int] = None) -> Dict[str, DayResult]:
    """Run one day's user population through each scheme.

    The same sampled user conditions are replayed for every scheme
    (paired comparison), which is *stronger* than the paper's split
    population but reproduces the comparative result with far fewer
    simulated users.

    ``workers=None``/``0`` (the default) fans the sessions out over
    ``os.cpu_count()`` processes; ``workers=1`` forces a serial
    in-process run.  Either way the per-scheme :class:`DayResult`
    metrics are identical: every session's seed is derived before
    dispatch and outcomes are reassembled in submission order.
    """
    results = {scheme: DayResult(day=day, scheme=scheme)
               for scheme in schemes}
    tasks = build_ab_day_tasks(cfg, day, schemes, scheme_overrides)
    for outcome in run_session_tasks(tasks, workers=workers):
        _user, scheme = outcome.key
        results[scheme].sessions.append(outcome.metrics)
    return results


def run_ab_test(cfg: ABTestConfig, schemes: Sequence[str],
                scheme_overrides: Optional[Dict[str, dict]] = None,
                workers: Optional[int] = None
                ) -> Dict[str, List[DayResult]]:
    """Run the full multi-day A/B test (days fan out session tasks)."""
    out: Dict[str, List[DayResult]] = {scheme: [] for scheme in schemes}
    for day in range(1, cfg.days + 1):
        day_results = run_ab_day(cfg, day, schemes, scheme_overrides,
                                 workers=workers)
        for scheme in schemes:
            out[scheme].append(day_results[scheme])
    return out


def daily_improvement(baseline_days: List[DayResult],
                      treatment_days: List[DayResult],
                      metric: str = "rebuffer_rate") -> List[float]:
    """Per-day improvement (%) of treatment over baseline."""
    out = []
    for base, treat in zip(baseline_days, treatment_days):
        if metric == "rebuffer_rate":
            out.append(improvement_percent(base.rebuffer_rate,
                                           treat.rebuffer_rate))
        else:
            raise ValueError(f"unknown metric {metric}")
    return out
