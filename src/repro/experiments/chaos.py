"""Chaos soak: randomized fault scenarios over the multi-session runtime.

Each scenario stands up the contention-shaped runtime (N sessions,
private Wi-Fi paths plus one shared cell, one :class:`ServerHost`
behind the QUIC-LB frontend), attaches seeded
:class:`~repro.netem.chaos.ChaosSchedule` fault plans to every path
direction, runs to completion, and checks the robustness invariants:

- **I1 no uncaught exception** anywhere in the stack;
- **I2 stall bound**: a completed session's rebuffer time never
  exceeds a fixed bound plus the injected blackhole time;
- **I3 completion**: without blackholes, every session finishes
  (corruption/reordering/duplication/jitter/rebind alone must never
  wedge the transport);
- **I4 counter self-consistency**: host drop classes never exceed
  total drops; packets received never exceed packets sent plus
  chaos-injected duplicates, in either direction;
- **I5 abandoned-path accounting**: an abandoned path retains no
  tracked packets and no in-flight bytes.

A fixed seed reproduces bit-identical aggregate metrics: the soak
digests every scenario fingerprint into one SHA-256, and rerunning
with the same seed must reproduce the digest exactly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.host import SessionRuntime, VideoSessionSpec
from repro.host.specs import PathSpec, build_network, scheme_with_cc
from repro.netem.chaos import ChaosSchedule
from repro.quic.connection import aggregate_robustness
from repro.quic.path import PathState
from repro.sim import EventLoop
from repro.sim.rng import make_rng
from repro.traces.radio_profiles import RadioType
from repro.video import PlayerConfig, make_video

#: the shared cell is always emulated path 0 (contention shape)
CELL_PATH_ID = 0

#: schemes a scenario may draw (XLINK weighted; mptcp has no QUIC host)
SCENARIO_SCHEMES = ("xlink", "xlink", "vanilla_mp", "reinject", "cm", "sp")


@dataclass
class ChaosSoakConfig:
    """One chaos soak run: N scenarios derived from one seed."""

    scenarios: int = 12
    seed: int = 7
    #: rebuffer allowance on top of injected blackhole seconds (I2)
    stall_bound_s: float = 5.0
    #: idle timeout used by both endpoints and host eviction
    idle_timeout_s: float = 4.0
    #: congestion controller the drawn schemes run ("cubic" is the
    #: bit-pinned default; any ``repro.quic.cc`` registry name works)
    cc_algorithm: str = "cubic"


@dataclass
class ScenarioOutcome:
    """Everything one scenario produced, plus its invariant verdicts."""

    index: int
    scheme: str
    sessions: int
    completed: int
    duration_s: float
    #: repr of an uncaught exception (I1 violation), or ``None``
    error: Optional[str]
    violations: List[str]
    #: merged transport robustness counters (client + server sides)
    robustness: Dict[str, int]
    #: merged fault-injection counts across all chaos boxes
    injected: Dict[str, int]
    evicted_closed: int
    evicted_idle: int
    fingerprint: Tuple

    @property
    def ok(self) -> bool:
        return self.error is None and not self.violations


@dataclass
class ChaosSoakResult:
    """Aggregate outcome of a soak run."""

    config: ChaosSoakConfig
    outcomes: List[ScenarioOutcome]
    #: SHA-256 over every scenario fingerprint (determinism check)
    digest: str = ""

    @property
    def errors(self) -> List[str]:
        return [f"scenario {o.index}: {o.error}"
                for o in self.outcomes if o.error is not None]

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for o in self.outcomes:
            out.extend(f"scenario {o.index}: {v}" for v in o.violations)
        return out

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)


@dataclass
class _Scenario:
    """The drawn shape of one scenario (kept for reporting/replay)."""

    scheme: str
    sessions: int
    video_duration_s: float
    horizon_s: float
    #: (path_id, direction, schedule) triples
    schedules: List[Tuple[int, str, ChaosSchedule]] = field(
        default_factory=list)
    long_blackhole_session: Optional[int] = None

    @property
    def blackhole_seconds(self) -> float:
        return sum(s.blackhole_seconds() for _, _, s in self.schedules)

    @property
    def has_blackholes(self) -> bool:
        return any(s.blackholes for _, _, s in self.schedules)


def _draw_scenario(rng, index: int) -> _Scenario:
    scenario = _Scenario(
        scheme=rng.choice(SCENARIO_SCHEMES),
        sessions=rng.randint(1, 3),
        video_duration_s=rng.uniform(2.5, 5.0),
        horizon_s=0.0)
    scenario.horizon_s = scenario.video_duration_s + 6.0
    horizon = scenario.horizon_s
    scenario.schedules.append(
        (CELL_PATH_ID, "up", ChaosSchedule.randomized(rng, horizon)))
    scenario.schedules.append(
        (CELL_PATH_ID, "down", ChaosSchedule.randomized(rng, horizon)))
    # Occasionally one session's Wi-Fi dies for the rest of the run --
    # possibly before its handshake finishes -- exercising CM rebind,
    # multipath failover, idle timeout, and host eviction.
    long_blackhole = rng.random() < 0.25
    if long_blackhole:
        scenario.long_blackhole_session = rng.randrange(scenario.sessions)
    for i in range(scenario.sessions):
        up = ChaosSchedule.randomized(rng, horizon, rebind=True)
        down = ChaosSchedule.randomized(rng, horizon)
        if i == scenario.long_blackhole_session:
            start = rng.uniform(0.05, 1.5)
            up.blackholes.append((start, start + 1000.0))
            down.blackholes.append((start, start + 1000.0))
        scenario.schedules.append((1 + i, "up", up))
        scenario.schedules.append((1 + i, "down", down))
    return scenario


def run_chaos_scenario(index: int, seed: int,
                       stall_bound_s: float = 5.0,
                       idle_timeout_s: float = 4.0,
                       cc_algorithm: str = "cubic") -> ScenarioOutcome:
    """Run one randomized scenario and check its invariants."""
    rng = make_rng(seed, f"chaos-scenario-{index}")
    scenario = _draw_scenario(rng, index)
    if cc_algorithm != "cubic":
        # Same drawn shape, different transport: the scheme draw above
        # consumed identical rng state, so a cc override changes only
        # the controller (and, deliberately, the digest).
        scenario.scheme = scheme_with_cc(scenario.scheme, cc_algorithm)
    loop = EventLoop()
    paths = [PathSpec(CELL_PATH_ID, RadioType.LTE, 0.035, rate_bps=24e6)]
    for i in range(scenario.sessions):
        paths.append(PathSpec(1 + i, RadioType.WIFI, 0.015, rate_bps=10e6))
    net = build_network(loop, paths, seed=seed + index)
    by_path: Dict[int, Dict[str, ChaosSchedule]] = {}
    for path_id, direction, sched in scenario.schedules:
        by_path.setdefault(path_id, {})[direction] = sched
    for path_id, scheds in by_path.items():
        net.paths[path_id].attach_chaos(
            up=scheds.get("up"), down=scheds.get("down"),
            rng=make_rng(seed, f"chaos-box-{index}-{path_id}"))

    runtime = SessionRuntime(loop, net, idle_timeout_s=idle_timeout_s)
    handles = []
    error: Optional[str] = None
    try:
        for i in range(scenario.sessions):
            session_seed = seed + index * 17 + i
            video = make_video(name=f"chaos-video-{index}-{i}",
                               duration_s=scenario.video_duration_s,
                               seed=session_seed)
            handles.append(runtime.add_session(VideoSessionSpec(
                scheme_name=scenario.scheme,
                interfaces=[(1 + i, RadioType.WIFI),
                            (CELL_PATH_ID, RadioType.LTE)],
                video=video,
                player_config=PlayerConfig(),
                seed=session_seed,
                client_addr=f"client-{i}",
                connection_name=f"chaos-user-{index}-{i}",
                start_at=i * 0.2)))
        runtime.run(timeout_s=scenario.horizon_s + 30.0)
    except Exception as exc:  # noqa: BLE001 -- I1 is "this never happens"
        error = f"{type(exc).__name__}: {exc}"

    host = runtime.host
    results = [runtime.result(h) for h in handles] if error is None else []
    conns = [(h.client.conn, h.server) for h in handles]
    robustness = aggregate_robustness(
        [c.stats for c, _ in conns] + [s.stats for _, s in conns])
    injected: Dict[str, int] = {}
    up_duplicated = down_duplicated = 0
    for path in net.paths.values():
        for box, direction in ((path.up_chaos, "up"),
                               (path.down_chaos, "down")):
            if box is None:
                continue
            for key, value in box.stats.as_dict().items():
                injected[key] = injected.get(key, 0) + value
            if direction == "up":
                up_duplicated += box.stats.duplicated
            else:
                down_duplicated += box.stats.duplicated

    violations: List[str] = []
    if error is None:
        violations.extend(_check_invariants(
            scenario, results, conns, host, up_duplicated, down_duplicated,
            stall_bound_s))

    client_sent = sum(c.stats.packets_sent for c, _ in conns)
    client_recv = sum(c.stats.packets_received for c, _ in conns)
    server_sent = sum(s.stats.packets_sent for _, s in conns)
    fingerprint = (
        index, scenario.scheme, scenario.sessions,
        sum(1 for r in results if r.completed), loop.now,
        client_sent, client_recv, server_sent,
        host.datagrams_routed, host.datagrams_dropped,
        host.evicted_closed, host.evicted_idle,
        tuple(sorted(robustness.items())),
        tuple(sorted(injected.items())),
        tuple(round(r.metrics.rebuffer_time, 9) for r in results),
        tuple(r.metrics.first_frame_latency for r in results),
    )
    return ScenarioOutcome(
        index=index, scheme=scenario.scheme, sessions=scenario.sessions,
        completed=sum(1 for r in results if r.completed),
        duration_s=loop.now, error=error, violations=violations,
        robustness=robustness, injected=injected,
        evicted_closed=host.evicted_closed,
        evicted_idle=host.evicted_idle,
        fingerprint=fingerprint)


def _check_invariants(scenario, results, conns, host,
                      up_duplicated, down_duplicated,
                      stall_bound_s) -> List[str]:
    violations: List[str] = []
    # I2: player stall bound (completed sessions only; a blackholed
    # session that still finished may have waited out the blackhole).
    allowance = stall_bound_s + scenario.blackhole_seconds
    for i, result in enumerate(results):
        if result.completed and result.metrics.rebuffer_time > allowance:
            violations.append(
                f"session {i} rebuffered {result.metrics.rebuffer_time:.2f}s"
                f" > bound {allowance:.2f}s")
    # I3: corruption/reorder/dup/jitter/rebind alone never wedge us.
    if not scenario.has_blackholes:
        for i, result in enumerate(results):
            if not result.completed:
                violations.append(
                    f"session {i} incomplete without any blackhole")
    # I4a: host drop classes are consistent with the drop total.
    classified = host.misrouted + host.unknown_cid + host.post_close_drops
    if host.datagrams_dropped < classified:
        violations.append(
            f"host drop classes {classified} exceed total drops "
            f"{host.datagrams_dropped}")
    # I4b: conservation -- nothing is received that was never sent
    # (chaos duplicates are the only legitimate inflation).
    client_sent = sum(c.stats.packets_sent for c, _ in conns)
    client_recv = sum(c.stats.packets_received for c, _ in conns)
    server_sent = sum(s.stats.packets_sent for _, s in conns)
    host_in = host.datagrams_routed + host.datagrams_dropped
    if host_in > client_sent + up_duplicated:
        violations.append(
            f"uplink conservation: host saw {host_in} datagrams, clients "
            f"sent {client_sent} (+{up_duplicated} duplicated)")
    if client_recv > server_sent + down_duplicated:
        violations.append(
            f"downlink conservation: clients authenticated {client_recv} "
            f"packets, servers sent {server_sent} "
            f"(+{down_duplicated} duplicated)")
    # I5: abandoned paths hold no in-flight state.
    for client, server in conns:
        for conn in (client, server):
            for path in conn.paths.values():
                if path.state is not PathState.ABANDONED:
                    continue
                if path.loss.sent or path.loss.bytes_in_flight:
                    violations.append(
                        f"{conn.connection_name} abandoned path "
                        f"{path.path_id} retains "
                        f"{path.loss.bytes_in_flight}B in flight")
    return violations


def run_chaos_soak(config: ChaosSoakConfig) -> ChaosSoakResult:
    """Run the full soak and digest its fingerprints."""
    outcomes = [run_chaos_scenario(i, config.seed,
                                   stall_bound_s=config.stall_bound_s,
                                   idle_timeout_s=config.idle_timeout_s,
                                   cc_algorithm=config.cc_algorithm)
                for i in range(config.scenarios)]
    digest = hashlib.sha256(
        repr([o.fingerprint for o in outcomes]).encode()).hexdigest()
    return ChaosSoakResult(config=config, outcomes=outcomes, digest=digest)
