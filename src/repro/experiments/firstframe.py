"""First-video-frame latency driver: Fig. 12.

Compares first-video-frame latency percentiles against SP for XLINK
with and without first-video-frame acceleration, over a population
with heterogeneous path delays (the setting where the slow path can
poison the first frame).  The paper's shape: without acceleration the
tail is *worse* than SP (about -14% at p99); with acceleration it is
much better (about +32% at p99), improvement growing toward the tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.abtest import (ABTestConfig, run_ab_day)
from repro.metrics.stats import percentile

#: Percentiles reported along Fig. 12's x-axis.
FIG12_PERCENTILES = (5, 25, 50, 75, 90, 95, 99)


@dataclass
class Fig12Result:
    """Improvement (%) of first-frame latency over SP per percentile."""

    with_acceleration: Dict[int, float]
    without_acceleration: Dict[int, float]


def run_fig12(cfg: ABTestConfig,
              percentiles: Sequence[int] = FIG12_PERCENTILES
              ) -> Fig12Result:
    """Run SP, XLINK, and XLINK-without-FFA over one population."""
    schemes = ["sp", "xlink", "xlink_nofa"]
    day = run_ab_day(cfg, 1, schemes)
    ffl = {s: day[s].first_frame_latencies for s in schemes}
    for s, values in ffl.items():
        if not values:
            raise RuntimeError(f"no first-frame samples for {s}")

    def improvements(treatment: str) -> Dict[int, float]:
        out = {}
        for pct in percentiles:
            sp_val = percentile(ffl["sp"], pct)
            val = percentile(ffl[treatment], pct)
            out[pct] = (sp_val - val) / sp_val * 100.0 if sp_val > 0 else 0.0
        return out

    return Fig12Result(with_acceleration=improvements("xlink"),
                       without_acceleration=improvements("xlink_nofa"))
