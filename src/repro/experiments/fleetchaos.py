"""Fleet-supervision chaos soak (``python -m repro fleet-chaos``).

The transport tier has ``repro.experiments.chaos``: seeded adversarial
*network* scenarios soaked against runtime invariants.  This module is
the same idea one layer up -- seeded **worker** faults (crash, hang,
raise, corrupt) injected into a supervised fleet run via
:class:`~repro.experiments.parallel.FaultPlan`, with the supervisor's
contract asserted after the dust settles:

1. a faulted run **completes** -- no fault class can void the run;
2. retry/abandon accounting is **honest** -- every injected fault shows
   up in ``shard_faults``, retries are counted, and quarantined shards
   surface as ``ShardAbandoned`` tallies in the merged sink;
3. when every fault is retryable, the merged digest is **bit-identical**
   to the fault-free digest (retries re-run from the task list, so
   nothing double-counts and nothing is lost);
4. when faults are sticky, shards are quarantined rather than retried
   forever, and the loss is visible in the counters;
5. a checkpointed campaign killed at a day boundary and resumed merges
   to the digest of an uninterrupted run.

``make fleet-chaos`` runs this as a CI gate; the same invariants are
unit-tested (faster, narrower) in ``tests/test_supervision.py``.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.experiments.campaign import FleetCampaign
from repro.experiments.fleet import (ABPopulationDriver, FleetConfig,
                                     run_fleet_driver)
from repro.experiments.parallel import (ABANDONED_KIND, FaultInjected,
                                        FaultPlan, _fork_available)

__all__ = ["FleetChaosConfig", "FleetChaosResult", "run_fleet_chaos"]


@dataclass
class FleetChaosConfig:
    """Knobs for the supervision soak.

    Defaults are sized for a CI gate: a 24-user split population in
    4-task shards gives 6 shards -- enough to afflict one shard with
    each fault class and still have healthy shards to fold around
    them -- and finishes in seconds.
    """

    users: int = 24
    shard_size: int = 4
    workers: int = 2
    seed: int = 11
    #: deadline that converts a hung worker into a ``timeout`` fault
    shard_timeout_s: float = 5.0
    campaign_users: int = 6
    campaign_days: int = 2


@dataclass
class FleetChaosResult:
    """Soak outcome: named checks plus the digests they compared."""

    checks: List[Tuple[str, bool, str]] = field(default_factory=list)
    reference_digest: str = ""
    faulted_digest: str = ""

    def record(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks.append((name, ok, detail))

    @property
    def ok(self) -> bool:
        return all(ok for _name, ok, _detail in self.checks)

    @property
    def failures(self) -> List[str]:
        return [f"{name}: {detail}" for name, ok, detail in self.checks
                if not ok]


def _fleet_cfg(config: FleetChaosConfig) -> FleetConfig:
    return FleetConfig(users=config.users, seed=config.seed)


def run_fleet_chaos(config: Optional[FleetChaosConfig] = None
                    ) -> FleetChaosResult:
    """Execute the soak; every invariant lands in ``result.checks``."""
    config = config or FleetChaosConfig()
    result = FleetChaosResult()
    if not _fork_available():  # pragma: no cover - non-fork platforms
        result.record("fork", False,
                      "platform cannot fork; pool supervision untestable")
        return result
    cfg = _fleet_cfg(config)

    # Fault-free reference (pool mode, so the comparison also guards
    # serial-vs-supervised digest identity via the existing tests).
    clean = run_fleet_driver(ABPopulationDriver(cfg),
                             workers=config.workers,
                             shard_size=config.shard_size)
    result.reference_digest = clean.sink.digest()
    result.record("clean_run", clean.result.ok,
                  f"fault-free run not ok: {clean.result}")

    # One shard per fault class, first-attempt-only (retryable).
    plan = FaultPlan(seed=config.seed, crash_shards=(0,), hang_shards=(1,),
                     raise_shards=(2,), corrupt_shards=(3,), hang_s=60.0)
    faulted = run_fleet_driver(ABPopulationDriver(cfg),
                               workers=config.workers,
                               shard_size=config.shard_size,
                               shard_timeout_s=config.shard_timeout_s,
                               fault_plan=plan)
    fr = faulted.result
    result.faulted_digest = faulted.sink.digest()
    result.record("faulted_completes",
                  not fr.interrupted and fr.tasks == clean.result.tasks,
                  f"tasks={fr.tasks} expected={clean.result.tasks} "
                  f"interrupted={fr.interrupted}")
    expected_faults = {"crash": 1, "timeout": 1,
                       FaultInjected.__name__: 1, "corrupt": 1}
    result.record("fault_tally_honest", fr.shard_faults == expected_faults,
                  f"shard_faults={fr.shard_faults} "
                  f"expected={expected_faults}")
    result.record("retries_counted", fr.retries == 4,
                  f"retries={fr.retries} expected=4")
    result.record("nothing_abandoned",
                  fr.abandoned_shards == 0 and fr.abandoned_tasks == 0,
                  f"abandoned_shards={fr.abandoned_shards} "
                  f"abandoned_tasks={fr.abandoned_tasks}")
    result.record("retryable_digest_identical",
                  result.faulted_digest == result.reference_digest,
                  f"faulted={result.faulted_digest[:12]} "
                  f"reference={result.reference_digest[:12]}")

    # Sticky crash: the shard must be quarantined, not retried forever,
    # and the loss must be visible everywhere it is reported.
    sticky = FaultPlan(seed=config.seed, crash_shards=(0,), sticky=True)
    quarantined = run_fleet_driver(ABPopulationDriver(cfg),
                                   workers=config.workers,
                                   shard_size=config.shard_size,
                                   max_retries=1, fault_plan=sticky)
    qr = quarantined.result
    result.record("sticky_abandons",
                  qr.abandoned_shards == 1
                  and qr.abandoned_tasks == config.shard_size,
                  f"abandoned_shards={qr.abandoned_shards} "
                  f"abandoned_tasks={qr.abandoned_tasks}")
    abandoned_tallied = sum(
        s.failures.get(ABANDONED_KIND, 0)
        for s in quarantined.sink.schemes.values())
    result.record("abandonment_in_sink",
                  abandoned_tallied == qr.abandoned_tasks,
                  f"sink tallies {abandoned_tallied} {ABANDONED_KIND} "
                  f"!= abandoned_tasks {qr.abandoned_tasks}")
    result.record("sticky_run_completes",
                  not qr.interrupted
                  and qr.tasks == clean.result.tasks - config.shard_size,
                  f"tasks={qr.tasks} interrupted={qr.interrupted}")

    # Campaign kill + resume at a day boundary: bit-identical merge.
    camp_cfg = FleetConfig(users=config.campaign_users,
                           days=config.campaign_days, seed=config.seed)
    uninterrupted = FleetCampaign(camp_cfg).run()
    with tempfile.TemporaryDirectory() as ckpt_dir:
        FleetCampaign(camp_cfg, checkpoint_dir=ckpt_dir).run(max_days=1)
        resumed = FleetCampaign(camp_cfg,
                                checkpoint_dir=ckpt_dir).run(resume=True)
    result.record("campaign_resume_identical",
                  resumed.completed
                  and resumed.digest == uninterrupted.digest,
                  f"resumed={resumed.digest[:12]} "
                  f"uninterrupted={uninterrupted.digest[:12]} "
                  f"completed={resumed.completed}")
    return result
