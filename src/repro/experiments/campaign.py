"""Checkpointed multi-day fleet campaigns (the Fig. 11 series shape).

XLINK's headline result is a ~100K-user, 30-day production A/B series.
At ~90 minutes per 100K-user emulated day, a 30-day campaign is a
multi-day compute job -- and a parent crash (or a deliberate stop) on
day 17 must not void days 1-16.  :class:`FleetCampaign` runs a D-day
population **day by day** through the supervised fleet runner and
serializes its whole state -- the merged :class:`MetricSink`, the
completed-day ledger, and a config/seed fingerprint -- to a JSON
checkpoint after every day, atomically.  A restart with ``resume=True``
verifies the fingerprint, rehydrates the sink (digest-verified against
the digest stored at write time), skips the completed days and picks up
where the run died.

Bit-identity contract: day streams are independently seeded (the
concatenation of per-day task iterators *is* the uninterrupted task
stream) and sink merge is exactly order-independent, so a campaign
killed at any day boundary and resumed produces a merged digest
**identical** to an uninterrupted run -- verified by
``tests/test_campaign.py`` and the ``make fleet-chaos`` gate.

The per-day ledger carries each day's per-scheme QoE summary, which is
what the day-over-day report section (Fig. 11's series) renders.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.fleet import ABPopulationDriver, FleetConfig
from repro.experiments.parallel import (DEFAULT_MAX_RETRIES,
                                        DEFAULT_RETRY_BACKOFF_S,
                                        DEFAULT_SHARD_SIZE, FaultPlan,
                                        run_fleet)
from repro.metrics.sink import MetricSink

__all__ = [
    "CampaignError",
    "DayRecord",
    "CampaignResult",
    "FleetCampaign",
    "CHECKPOINT_VERSION",
    "CHECKPOINT_BASENAME",
]

#: Bumped whenever the checkpoint layout changes incompatibly.
CHECKPOINT_VERSION = 1

#: File name of the campaign checkpoint inside ``checkpoint_dir``.
CHECKPOINT_BASENAME = "campaign.json"


class CampaignError(RuntimeError):
    """A checkpoint that cannot be trusted (or must not be clobbered)."""


@dataclass
class DayRecord:
    """Ledger entry for one completed campaign day."""

    day: int
    sessions: int
    failed: int
    retries: int
    abandoned_shards: int
    abandoned_tasks: int
    shards: int
    seconds: float
    #: merged-sink digest *after* folding this day (resume integrity)
    digest: str
    #: this day's per-scheme QoE summaries (day-local sink ``as_dict``)
    schemes: Dict[str, Dict] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "day": self.day, "sessions": self.sessions,
            "failed": self.failed, "retries": self.retries,
            "abandoned_shards": self.abandoned_shards,
            "abandoned_tasks": self.abandoned_tasks,
            "shards": self.shards, "seconds": self.seconds,
            "digest": self.digest, "schemes": self.schemes,
        }

    @classmethod
    def from_dict(cls, state: Dict) -> "DayRecord":
        return cls(**state)


@dataclass
class CampaignResult:
    """A campaign invocation's outcome (possibly partial)."""

    sink: MetricSink
    days: List[DayRecord]
    days_planned: int
    #: days restored from the checkpoint instead of executed
    resumed_days: int = 0
    #: days actually executed by this invocation
    executed_days: int = 0
    interrupted: bool = False
    checkpoint_path: Optional[str] = None
    seconds: float = 0.0
    #: wall-clock spent writing checkpoints (bench overhead proxy)
    checkpoint_seconds: float = 0.0

    @property
    def completed(self) -> bool:
        return not self.interrupted and len(self.days) >= self.days_planned

    @property
    def digest(self) -> str:
        return self.sink.digest()

    # Aggregates over the ledger (mirror FleetResult's surface so the
    # CLI can share one exit-code/reporting path for both tiers).

    @property
    def tasks(self) -> int:
        return sum(r.sessions for r in self.days)

    @property
    def failed(self) -> int:
        return sum(r.failed for r in self.days)

    @property
    def retries(self) -> int:
        return sum(r.retries for r in self.days)

    @property
    def abandoned_shards(self) -> int:
        return sum(r.abandoned_shards for r in self.days)

    @property
    def abandoned_tasks(self) -> int:
        return sum(r.abandoned_tasks for r in self.days)

    @property
    def failures(self) -> Dict[str, int]:
        """Session-failure tally across the merged sink (per kind)."""
        out: Dict[str, int] = {}
        for scheme_sink in self.sink.schemes.values():
            for kind, n in scheme_sink.failures.items():
                out[kind] = out.get(kind, 0) + n
        return out


@dataclass
class FleetCampaign:
    """Day-by-day campaign executor with optional checkpointing.

    ``checkpoint_dir=None`` runs the same day-partitioned schedule
    without persistence (useful for reports and tests); with a
    directory, every completed day lands in an atomically-replaced
    ``campaign.json`` and ``run(resume=True)`` continues a dead run.
    """

    cfg: FleetConfig
    checkpoint_dir: Optional[str] = None
    workers: Optional[int] = None
    shard_size: int = DEFAULT_SHARD_SIZE
    max_retries: int = DEFAULT_MAX_RETRIES
    shard_timeout_s: Optional[float] = None
    retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S
    fault_plan: Optional[FaultPlan] = None

    # -- identity -------------------------------------------------------

    def fingerprint(self) -> str:
        """Hash of everything that shapes the campaign's *data*.

        Execution knobs (workers, shard size, retries) are excluded on
        purpose: the determinism contract makes them result-neutral,
        so resuming on a different machine profile is legal.  Changing
        the population, workload, or seed is not.
        """
        cfg = self.cfg
        canonical = (
            CHECKPOINT_VERSION, cfg.users, cfg.days,
            tuple(cfg.schemes), cfg.paired,
            repr(cfg.video_duration_s), repr(cfg.video_bitrate_bps),
            cfg.chunk_size, repr(cfg.max_buffer_s), repr(cfg.timeout_s),
            cfg.seed, tuple(sorted(cfg.ab_overrides.items())),
        )
        return hashlib.sha256(repr(canonical).encode()).hexdigest()

    @property
    def checkpoint_path(self) -> Optional[str]:
        if self.checkpoint_dir is None:
            return None
        return os.path.join(self.checkpoint_dir, CHECKPOINT_BASENAME)

    # -- checkpoint IO --------------------------------------------------

    def _save(self, result: CampaignResult) -> None:
        path = self.checkpoint_path
        if path is None:
            return
        t0 = time.perf_counter()
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        state = {
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint(),
            "config": {
                "users": self.cfg.users, "days": self.cfg.days,
                "schemes": list(self.cfg.schemes),
                "paired": self.cfg.paired, "seed": self.cfg.seed,
            },
            "completed_days": [r.day for r in result.days],
            "days": [r.to_dict() for r in result.days],
            "sink": result.sink.to_dict(),
            "sink_digest": result.sink.digest(),
        }
        tmp = path + ".tmp"
        with open(tmp, "w") as f:
            json.dump(state, f)
        os.replace(tmp, path)
        result.checkpoint_seconds += time.perf_counter() - t0

    def _load(self) -> Optional[Dict]:
        path = self.checkpoint_path
        if path is None or not os.path.exists(path):
            return None
        with open(path) as f:
            try:
                state = json.load(f)
            except ValueError as exc:
                raise CampaignError(
                    f"unreadable checkpoint {path}: {exc}") from exc
        if state.get("version") != CHECKPOINT_VERSION:
            raise CampaignError(
                f"checkpoint {path} has version {state.get('version')}, "
                f"expected {CHECKPOINT_VERSION}")
        if state.get("fingerprint") != self.fingerprint():
            raise CampaignError(
                f"checkpoint {path} belongs to a different campaign "
                f"(config/seed fingerprint mismatch); refusing to "
                f"resume into it")
        sink = MetricSink.from_dict(state["sink"])
        if sink.digest() != state.get("sink_digest"):
            raise CampaignError(
                f"checkpoint {path} failed digest verification "
                f"(corrupted or hand-edited sink state)")
        state["_sink"] = sink
        return state

    # -- execution ------------------------------------------------------

    def run(self, resume: bool = False,
            max_days: Optional[int] = None) -> CampaignResult:
        """Execute (or continue) the campaign.

        ``resume=False`` with an existing checkpoint raises
        :class:`CampaignError` rather than silently clobbering a
        multi-day investment.  ``max_days`` bounds how many *new* days
        this invocation executes (spread a 30-day campaign over
        cron-style invocations); the checkpoint keeps the ledger.

        An in-day ``KeyboardInterrupt`` stops cleanly: the partial day
        is discarded (days are the atomicity unit), the previously
        checkpointed days stay intact, and the returned result has
        ``interrupted=True``.
        """
        t0 = time.perf_counter()
        state = None
        if resume:
            state = self._load()
        elif self.checkpoint_path and os.path.exists(self.checkpoint_path):
            raise CampaignError(
                f"checkpoint {self.checkpoint_path} already exists; "
                f"pass resume=True (--resume) to continue it")

        merged = MetricSink()
        result = CampaignResult(sink=merged, days=[],
                                days_planned=self.cfg.days,
                                checkpoint_path=self.checkpoint_path)
        if state is not None:
            merged.merge(state["_sink"])
            result.days = [DayRecord.from_dict(d) for d in state["days"]]
            result.resumed_days = len(result.days)

        completed = {r.day for r in result.days}
        driver = ABPopulationDriver(self.cfg)
        for day in range(1, self.cfg.days + 1):
            if day in completed:
                continue
            if max_days is not None and result.executed_days >= max_days:
                break
            day_sink = MetricSink()
            day_t0 = time.perf_counter()
            fleet = run_fleet(
                driver.day_iter(day), sink=day_sink,
                workers=self.workers, shard_size=self.shard_size,
                max_retries=self.max_retries,
                shard_timeout_s=self.shard_timeout_s,
                retry_backoff_s=self.retry_backoff_s,
                fault_plan=self.fault_plan)
            if fleet.interrupted:
                # Days are atomic: drop the partial fold, keep the
                # ledger as of the last completed day.
                result.interrupted = True
                break
            schemes_summary = day_sink.as_dict()
            merged.merge(day_sink)
            result.days.append(DayRecord(
                day=day, sessions=fleet.tasks, failed=fleet.failed,
                retries=fleet.retries,
                abandoned_shards=fleet.abandoned_shards,
                abandoned_tasks=fleet.abandoned_tasks,
                shards=fleet.shards,
                seconds=time.perf_counter() - day_t0,
                digest=merged.digest(), schemes=schemes_summary))
            result.executed_days += 1
            self._save(result)
        result.days.sort(key=lambda r: r.day)
        result.seconds = time.perf_counter() - t0
        return result
