"""Energy-consumption driver: Fig. 14.

Downloads 10-50 MB loads over five radio configurations -- Wi-Fi,
LTE, NR alone, and Wi-Fi+LTE / Wi-Fi+NR with XLINK -- with every link
capped at 30 Mbps (the paper's setting for the multipath-relevant
regime), and reports normalized throughput vs normalized
communication energy per bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.energy import EnergyAccount
from repro.experiments.harness import PathSpec, run_bulk_download
from repro.traces.radio_profiles import RADIO_PROFILES, RadioType

#: The five configurations of Fig. 14.
FIG14_CONFIGS: Dict[str, Tuple[RadioType, ...]] = {
    "WiFi": (RadioType.WIFI,),
    "LTE": (RadioType.LTE,),
    "NR": (RadioType.NR_NSA,),
    "WiFi-LTE": (RadioType.WIFI, RadioType.LTE),
    "WiFi-NR": (RadioType.WIFI, RadioType.NR_NSA),
}

#: Per-link rate cap (the paper caps each link at 30 Mbps).
LINK_CAP_BPS = 30e6

#: Download sizes, 10-50 MB in the paper; scaled for emulation speed.
FIG14_SIZES = (4_000_000, 8_000_000)


@dataclass
class EnergyPoint:
    """One point of Fig. 14."""

    config: str
    throughput_mbps: float
    energy_per_bit_j: float


def _paths_for(radios: Sequence[RadioType]) -> List[PathSpec]:
    paths = []
    for i, radio in enumerate(radios):
        profile = RADIO_PROFILES[radio]
        paths.append(PathSpec(
            net_path_id=i, radio=radio,
            one_way_delay_s=profile.median_rtt_s / 2,
            rate_bps=LINK_CAP_BPS))
    return paths


def run_fig14_point(config: str, total_bytes: int,
                    seed: int = 0) -> EnergyPoint:
    """Download ``total_bytes`` under one radio configuration."""
    radios = FIG14_CONFIGS[config]
    paths = _paths_for(radios)
    scheme = "sp" if len(radios) == 1 else "xlink"
    result = run_bulk_download(scheme, paths, total_bytes,
                               timeout_s=300.0, seed=seed)
    if result.download_time_s is None:
        raise RuntimeError(f"fig14 download did not complete: {config}")
    duration = result.download_time_s
    account = EnergyAccount()
    if len(radios) == 1:
        account.add(radios[0], total_bytes, duration)
    else:
        # Charge each radio for the bytes it actually carried, active
        # for the whole transfer (both radios stay powered).
        net = result.net
        by_path = {spec.net_path_id: spec.radio for spec in paths}
        total_down = sum(p.down_bytes_out for p in net.paths.values()) or 1
        for pid, path in net.paths.items():
            share = path.down_bytes_out / total_down
            account.add(by_path[pid], int(total_bytes * share), duration)
    throughput_mbps = total_bytes * 8.0 / duration / 1e6
    return EnergyPoint(config=config, throughput_mbps=throughput_mbps,
                       energy_per_bit_j=account.energy_per_bit_j())


def run_fig14(sizes: Sequence[int] = FIG14_SIZES,
              seed: int = 0) -> List[EnergyPoint]:
    """All Fig. 14 configurations over the download sizes (averaged)."""
    points = []
    for config in FIG14_CONFIGS:
        runs = [run_fig14_point(config, size, seed=seed)
                for size in sizes]
        points.append(EnergyPoint(
            config=config,
            throughput_mbps=sum(r.throughput_mbps for r in runs)
            / len(runs),
            energy_per_bit_j=sum(r.energy_per_bit_j for r in runs)
            / len(runs)))
    return points


def normalize(points: List[EnergyPoint]) -> List[EnergyPoint]:
    """Normalize throughput and J/bit to the max across configs."""
    max_tp = max(p.throughput_mbps for p in points) or 1.0
    max_e = max(p.energy_per_bit_j for p in points) or 1.0
    return [EnergyPoint(config=p.config,
                        throughput_mbps=p.throughput_mbps / max_tp,
                        energy_per_bit_j=p.energy_per_bit_j / max_e)
            for p in points]
