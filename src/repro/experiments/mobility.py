"""Extreme-mobility driver: Fig. 13.

Replays the 10 subway / high-speed-rail trace pairs from the catalog
and measures the per-request download time of fixed-size chunks under
SP, vanilla-MP, MPTCP, connection migration (CM) and XLINK -- the
five bars of Fig. 13.  Each scheme downloads a sequence of chunks
back-to-back over the emulated trace; the figure reports the median
and max request download time per trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

from typing import Optional

from repro.experiments.harness import (SCHEMES, PathSpec, run_bulk_download,
                                       run_video_session, scheme_with_cc)
from repro.experiments.parallel import SessionTask, fan_out
from repro.metrics.stats import percentile
from repro.sim.rng import derive_seed
from repro.traces.catalog import extreme_mobility_trace_pairs
from repro.traces.radio_profiles import RadioType
from repro.video import PlayerConfig
from repro.video.media import Video

#: The five schemes of Fig. 13, in the paper's legend order.
FIG13_SCHEMES = ("sp", "vanilla_mp", "mptcp", "cm", "xlink")

#: Size of one video-chunk request in the mobility experiment.
CHUNK_BYTES = 512 * 1024

#: Number of chunk requests per trace replay.
CHUNKS_PER_TRACE = 6

#: The emulated player consumes at this bitrate (Appendix B: the test
#: video player "consumed received data at a constant bit-rate").  It
#: is set near the *aggregate* capacity of the trace pairs, so a
#: single path can never keep up -- the regime Fig. 13 probes, where
#: SP falls behind, vanilla-MP/MPTCP aggregate but stall on fades, and
#: XLINK aggregates and rescues the stragglers.
VIDEO_BITRATE_BPS = 6_000_000


@dataclass
class MobilityResult:
    """Per-trace, per-scheme request download times."""

    trace_id: int
    environment: str
    #: scheme -> list of per-chunk download times (s)
    times: Dict[str, List[float]] = field(default_factory=dict)

    def median(self, scheme: str) -> float:
        return percentile(self.times[scheme], 50)

    def maximum(self, scheme: str) -> float:
        return max(self.times[scheme])


#: Droptail queue on the emulated links: ~64 MTU packets, the usual
#: Mahimahi configuration.  Deeper queues would let Cubic build close
#: to a second of bufferbloat on the slow fading links, drowning the
#: scheduling effects Fig. 13 measures in self-queueing delay.
QUEUE_LIMIT_BYTES = 96 * 1024


def _paths_for_trace(pair: dict) -> List[PathSpec]:
    return [
        PathSpec(net_path_id=0, radio=RadioType.WIFI,
                 one_way_delay_s=0.020, trace_ms=list(pair["wifi_ms"]),
                 queue_limit_bytes=QUEUE_LIMIT_BYTES),
        PathSpec(net_path_id=1, radio=RadioType.LTE,
                 one_way_delay_s=0.045, trace_ms=list(pair["cellular_ms"]),
                 queue_limit_bytes=QUEUE_LIMIT_BYTES),
    ]


def _chunked_video(n_chunks: int = CHUNKS_PER_TRACE,
                   chunk_bytes: int = CHUNK_BYTES,
                   bitrate_bps: float = VIDEO_BITRATE_BPS) -> Video:
    total = n_chunks * chunk_bytes
    # Constant 25 fps frames sized so consumption runs at the target
    # bitrate; the whole video is exactly n chunks.
    frame = max(int(bitrate_bps / 8 / 25), 1000)
    n_frames = max(total // frame, 2)
    sizes = [frame] * n_frames
    sizes[-1] += total - sum(sizes)
    return Video(name="mob", fps=25, frame_sizes=sizes,
                 chunk_size=chunk_bytes)


def run_scheme_on_trace(pair: dict, scheme: str, seed: int = 0,
                        timeout_s: float = 120.0,
                        cc: Optional[str] = None) -> List[float]:
    """Per-chunk download times for one scheme over one trace pair.

    Module-level (and all-plain-data) so :func:`fan_out` can ship it to
    a worker process.  ``cc`` overrides the scheme's congestion
    controller; the variant is registered *here*, inside the worker,
    because plain ``fan_out`` does not ship scheme configs.  The MPTCP
    baseline keeps its own fixed controller.
    """
    paths = _paths_for_trace(pair)
    if scheme == "sp":
        paths = paths[:1]
    if scheme == "mptcp":
        return _run_mptcp_paced(paths, timeout_s=timeout_s, seed=seed)
    if cc is not None:
        scheme = scheme_with_cc(scheme, cc)
    # Realistic streaming player: finite buffer, constant-bitrate
    # consumption, *sequential* chunk requests (Appendix B: the
    # test player "sequentially requested data chunks").  The
    # finite buffer keeps XLINK's QoE gate in the loop -- an
    # infinite buffer would report "no urgency" forever and
    # degenerate the experiment into a raw download race.
    player_config = PlayerConfig(concurrent_requests=1,
                                 max_buffer_s=3.0,
                                 startup_frames=5, resume_frames=5)
    session = run_video_session(scheme, paths, video=_chunked_video(),
                                player_config=player_config,
                                timeout_s=timeout_s, seed=seed)
    times = list(session.metrics.request_completion_times)
    while len(times) < CHUNKS_PER_TRACE:
        times.append(timeout_s)  # unfinished chunks count as timeout
    return times


def run_mobility_trace(pair: dict, schemes: Sequence[str] = FIG13_SCHEMES,
                       seed: int = 0, timeout_s: float = 120.0,
                       workers: Optional[int] = None,
                       cc: Optional[str] = None) -> MobilityResult:
    """Run every scheme over one (cellular, wifi) trace pair.

    ``cc`` runs the QUIC schemes under that congestion controller;
    results stay keyed by the base scheme names.
    """
    result = MobilityResult(trace_id=pair["trace_id"],
                            environment=pair["environment"])
    jobs = [{"pair": pair, "scheme": scheme, "seed": seed,
             "timeout_s": timeout_s, "cc": cc} for scheme in schemes]
    for scheme, times in zip(schemes, fan_out(run_scheme_on_trace, jobs,
                                              workers=workers)):
        result.times[scheme] = times
    return result


def _run_mptcp_paced(paths: List[PathSpec], timeout_s: float,
                     seed: int) -> List[float]:
    """Sequential, playback-paced chunk downloads over MPTCP.

    Mirrors the QUIC schemes' player: chunk k's request is not issued
    before its playback deadline minus the buffer target, so the
    per-chunk completion times are comparable across transports.
    """
    from repro.experiments.harness import _build_network
    from repro.mptcp import MptcpConnection
    from repro.netem import Datagram
    from repro.sim import EventLoop

    chunk_playtime = CHUNK_BYTES * 8.0 / VIDEO_BITRATE_BPS
    buffer_target_s = 3.0
    loop = EventLoop()
    net = _build_network(loop, paths, seed)
    server = MptcpConnection(loop, is_server=True,
                             transmit=lambda pid, d: net.server.send(
                                 Datagram(payload=d, path_id=pid)))
    client = MptcpConnection(loop, is_server=False,
                             transmit=lambda pid, d: net.client.send(
                                 Datagram(payload=d, path_id=pid)))
    for spec in paths:
        server.add_subflow(spec.net_path_id)
        client.add_subflow(spec.net_path_id)
    net.client.on_receive(
        lambda d: client.datagram_received(d.payload, d.path_id))
    net.server.on_receive(
        lambda d: server.datagram_received(d.payload, d.path_id))

    times: List[float] = []
    for k in range(CHUNKS_PER_TRACE):
        # Pace like the QUIC player: a chunk is requested when its
        # buffer window opens, and HTTP over one MPTCP byte stream is
        # sequential, so never before the previous response finished.
        earliest = max(k * chunk_playtime - buffer_target_s, loop.now)
        loop.run(until=earliest)
        target = (k + 1) * CHUNK_BYTES
        start = loop.now
        client._expected_total = target
        client.completed_at = None
        client.on_complete = loop.request_stop
        client.request(target)  # the range request crosses the network
        if client.completed_at is None and loop.now < start + timeout_s:
            loop.run(stop_before=start + timeout_s)
        times.append((client.completed_at - start)
                     if client.completed_at is not None else timeout_s)
    return times


#: Fleet-capable subset of Fig. 13's schemes: everything that runs as
#: a plain SessionTask.  ``mptcp`` needs the bespoke paced loop below
#: and stays a small-N driver.
FLEET_MOBILITY_SCHEMES = ("sp", "vanilla_mp", "cm", "xlink")


def iter_mobility_fleet_tasks(n_traces: int = 10, repeats: int = 2,
                              schemes: Sequence[str] =
                              FLEET_MOBILITY_SCHEMES,
                              duration_s: float = 30.0,
                              timeout_s: float = 60.0,
                              seed: int = 0) -> Iterator[SessionTask]:
    """Lazily generate the mobility population's session tasks.

    The population shape of Fig. 13 at fleet scale: ``repeats``
    reseeded passes over the trace catalog, schemes paired per
    (repeat, trace) cell so per-scheme sketches compare the same
    replay conditions.  Request download times land in the fleet
    sink's ``rct`` sketch (the same metric the figure reports).
    """
    pairs = extreme_mobility_trace_pairs(duration_s)[:n_traces]
    player_config = PlayerConfig(concurrent_requests=1, max_buffer_s=3.0,
                                 startup_frames=5, resume_frames=5)
    video = _chunked_video()
    for rep in range(repeats):
        for pair in pairs:
            rep_seed = derive_seed(seed, f"mob-{rep}-{pair['trace_id']}")
            paths = _paths_for_trace(pair)
            for scheme in schemes:
                yield SessionTask(
                    key=(rep, pair["trace_id"], scheme), scheme=scheme,
                    paths=paths[:1] if scheme == "sp" else paths,
                    video=video, player_config=player_config,
                    timeout_s=timeout_s, seed=rep_seed,
                    scheme_config=SCHEMES.get(scheme))


def run_fig13(n_traces: int = 10, duration_s: float = 30.0,
              schemes: Sequence[str] = FIG13_SCHEMES,
              seed: int = 0,
              workers: Optional[int] = None) -> List[MobilityResult]:
    """The full Fig. 13 sweep over the trace catalog.

    Fans the flat (trace, scheme) replay grid out over ``workers``
    processes; each replay is independent, so the sweep parallelizes
    to ``n_traces * len(schemes)`` tasks.
    """
    pairs = extreme_mobility_trace_pairs(duration_s)[:n_traces]
    jobs = [{"pair": pair, "scheme": scheme, "seed": seed}
            for pair in pairs for scheme in schemes]
    all_times = fan_out(run_scheme_on_trace, jobs, workers=workers)
    results: List[MobilityResult] = []
    it = iter(all_times)
    for pair in pairs:
        result = MobilityResult(trace_id=pair["trace_id"],
                                environment=pair["environment"])
        for scheme in schemes:
            result.times[scheme] = next(it)
        results.append(result)
    return results
