"""Tests for the adaptive-bitrate extension."""

import pytest

from repro.core import MinRttScheduler, SinglePathScheduler
from repro.netem import Datagram, MultipathNetwork
from repro.quic.connection import Connection, ConnectionConfig
from repro.sim import EventLoop
from repro.video import MediaServer
from repro.video.abr import AbrPlayer, AbrStats, BitrateLadder


def abr_session(paths, multipath=True, duration=8.0, timeout=60.0,
                ladder=None):
    loop = EventLoop()
    net = MultipathNetwork(loop)
    for pid, (rate, delay) in enumerate(paths):
        net.add_simple_path(pid, rate, delay)
    client = Connection(loop, ConnectionConfig(is_client=True,
                                               enable_multipath=multipath),
                        transmit=lambda pid, d: net.client.send(
                            Datagram(payload=d, path_id=pid)),
                        scheduler=MinRttScheduler() if multipath
                        else SinglePathScheduler(),
                        connection_name="abr")
    server = Connection(loop, ConnectionConfig(is_client=False,
                                               enable_multipath=multipath),
                        transmit=lambda pid, d: net.server.send(
                            Datagram(payload=d, path_id=pid)),
                        scheduler=MinRttScheduler(),
                        connection_name="abr")
    net.client.on_receive(lambda d: client.datagram_received(d.payload,
                                                             d.path_id))
    net.server.on_receive(lambda d: server.datagram_received(d.payload,
                                                             d.path_id))
    client.add_local_path(0, 0)
    server.add_local_path(0, 0)

    ladder = ladder or BitrateLadder.make(duration_s=duration, seed=1)
    MediaServer(server, dict(
        (v.name, v) for v in ladder.variants.values()))
    player = AbrPlayer(loop, client, ladder)

    def on_established():
        if multipath and len(paths) > 1:
            for pid in range(1, len(paths)):
                client.open_path(pid, pid)
        player.start()

    client.on_established = on_established
    client.connect()
    while not player.finished and loop.now < timeout:
        if not loop.step():
            break
    return player, loop


class TestBitrateLadder:
    def test_variants_cover_all_rungs(self):
        ladder = BitrateLadder.make(duration_s=5.0)
        assert len(ladder.variants) == 4
        for rate, video in ladder.variants.items():
            assert video.mean_bps == pytest.approx(rate, rel=0.25)

    def test_variants_sorted(self):
        ladder = BitrateLadder.make(
            bitrates_bps=[2e6, 5e5, 1e6], duration_s=5.0)
        assert ladder.bitrates_bps == sorted(ladder.bitrates_bps)


class TestBbaSelection:
    def _player(self):
        loop = EventLoop()
        conn = type("C", (), {"on_stream_data": None,
                              "qoe_provider": None})()
        ladder = BitrateLadder.make(duration_s=5.0)
        return AbrPlayer(loop, conn, ladder, reservoir_s=1.0,
                         cushion_s=4.0)

    def test_low_buffer_picks_lowest(self):
        player = self._player()
        player._buffered_s = 0.5
        assert player.select_bitrate() == player.ladder.bitrates_bps[0]

    def test_high_buffer_picks_highest(self):
        player = self._player()
        player._buffered_s = 5.0
        assert player.select_bitrate() == player.ladder.bitrates_bps[-1]

    def test_selection_monotone_in_buffer(self):
        player = self._player()
        picks = []
        for buffered in (0.0, 1.5, 2.5, 3.5, 4.5):
            player._buffered_s = buffered
            picks.append(player.select_bitrate())
        assert picks == sorted(picks)


class TestAbrSessions:
    def test_fast_network_reaches_top_rung(self):
        player, _ = abr_session([(20e6, 0.01)], multipath=False)
        assert player.finished
        assert player.stats.selected_bitrates[-1] == \
            player.ladder.bitrates_bps[-1]
        assert player.stats.rebuffer_time < 0.5

    def test_starved_network_stays_low(self):
        player, _ = abr_session([(0.9e6, 0.02)], multipath=False,
                                duration=6.0, timeout=90.0)
        stats = player.stats
        # The top rung (4 Mbps) is unreachable on a 0.9 Mbps link.
        top = player.ladder.bitrates_bps[-1]
        assert stats.selected_bitrates.count(top) <= \
            len(stats.selected_bitrates) // 2

    def test_multipath_raises_mean_bitrate(self):
        """Sec. 8's point: ABR on one 2 Mbps path must degrade; the
        same ABR over two aggregated paths can hold higher rungs."""
        single, _ = abr_session([(2.2e6, 0.015)], multipath=False,
                                duration=8.0, timeout=90.0)
        multi, _ = abr_session([(2.2e6, 0.015), (2.2e6, 0.04)],
                               multipath=True, duration=8.0,
                               timeout=90.0)
        assert multi.stats.mean_bitrate > single.stats.mean_bitrate

    def test_stats_accounting(self):
        player, _ = abr_session([(20e6, 0.01)], multipath=False)
        stats = player.stats
        assert stats.play_time > 0
        assert stats.mean_bitrate > 0
        assert stats.rebuffer_rate >= 0
        assert len(stats.selected_bitrates) == player._n_segments

    def test_empty_stats(self):
        assert AbrStats().mean_bitrate == 0.0
        assert AbrStats().rebuffer_rate == 0.0
