"""Tests for PATH_STATUS management and standalone QoE feedback."""

import pytest

from repro.core import MinRttScheduler, ThresholdConfig, XlinkScheduler
from repro.netem import Datagram, MultipathNetwork
from repro.quic.connection import Connection, ConnectionConfig
from repro.quic.errors import ProtocolViolation
from repro.quic.frames import PathStatus, QoeSignals
from repro.quic.path import PathState
from repro.sim import EventLoop


def pair(server_scheduler=None):
    loop = EventLoop()
    net = MultipathNetwork(loop)
    net.add_simple_path(0, 10e6, 0.01)
    net.add_simple_path(1, 10e6, 0.03)
    client = Connection(loop, ConnectionConfig(is_client=True),
                        transmit=lambda pid, d: net.client.send(
                            Datagram(payload=d, path_id=pid)),
                        scheduler=MinRttScheduler(),
                        connection_name="ps")
    server = Connection(loop, ConnectionConfig(is_client=False),
                        transmit=lambda pid, d: net.server.send(
                            Datagram(payload=d, path_id=pid)),
                        scheduler=server_scheduler or MinRttScheduler(),
                        connection_name="ps")
    net.client.on_receive(lambda d: client.datagram_received(d.payload,
                                                             d.path_id))
    net.server.on_receive(lambda d: server.datagram_received(d.payload,
                                                             d.path_id))
    client.add_local_path(0, 0)
    server.add_local_path(0, 0)
    client.on_established = lambda: client.open_path(1, 1)
    client.connect()
    loop.run(until=0.5)
    return loop, net, client, server


class TestPathStatus:
    def test_standby_propagates_to_peer(self):
        loop, net, client, server = pair()
        client.set_path_status(1, PathStatus.STANDBY)
        loop.run(until=1.0)
        assert client.paths[1].status is PathStatus.STANDBY
        assert server.paths[1].status is PathStatus.STANDBY
        assert server.paths[1].state is PathState.STANDBY

    def test_standby_path_not_scheduled(self):
        loop, net, client, server = pair()
        client.set_path_status(1, PathStatus.STANDBY)
        loop.run(until=1.0)
        sent_before = server.paths[1].bytes_sent
        # Server transfers data; it must all ride path 0.
        sid = client.create_stream()
        client.stream_send(sid, b"GET", fin=True)

        def serve(stream_id):
            stream = server.recv_streams[stream_id]
            if stream.is_complete and not getattr(server, "_done", False):
                server._done = True
                server.stream_read(stream_id)
                server.stream_send(stream_id, b"X" * 200_000, fin=True)

        server.on_stream_data = serve
        loop.run(until=5.0)
        assert server.paths[1].bytes_sent == sent_before
        assert server.paths[0].bytes_sent > 200_000

    def test_available_restores_path(self):
        loop, net, client, server = pair()
        client.set_path_status(1, PathStatus.STANDBY)
        loop.run(until=1.0)
        client.set_path_status(1, PathStatus.AVAILABLE)
        loop.run(until=1.5)
        assert client.paths[1].state is PathState.ACTIVE
        assert server.paths[1].status is PathStatus.AVAILABLE

    def test_abandon_via_status(self):
        loop, net, client, server = pair()
        client.set_path_status(1, PathStatus.ABANDON)
        loop.run(until=1.0)
        assert client.paths[1].state is PathState.ABANDONED
        assert server.paths[1].state is PathState.ABANDONED

    def test_unknown_path_rejected(self):
        loop, net, client, server = pair()
        with pytest.raises(ProtocolViolation):
            client.set_path_status(9, PathStatus.STANDBY)


class TestStandaloneQoeFeedback:
    def test_requires_provider(self):
        loop, net, client, server = pair()
        with pytest.raises(ProtocolViolation):
            client.start_qoe_feedback()

    def test_rejects_bad_interval(self):
        loop, net, client, server = pair()
        client.qoe_provider = lambda: QoeSignals(1, 2, 3, 4)
        with pytest.raises(ValueError):
            client.start_qoe_feedback(interval_s=0)

    def test_feedback_arrives_without_data_flow(self):
        """The draft's point: feedback is decoupled from ACK frequency.

        With no data flowing there are no ACK_MPs, yet the server
        still receives QoE updates."""
        loop, net, client, server = pair()
        client.qoe_provider = lambda: QoeSignals(
            cached_bytes=777, cached_frames=25, bps=1000, fps=25)
        client.start_qoe_feedback(interval_s=0.05)
        loop.run(until=1.0)
        assert server.last_qoe is not None
        assert server.last_qoe.cached_bytes == 777

    def test_feedback_drives_scheduler_controller(self):
        sched = XlinkScheduler(thresholds=ThresholdConfig(0.5, 2.0))
        loop, net, client, server = pair(server_scheduler=sched)
        client.qoe_provider = lambda: QoeSignals(
            cached_bytes=0, cached_frames=0, bps=2_000_000, fps=25)
        client.start_qoe_feedback(interval_s=0.05)
        loop.run(until=1.0)
        assert sched.controller.last_qoe is not None
        assert sched.controller.play_time_left(loop.now) == 0.0

    def test_feedback_updates_over_time(self):
        loop, net, client, server = pair()
        values = iter(range(100, 200))
        client.qoe_provider = lambda: QoeSignals(
            cached_bytes=next(values), cached_frames=1, bps=1, fps=1)
        client.start_qoe_feedback(interval_s=0.05)
        loop.run(until=0.8)
        first = server.last_qoe.cached_bytes
        loop.run(until=1.4)
        assert server.last_qoe.cached_bytes > first
