"""Unit tests for schedulers and the path manager."""

import pytest

from repro.core import (MinRttScheduler, ReinjectionMode, RoundRobinScheduler,
                        SinglePathScheduler, ThresholdConfig,
                        WIRELESS_PREFERENCE_ORDER, XlinkScheduler,
                        select_primary_path)
from repro.quic.cc import NewRenoCc
from repro.quic.cid import ConnectionId
from repro.quic.connection import SendChunk
from repro.quic.frames import PathStatus
from repro.quic.path import Path, PathState
from repro.traces.radio_profiles import RadioType


class FakeLoop:
    def __init__(self, now=0.0):
        self.now = now

    def schedule_after(self, delay, cb, label=""):
        return type("E", (), {"cancel": lambda self: None})()


class FakeConn:
    """Just enough connection surface for scheduler unit tests."""

    def __init__(self, paths, now=0.0):
        self.paths = {p.path_id: p for p in paths}
        self.loop = FakeLoop(now)
        self.send_queue = []
        self.closed = False
        self._unacked = []
        self._reinjected = []

    def usable_paths(self):
        return [p for p in self.paths.values()
                if p.is_active and p.status is PathStatus.AVAILABLE]

    def unacked_ranges(self, stream_id=None, frame_priority=None):
        out = []
        for chunk, pid, t in self._unacked:
            if stream_id is not None and chunk.stream_id != stream_id:
                continue
            if frame_priority is not None \
                    and chunk.frame_priority != frame_priority:
                continue
            out.append((chunk, pid, t))
        return out

    def enqueue_reinjection(self, chunk, position=None):
        self._reinjected.append((chunk, position))
        if position is None:
            self.send_queue.append(chunk)
        else:
            self.send_queue.insert(position, chunk)

    def max_delivery_time(self):
        return 0.0

    def _pump(self):
        pass


def make_path(path_id, srtt, state=PathState.ACTIVE, received=True,
              last_recv=0.0):
    cid = ConnectionId(cid=bytes([path_id]) * 8, sequence_number=path_id)
    path = Path(path_id, cid, cid, NewRenoCc())
    path.state = state
    path.rtt.update(srtt)
    path.rtt.smoothed = srtt
    path.rtt.rttvar = srtt / 4
    if received:
        path.packets_received = 1
        path.last_recv_time = last_recv
    return path


def chunk(stream_id=0, offset=0, length=1000, kind="new", sp=0, fp=10,
          exclude=None):
    return SendChunk(stream_id=stream_id, offset=offset, length=length,
                     kind=kind, stream_priority=sp, frame_priority=fp,
                     exclude_path=exclude)


class TestMinRtt:
    def test_picks_lowest_rtt(self):
        conn = FakeConn([make_path(0, 0.1), make_path(1, 0.02)])
        assert MinRttScheduler().select_path(conn, chunk()).path_id == 1

    def test_skips_window_limited(self):
        fast = make_path(1, 0.02)
        fast.cc.bytes_in_flight = int(fast.cc.cwnd)
        conn = FakeConn([make_path(0, 0.1), fast])
        assert MinRttScheduler().select_path(conn, chunk()).path_id == 0

    def test_none_when_all_limited(self):
        p = make_path(0, 0.1)
        p.cc.bytes_in_flight = int(p.cc.cwnd)
        conn = FakeConn([p])
        assert MinRttScheduler().select_path(conn, chunk()) is None

    def test_ignores_abandoned(self):
        conn = FakeConn([make_path(0, 0.02, state=PathState.ABANDONED),
                         make_path(1, 0.1)])
        assert MinRttScheduler().select_path(conn, chunk()).path_id == 1


class TestSinglePath:
    def test_uses_active_path(self):
        conn = FakeConn([make_path(0, 0.05)])
        assert SinglePathScheduler().select_path(conn, chunk()).path_id == 0

    def test_standby_not_used(self):
        conn = FakeConn([make_path(0, 0.05, state=PathState.STANDBY)])
        assert SinglePathScheduler().select_path(conn, chunk()) is None


class TestRoundRobin:
    def test_alternates(self):
        conn = FakeConn([make_path(0, 0.02), make_path(1, 0.1)])
        sched = RoundRobinScheduler()
        picks = [sched.select_path(conn, chunk()).path_id for _ in range(4)]
        assert picks == [0, 1, 0, 1]


class TestXlinkSelectPath:
    def test_avoids_suspect_paths(self):
        """A path that went dark is skipped even though its frozen
        smoothed RTT still looks best."""
        from repro.quic.loss_detection import SentPacket
        dead = make_path(0, 0.02, last_recv=0.0)
        alive = make_path(1, 0.1, last_recv=9.9)
        dead.loss.sent[0] = SentPacket(   # has unacked data
            packet_number=0, sent_time=0.0, size=1000,
            ack_eliciting=True, in_flight=True)
        conn = FakeConn([dead, alive], now=10.0)
        sched = XlinkScheduler()
        assert sched.select_path(conn, chunk()).path_id == 1

    def test_reinjection_excludes_original_path(self):
        conn = FakeConn([make_path(0, 0.02), make_path(1, 0.1)])
        sched = XlinkScheduler()
        picked = sched.select_path(conn, chunk(kind="reinject", exclude=0))
        assert picked.path_id == 1

    def test_reinjection_skipped_if_only_original_available(self):
        other = make_path(1, 0.1)
        other.cc.bytes_in_flight = int(other.cc.cwnd)
        conn = FakeConn([make_path(0, 0.02), other])
        sched = XlinkScheduler()
        assert sched.select_path(conn, chunk(kind="reinject",
                                             exclude=0)) is None


class TestXlinkReinjectionTriggers:
    def _conn_with_stuck_range(self, now=10.0):
        slow = make_path(0, 0.5, last_recv=now)   # genuinely slow path
        fast = make_path(1, 0.02, last_recv=now)
        conn = FakeConn([slow, fast], now=now)
        stuck = chunk(stream_id=4, offset=0, length=1000, kind="reinject",
                      exclude=0)
        # Sent 2 s ago on the slow path: well past its delivery-time
        # estimate, so the bulk sweep's overdue-only filter accepts it.
        conn._unacked = [(stuck, 0, now - 2.0)]
        return conn, stuck

    def test_queue_empty_appends_duplicates(self):
        conn, stuck = self._conn_with_stuck_range()
        sched = XlinkScheduler(mode=ReinjectionMode.APPENDING,
                               thresholds=ThresholdConfig(always_on=True))
        sched.on_queue_empty(conn)
        assert conn._reinjected
        assert conn._reinjected[0][1] is None  # appended

    def test_gate_off_suppresses(self):
        conn, stuck = self._conn_with_stuck_range()
        sched = XlinkScheduler(mode=ReinjectionMode.APPENDING,
                               thresholds=ThresholdConfig(always_off=True))
        sched.on_queue_empty(conn)
        assert conn._reinjected == []
        assert sched.reinjections_suppressed == 1

    def test_none_mode_never_reinjects(self):
        conn, stuck = self._conn_with_stuck_range()
        sched = XlinkScheduler(mode=ReinjectionMode.NONE,
                               thresholds=ThresholdConfig(always_on=True))
        sched.on_queue_empty(conn)
        assert conn._reinjected == []

    def test_sweep_rate_limited(self):
        conn, stuck = self._conn_with_stuck_range()
        sched = XlinkScheduler(mode=ReinjectionMode.APPENDING,
                               thresholds=ThresholdConfig(always_on=True))
        sched.on_queue_empty(conn)
        first = len(conn._reinjected)
        conn._unacked.append(
            (chunk(stream_id=8, kind="reinject", exclude=0), 0,
             conn.loop.now - 2.0))
        sched.on_queue_empty(conn)  # within one RTT: suppressed
        assert len(conn._reinjected) == first

    def test_fresh_fast_path_ranges_not_duplicated(self):
        """Data in flight on the fastest path is left alone."""
        now = 10.0
        fast = make_path(0, 0.02, last_recv=now)
        slow = make_path(1, 0.5, last_recv=now)
        conn = FakeConn([fast, slow], now=now)
        fresh = chunk(stream_id=4, kind="reinject", exclude=0)
        conn._unacked = [(fresh, 0, now - 0.001)]  # on fast path, fresh
        sched = XlinkScheduler(mode=ReinjectionMode.APPENDING,
                               thresholds=ThresholdConfig(always_on=True))
        sched.on_queue_empty(conn)
        assert conn._reinjected == []

    def test_overdue_fast_path_ranges_duplicated(self):
        """Even fastest-path data is rescued once it is overdue."""
        now = 10.0
        fast = make_path(0, 0.02, last_recv=now)
        slow = make_path(1, 0.5, last_recv=now)
        conn = FakeConn([fast, slow], now=now)
        stuck = chunk(stream_id=4, kind="reinject", exclude=0)
        conn._unacked = [(stuck, 0, now - 1.0)]  # 1 s old on a 20 ms path
        sched = XlinkScheduler(mode=ReinjectionMode.APPENDING,
                               thresholds=ThresholdConfig(always_on=True))
        sched.on_queue_empty(conn)
        assert conn._reinjected


class TestStreamPriorityInsertion:
    def test_inserted_before_lower_priority(self):
        conn = FakeConn([make_path(0, 0.02)])
        conn.send_queue = [chunk(stream_id=0, sp=0),
                           chunk(stream_id=4, sp=1),
                           chunk(stream_id=8, sp=2)]
        pos = XlinkScheduler._position_before_lower_priority(conn, 0)
        assert pos == 1

    def test_appends_when_no_lower_priority(self):
        conn = FakeConn([make_path(0, 0.02)])
        conn.send_queue = [chunk(stream_id=0, sp=0)]
        pos = XlinkScheduler._position_before_lower_priority(conn, 5)
        assert pos == 1

    def test_frame_priority_position_before_stream_tail(self):
        conn = FakeConn([make_path(0, 0.02)])
        conn.send_queue = [chunk(stream_id=4, sp=1),
                           chunk(stream_id=0, sp=0)]
        pos = XlinkScheduler._position_before_stream_tail(conn, 0)
        assert pos == 1


class TestPrimaryPathSelection:
    def test_paper_ordering(self):
        """Sec. 5.3: 5G SA > 5G NSA > WiFi > LTE."""
        interfaces = [(0, RadioType.LTE), (1, RadioType.WIFI),
                      (2, RadioType.NR_NSA), (3, RadioType.NR_SA)]
        assert select_primary_path(interfaces) == 3

    def test_wifi_over_lte(self):
        assert select_primary_path([(0, RadioType.LTE),
                                    (1, RadioType.WIFI)]) == 1

    def test_custom_order(self):
        order = (RadioType.LTE, RadioType.WIFI)
        assert select_primary_path([(0, RadioType.LTE),
                                    (1, RadioType.WIFI)], order=order) == 0

    def test_single_interface(self):
        assert select_primary_path([(7, RadioType.LTE)]) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            select_primary_path([])

    def test_preference_order_constant_matches_paper(self):
        assert WIRELESS_PREFERENCE_ORDER == (
            RadioType.NR_SA, RadioType.NR_NSA, RadioType.WIFI,
            RadioType.LTE)
