"""Edge-case tests for connection internals."""

import pytest

from repro.core import MinRttScheduler, ThresholdConfig, XlinkScheduler
from repro.netem import Datagram, MultipathNetwork, OutageSchedule
from repro.quic.connection import Connection, ConnectionConfig, SendChunk
from repro.quic.frames import QoeSignals
from repro.sim import EventLoop


def pair(loop=None, rate1=10e6, rate2=10e6, delay1=0.01, delay2=0.03,
         **path_kw):
    loop = loop or EventLoop()
    net = MultipathNetwork(loop)
    net.add_simple_path(0, rate1, delay1, **path_kw)
    net.add_simple_path(1, rate2, delay2)
    client = Connection(loop, ConnectionConfig(is_client=True),
                        transmit=lambda pid, d: net.client.send(
                            Datagram(payload=d, path_id=pid)),
                        scheduler=MinRttScheduler(),
                        connection_name="edge")
    server = Connection(loop, ConnectionConfig(is_client=False),
                        transmit=lambda pid, d: net.server.send(
                            Datagram(payload=d, path_id=pid)),
                        scheduler=MinRttScheduler(),
                        connection_name="edge")
    net.client.on_receive(lambda d: client.datagram_received(d.payload,
                                                             d.path_id))
    net.server.on_receive(lambda d: server.datagram_received(d.payload,
                                                             d.path_id))
    client.add_local_path(0, 0)
    server.add_local_path(0, 0)
    client.connect()
    loop.run(until=0.3)
    return loop, net, client, server


class TestReinjectionDedup:
    def test_same_range_not_requeued_within_ttl(self):
        loop, net, client, server = pair()
        server._ensure_send_stream(1)
        server.send_streams[1].write(b"x" * 2000)
        chunk = SendChunk(stream_id=1, offset=0, length=1000,
                          kind="reinject")
        before = len(server.send_queue)
        server.enqueue_reinjection(chunk)
        server.enqueue_reinjection(SendChunk(stream_id=1, offset=0,
                                             length=1000, kind="reinject"))
        assert len(server.send_queue) == before + 1

    def test_range_can_retry_after_ttl(self):
        loop, net, client, server = pair()
        server._ensure_send_stream(1)
        server.send_streams[1].write(b"x" * 2000)
        server.enqueue_reinjection(SendChunk(stream_id=1, offset=0,
                                             length=1000, kind="reinject"))
        first = len(server.send_queue)
        # Advance virtual time beyond the TTL window.
        loop.schedule_after(5.0, lambda: None)
        loop.run()
        server.enqueue_reinjection(SendChunk(stream_id=1, offset=0,
                                             length=1000, kind="reinject"))
        assert len(server.send_queue) == first + 1

    def test_ack_clears_dedup_entry(self):
        loop, net, client, server = pair()
        server._ensure_send_stream(1)
        stream = server.send_streams[1]
        stream.write(b"x" * 2000)
        server.enqueue_reinjection(SendChunk(stream_id=1, offset=0,
                                             length=1000, kind="reinject"))
        assert (1, 0, 1000) in server._reinjected_ranges
        from repro.quic.connection import _SentFrameInfo
        from repro.quic.loss_detection import SentPacket
        pkt = SentPacket(packet_number=99, sent_time=0.0, size=100,
                         ack_eliciting=True, in_flight=True,
                         frames_info=(_SentFrameInfo(
                             stream_id=1, offset=0, length=1000),))
        server._on_frames_acked(pkt)
        assert (1, 0, 1000) not in server._reinjected_ranges


class TestMaxDeliveryTime:
    def test_zero_without_unacked(self):
        loop, net, client, server = pair()
        loop.run(until=2.0)  # everything acked by now
        assert server.max_delivery_time() == 0.0

    def test_grows_while_path_dark(self):
        """The wait-aware bound: a silent path's estimate keeps rising."""
        loop, net, client, server = pair(
            outages=OutageSchedule(windows=[(0.5, 30.0)]))
        sid = client.create_stream()
        client.stream_send(sid, b"GET", fin=True)

        def serve(stream_id):
            stream = server.recv_streams[stream_id]
            if stream.is_complete and not getattr(server, "_done", False):
                server._done = True
                server.stream_read(stream_id)
                server.stream_send(stream_id, b"D" * 500_000, fin=True)

        server.on_stream_data = serve
        loop.run(until=1.5)
        early = server.max_delivery_time()
        loop.run(until=3.0)
        late = server.max_delivery_time()
        if server.paths[0].loss.has_unacked:
            assert late > early


class TestAddressMigration:
    def test_server_follows_observed_network_path(self):
        loop, net, client, server = pair()
        assert server.net_path_of[0] == 0
        # The client rebinds path 0 onto interface 1 and probes.
        client.net_path_of[0] = 1
        client.send_ping(0)
        loop.run(until=1.0)
        assert server.net_path_of[0] == 1


class TestQueueSemantics:
    def test_fin_only_write_enqueues_chunk(self):
        loop, net, client, server = pair()
        server._ensure_send_stream(1)
        server.send_streams[1].write(b"abc")
        server._enqueue_new_data(server.send_streams[1])
        server.send_queue.clear()
        server.send_streams[1].write(b"", fin=True)
        server._enqueue_new_data(server.send_streams[1])
        assert any(c.length == 0 for c in server.send_queue)

    def test_chunks_split_on_priority_boundaries(self):
        loop, net, client, server = pair()
        server._ensure_send_stream(1)
        stream = server.send_streams[1]
        stream.write(b"x" * 300, frame_priority=0, position=100, size=100)
        server.send_queue.clear()
        server._stream_queued_offset[1] = 0
        server._enqueue_new_data(stream)
        priorities = [(c.offset, c.length, c.frame_priority)
                      for c in server.send_queue]
        assert priorities == [(0, 100, 10), (100, 100, 0), (200, 100, 10)]

    def test_acked_chunk_skipped_by_pump(self):
        loop, net, client, server = pair()
        server._ensure_send_stream(1)
        stream = server.send_streams[1]
        stream.write(b"x" * 100)
        stream.on_acked(0, 100, fin=False)
        chunk = SendChunk(stream_id=1, offset=0, length=100, kind="rtx")
        assert not server._chunk_sendable(chunk)


class TestQoeProviderIntegration:
    def test_acks_carry_latest_qoe(self):
        loop, net, client, server = pair()
        snapshots = iter([QoeSignals(10, 1, 1, 1),
                          QoeSignals(20, 2, 2, 2)] + [
                              QoeSignals(30, 3, 3, 3)] * 50)
        client.qoe_provider = lambda: next(snapshots)
        sid = client.create_stream()
        client.stream_send(sid, b"GET", fin=True)

        def serve(stream_id):
            stream = server.recv_streams[stream_id]
            if stream.is_complete and not getattr(server, "_done", False):
                server._done = True
                server.stream_read(stream_id)
                server.stream_send(stream_id, b"D" * 100_000, fin=True)

        server.on_stream_data = serve
        loop.run(until=3.0)
        assert server.last_qoe is not None
        assert server.last_qoe.cached_bytes in (10, 20, 30)
        assert server.last_qoe_time > 0
