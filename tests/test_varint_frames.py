"""Tests for varints and frame codecs, including property-based tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quic.errors import FrameEncodingError
from repro.quic.frames import (AckFrame, AckMpFrame, AckRange,
                               ConnectionCloseFrame, CryptoFrame,
                               MaxDataFrame, MaxStreamDataFrame,
                               NewConnectionIdFrame, PaddingFrame,
                               PathChallengeFrame, PathResponseFrame,
                               PathStatus, PathStatusFrame, PingFrame,
                               QoeControlSignalsFrame, QoeSignals,
                               StreamFrame, decode_frames, encode_frame,
                               encode_frames, is_ack_eliciting)
from repro.quic.varint import (VARINT_MAX, Buffer, decode_varint,
                               encode_varint, varint_size)


class TestVarint:
    @pytest.mark.parametrize("value,size", [
        (0, 1), (63, 1), (64, 2), (16383, 2), (16384, 4),
        ((1 << 30) - 1, 4), (1 << 30, 8), (VARINT_MAX, 8),
    ])
    def test_sizes_at_boundaries(self, value, size):
        assert varint_size(value) == size
        assert len(encode_varint(value)) == size

    @pytest.mark.parametrize("value", [0, 1, 63, 64, 300, 16383, 16384,
                                       (1 << 30) - 1, 1 << 30, VARINT_MAX])
    def test_roundtrip_boundaries(self, value):
        data = encode_varint(value)
        decoded, offset = decode_varint(data)
        assert decoded == value
        assert offset == len(data)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            encode_varint(-1)
        with pytest.raises(ValueError):
            encode_varint(VARINT_MAX + 1)

    def test_truncated_raises(self):
        data = encode_varint(100000)
        with pytest.raises(ValueError):
            decode_varint(data[:2])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            decode_varint(b"")

    @given(st.integers(min_value=0, max_value=VARINT_MAX))
    @settings(max_examples=300)
    def test_roundtrip_property(self, value):
        decoded, _ = decode_varint(encode_varint(value))
        assert decoded == value

    @given(st.lists(st.integers(min_value=0, max_value=VARINT_MAX),
                    max_size=20))
    @settings(max_examples=100)
    def test_sequential_buffer_roundtrip(self, values):
        buf = Buffer()
        for v in values:
            buf.push_varint(v)
        reader = Buffer(buf.getvalue())
        assert [reader.pull_varint() for _ in values] == values
        assert reader.remaining == 0


def roundtrip(frame):
    decoded = decode_frames(encode_frame(frame))
    assert len(decoded) == 1
    return decoded[0]


class TestFrameCodecs:
    def test_ping(self):
        assert roundtrip(PingFrame()) == PingFrame()

    def test_padding_is_skipped(self):
        assert decode_frames(encode_frame(PaddingFrame(length=5))) == []

    def test_stream_frame(self):
        frame = StreamFrame(stream_id=4, offset=1000, data=b"hello",
                            fin=True)
        assert roundtrip(frame) == frame

    def test_stream_frame_empty_fin(self):
        frame = StreamFrame(stream_id=8, offset=500, data=b"", fin=True)
        assert roundtrip(frame) == frame

    def test_crypto_frame(self):
        frame = CryptoFrame(offset=0, data=b"\x01\x02\x03")
        assert roundtrip(frame) == frame

    def test_ack_frame_single_range(self):
        frame = AckFrame(largest_acked=10, ack_delay_us=250,
                         ranges=(AckRange(0, 10),))
        assert roundtrip(frame) == frame

    def test_ack_frame_multi_range(self):
        frame = AckFrame(largest_acked=20, ack_delay_us=0,
                         ranges=(AckRange(18, 20), AckRange(10, 15),
                                 AckRange(0, 5)))
        decoded = roundtrip(frame)
        assert set(decoded.ranges) == set(frame.ranges)

    def test_ack_mp_without_qoe(self):
        frame = AckMpFrame(path_id=2, largest_acked=7, ack_delay_us=100,
                           ranges=(AckRange(0, 7),), qoe=None)
        assert roundtrip(frame) == frame

    def test_ack_mp_with_qoe(self):
        qoe = QoeSignals(cached_bytes=123456, cached_frames=78,
                         bps=2_000_000, fps=25)
        frame = AckMpFrame(path_id=1, largest_acked=3, ack_delay_us=0,
                           ranges=(AckRange(2, 3), AckRange(0, 0)), qoe=qoe)
        decoded = roundtrip(frame)
        assert decoded.qoe == qoe
        assert set(decoded.ranges) == set(frame.ranges)

    def test_path_status(self):
        for status in PathStatus:
            frame = PathStatusFrame(path_id=3, status=status, status_seq=9)
            assert roundtrip(frame) == frame

    def test_qoe_control_signals_frame(self):
        frame = QoeControlSignalsFrame(qoe=QoeSignals(1, 2, 3, 4))
        assert roundtrip(frame) == frame

    def test_new_connection_id(self):
        frame = NewConnectionIdFrame(sequence_number=5, cid=b"\xab" * 8,
                                     retire_prior_to=1)
        assert roundtrip(frame) == frame

    def test_path_challenge_response(self):
        challenge = PathChallengeFrame(data=b"12345678")
        assert roundtrip(challenge) == challenge
        response = PathResponseFrame(data=b"87654321")
        assert roundtrip(response) == response

    def test_path_challenge_wrong_size(self):
        with pytest.raises(ValueError):
            PathChallengeFrame(data=b"short")

    def test_connection_close(self):
        frame = ConnectionCloseFrame(error_code=0x0A, reason="bye")
        assert roundtrip(frame) == frame

    def test_max_data_frames(self):
        assert roundtrip(MaxDataFrame(maximum=1 << 20)) == \
            MaxDataFrame(maximum=1 << 20)
        frame = MaxStreamDataFrame(stream_id=4, maximum=1 << 16)
        assert roundtrip(frame) == frame

    def test_multiple_frames_in_payload(self):
        frames = [PingFrame(),
                  StreamFrame(stream_id=0, offset=0, data=b"x"),
                  MaxDataFrame(maximum=100)]
        assert decode_frames(encode_frames(frames)) == frames

    def test_unknown_frame_type_raises(self):
        with pytest.raises(FrameEncodingError):
            decode_frames(b"\x3f")  # type 0x3f unassigned here

    def test_encode_unknown_object_raises(self):
        with pytest.raises(FrameEncodingError):
            encode_frame(object())

    def test_ack_eliciting_classification(self):
        assert is_ack_eliciting(PingFrame())
        assert is_ack_eliciting(StreamFrame(stream_id=0, offset=0, data=b""))
        assert not is_ack_eliciting(
            AckMpFrame(path_id=0, largest_acked=0, ack_delay_us=0,
                       ranges=(AckRange(0, 0),)))
        assert not is_ack_eliciting(ConnectionCloseFrame(error_code=0))

    def test_bad_ack_range_rejected(self):
        with pytest.raises(ValueError):
            AckRange(5, 3)

    def test_encode_requires_largest_in_first_range(self):
        frame = AckFrame(largest_acked=99, ack_delay_us=0,
                         ranges=(AckRange(0, 10),))
        with pytest.raises(FrameEncodingError):
            encode_frame(frame)


class TestQoeSignals:
    def test_play_time_left_uses_conservative_min(self):
        # 50 frames at 25 fps = 2.0 s; 1 Mbit cached at 1 Mbps = 1.0 s.
        qoe = QoeSignals(cached_bytes=125_000, cached_frames=50,
                         bps=1_000_000, fps=25)
        assert qoe.play_time_left() == pytest.approx(1.0)

    def test_play_time_left_frames_only(self):
        qoe = QoeSignals(cached_bytes=0, cached_frames=50, bps=0, fps=25)
        assert qoe.play_time_left() == pytest.approx(2.0)

    def test_play_time_left_bytes_only(self):
        qoe = QoeSignals(cached_bytes=250_000, cached_frames=0,
                         bps=2_000_000, fps=0)
        assert qoe.play_time_left() == pytest.approx(1.0)

    def test_play_time_left_no_signal(self):
        assert QoeSignals().play_time_left() == 0.0

    @given(st.integers(0, 10**9), st.integers(0, 10**6),
           st.integers(0, 10**8), st.integers(0, 240))
    @settings(max_examples=200)
    def test_codec_roundtrip_property(self, cached_bytes, cached_frames,
                                      bps, fps):
        qoe = QoeSignals(cached_bytes=cached_bytes,
                         cached_frames=cached_frames, bps=bps, fps=fps)
        buf = Buffer()
        qoe.encode(buf)
        assert QoeSignals.decode(Buffer(buf.getvalue())) == qoe


class TestStreamFramePropertyBased:
    @given(st.integers(0, 1000), st.integers(0, 1 << 20),
           st.binary(max_size=1500), st.booleans())
    @settings(max_examples=200)
    def test_stream_roundtrip_property(self, stream_id, offset, data, fin):
        frame = StreamFrame(stream_id=stream_id, offset=offset, data=data,
                            fin=fin)
        assert roundtrip(frame) == frame

    @given(st.lists(st.tuples(st.integers(0, 100), st.integers(0, 100)),
                    min_size=1, max_size=10))
    @settings(max_examples=200)
    def test_ack_ranges_roundtrip_property(self, raw):
        # Build disjoint ranges from raw pairs.
        points = sorted({p for pair in raw for p in pair})
        ranges = []
        i = 0
        while i + 1 < len(points):
            start, end = points[i], points[i + 1]
            if ranges and start <= ranges[-1].end + 1:
                i += 1
                continue
            ranges.append(AckRange(start, end))
            i += 2
        if not ranges:
            ranges = [AckRange(points[0], points[0])]
        largest = max(r.end for r in ranges)
        frame = AckMpFrame(path_id=0, largest_acked=largest, ack_delay_us=0,
                           ranges=tuple(ranges))
        decoded = roundtrip(frame)
        assert set(decoded.ranges) == set(frame.ranges)
