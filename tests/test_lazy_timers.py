"""Unit tests for the batched-pump scheduling primitives.

Two layers of the run-until-blocked rework are pinned here:

- ``EventLoop.run(stop_before=...)`` and ``request_stop()`` -- the
  drain-until-blocked driver contract (the boundary event still runs,
  a stop request halts after the current callback, the flag resets).
- the lazy-deadline loss timer in ``Connection`` -- when the live
  deadline moves *later* than an armed wakeup, the old wakeup is kept
  and must fire stale: re-check, re-arm, and return **without**
  running loss detection or the pump early.
"""

import pytest

from repro.sim import EventLoop
from tests.test_connection import build_pair, two_path_net


class TestRunStopBefore:
    def test_boundary_event_still_executes(self):
        # stop_before replicates `while loop.now < t: step()`: the
        # event that carries the clock to (or past) the boundary runs.
        loop = EventLoop()
        fired = []
        for t in (1.0, 2.0, 3.0):
            loop.schedule_at(t, lambda t=t: fired.append(t))
        loop.run(stop_before=2.0)
        assert fired == [1.0, 2.0]
        assert loop.now == 2.0
        loop.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_event_past_boundary_executes_once(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(1.0, lambda: fired.append(1.0))
        loop.schedule_at(2.5, lambda: fired.append(2.5))
        loop.schedule_at(2.7, lambda: fired.append(2.7))
        loop.run(stop_before=2.0)
        # 1.0 runs (clock 1.0 < 2.0), then 2.5 runs and carries the
        # clock past the boundary; 2.7 must wait.
        assert fired == [1.0, 2.5]
        assert loop.now == 2.5

    def test_clock_at_boundary_runs_nothing(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(1.0, lambda: fired.append(1.0))
        loop.run(stop_before=2.0)
        assert loop.now == 1.0
        loop.schedule_at(3.0, lambda: fired.append(3.0))
        loop.run(stop_before=1.0)  # clock already at the boundary
        assert fired == [1.0]
        assert loop.now == 1.0

    def test_request_stop_halts_after_current_callback(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(1.0, lambda: (fired.append(1.0),
                                       loop.request_stop()))
        loop.schedule_at(2.0, lambda: fired.append(2.0))
        loop.run()
        assert fired == [1.0]
        assert loop.now == 1.0  # later events untouched, clock held
        # The flag resets at run() entry: the next run drains normally.
        loop.run()
        assert fired == [1.0, 2.0]

    def test_request_stop_same_timestamp_burst(self):
        # A stop raised mid-burst stops between same-time events, and
        # the remainder of the burst survives for the next run.
        loop = EventLoop()
        fired = []
        loop.schedule_at(1.0, lambda: (fired.append("a"),
                                       loop.request_stop()))
        loop.schedule_at(1.0, lambda: fired.append("b"))
        loop.run()
        assert fired == ["a"]
        loop.run()
        assert fired == ["a", "b"]


class TestLazyLossTimer:
    """Stale wakeups must not fire loss detection early."""

    def _idle_pair(self):
        loop = EventLoop()
        net = two_path_net(loop)
        client, server = build_pair(loop, net)
        client.connect()
        loop.run(until=1.0)
        assert client.established
        # Quiesce: drop whatever timer the handshake left armed so the
        # test controls the schedule exactly.
        if client._timer_event is not None:
            client._timer_event.cancel()
            client._timer_event = None
        client._loss_deadline = None
        return loop, client

    def test_later_deadline_keeps_armed_event(self, monkeypatch):
        loop, client = self._idle_pair()
        path = client.paths[0]
        d1, d2 = loop.now + 0.05, loop.now + 0.15
        monkeypatch.setattr(path.loss, "next_timer", lambda: d1)
        client._arm_loss_timer()
        event = client._timer_event
        assert event is not None and event.time == pytest.approx(d1)
        # Deadline drifts later: lazily keep the early wakeup instead
        # of paying a heap cancel+push.
        monkeypatch.setattr(path.loss, "next_timer", lambda: d2)
        client._arm_loss_timer()
        assert client._timer_event is event
        assert client._loss_deadline == pytest.approx(d2)

    def test_earlier_deadline_reschedules(self, monkeypatch):
        loop, client = self._idle_pair()
        path = client.paths[0]
        d1, d2 = loop.now + 0.15, loop.now + 0.05
        monkeypatch.setattr(path.loss, "next_timer", lambda: d1)
        client._arm_loss_timer()
        event = client._timer_event
        # Deadline moves *earlier*: laziness would fire late, so the
        # old event must be cancelled and a new one scheduled.
        monkeypatch.setattr(path.loss, "next_timer", lambda: d2)
        client._arm_loss_timer()
        assert client._timer_event is not event
        assert event.cancelled
        assert client._timer_event.time == pytest.approx(d2)

    def test_stale_wakeup_rearms_without_firing(self, monkeypatch):
        loop, client = self._idle_pair()
        path = client.paths[0]
        d1, d2 = loop.now + 0.05, loop.now + 0.15

        pto_calls = []
        loss_calls = []
        monkeypatch.setattr(client, "_on_pto",
                            lambda p: pto_calls.append(loop.now))
        monkeypatch.setattr(path.loss, "on_loss_timer",
                            lambda now: (loss_calls.append(now), [])[1])

        monkeypatch.setattr(path.loss, "next_timer", lambda: d1)
        client._arm_loss_timer()
        monkeypatch.setattr(path.loss, "next_timer", lambda: d2)
        client._arm_loss_timer()  # keeps the d1 wakeup, live deadline d2

        # The d1 wakeup fires stale: it must re-check the live
        # deadline, re-arm at d2 and return without loss detection.
        loop.run(until=(d1 + d2) / 2)
        assert pto_calls == [] and loss_calls == []
        assert client._timer_event is not None
        assert client._timer_event.time == pytest.approx(d2)

        # At the *live* deadline the timer body finally runs: the
        # path is not in loss-time state, so it takes the PTO branch.
        # next_timer now reports nothing due, so the post-fire re-arm
        # goes quiet instead of spinning a zero-delay timer.
        monkeypatch.setattr(path.loss, "pto_deadline", lambda: d2)
        monkeypatch.setattr(path.loss, "next_timer", lambda: None)
        assert path.loss.loss_time is None
        loop.run(until=d2 + 0.01)
        assert pto_calls == [pytest.approx(d2)]
        assert loss_calls == []

    def test_no_deadline_cancels_event(self, monkeypatch):
        loop, client = self._idle_pair()
        path = client.paths[0]
        monkeypatch.setattr(path.loss, "next_timer",
                            lambda: loop.now + 0.05)
        client._arm_loss_timer()
        event = client._timer_event
        # All packets acked: no deadline anywhere -> eager cancel (a
        # stale no-op wakeup would be harmless but pointless).
        monkeypatch.setattr(path.loss, "next_timer", lambda: None)
        client._arm_loss_timer()
        assert client._timer_event is None
        assert client._loss_deadline is None
        assert event.cancelled
