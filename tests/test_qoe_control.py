"""Tests for the double-thresholding QoE controller (Alg. 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DoubleThresholdController, ThresholdConfig
from repro.quic.frames import QoeSignals


def qoe(seconds: float, fps: int = 25) -> QoeSignals:
    """QoE feedback representing ``seconds`` of play-time left."""
    return QoeSignals(cached_bytes=int(seconds * 2_000_000 / 8),
                      cached_frames=int(seconds * fps),
                      bps=2_000_000, fps=fps)


class TestThresholdConfig:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            ThresholdConfig(t_th1=2.0, t_th2=1.0)

    def test_always_flags_skip_ordering(self):
        ThresholdConfig(t_th1=5.0, t_th2=1.0, always_on=True)

    def test_defaults_valid(self):
        cfg = ThresholdConfig()
        assert cfg.t_th1 < cfg.t_th2


class TestDoubleThresholdController:
    def test_above_upper_threshold_off(self):
        """Alg. 1 line 2-3: plenty of buffer -> no re-injection."""
        ctrl = DoubleThresholdController(ThresholdConfig(0.5, 2.0))
        ctrl.update(qoe(5.0), now=0.0)
        assert ctrl.should_reinject(max_delivery_time=10.0, now=0.0) is False

    def test_below_lower_threshold_on(self):
        """Alg. 1 line 4-5: nearly dry -> re-inject immediately."""
        ctrl = DoubleThresholdController(ThresholdConfig(0.5, 2.0))
        ctrl.update(qoe(0.2), now=0.0)
        assert ctrl.should_reinject(max_delivery_time=0.0, now=0.0) is True

    def test_middle_band_compares_delivery_time(self):
        """Alg. 1 line 13-15: Δt vs deliverTime_max decides."""
        ctrl = DoubleThresholdController(ThresholdConfig(0.5, 2.0))
        ctrl.update(qoe(1.0), now=0.0)
        assert ctrl.should_reinject(max_delivery_time=1.5, now=0.0) is True
        assert ctrl.should_reinject(max_delivery_time=0.5, now=0.0) is False

    def test_no_feedback_defaults_on(self):
        """Start-up: no feedback yet; stay aggressive (Fig. 6d's
        re-injection right after the first frame)."""
        ctrl = DoubleThresholdController(ThresholdConfig(0.5, 2.0))
        assert ctrl.should_reinject(max_delivery_time=0.0) is True

    def test_always_on(self):
        ctrl = DoubleThresholdController(ThresholdConfig(always_on=True))
        ctrl.update(qoe(100.0), now=0.0)
        assert ctrl.should_reinject(0.0, now=0.0) is True

    def test_always_off(self):
        ctrl = DoubleThresholdController(ThresholdConfig(always_off=True))
        ctrl.update(qoe(0.0), now=0.0)
        assert ctrl.should_reinject(100.0, now=0.0) is False

    def test_extrapolation_drains_buffer(self):
        """Footnote 10: Δt must be extrapolated between feedbacks."""
        ctrl = DoubleThresholdController(ThresholdConfig(0.5, 2.0))
        ctrl.update(qoe(2.5), now=0.0)
        # Immediately: 2.5 > T_th2 -> off.
        assert ctrl.should_reinject(0.0, now=0.0) is False
        # 2.2 s later the buffer has drained to ~0.3 < T_th1 -> on.
        assert ctrl.should_reinject(0.0, now=2.2) is True

    def test_play_time_left_never_negative(self):
        ctrl = DoubleThresholdController()
        ctrl.update(qoe(1.0), now=0.0)
        assert ctrl.play_time_left(now=100.0) == 0.0

    def test_decision_counters(self):
        ctrl = DoubleThresholdController(ThresholdConfig(0.5, 2.0))
        ctrl.update(qoe(5.0), now=0.0)
        ctrl.should_reinject(0.0, now=0.0)
        ctrl.update(qoe(0.1), now=0.0)
        ctrl.should_reinject(0.0, now=0.0)
        assert ctrl.decisions_off == 1
        assert ctrl.decisions_on == 1

    @given(st.floats(0.0, 10.0), st.floats(0.0, 3.0))
    @settings(max_examples=200)
    def test_decision_matches_algorithm_property(self, buffer_s, dt_max):
        """Property: the implementation IS Alg. 1."""
        cfg = ThresholdConfig(0.5, 2.0)
        ctrl = DoubleThresholdController(cfg)
        signals = qoe(buffer_s)
        ctrl.update(signals, now=0.0)
        decision = ctrl.should_reinject(dt_max, now=0.0)
        delta_t = signals.play_time_left()
        if delta_t > cfg.t_th2:
            expected = False
        elif delta_t < cfg.t_th1:
            expected = True
        else:
            expected = delta_t < dt_max
        assert decision == expected

    @given(st.floats(0.1, 5.0), st.floats(0.0, 5.0), st.floats(0.0, 2.0))
    @settings(max_examples=200)
    def test_monotone_in_buffer_property(self, t1_raw, extra, dt_max):
        """Property: with fixed thresholds and delivery time, turning
        the buffer *lower* never turns re-injection *off*."""
        cfg = ThresholdConfig(t_th1=0.5, t_th2=2.5)
        high, low = 0.5 + extra + 0.5, 0.5  # low buffer <= high buffer
        ctrl = DoubleThresholdController(cfg)
        ctrl.update(qoe(low), now=0.0)
        low_decision = ctrl.should_reinject(dt_max, now=0.0)
        ctrl.update(qoe(high), now=0.0)
        high_decision = ctrl.should_reinject(dt_max, now=0.0)
        # If re-injection is on at high buffer, it must be on at low.
        if high_decision:
            assert low_decision

    def test_cost_bound_structure(self):
        """Sec. 5.2.2: larger T_th1 -> more 'on' decisions (higher
        minimum cost); smaller T_th2 -> fewer 'on' decisions."""
        buffers = [i * 0.25 for i in range(20)]

        def on_fraction(cfg):
            ctrl = DoubleThresholdController(cfg)
            on = 0
            for b in buffers:
                ctrl.update(qoe(b), now=0.0)
                if ctrl.should_reinject(0.0, now=0.0):
                    on += 1
            return on / len(buffers)

        aggressive = on_fraction(ThresholdConfig(2.0, 3.0))
        conservative = on_fraction(ThresholdConfig(0.25, 3.0))
        assert aggressive > conservative
