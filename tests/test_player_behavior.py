"""Behavioural tests for the video player over the real transport."""

import pytest

from repro.core import MinRttScheduler, SinglePathScheduler
from repro.netem import Datagram, MultipathNetwork, OutageSchedule
from repro.quic.connection import Connection, ConnectionConfig
from repro.sim import EventLoop
from repro.video import (MediaServer, PlayerConfig, VideoPlayer, make_video)


def session(video, player_config=None, rate=10e6, outage=None,
            timeout=60.0):
    loop = EventLoop()
    net = MultipathNetwork(loop)
    net.add_simple_path(0, rate, 0.015, outages=outage)
    client = Connection(loop, ConnectionConfig(is_client=True,
                                               enable_multipath=False),
                        transmit=lambda pid, d: net.client.send(
                            Datagram(payload=d, path_id=pid)),
                        scheduler=SinglePathScheduler(),
                        connection_name="player")
    server = Connection(loop, ConnectionConfig(is_client=False,
                                               enable_multipath=False),
                        transmit=lambda pid, d: net.server.send(
                            Datagram(payload=d, path_id=pid)),
                        scheduler=SinglePathScheduler(),
                        connection_name="player")
    net.client.on_receive(lambda d: client.datagram_received(d.payload,
                                                             d.path_id))
    net.server.on_receive(lambda d: server.datagram_received(d.payload,
                                                             d.path_id))
    client.add_local_path(0, 0)
    server.add_local_path(0, 0)
    MediaServer(server, {video.name: video})
    player = VideoPlayer(loop, client, video, config=player_config)
    client.on_established = player.start
    client.connect()
    while not player.finished and loop.now < timeout:
        if not loop.step():
            break
    return player, loop


class TestPlaybackAccounting:
    def test_play_time_equals_video_duration(self):
        video = make_video(duration_s=4.0, seed=1)
        player, _ = session(video)
        assert player.finished
        assert player.stats.play_time == pytest.approx(video.duration_s,
                                                       abs=0.2)

    def test_rct_count_matches_chunks(self):
        video = make_video(duration_s=4.0, seed=1, chunk_size=64 * 1024)
        player, _ = session(video)
        assert len(player.stats.request_completion_times) == \
            len(video.chunks())

    def test_no_rebuffer_on_fast_network(self):
        video = make_video(duration_s=4.0, seed=1)
        player, _ = session(video, rate=50e6)
        assert player.stats.rebuffer_time == 0.0
        assert player.stats.rebuffer_count == 0

    def test_outage_causes_measured_stall(self):
        video = make_video(duration_s=8.0, bitrate_bps=2e6, seed=2)
        player, loop = session(
            video, player_config=PlayerConfig(max_buffer_s=1.5),
            rate=4e6, outage=OutageSchedule(windows=[(1.0, 4.0)]),
            timeout=60.0)
        assert player.finished
        stats = player.stats
        assert stats.rebuffer_count >= 1
        assert stats.rebuffer_time > 0.5
        # Stalls are well-formed: every event closed, positive length.
        for event in stats.rebuffer_events:
            assert event.end is not None
            assert event.duration >= 0

    def test_rebuffer_rate_definition(self):
        """rebuffer_rate == sum(rebuffer)/sum(play) (Sec. 7.2)."""
        video = make_video(duration_s=6.0, bitrate_bps=2e6, seed=3)
        player, _ = session(
            video, player_config=PlayerConfig(max_buffer_s=1.5),
            rate=4e6, outage=OutageSchedule(windows=[(1.0, 3.5)]))
        stats = player.stats
        assert stats.rebuffer_rate == pytest.approx(
            stats.rebuffer_time / stats.play_time)

    def test_buffer_never_exceeds_cap_by_much(self):
        video = make_video(duration_s=6.0, bitrate_bps=2e6, seed=4,
                           chunk_size=64 * 1024)
        cap = 2.0
        player, _ = session(video,
                            player_config=PlayerConfig(max_buffer_s=cap),
                            rate=50e6)
        # Sampled buffered play-time stays near the cap (one chunk of
        # slack is allowed: requests in flight when the cap is hit).
        overshoot = max(s[2] for s in player.stats.buffer_level_samples)
        chunk_playtime = 64 * 1024 * 8 / 2e6
        assert overshoot <= cap + 2 * chunk_playtime + 0.5

    def test_first_frame_latency_before_first_rct(self):
        video = make_video(duration_s=4.0, seed=5, chunk_size=512 * 1024)
        player, _ = session(video)
        stats = player.stats
        assert stats.first_frame_latency is not None
        # First frame needs less data than the whole first chunk.
        assert stats.first_frame_latency <= \
            stats.request_completion_times[0] + 1e-9

    def test_started_and_finished_timestamps(self):
        video = make_video(duration_s=3.0, seed=6)
        player, loop = session(video)
        stats = player.stats
        assert stats.started_at is not None
        assert stats.finished_at is not None
        assert stats.started_at < stats.finished_at <= loop.now
