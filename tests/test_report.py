"""Tests for the evaluation report generator."""

import pytest

from repro.cli import main
from repro.experiments.report import SCALES, generate_report


class TestReport:
    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            generate_report(scale="galactic")

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError):
            generate_report(scale="quick", sections=["fig99"])

    def test_scales_defined(self):
        assert set(SCALES) == {"quick", "standard", "full"}
        # quick really is the smallest configuration
        assert SCALES["quick"][0] <= SCALES["standard"][0] \
            <= SCALES["full"][0]

    def test_single_section_renders_table(self):
        text = generate_report(scale="quick", sections=["fig8"])
        assert "Fig. 8" in text
        assert "min-RTT path" in text
        assert text.count("|") > 10  # markdown table present

    def test_fig14_section(self):
        text = generate_report(scale="quick", sections=["fig14"])
        for config in ("WiFi", "LTE", "WiFi-LTE"):
            assert config in text

    def test_cli_report_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(["report", "--scale", "quick", "--out", str(out),
                     "--sections", "fig6"])
        assert code == 0
        content = out.read_text()
        assert content.startswith("# XLINK reproduction")
        assert "Fig. 6" in content
