"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_play_defaults(self):
        args = build_parser().parse_args(["play"])
        assert args.scheme == "xlink"
        assert args.wifi_mbps == 10.0

    def test_race_schemes_list(self):
        args = build_parser().parse_args(
            ["race", "--schemes", "sp", "xlink"])
        assert args.schemes == ["sp", "xlink"]


class TestCommands:
    def test_schemes_lists_all(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        for name in ("sp", "cm", "vanilla_mp", "xlink", "mptcp"):
            assert name in out

    def test_play_runs_session(self, capsys):
        code = main(["play", "--scheme", "sp", "--duration", "3",
                     "--timeout", "30", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "completed=True" in out
        assert "first_frame_latency_ms=" in out
        assert "rebuffer_s=" in out

    def test_play_unknown_scheme(self, capsys):
        assert main(["play", "--scheme", "warpdrive"]) == 2

    def test_play_mptcp_rejected(self):
        assert main(["play", "--scheme", "mptcp"]) == 2

    def test_play_with_outage(self, capsys):
        code = main(["play", "--scheme", "xlink", "--duration", "4",
                     "--wifi-outage", "1.0", "2.0", "--timeout", "40"])
        assert code == 0
        assert "completed=True" in capsys.readouterr().out

    def test_race(self, capsys):
        code = main(["race", "--schemes", "sp", "mptcp",
                     "--bytes", "300000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sp" in out and "mptcp" in out

    def test_race_unknown_scheme(self):
        assert main(["race", "--schemes", "bogus"]) == 2

    def test_ab_day(self, capsys):
        code = main(["ab", "--treatment", "xlink", "--users", "2",
                     "--seed", "9"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sp" in out and "xlink" in out
        assert "rct_p50=" in out

    def test_mobility(self, capsys):
        code = main(["mobility", "--trace", "1", "--duration", "12",
                     "--schemes", "sp", "xlink"])
        assert code == 0
        out = capsys.readouterr().out
        assert "median=" in out and "max=" in out

    def test_mobility_bad_trace_id(self):
        assert main(["mobility", "--trace", "99"]) == 2

    def test_serve_multi_session(self, capsys):
        code = main(["serve", "--sessions", "2", "--duration", "3",
                     "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sessions=2" in out
        assert "completed=2" in out
        assert "dropped=0" in out

    def test_serve_mptcp_rejected(self):
        assert main(["serve", "--scheme", "mptcp"]) == 2

    def test_play_writes_qlog(self, capsys, tmp_path):
        qlog = tmp_path / "session.jsonl"
        code = main(["play", "--scheme", "xlink", "--duration", "2",
                     "--qlog", str(qlog)])
        assert code == 0
        lines = qlog.read_text().strip().splitlines()
        assert lines
        assert '"datagram_sent"' in lines[0] or \
            '"datagram_received"' in lines[0]

    def test_race_writes_per_scheme_qlogs(self, capsys, tmp_path):
        qlog = tmp_path / "race.jsonl"
        code = main(["race", "--schemes", "sp", "xlink", "mptcp",
                     "--bytes", "200000", "--qlog", str(qlog)])
        assert code == 0
        assert (tmp_path / "race.sp.jsonl").exists()
        assert (tmp_path / "race.xlink.jsonl").exists()
        # MPTCP runs outside the QUIC tracer; no file for it.
        assert not (tmp_path / "race.mptcp.jsonl").exists()
