"""Conformance and invariant harness for every congestion controller.

Every name in ``repro.quic.cc.CC_REGISTRY`` -- the loss-based family
(newreno, cubic, lia) and the model-based family (bbr, mpbbr) -- runs
the same invariant suite:

- the congestion window never drops below ``MINIMUM_WINDOW`` and never
  goes NaN/negative, no matter the loss storm;
- ``bytes_in_flight`` is conserved exactly through any interleaving of
  sent / acked / lost / discarded events;
- pacing state is sane: unpaced controllers answer ``inf`` rate and
  "send now", paced controllers answer finite positive rates and
  finite token-release deadlines, and an idle period is forgiven
  rather than banked as a burst allowance;
- on a synthetic fixed-rate link the controller actually uses the
  link, and a paced controller's rate tracks the measured bandwidth.

On top of the shared suite sit behavioural pins for BBR (startup
exits, convergence to the BDP neighbourhood, PROBE_RTT drains the
queue, app-limited samples cannot deflate the bandwidth filter),
coupling pins for multipath BBR (single probe token, non-starvation
floor), and two-flow fairness runs on a shared emulated bottleneck
(Cubic-vs-BBR and LIA-vs-mpBBR; neither side may starve).
"""

import math
import random

import pytest

from repro.experiments.harness import (PathSpec, run_video_session,
                                       scheme_with_cc)
from repro.host import SessionRuntime, VideoSessionSpec
from repro.netem import MultipathNetwork
from repro.quic.cc import (CC_REGISTRY, BbrCc, MpBbrCc, MpBbrCoordinator,
                           RateSample, make_cc, make_coordinator)
from repro.quic.cc.base import (INITIAL_WINDOW, MAX_DATAGRAM_SIZE,
                                MINIMUM_WINDOW)
from repro.quic.cc.bbr import (PROBE_BW_ENTRY_PHASE, PROBE_RTT_CWND,
                               _WindowedMaxFilter)
from repro.sim import EventLoop
from repro.traces.radio_profiles import RadioType
from repro.video import PlayerConfig
from repro.video.media import Video

MDS = MAX_DATAGRAM_SIZE
ALL_CCS = sorted(CC_REGISTRY)
PACED_CCS = [n for n in ALL_CCS if CC_REGISTRY[n].paced]


# ---------------------------------------------------------------------------
# synthetic link driver
# ---------------------------------------------------------------------------


class SyntheticLink:
    """A fixed-rate bottleneck driving one controller the way the
    connection does: window/pacing-gated sends, a serialization queue,
    per-ack delivery-rate samples with RFC-style ``delivered``
    bookkeeping (mirroring ``PathLossDetector`` stamping and
    ``Connection._feed_rate_samples``).
    """

    def __init__(self, cc, rate_bps=8e6, rtt_s=0.04):
        self.cc = cc
        self.rate = rate_bps / 8.0          # bottleneck bytes/sec
        self.base_rtt = rtt_s               # mutable mid-run (rtt step)
        self.now = 0.0
        self.busy_until = 0.0
        self.queue = []                     # in-flight, ack-time ordered
        self.delivered = 0
        self.delivered_time = 0.0
        self.states = set()
        self.probe_rtt_max_cwnd = 0.0
        self.probe_rtt_min_inflight = float("inf")

    @property
    def throughput(self):
        return self.delivered / self.now if self.now > 0 else 0.0

    def _send_window(self):
        cc = self.cc
        while cc.can_send(MDS):
            if cc.paced and cc.next_send_time(self.now) > self.now + 1e-9:
                return
            if cc.bytes_in_flight == 0:     # detector's idle restart
                self.delivered_time = self.now
            start = max(self.busy_until, self.now)
            self.busy_until = start + MDS / self.rate
            self.queue.append({
                "ack": self.busy_until + self.base_rtt, "size": MDS,
                "sent": self.now, "d": self.delivered,
                "dt": self.delivered_time})
            cc.on_packet_sent(MDS, self.now)

    def _ack(self, pkt):
        cc = self.cc
        self.delivered += pkt["size"]
        self.delivered_time = self.now
        rtt = self.now - pkt["sent"]
        if cc.paced:
            interval = self.delivered_time - pkt["dt"]
            if interval > 0:
                cc.on_rate_sample(RateSample(
                    delivery_rate=(self.delivered - pkt["d"]) / interval,
                    rtt=rtt, delivered=self.delivered,
                    pkt_delivered=pkt["d"], acked_bytes=pkt["size"],
                    now=self.now))
        cc.on_packet_acked(pkt["size"], pkt["sent"], self.now, rtt)
        state = getattr(cc, "state", None)
        if state is not None:
            self.states.add(state)
            if state == BbrCc.PROBE_RTT:
                self.probe_rtt_max_cwnd = max(self.probe_rtt_max_cwnd,
                                              cc.cwnd)
                self.probe_rtt_min_inflight = min(
                    self.probe_rtt_min_inflight, cc.bytes_in_flight)

    def run(self, duration):
        cc = self.cc
        end = self.now + duration
        while self.now < end:
            self._send_window()
            events = []
            if self.queue:
                events.append(self.queue[0]["ack"])
            if cc.paced and cc.can_send(MDS):
                deadline = cc.next_send_time(self.now)
                if deadline > self.now:
                    events.append(deadline)
            if not events:
                break                        # window-limited, pipe empty
            self.now = max(self.now, min(events))
            while self.queue and self.queue[0]["ack"] <= self.now + 1e-12:
                self._ack(self.queue.pop(0))
        return self


# ---------------------------------------------------------------------------
# the shared invariant suite: every registered controller
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ALL_CCS)
class TestInvariants:
    def test_initial_state(self, name):
        cc = make_cc(name)
        assert cc.cwnd == float(INITIAL_WINDOW)
        assert cc.bytes_in_flight == 0
        assert cc.available_window == float(INITIAL_WINDOW)
        assert cc.can_send(MDS)

    def test_window_accounting_conserves_in_flight(self, name):
        cc = make_cc(name)
        for _ in range(6):
            cc.on_packet_sent(MDS, 0.0)
        assert cc.bytes_in_flight == 6 * MDS
        cc.on_packet_acked(MDS, 0.0, 0.05, 0.05)
        cc.on_packet_acked(MDS, 0.0, 0.05, 0.05)
        assert cc.bytes_in_flight == 4 * MDS
        cc.on_packets_lost(MDS, 0.0, 0.1)
        assert cc.bytes_in_flight == 3 * MDS
        cc.on_discarded(MDS)
        assert cc.bytes_in_flight == 2 * MDS
        cc.on_discarded(2 * MDS)
        assert cc.bytes_in_flight == 0

    def test_discard_never_goes_negative(self, name):
        cc = make_cc(name)
        cc.on_packet_sent(MDS, 0.0)
        cc.on_discarded(10 * MDS)
        assert cc.bytes_in_flight == 0
        cc.on_packets_lost(MDS, 0.0, 0.1)
        assert cc.bytes_in_flight == 0

    def test_loss_storm_keeps_cwnd_at_or_above_floor(self, name):
        cc = make_cc(name)
        t = 0.0
        for _ in range(40):
            cc.on_packet_sent(MDS, t)
            t += 0.05
            cc.on_packets_lost(MDS, t - 0.05, t)
            assert cc.cwnd >= float(MINIMUM_WINDOW)
            assert math.isfinite(cc.cwnd)
        assert cc.bytes_in_flight == 0

    def test_event_storm_produces_finite_state(self, name):
        """Seeded random interleaving of every event; conservation and
        finiteness must hold at every step."""
        cc = make_cc(name)
        rng = random.Random(4242)
        t = 0.0
        flight = []
        for i in range(500):
            t += rng.random() * 0.01
            op = rng.random()
            if op < 0.5 and cc.can_send(MDS):
                cc.on_packet_sent(MDS, t)
                flight.append((MDS, t))
            elif op < 0.7 and flight:
                size, sent = flight.pop(0)
                cc.on_packet_acked(size, sent, t, max(t - sent, 1e-6))
            elif op < 0.85 and flight:
                size, sent = flight.pop(0)
                cc.on_packets_lost(size, sent, t)
            elif flight:
                size, _ = flight.pop(0)
                cc.on_discarded(size)
            if rng.random() < 0.3:
                cc.on_rate_sample(RateSample(
                    delivery_rate=rng.random() * 2e6,
                    rtt=rng.random() * 0.2 + 1e-3,
                    delivered=(i + 1) * MDS,
                    pkt_delivered=max(i - 5, 0) * MDS,
                    acked_bytes=MDS, now=t,
                    app_limited=rng.random() < 0.2))
            assert cc.bytes_in_flight == sum(s for s, _ in flight)
            assert math.isfinite(cc.cwnd) and cc.cwnd > 0
            assert cc.cwnd >= float(MINIMUM_WINDOW)
            rate = cc.pacing_rate
            assert rate > 0 and not math.isnan(rate)
            deadline = cc.next_send_time(t)
            assert math.isfinite(deadline) and deadline >= 0.0

    def test_pacing_contract(self, name):
        cc = make_cc(name)
        if not cc.paced:
            assert cc.pacing_rate == float("inf")
            assert cc.next_send_time(3.7) == 3.7
        else:
            assert 0 < cc.pacing_rate < float("inf")
            assert math.isfinite(cc.next_send_time(0.0))

    def test_reset_restores_initial_state(self, name):
        cc = make_cc(name)
        t = 0.0
        for _ in range(10):
            cc.on_packet_sent(MDS, t)
            t += 0.02
            cc.on_packets_lost(MDS, t - 0.02, t)
        cc.reset()
        assert cc.cwnd == float(INITIAL_WINDOW)
        assert cc.bytes_in_flight == 0
        assert cc.next_send_time(100.0) <= 100.0

    def test_synthetic_link_utilization(self, name):
        """Every controller must actually use a clean 8 Mbps link."""
        link = SyntheticLink(make_cc(name), rate_bps=8e6, rtt_s=0.04)
        link.run(5.0)
        assert link.throughput >= 0.5 * link.rate


# ---------------------------------------------------------------------------
# pacing behaviour: the model-based controllers only
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", PACED_CCS)
class TestPacing:
    def test_token_advances_per_send(self, name):
        cc = make_cc(name)
        cc.on_packet_sent(MDS, 0.0)
        first = cc.next_send_time(0.0)
        assert first == pytest.approx(MDS / cc.pacing_rate)
        cc.on_packet_sent(MDS, 0.0)
        assert cc.next_send_time(0.0) > first

    def test_idle_restart_forgives_gap(self, name):
        """An idle period neither blocks the next send nor banks a
        burst allowance for the skipped time."""
        cc = make_cc(name)
        for _ in range(4):
            cc.on_packet_sent(MDS, 0.0)
        gap = 50.0
        assert cc.next_send_time(gap) <= gap
        cc.on_packet_sent(MDS, gap)
        deadline = cc.next_send_time(gap)
        assert gap < deadline <= gap + 2 * MDS / cc.pacing_rate

    def test_pacing_rate_tracks_link_bandwidth(self, name):
        link = SyntheticLink(make_cc(name), rate_bps=8e6, rtt_s=0.04)
        link.run(4.0)
        assert 0.5 * link.rate <= link.cc.pacing_rate <= 3.0 * link.rate


# ---------------------------------------------------------------------------
# BBR behavioural pins
# ---------------------------------------------------------------------------


class TestBbrBehavior:
    def test_windowed_max_filter_staircase(self):
        f = _WindowedMaxFilter(window=3)
        f.update(10.0, 1)
        f.update(5.0, 2)
        assert f.get() == 10.0
        f.update(12.0, 3)           # dominates both older samples
        assert f.get() == 12.0
        assert len(f._samples) == 1

    def test_windowed_max_filter_expiry(self):
        f = _WindowedMaxFilter(window=3)
        f.update(10.0, 1)
        f.update(5.0, 2)
        # round 4: the 10.0 sample (round 1) has aged out of window 3
        f.update(1.0, 4)
        assert f.get() == 5.0
        f.update(0.5, 9)            # everything else aged out
        assert f.get() == 0.5

    def test_startup_fills_pipe_and_exits(self):
        link = SyntheticLink(BbrCc(), rate_bps=8e6, rtt_s=0.04)
        link.run(3.0)
        assert link.cc.filled_pipe
        assert link.cc.state == BbrCc.PROBE_BW
        assert BbrCc.DRAIN in link.states

    def test_converges_to_bdp_neighborhood(self):
        link = SyntheticLink(BbrCc(), rate_bps=8e6, rtt_s=0.04)
        link.run(6.0)
        bdp = link.rate * 0.04
        assert 0.8 * bdp <= link.cc.cwnd <= 3.0 * bdp
        assert 0.7 * link.rate <= link.cc.bandwidth <= 1.3 * link.rate
        assert link.cc.min_rtt == pytest.approx(0.04, rel=0.2)

    def test_probe_rtt_drains_queue(self):
        """After an RTT step up, the stale RTprop forces PROBE_RTT:
        cwnd clamps to 4 packets, the pipe drains, then the controller
        returns to PROBE_BW."""
        link = SyntheticLink(BbrCc(), rate_bps=8e6, rtt_s=0.04)
        link.run(5.0)
        link.base_rtt = 0.08        # min RTT is now unreachable
        link.run(13.0)
        assert BbrCc.PROBE_RTT in link.states
        assert link.probe_rtt_max_cwnd <= float(PROBE_RTT_CWND)
        assert link.probe_rtt_min_inflight <= PROBE_RTT_CWND
        assert link.cc.state == BbrCc.PROBE_BW

    def test_app_limited_samples_cannot_deflate_filter(self):
        cc = BbrCc()

        def sample(rate, app_limited, i):
            return RateSample(delivery_rate=rate, rtt=0.04,
                              delivered=(i + 1) * MDS,
                              pkt_delivered=i * MDS, acked_bytes=MDS,
                              now=0.01 * i, app_limited=app_limited)

        cc.on_rate_sample(sample(1e6, False, 0))
        assert cc.bandwidth == 1e6
        cc.on_rate_sample(sample(1e5, True, 1))     # cannot deflate
        assert cc.bandwidth == 1e6
        cc.on_rate_sample(sample(2e6, True, 2))     # may still raise
        assert cc.bandwidth == 2e6

    def test_fixed_run_is_deterministic(self):
        """Two identical links produce bit-identical model state (the
        deterministic PROBE_BW entry phase, not the RFC's random one)."""
        a = SyntheticLink(BbrCc(), rate_bps=8e6, rtt_s=0.04).run(4.0)
        b = SyntheticLink(BbrCc(), rate_bps=8e6, rtt_s=0.04).run(4.0)
        assert a.cc.cwnd == b.cc.cwnd
        assert a.cc.bandwidth == b.cc.bandwidth
        assert a.cc.min_rtt == b.cc.min_rtt
        assert a.cc.state == b.cc.state
        assert a.delivered == b.delivered


# ---------------------------------------------------------------------------
# multipath-BBR coupling pins
# ---------------------------------------------------------------------------


class TestMpBbr:
    def test_probe_token_is_exclusive(self):
        coord = MpBbrCoordinator()
        a = MpBbrCc(coord)
        b = MpBbrCc(coord)
        assert coord.acquire_probe(a)
        assert coord.acquire_probe(a)       # re-entrant for the holder
        assert not coord.acquire_probe(b)
        coord.release_probe(a)
        assert coord.acquire_probe(b)
        coord.release_probe(a)              # non-holder release: no-op
        assert not coord.acquire_probe(a)

    def test_denied_probe_skips_probe_pair(self):
        """A subflow denied the probe token skips the 1.25/0.75 pair
        and cruises this cycle instead."""
        coord = MpBbrCoordinator()
        holder = MpBbrCc(coord)
        other = MpBbrCc(coord)
        assert coord.acquire_probe(holder)
        other._cycle_index = 7              # next phase would be 1.25
        other._next_cycle_phase(1.0)
        assert other._cycle_index == PROBE_BW_ENTRY_PHASE
        coord.release_probe(holder)
        other._cycle_index = 7
        other._next_cycle_phase(2.0)
        assert other._cycle_index == 0      # token free: probe granted

    def test_total_bandwidth_aggregates(self):
        coord = MpBbrCoordinator()
        a = MpBbrCc(coord)
        b = MpBbrCc(coord)
        a._bw_filter.update(1e6, 1)
        b._bw_filter.update(5e5, 1)
        assert coord.total_bandwidth == 1.5e6

    def test_loss_storm_respects_non_starvation_floor(self):
        cc = make_cc("mpbbr")
        t = 0.0
        for _ in range(40):
            cc.on_packet_sent(MDS, t)
            t += 0.05
            cc.on_packets_lost(MDS, t - 0.05, t)
            cc.on_packet_sent(MDS, t)
            cc.on_packet_acked(MDS, t, t + 0.04, 0.04)
            t += 0.04
        assert cc.cwnd >= float(PROBE_RTT_CWND)

    def test_make_coordinator_registry(self):
        assert isinstance(make_coordinator("mpbbr"), MpBbrCoordinator)
        assert make_coordinator("cubic") is None
        assert make_coordinator("bbr") is None


# ---------------------------------------------------------------------------
# two-flow fairness on one shared emulated bottleneck
# ---------------------------------------------------------------------------


def _bulk_video(total_bytes, name="fair"):
    n_frames = 50
    frame = max(total_bytes // n_frames, 1)
    sizes = [frame] * n_frames
    sizes[-1] += total_bytes - sum(sizes)
    return Video(name=name, fps=25, frame_sizes=sizes,
                 chunk_size=total_bytes)


#: greedy player: requests the whole video immediately, never pauses
_GREEDY = PlayerConfig(startup_frames=2, resume_frames=1,
                       concurrent_requests=1, max_buffer_s=1e9,
                       tick_s=0.1)


def _run_two_flows(scheme_a, scheme_b, path_specs, horizon_s=6.0):
    """Two sessions, distinct client hosts, same shared bottleneck
    path(s); returns each connection's total received bytes."""
    loop = EventLoop()
    net = MultipathNetwork(loop)
    for pid, rate_bps, delay_s in path_specs:
        net.add_simple_path(pid, rate_bps, delay_s,
                            queue_limit_bytes=64 * 1024)
    runtime = SessionRuntime(loop, net)
    interfaces = [(pid, RadioType.WIFI if pid == 0 else RadioType.LTE)
                  for pid, _, _ in path_specs]
    video = _bulk_video(16_000_000)
    handles = []
    for i, scheme in enumerate((scheme_a, scheme_b)):
        handles.append(runtime.add_session(VideoSessionSpec(
            scheme_name=scheme, interfaces=interfaces, video=video,
            player_config=_GREEDY, seed=i,
            client_addr=f"flow-{i}", connection_name=f"flow-{i}")))
    runtime.run(timeout_s=horizon_s)
    return [sum(p.bytes_received for p in h.client.conn.paths.values())
            for h in handles]


class TestFairness:
    def test_cubic_vs_bbr_share_bottleneck(self):
        got = _run_two_flows("sp", scheme_with_cc("sp", "bbr"),
                             [(0, 8e6, 0.03)])
        total = sum(got)
        assert total > 0
        for received in got:
            assert received >= 0.25 * total, got

    def test_lia_vs_mpbbr_share_bottleneck(self):
        got = _run_two_flows(scheme_with_cc("vanilla_mp", "lia"),
                             scheme_with_cc("vanilla_mp", "mpbbr"),
                             [(0, 6e6, 0.02), (1, 6e6, 0.04)])
        total = sum(got)
        assert total > 0
        for received in got:
            assert received >= 0.25 * total, got

    def test_mpbbr_does_not_starve_slow_path(self):
        """One mpBBR connection over a fast and a slow path: the floor
        keeps probe traffic flowing on the slow one."""
        loop = EventLoop()
        net = MultipathNetwork(loop)
        net.add_simple_path(0, 8e6, 0.02, queue_limit_bytes=64 * 1024)
        net.add_simple_path(1, 1e6, 0.05, queue_limit_bytes=64 * 1024)
        runtime = SessionRuntime(loop, net)
        handle = runtime.add_session(VideoSessionSpec(
            scheme_name=scheme_with_cc("vanilla_mp", "mpbbr"),
            interfaces=[(0, RadioType.WIFI), (1, RadioType.LTE)],
            video=_bulk_video(16_000_000), player_config=_GREEDY,
            seed=3))
        runtime.run(timeout_s=6.0)
        received = {pid: p.bytes_received
                    for pid, p in handle.client.conn.paths.items()}
        total = sum(received.values())
        assert total > 0
        assert received[1] >= 0.02 * total, received


# ---------------------------------------------------------------------------
# end-to-end: a paced scheme variant through the full host runtime
# ---------------------------------------------------------------------------


class TestEndToEnd:
    def _paths(self):
        return [PathSpec(0, RadioType.WIFI, 0.02, rate_bps=10e6),
                PathSpec(1, RadioType.LTE, 0.04, rate_bps=8e6)]

    def test_xlink_bbr_session_completes_with_pacing_engaged(self):
        scheme = scheme_with_cc("xlink", "bbr")
        result = run_video_session(scheme, self._paths(), seed=7)
        assert result.completed
        conn = result.client
        assert conn._any_paced
        for path in conn.paths.values():
            assert path.cc.paced
            assert path.loss.rate_sampling

    def test_bbr_session_is_deterministic(self):
        scheme = scheme_with_cc("sp", "bbr")
        a = run_video_session(scheme, self._paths()[:1], seed=9)
        b = run_video_session(scheme, self._paths()[:1], seed=9)
        assert a.completed and b.completed
        assert a.duration_s == b.duration_s
        assert (a.metrics.request_completion_times
                == b.metrics.request_completion_times)
