"""Tests for RTT estimation, loss detection, and congestion control."""

import pytest

from repro.quic.cc import (BbrCc, CubicCc, LiaCoordinator, LiaCoupledCc,
                           MpBbrCc, NewRenoCc, make_cc)
from repro.quic.cc.base import INITIAL_WINDOW, MAX_DATAGRAM_SIZE, MINIMUM_WINDOW
from repro.quic.frames import AckRange
from repro.quic.loss_detection import (PACKET_THRESHOLD, PathLossDetector,
                                       SentPacket)
from repro.quic.rtt import INITIAL_RTT, RttEstimator


class TestRttEstimator:
    def test_first_sample_initializes(self):
        rtt = RttEstimator()
        rtt.update(0.1)
        assert rtt.smoothed == pytest.approx(0.1)
        assert rtt.rttvar == pytest.approx(0.05)
        assert rtt.min_rtt == pytest.approx(0.1)

    def test_ewma_smoothing(self):
        rtt = RttEstimator()
        rtt.update(0.1)
        rtt.update(0.2)
        assert rtt.smoothed == pytest.approx(0.875 * 0.1 + 0.125 * 0.2)

    def test_min_rtt_tracks_minimum(self):
        rtt = RttEstimator()
        for sample in [0.1, 0.05, 0.2]:
            rtt.update(sample)
        assert rtt.min_rtt == pytest.approx(0.05)

    def test_ack_delay_subtracted(self):
        rtt = RttEstimator()
        rtt.update(0.1)
        rtt.update(0.2, ack_delay=0.05)
        # adjusted = 0.15, which is >= min_rtt
        assert rtt.smoothed == pytest.approx(0.875 * 0.1 + 0.125 * 0.15)

    def test_ack_delay_not_below_min(self):
        rtt = RttEstimator()
        rtt.update(0.1)
        rtt.update(0.11, ack_delay=0.05)  # 0.06 < min_rtt -> no subtraction
        assert rtt.smoothed == pytest.approx(0.875 * 0.1 + 0.125 * 0.11)

    def test_defaults_before_samples(self):
        rtt = RttEstimator()
        assert rtt.smoothed == INITIAL_RTT
        assert not rtt.has_sample

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            RttEstimator().update(0.0)

    def test_delivery_time_is_srtt_plus_var(self):
        rtt = RttEstimator()
        rtt.update(0.1)
        assert rtt.delivery_time == pytest.approx(0.15)

    def test_pto_formula(self):
        rtt = RttEstimator()
        rtt.update(0.1)
        assert rtt.pto(max_ack_delay=0.025) == \
            pytest.approx(0.1 + 4 * 0.05 + 0.025)


def _mk_detector():
    rtt = RttEstimator()
    return PathLossDetector(rtt)


def _pkt(pn, t, size=1000, eliciting=True):
    return SentPacket(packet_number=pn, sent_time=t, size=size,
                      ack_eliciting=eliciting, in_flight=True)


class TestLossDetection:
    def test_ack_removes_packets(self):
        det = _mk_detector()
        for pn in range(3):
            det.on_packet_sent(_pkt(pn, 0.0))
        acked, lost, _ = det.on_ack_received((AckRange(0, 2),), 0.0, 0.1)
        assert [p.packet_number for p in acked] == [0, 1, 2]
        assert lost == []
        assert det.packets_acked_total == 3

    def test_rtt_sample_from_largest(self):
        det = _mk_detector()
        det.on_packet_sent(_pkt(0, 1.0))
        _a, _l, sample = det.on_ack_received((AckRange(0, 0),), 0.0, 1.25)
        assert sample == pytest.approx(0.25)
        assert det.rtt.latest == pytest.approx(0.25)

    def test_packet_threshold_loss(self):
        """A packet PACKET_THRESHOLD behind the largest acked is lost."""
        det = _mk_detector()
        for pn in range(PACKET_THRESHOLD + 1):
            det.on_packet_sent(_pkt(pn, 0.0))
        _a, lost, _ = det.on_ack_received(
            (AckRange(PACKET_THRESHOLD, PACKET_THRESHOLD),), 0.0, 0.05)
        assert [p.packet_number for p in lost] == [0]

    def test_time_threshold_loss(self):
        det = _mk_detector()
        det.on_packet_sent(_pkt(0, 0.0))
        det.on_packet_sent(_pkt(1, 1.0))
        # Ack pn 1 long after pn 0 was sent.
        _a, lost, _ = det.on_ack_received((AckRange(1, 1),), 0.0, 1.1)
        assert [p.packet_number for p in lost] == [0]

    def test_reordering_within_threshold_not_lost(self):
        det = _mk_detector()
        det.on_packet_sent(_pkt(0, 0.0))
        det.on_packet_sent(_pkt(1, 0.0005))
        # Ack pn1 just after pn0: pn0 is only 1 behind and younger than
        # the 9/8 * max(rtt, granularity) time threshold.
        _a, lost, _ = det.on_ack_received((AckRange(1, 1),), 0.0, 0.001)
        assert lost == []
        assert det.loss_time is not None  # armed for later

    def test_loss_timer_fires(self):
        det = _mk_detector()
        det.on_packet_sent(_pkt(0, 0.0))
        det.on_packet_sent(_pkt(1, 0.0005))
        det.on_ack_received((AckRange(1, 1),), 0.0, 0.001)
        lost = det.on_loss_timer(10.0)
        assert [p.packet_number for p in lost] == [0]

    def test_spurious_loss_detected(self):
        det = _mk_detector()
        for pn in range(5):
            det.on_packet_sent(_pkt(pn, 0.0))
        det.on_ack_received((AckRange(4, 4),), 0.0, 0.05)
        assert det.packets_lost_total >= 1
        # Late ack for the "lost" packet 0.
        det.on_ack_received((AckRange(0, 0),), 0.0, 0.06)
        assert det.spurious_losses == 1

    def test_pto_deadline_uses_oldest_eliciting(self):
        det = _mk_detector()
        det.rtt.update(0.1)
        det.on_packet_sent(_pkt(0, 1.0))
        det.on_packet_sent(_pkt(1, 2.0))
        deadline = det.pto_deadline()
        assert deadline == pytest.approx(1.0 + det.rtt.pto(0.025))

    def test_pto_backoff(self):
        det = _mk_detector()
        det.rtt.update(0.1)
        det.on_packet_sent(_pkt(0, 1.0))
        d0 = det.pto_deadline()
        det.on_pto()
        assert det.pto_deadline() == pytest.approx(1.0 + (d0 - 1.0) * 2)

    def test_pto_resets_on_ack(self):
        det = _mk_detector()
        det.on_packet_sent(_pkt(0, 0.0))
        det.on_pto()
        det.on_packet_sent(_pkt(1, 0.1))
        det.on_ack_received((AckRange(1, 1),), 0.0, 0.2)
        assert det.pto_count == 0

    def test_no_deadline_without_eliciting(self):
        det = _mk_detector()
        det.on_packet_sent(_pkt(0, 0.0, eliciting=False))
        assert det.pto_deadline() is None
        assert not det.has_unacked

    def test_duplicate_pn_rejected(self):
        det = _mk_detector()
        det.on_packet_sent(_pkt(0, 0.0))
        with pytest.raises(ValueError):
            det.on_packet_sent(_pkt(0, 0.1))

    def test_bytes_in_flight(self):
        det = _mk_detector()
        det.on_packet_sent(_pkt(0, 0.0, size=500))
        det.on_packet_sent(_pkt(1, 0.0, size=700))
        assert det.bytes_in_flight == 1200


class TestNewReno:
    def test_slow_start_doubles(self):
        cc = NewRenoCc()
        start = cc.cwnd
        cc.on_packet_sent(1000, 0.0)
        cc.on_packet_acked(1000, 0.0, 0.1, 0.1)
        assert cc.cwnd == start + 1000

    def test_congestion_event_halves(self):
        cc = NewRenoCc()
        cc.cwnd = 100_000
        cc.on_packet_sent(1000, 0.0)
        cc.on_packets_lost(1000, 0.5, 1.0)
        assert cc.cwnd == pytest.approx(50_000)
        assert cc.ssthresh == pytest.approx(50_000)

    def test_recovery_suppresses_growth(self):
        cc = NewRenoCc()
        cc.on_packet_sent(1000, 0.0)
        cc.on_packet_sent(1000, 0.5)
        cc.on_packets_lost(1000, 0.0, 1.0)
        w = cc.cwnd
        # Ack of a packet sent before recovery start: no growth.
        cc.on_packet_acked(1000, 0.5, 1.1, 0.1)
        assert cc.cwnd == w

    def test_congestion_avoidance_linear(self):
        cc = NewRenoCc()
        cc.ssthresh = cc.cwnd  # force CA
        w = cc.cwnd
        cc.on_packet_sent(1000, 0.0)
        cc.on_packet_acked(1000, 0.0, 0.1, 0.1)
        assert cc.cwnd == pytest.approx(w + MAX_DATAGRAM_SIZE * 1000 / w)

    def test_minimum_window_floor(self):
        cc = NewRenoCc()
        cc.cwnd = MINIMUM_WINDOW
        cc.on_packets_lost(0, 0.5, 1.0)
        assert cc.cwnd == MINIMUM_WINDOW

    def test_only_one_reduction_per_rtt(self):
        cc = NewRenoCc()
        cc.cwnd = 100_000
        cc.on_packets_lost(1000, 0.9, 1.0)
        w = cc.cwnd
        cc.on_packets_lost(1000, 0.95, 1.05)  # sent before recovery start
        assert cc.cwnd == w

    def test_can_send_respects_window(self):
        cc = NewRenoCc()
        assert cc.can_send(1000)
        cc.bytes_in_flight = int(cc.cwnd)
        assert not cc.can_send(1000)

    def test_reset_restores_initial(self):
        cc = NewRenoCc()
        cc.cwnd = 500_000
        cc.bytes_in_flight = 100
        cc.reset()
        assert cc.cwnd == INITIAL_WINDOW
        assert cc.bytes_in_flight == 0


class TestCubic:
    def test_slow_start_growth(self):
        cc = CubicCc()
        start = cc.cwnd
        cc.on_packet_sent(1000, 0.0)
        cc.on_packet_acked(1000, 0.0, 0.1, 0.1)
        assert cc.cwnd == start + 1000

    def test_beta_reduction(self):
        cc = CubicCc()
        cc.cwnd = 100_000
        cc.on_packets_lost(1000, 0.5, 1.0)
        assert cc.cwnd == pytest.approx(70_000)

    def test_window_growth_accelerates_within_epoch(self):
        """Cubic's growth increases with time since the epoch began."""
        cc = CubicCc()
        cc.cwnd = 100_000
        cc.on_packets_lost(0, 0.5, 1.0)  # w_max = 100k, cwnd = 70k
        early = _cubic_growth(cc, at=1.5)  # also starts the epoch at 1.5
        late = _cubic_growth(cc, at=20.0)
        assert late > early

    def test_approaches_wmax_past_k(self):
        """The window climbs back toward W_max as the epoch passes K.

        Growth per ack is proportional to acked bytes, so with sparse
        acks the curve is tracked loosely; we assert most of the loss
        is recovered shortly after K.
        """
        cc = CubicCc()
        cc.cwnd = 100_000
        cc.on_packets_lost(0, 0.5, 1.0)
        t = 1.05  # past the recovery period that started at 1.0
        _cubic_growth(cc, at=t)  # starts the epoch, computes K
        k = cc._k
        while t < 1.05 + k + 1.0:
            _cubic_growth(cc, at=t)
            t += 0.05
        assert cc.cwnd >= 0.85 * 100_000
        assert cc.cwnd > 70_000

    def test_fast_convergence_lowers_wmax(self):
        cc = CubicCc()
        cc.cwnd = 100_000
        cc.on_packets_lost(0, 0.5, 1.0)
        # Second loss below previous w_max triggers fast convergence.
        cc.on_packets_lost(0, 2.0, 3.0)
        assert cc._w_max < 70_000 + 1

    def test_reset_clears_state(self):
        cc = CubicCc()
        cc.cwnd = 100_000
        cc.on_packets_lost(0, 0.5, 1.0)
        cc.reset()
        assert cc.cwnd == INITIAL_WINDOW
        assert cc._w_max == 0.0


def _cubic_growth(cc, at):
    """Total growth from acks at time ``at`` (outside slow start)."""
    before = cc.cwnd
    cc.on_packet_sent(1000, at)
    cc.on_packet_acked(1000, at, at, 0.05)
    return cc.cwnd - before


class TestLiaCoupled:
    def test_coupled_increase_less_aggressive(self):
        """LIA's coupled increase never beats the uncoupled one."""
        coord = LiaCoordinator()
        a = LiaCoupledCc(coord)
        b = LiaCoupledCc(coord)
        a.ssthresh = a.cwnd  # CA mode
        b.ssthresh = b.cwnd
        solo = NewRenoCc()
        solo.ssthresh = solo.cwnd
        a.last_rtt = b.last_rtt = 0.1
        before = a.cwnd
        a.on_packet_sent(1000, 0.0)
        a.on_packet_acked(1000, 0.0, 0.1, 0.1)
        growth_coupled = a.cwnd - before
        before = solo.cwnd
        solo.on_packet_sent(1000, 0.0)
        solo.on_packet_acked(1000, 0.0, 0.1, 0.1)
        growth_solo = solo.cwnd - before
        assert growth_coupled <= growth_solo + 1e-9

    def test_slow_start_uncoupled(self):
        coord = LiaCoordinator()
        a = LiaCoupledCc(coord)
        start = a.cwnd
        a.on_packet_sent(1000, 0.0)
        a.on_packet_acked(1000, 0.0, 0.1, 0.1)
        assert a.cwnd == start + 1000

    def test_alpha_positive(self):
        coord = LiaCoordinator()
        a = LiaCoupledCc(coord)
        b = LiaCoupledCc(coord)
        a.last_rtt, b.last_rtt = 0.02, 0.2
        assert coord.alpha() > 0


class TestCcFactory:
    def test_make_cc_by_name(self):
        assert isinstance(make_cc("cubic"), CubicCc)
        assert isinstance(make_cc("newreno"), NewRenoCc)
        assert isinstance(make_cc("lia"), LiaCoupledCc)
        assert isinstance(make_cc("bbr"), BbrCc)
        assert isinstance(make_cc("mpbbr"), MpBbrCc)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_cc("vegas")
