"""Checkpointed campaigns: serialization exactness, resume identity.

Two contracts stack here.  First, the sink serialization layer
(``DistSketch``/``SchemeSink``/``MetricSink`` ``to_dict``/``from_dict``)
must round-trip through JSON **digest-exactly** -- Python floats
survive ``json`` via shortest-repr, so bit-identity is achievable and
therefore required.  Second, :class:`FleetCampaign` built on it: a
campaign killed at any day boundary and resumed must merge to a digest
identical to an uninterrupted run, refuse foreign or tampered
checkpoints, and report resumed/executed days honestly.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.experiments.campaign import (CHECKPOINT_VERSION, CampaignError,
                                        DayRecord, FleetCampaign)
from repro.experiments.fleet import (ABPopulationDriver, FleetConfig,
                                     run_fleet_driver)
from repro.experiments.report import campaign_day_section
from repro.metrics import MetricSink
from repro.metrics.sketch import DistSketch


def _cfg(users: int = 4, days: int = 3, seed: int = 7) -> FleetConfig:
    return FleetConfig(users=users, days=days, seed=seed)


def _populated_sink(users: int = 4, seed: int = 7) -> MetricSink:
    cfg = FleetConfig(users=users, seed=seed)
    return run_fleet_driver(ABPopulationDriver(cfg), workers=1).sink


class TestSerializationRoundTrips:
    def test_dist_sketch_empty_exact_and_bucketed(self):
        for values in ([], [0.5, 1.5, 0.0, -2.0],
                       [float(i) * 1.7 for i in range(200)]):
            sketch = DistSketch()
            for v in values:
                sketch.add(v)
            state = json.loads(json.dumps(sketch.to_dict()))
            clone = DistSketch.from_dict(state)
            assert clone.digest() == sketch.digest()
            assert clone.count == sketch.count

    def test_metric_sink_round_trip_is_digest_exact(self):
        sink = _populated_sink()
        sink.scheme("sp").observe_failure("TimeoutError")
        state = json.loads(json.dumps(sink.to_dict()))
        clone = MetricSink.from_dict(state)
        assert clone.digest() == sink.digest()
        assert clone.sessions == sink.sessions
        assert clone.scheme("sp").failures == sink.scheme("sp").failures

    def test_round_tripped_sink_still_merges(self):
        # A rehydrated sink must be a first-class participant in the
        # order-independent merge, not a read-only snapshot.
        a, b = _populated_sink(seed=1), _populated_sink(seed=2)
        # snapshot first: merge() adopts scheme sinks by reference, so
        # the direct merge below mutates a's schemes in place
        thawed = MetricSink.from_dict(
            json.loads(json.dumps(a.to_dict())))
        direct = MetricSink().merge(a).merge(b).digest()
        assert thawed.merge(b).digest() == direct

    def test_day_record_round_trip(self):
        rec = DayRecord(day=3, sessions=8, failed=1, retries=2,
                        abandoned_shards=0, abandoned_tasks=0, shards=4,
                        seconds=1.5, digest="abc",
                        schemes={"sp": {"sessions": 4}})
        assert DayRecord.from_dict(
            json.loads(json.dumps(rec.to_dict()))) == rec


class TestCampaignIdentity:
    def test_campaign_digest_matches_uninterrupted_fleet(self):
        cfg = _cfg()
        ref = run_fleet_driver(ABPopulationDriver(cfg), workers=1)
        result = FleetCampaign(cfg).run()
        assert result.completed
        assert result.digest == ref.sink.digest()
        assert result.tasks == ref.result.tasks
        assert [r.day for r in result.days] == [1, 2, 3]

    def test_kill_and_resume_digest_identical(self, tmp_path):
        cfg = _cfg()
        ref = run_fleet_driver(ABPopulationDriver(cfg), workers=1)
        partial = FleetCampaign(cfg, checkpoint_dir=str(tmp_path)).run(
            max_days=1)
        assert not partial.completed
        assert partial.executed_days == 1
        # a fresh FleetCampaign instance: nothing carried in memory
        resumed = FleetCampaign(cfg, checkpoint_dir=str(tmp_path)).run(
            resume=True)
        assert resumed.completed
        assert resumed.resumed_days == 1
        assert resumed.executed_days == 2
        assert resumed.digest == ref.sink.digest()

    def test_resume_of_complete_campaign_executes_nothing(self, tmp_path):
        cfg = _cfg(days=2)
        done = FleetCampaign(cfg, checkpoint_dir=str(tmp_path)).run()
        again = FleetCampaign(cfg, checkpoint_dir=str(tmp_path)).run(
            resume=True)
        assert again.executed_days == 0
        assert again.resumed_days == 2
        assert again.digest == done.digest

    def test_day_ledger_carries_per_scheme_series(self):
        result = FleetCampaign(_cfg(days=2)).run()
        for rec in result.days:
            assert set(rec.schemes) == {"sp", "xlink"}
            assert rec.digest  # cumulative digest recorded per day
        section = campaign_day_section(result)
        assert "day-over-day" in section.title
        assert "| 1 |" in section.body and "| 2 |" in section.body


class TestCheckpointSafety:
    def test_refuses_to_clobber_without_resume(self, tmp_path):
        campaign = FleetCampaign(_cfg(days=2),
                                 checkpoint_dir=str(tmp_path))
        campaign.run(max_days=1)
        with pytest.raises(CampaignError, match="resume"):
            campaign.run()

    def test_refuses_foreign_fingerprint(self, tmp_path):
        FleetCampaign(_cfg(seed=7), checkpoint_dir=str(tmp_path)).run(
            max_days=1)
        with pytest.raises(CampaignError, match="fingerprint"):
            FleetCampaign(_cfg(seed=8),
                          checkpoint_dir=str(tmp_path)).run(resume=True)

    def test_execution_knobs_do_not_change_fingerprint(self):
        cfg = _cfg()
        a = FleetCampaign(cfg, workers=1, shard_size=2)
        b = FleetCampaign(cfg, workers=4, shard_size=64, max_retries=9)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != FleetCampaign(
            _cfg(users=5)).fingerprint()

    def test_detects_tampered_sink(self, tmp_path):
        campaign = FleetCampaign(_cfg(days=2),
                                 checkpoint_dir=str(tmp_path))
        campaign.run(max_days=1)
        with open(campaign.checkpoint_path) as f:
            state = json.load(f)
        state["sink"]["schemes"]["sp"]["sessions"] += 1
        with open(campaign.checkpoint_path, "w") as f:
            json.dump(state, f)
        with pytest.raises(CampaignError, match="digest"):
            campaign.run(resume=True)

    def test_rejects_version_skew_and_garbage(self, tmp_path):
        campaign = FleetCampaign(_cfg(days=2),
                                 checkpoint_dir=str(tmp_path))
        campaign.run(max_days=1)
        with open(campaign.checkpoint_path) as f:
            state = json.load(f)
        state["version"] = CHECKPOINT_VERSION + 1
        with open(campaign.checkpoint_path, "w") as f:
            json.dump(state, f)
        with pytest.raises(CampaignError, match="version"):
            campaign.run(resume=True)
        with open(campaign.checkpoint_path, "w") as f:
            f.write("{not json")
        with pytest.raises(CampaignError, match="unreadable"):
            campaign.run(resume=True)

    def test_checkpoint_replaced_atomically(self, tmp_path):
        campaign = FleetCampaign(_cfg(days=2),
                                 checkpoint_dir=str(tmp_path))
        campaign.run()
        assert os.path.exists(campaign.checkpoint_path)
        assert not os.path.exists(campaign.checkpoint_path + ".tmp")


class TestCli:
    def test_fleet_campaign_and_resume(self, tmp_path, capsys):
        base = ["fleet", "--users", "2", "--days", "2", "--workers", "1",
                "--permutation-rounds", "0",
                "--checkpoint-dir", str(tmp_path)]
        assert main(base + ["--max-days", "1"]) == 0
        out = capsys.readouterr().out
        assert "campaign: partial days=1/2" in out
        assert main(base + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "campaign: complete days=2/2" in out
        assert "digest=" in out

    def test_fleet_refuses_clobber_with_exit_2(self, tmp_path, capsys):
        base = ["fleet", "--users", "2", "--days", "1", "--workers", "1",
                "--permutation-rounds", "0",
                "--checkpoint-dir", str(tmp_path)]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base) == 2
        assert "resume" in capsys.readouterr().err

    def test_resume_requires_checkpoint_dir(self, capsys):
        rc = main(["fleet", "--users", "2", "--resume"])
        assert rc == 2
        assert "checkpoint-dir" in capsys.readouterr().err


class TestCheckpointBench:
    def test_bench_fleet_checkpoint_shape(self):
        from repro.perfbench import bench_fleet_checkpoint
        result = bench_fleet_checkpoint(users=2, days=2)
        assert result["completed"]
        assert result["checkpoint_bytes"] > 0
        assert 0.0 <= result["checkpoint_overhead_percent"] < 100.0
        assert result["sessions"] == 4
