"""Tests for trace generation, file format, and radio profiles."""

import math
import random

import pytest

from repro.netem.packet import MTU
from repro.traces import (CROSS_ISP_DELAY_INCREASE, RADIO_PROFILES, RadioType,
                          campus_walk_wifi_trace, constant_rate_trace,
                          cross_isp_delay, extreme_mobility_trace_pairs,
                          high_speed_rail_cellular_trace,
                          load_mahimahi_trace, sample_path_delay,
                          save_mahimahi_trace, stable_lte_trace,
                          subway_cellular_trace, trace_from_rate_series,
                          trace_mean_throughput_bps)


class TestFormat:
    def test_roundtrip(self, tmp_path):
        trace = [0, 5, 5, 17, 200]
        path = tmp_path / "t.trace"
        save_mahimahi_trace(trace, path)
        assert load_mahimahi_trace(path) == trace

    def test_load_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("# comment\n1\n\n2\n")
        assert load_mahimahi_trace(path) == [1, 2]

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("abc\n")
        with pytest.raises(ValueError):
            load_mahimahi_trace(path)

    def test_rate_series_conversion_mean(self):
        # 12 Mbps for 10 s => 12e6/8/1500 = 1000 packets/s.
        trace = trace_from_rate_series([12e6] * 100, interval_s=0.1)
        assert len(trace) == pytest.approx(1000 * 10, rel=0.01)

    def test_rate_series_zero_rate_gap(self):
        trace = trace_from_rate_series([12e6, 0.0, 12e6], interval_s=0.1)
        in_gap = [t for t in trace if 100 <= t < 200]
        assert len(in_gap) <= 1  # at most leftover credit

    def test_rate_series_rejects_negative(self):
        with pytest.raises(ValueError):
            trace_from_rate_series([-1.0])

    def test_mean_throughput(self):
        trace = constant_rate_trace(12e6, 10.0)
        measured = trace_mean_throughput_bps(trace)
        assert measured == pytest.approx(12e6, rel=0.02)

    def test_mean_throughput_empty(self):
        assert trace_mean_throughput_bps([]) == 0.0


class TestSyntheticTraces:
    def test_campus_wifi_has_outage(self):
        trace = campus_walk_wifi_trace(duration_s=3.0, seed=1)
        in_outage = [t for t in trace if 1700 <= t < 2200]
        before = [t for t in trace if 1200 <= t < 1700]
        # Near-zero throughput in the outage window (Fig. 1a).
        assert len(in_outage) < len(before) / 5

    def test_stable_lte_is_stable(self):
        trace = stable_lte_trace(duration_s=3.0, seed=2, mean_mbps=24.0)
        # Per-500ms window counts should vary little.
        counts = []
        for w in range(6):
            counts.append(len([t for t in trace
                               if w * 500 <= t < (w + 1) * 500]))
        assert max(counts) <= 1.5 * min(counts)

    def test_subway_trace_has_deep_fades(self):
        trace = subway_cellular_trace(duration_s=30.0, seed=10)
        counts = [len([t for t in trace if w * 1000 <= t < (w + 1) * 1000])
                  for w in range(30)]
        assert min(counts) < max(counts) / 4

    def test_traces_are_deterministic(self):
        assert campus_walk_wifi_trace(seed=7) == campus_walk_wifi_trace(seed=7)
        assert high_speed_rail_cellular_trace(seed=3) == \
            high_speed_rail_cellular_trace(seed=3)

    def test_different_seeds_differ(self):
        assert campus_walk_wifi_trace(seed=1) != campus_walk_wifi_trace(seed=2)

    def test_mobility_catalog_has_ten_pairs(self):
        pairs = extreme_mobility_trace_pairs(duration_s=5.0)
        assert len(pairs) == 10
        assert {p["environment"] for p in pairs} == \
            {"subway", "high_speed_rail"}
        for p in pairs:
            assert len(p["cellular_ms"]) > 0
            assert len(p["wifi_ms"]) > 0


class TestRadioProfiles:
    def test_lte_median_ratio_to_wifi(self):
        """Sec. 3.2: median LTE path delay is 2.7x Wi-Fi."""
        lte = RADIO_PROFILES[RadioType.LTE].median_rtt_s
        wifi = RADIO_PROFILES[RadioType.WIFI].median_rtt_s
        assert lte / wifi == pytest.approx(2.7, rel=0.05)

    def test_lte_median_ratio_to_5g_sa(self):
        """Sec. 3.2: median LTE path delay is 5.5x 5G SA."""
        lte = RADIO_PROFILES[RadioType.LTE].median_rtt_s
        sa = RADIO_PROFILES[RadioType.NR_SA].median_rtt_s
        assert lte / sa == pytest.approx(5.5, rel=0.05)

    def test_lte_p90_ratio_to_wifi(self):
        """Sec. 3.2: 90th percentile LTE delay is 3.3x Wi-Fi."""
        lte = RADIO_PROFILES[RadioType.LTE].p90_rtt_s
        wifi = RADIO_PROFILES[RadioType.WIFI].p90_rtt_s
        assert lte / wifi == pytest.approx(3.3, rel=0.05)

    def test_sampled_medians_track_profile(self):
        rng = random.Random(0)
        profile = RADIO_PROFILES[RadioType.LTE]
        samples = sorted(profile.sample_rtt(rng) for _ in range(4000))
        median = samples[len(samples) // 2]
        assert median == pytest.approx(profile.median_rtt_s, rel=0.1)

    def test_sampled_p90_tracks_profile(self):
        rng = random.Random(0)
        profile = RADIO_PROFILES[RadioType.LTE]
        samples = sorted(profile.sample_rtt(rng) for _ in range(4000))
        p90 = samples[int(len(samples) * 0.9)]
        assert p90 == pytest.approx(profile.p90_rtt_s, rel=0.15)

    def test_cross_isp_matrix_matches_table4(self):
        assert CROSS_ISP_DELAY_INCREASE["B"]["C"] == 0.54
        assert CROSS_ISP_DELAY_INCREASE["A"]["A"] == 0.0
        # The worst case in Table 4 is 54%, noted in the paper as ~50%.
        worst = max(v for row in CROSS_ISP_DELAY_INCREASE.values()
                    for v in row.values())
        assert worst == 0.54

    def test_cross_isp_delay_applies_factor(self):
        assert cross_isp_delay(0.1, "B", "C") == pytest.approx(0.154)
        assert cross_isp_delay(0.1, "A", "A") == pytest.approx(0.1)

    def test_cross_isp_unknown_pair(self):
        with pytest.raises(KeyError):
            cross_isp_delay(0.1, "A", "Z")

    def test_sample_path_delay_is_half_rtt(self):
        rng1 = random.Random(5)
        rng2 = random.Random(5)
        rtt = RADIO_PROFILES[RadioType.WIFI].sample_rtt(rng1)
        delay = sample_path_delay(RadioType.WIFI, rng2)
        assert delay == pytest.approx(rtt / 2)

    def test_preference_order(self):
        """Sec. 5.3: 5G SA > 5G NSA > WiFi > LTE."""
        prefs = {r: p.preference for r, p in RADIO_PROFILES.items()}
        assert prefs[RadioType.NR_SA] > prefs[RadioType.NR_NSA] > \
            prefs[RadioType.WIFI] > prefs[RadioType.LTE]
