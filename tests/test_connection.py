"""Integration tests for the multipath QUIC connection over the emulator."""

import pytest

from repro.core import (MinRttScheduler, ReinjectionMode, SinglePathScheduler,
                        ThresholdConfig, XlinkScheduler)
from repro.netem import Datagram, MultipathNetwork, OutageSchedule
from repro.quic.connection import Connection, ConnectionConfig
from repro.quic.frames import PathStatus
from repro.quic.path import PathState
from repro.sim import EventLoop


def build_pair(loop, net, client_scheduler=None, server_scheduler=None,
               client_mp=True, server_mp=True, name="test",
               ack_policy="fastest", cc="cubic"):
    client = Connection(
        loop, ConnectionConfig(is_client=True, enable_multipath=client_mp,
                               ack_path_policy=ack_policy, cc_algorithm=cc),
        transmit=lambda pid, d: net.client.send(
            Datagram(payload=d, path_id=pid)),
        scheduler=client_scheduler or MinRttScheduler(),
        connection_name=name)
    server = Connection(
        loop, ConnectionConfig(is_client=False, enable_multipath=server_mp,
                               ack_path_policy=ack_policy, cc_algorithm=cc),
        transmit=lambda pid, d: net.server.send(
            Datagram(payload=d, path_id=pid)),
        scheduler=server_scheduler or MinRttScheduler(),
        connection_name=name)
    net.client.on_receive(lambda d: client.datagram_received(d.payload,
                                                             d.path_id))
    net.server.on_receive(lambda d: server.datagram_received(d.payload,
                                                             d.path_id))
    client.add_local_path(0, 0)
    server.add_local_path(0, 0)
    return client, server


def two_path_net(loop, rate1=20e6, rate2=20e6, delay1=0.02, delay2=0.05,
                 **kw):
    net = MultipathNetwork(loop)
    net.add_simple_path(0, rate1, delay1)
    net.add_simple_path(1, rate2, delay2, **kw)
    return net


class TestHandshake:
    def test_establishes_in_one_rtt(self):
        loop = EventLoop()
        net = two_path_net(loop)
        client, server = build_pair(loop, net)
        client.connect()
        loop.run(until=1.0)
        assert client.established and server.established
        # 1 RTT on the 20 ms one-way path = 40 ms.
        assert client.stats.handshake_completed_at == pytest.approx(
            0.04, abs=0.01)

    def test_multipath_negotiated_when_both_enable(self):
        loop = EventLoop()
        net = two_path_net(loop)
        client, server = build_pair(loop, net)
        client.connect()
        loop.run(until=1.0)
        assert client.multipath_negotiated
        assert server.multipath_negotiated

    def test_fallback_when_server_lacks_multipath(self):
        """Fig. 9: no enable_multipath from the server -> single path."""
        loop = EventLoop()
        net = two_path_net(loop)
        client, server = build_pair(loop, net, server_mp=False)
        client.connect()
        loop.run(until=1.0)
        assert client.established
        assert not client.multipath_negotiated
        with pytest.raises(Exception):
            client.open_path(1, 1)

    def test_handshake_retransmitted_on_loss(self):
        loop = EventLoop()
        net = MultipathNetwork(loop)
        # Total outage for the first 1.5 s eats the first handshake.
        net.add_simple_path(0, 20e6, 0.02,
                            outages=OutageSchedule(windows=[(0.0, 1.5)]))
        client, server = build_pair(loop, net)
        client.connect()
        loop.run(until=5.0)
        assert client.established

    def test_peer_cids_registered(self):
        loop = EventLoop()
        net = two_path_net(loop)
        client, server = build_pair(loop, net)
        client.connect()
        loop.run(until=1.0)
        # extra_cids=4 plus the handshake SCID (seq 0).
        assert set(client.cids.peer_cids) == {0, 1, 2, 3, 4}
        assert set(server.cids.peer_cids) == {0, 1, 2, 3, 4}


class TestPathLifecycle:
    def _established(self, loop, net):
        client, server = build_pair(loop, net)
        client.connect()
        loop.run(until=0.5)
        return client, server

    def test_open_path_validates(self):
        loop = EventLoop()
        net = two_path_net(loop)
        client, server = self._established(loop, net)
        path = client.open_path(1, 1)
        assert path.state is PathState.VALIDATING
        loop.run(until=1.0)
        assert path.state is PathState.ACTIVE
        assert 1 in server.paths

    def test_path_ids_are_cid_sequence_numbers(self):
        loop = EventLoop()
        net = two_path_net(loop)
        client, server = self._established(loop, net)
        client.open_path(1, 1)
        loop.run(until=1.0)
        path = client.paths[1]
        assert path.remote_cid.sequence_number == 1
        assert path.local_cid.sequence_number == 1

    def test_close_path_propagates_abandon(self):
        loop = EventLoop()
        net = two_path_net(loop)
        client, server = self._established(loop, net)
        client.open_path(1, 1)
        loop.run(until=1.0)
        client.close_path(1)
        loop.run(until=2.0)
        assert client.paths[1].state is PathState.ABANDONED
        assert server.paths[1].state is PathState.ABANDONED

    def test_migration_resets_cwnd(self):
        loop = EventLoop()
        net = two_path_net(loop)
        client, server = self._established(loop, net)
        client.open_path(1, 1)
        loop.run(until=1.0)
        client.paths[1].cc.cwnd = 500_000
        client.migrate(1)
        assert client.paths[1].cc.cwnd < 500_000
        assert client.paths[0].state is PathState.STANDBY
        assert client.paths[1].state is PathState.ACTIVE


def transfer(loop, net, server_scheduler, size=200_000, open_second=True,
             until=30.0, client_qoe=None, ack_policy="fastest"):
    """Handshake, open paths, transfer ``size`` bytes server->client."""
    client, server = build_pair(loop, net,
                                server_scheduler=server_scheduler,
                                ack_policy=ack_policy)
    if client_qoe is not None:
        client.qoe_provider = client_qoe
    state = {"done_at": None}

    def on_established():
        if open_second and client.multipath_negotiated:
            client.open_path(1, 1)
        sid = client.create_stream()
        client.stream_send(sid, b"GET", fin=True)

    def on_server_stream(sid):
        stream = server.recv_streams[sid]
        if stream.is_complete and sid not in getattr(
                server, "_served", set()):
            served = getattr(server, "_served", set())
            served.add(sid)
            server._served = served
            server.stream_read(sid)
            server.stream_send(sid, b"D" * size, fin=True)

    def on_client_complete(sid):
        state["done_at"] = loop.now

    client.on_established = on_established
    server.on_stream_data = on_server_stream
    client.on_stream_complete = on_client_complete
    client.connect()
    while state["done_at"] is None and loop.now < until:
        if not loop.step():
            break
    return client, server, state["done_at"]


class TestDataTransfer:
    def test_single_path_transfer_completes(self):
        loop = EventLoop()
        net = MultipathNetwork(loop)
        net.add_simple_path(0, 10e6, 0.02)
        client, server, done = transfer(loop, net, SinglePathScheduler(),
                                        open_second=False)
        assert done is not None

    def test_multipath_aggregates_bandwidth(self):
        """Two slow paths beat one of them alone."""
        size = 1_500_000
        loop1 = EventLoop()
        net1 = MultipathNetwork(loop1)
        net1.add_simple_path(0, 4e6, 0.02)
        _c, _s, single = transfer(loop1, net1, SinglePathScheduler(),
                                  size=size, open_second=False)
        loop2 = EventLoop()
        net2 = two_path_net(loop2, rate1=4e6, rate2=4e6, delay2=0.03)
        _c, _s, multi = transfer(loop2, net2, MinRttScheduler(), size=size)
        assert single is not None and multi is not None
        assert multi < single * 0.85

    def test_both_paths_carry_data(self):
        loop = EventLoop()
        net = two_path_net(loop, rate1=4e6, rate2=4e6)
        client, server, done = transfer(loop, net, MinRttScheduler(),
                                        size=1_000_000)
        assert done is not None
        assert server.paths[0].bytes_sent > 10_000
        assert server.paths[1].bytes_sent > 10_000

    def test_loss_recovered(self):
        loop = EventLoop()
        net = MultipathNetwork(loop)
        net.add_simple_path(0, 10e6, 0.02, loss_rate=0.05)
        client, server, done = transfer(loop, net, SinglePathScheduler(),
                                        size=500_000, open_second=False)
        assert done is not None
        assert server.stats.stream_bytes_rtx > 0

    def test_transfer_through_outage(self):
        loop = EventLoop()
        net = MultipathNetwork(loop)
        net.add_simple_path(
            0, 10e6, 0.02,
            outages=OutageSchedule(windows=[(0.2, 0.8)]))
        client, server, done = transfer(loop, net, SinglePathScheduler(),
                                        size=500_000, open_second=False,
                                        until=30.0)
        assert done is not None

    def test_flow_control_limits_respected(self):
        loop = EventLoop()
        net = two_path_net(loop)
        client, server, done = transfer(loop, net, MinRttScheduler(),
                                        size=3_000_000)
        assert done is not None
        # Client never sees more connection bytes than it advertised.
        assert client.fc_recv.limit >= client._total_recv_offset

    def test_duplicate_datagram_ignored(self):
        loop = EventLoop()
        net = two_path_net(loop)
        client, server = build_pair(loop, net)
        seen = []
        orig = client.datagram_received

        def duplicating(payload, net_path_id=-1):
            seen.append(payload)
            orig(payload, net_path_id)
            orig(payload, net_path_id)  # replay every datagram

        net.client.on_receive(
            lambda d: duplicating(d.payload, d.path_id))
        client.connect()
        loop.run(until=0.5)
        assert client.established  # no crash, duplicates dropped


class TestXlinkReinjection:
    def test_reinjection_rescues_outage(self):
        """MP-HoL scenario: path 0 blacks out mid-transfer; XLINK's
        re-injection recovers the stuck bytes via path 1 much faster
        than vanilla min-RTT waiting for PTO."""
        size = 800_000

        def run(sched):
            loop = EventLoop()
            net = MultipathNetwork(loop)
            net.add_simple_path(
                0, 8e6, 0.02,
                outages=OutageSchedule(windows=[(0.15, 5.0)]))
            net.add_simple_path(1, 8e6, 0.04)
            _c, s, done = transfer(loop, net, sched, size=size, until=30.0)
            return done, s

        vanilla_done, _ = run(MinRttScheduler())
        xlink_done, xlink_server = run(XlinkScheduler(
            mode=ReinjectionMode.STREAM_PRIORITY,
            thresholds=ThresholdConfig(always_on=True)))
        assert xlink_done is not None
        assert xlink_server.stats.stream_bytes_reinjected > 0
        assert vanilla_done is None or xlink_done < vanilla_done

    def test_qoe_gate_suppresses_reinjection_when_buffer_high(self):
        loop = EventLoop()
        net = two_path_net(loop, rate1=8e6, rate2=8e6)
        sched = XlinkScheduler(thresholds=ThresholdConfig(0.5, 2.0))
        from repro.quic.frames import QoeSignals
        rich = QoeSignals(cached_bytes=10_000_000, cached_frames=10_000,
                          bps=2_000_000, fps=25)
        _c, server, done = transfer(loop, net, sched, size=500_000,
                                    client_qoe=lambda: rich)
        assert done is not None
        assert server.stats.stream_bytes_reinjected == 0
        assert sched.reinjections_suppressed > 0

    def test_reinjected_bytes_counted_separately(self):
        loop = EventLoop()
        net = MultipathNetwork(loop)
        net.add_simple_path(0, 6e6, 0.02,
                            outages=OutageSchedule(windows=[(0.1, 3.0)]))
        net.add_simple_path(1, 6e6, 0.05)
        sched = XlinkScheduler(thresholds=ThresholdConfig(always_on=True))
        _c, server, done = transfer(loop, net, sched, size=400_000)
        assert server.stats.stream_bytes_reinjected > 0
        assert server.stats.stream_bytes_new == 400_000


class TestAckPathPolicy:
    def _rtts(self, policy):
        loop = EventLoop()
        net = two_path_net(loop, rate1=8e6, rate2=8e6,
                           delay1=0.01, delay2=0.08)
        client, server, done = transfer(loop, net, MinRttScheduler(),
                                        size=600_000, ack_policy=policy)
        assert done is not None
        return done, server

    def test_fastest_beats_original_with_asymmetric_paths(self):
        """Fig. 8: ACK_MP on the min-RTT path speeds up the transfer."""
        fastest_done, _ = self._rtts("fastest")
        original_done, _ = self._rtts("original")
        assert fastest_done <= original_done * 1.05

    def test_original_policy_measures_true_path_rtt(self):
        _done, server = self._rtts("original")
        # Path 1 one-way delay 80 ms -> RTT >= 160 ms on the original path.
        assert server.paths[1].rtt.smoothed >= 0.14


class TestConnectionClose:
    def test_close_notifies_peer(self):
        loop = EventLoop()
        net = two_path_net(loop)
        client, server = build_pair(loop, net)
        client.connect()
        loop.run(until=0.5)
        client.close()
        loop.run(until=1.0)
        assert client.closed and server.closed

    def test_no_sends_after_close(self):
        loop = EventLoop()
        net = two_path_net(loop)
        client, server = build_pair(loop, net)
        client.connect()
        loop.run(until=0.5)
        client.close()
        count = client.stats.packets_sent
        client.stream_send(client.create_stream(), b"late", fin=True)
        loop.run(until=1.0)
        assert client.stats.packets_sent == count
