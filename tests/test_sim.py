"""Tests for the discrete-event engine."""

import pytest

from repro.sim import Clock, EventLoop, SimulationError, make_rng
from repro.sim.rng import derive_seed


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(5.0).now == 5.0

    def test_cannot_go_backwards(self):
        clock = Clock(10.0)
        with pytest.raises(ValueError):
            clock._advance_to(9.0)


class TestEventLoop:
    def test_runs_events_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule_at(2.0, lambda: order.append("b"))
        loop.schedule_at(1.0, lambda: order.append("a"))
        loop.schedule_at(3.0, lambda: order.append("c"))
        loop.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_insertion_order(self):
        loop = EventLoop()
        order = []
        for name in "abcde":
            loop.schedule_at(1.0, lambda n=name: order.append(n))
        loop.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(1.5, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [1.5]
        assert loop.now == 1.5

    def test_schedule_after_relative(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(1.0, lambda: loop.schedule_after(
            0.5, lambda: seen.append(loop.now)))
        loop.run()
        assert seen == [1.5]

    def test_cannot_schedule_in_past(self):
        loop = EventLoop()
        loop.schedule_at(1.0, lambda: None)
        loop.run()
        with pytest.raises(SimulationError):
            loop.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.schedule_after(-1.0, lambda: None)

    def test_cancelled_event_skipped(self):
        loop = EventLoop()
        seen = []
        event = loop.schedule_at(1.0, lambda: seen.append("x"))
        event.cancel()
        loop.run()
        assert seen == []

    def test_run_until_stops_clock(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(1.0, lambda: seen.append(1))
        loop.schedule_at(5.0, lambda: seen.append(5))
        loop.run(until=2.0)
        assert seen == [1]
        assert loop.now == 2.0

    def test_run_until_allows_resume(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(1.0, lambda: seen.append(1))
        loop.schedule_at(5.0, lambda: seen.append(5))
        loop.run(until=2.0)
        loop.run()
        assert seen == [1, 5]

    def test_events_scheduled_during_run_execute(self):
        loop = EventLoop()
        seen = []

        def cascade(depth):
            seen.append(depth)
            if depth < 3:
                loop.schedule_after(1.0, lambda: cascade(depth + 1))

        loop.schedule_at(0.0, lambda: cascade(0))
        loop.run()
        assert seen == [0, 1, 2, 3]

    def test_step_returns_false_when_empty(self):
        assert EventLoop().step() is False

    def test_call_soon_runs_at_current_time(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(1.0, lambda: loop.call_soon(
            lambda: seen.append(loop.now)))
        loop.run()
        assert seen == [1.0]

    def test_peek_time_skips_cancelled(self):
        loop = EventLoop()
        ev = loop.schedule_at(1.0, lambda: None)
        loop.schedule_at(2.0, lambda: None)
        ev.cancel()
        assert loop.peek_time() == 2.0

    def test_max_events_guard(self):
        loop = EventLoop()

        def forever():
            loop.schedule_after(0.001, forever)

        loop.schedule_at(0.0, forever)
        with pytest.raises(SimulationError):
            loop.run(max_events=100)

    def test_max_events_guard_counts_exactly(self):
        """The guard allows exactly max_events executions (no off-by-one)."""
        loop = EventLoop()

        def forever():
            loop.schedule_after(0.001, forever)

        loop.schedule_at(0.0, forever)
        with pytest.raises(SimulationError):
            loop.run(max_events=100)
        assert loop.events_run == 100

    def test_max_events_exact_queue_drains_cleanly(self):
        """A queue that drains at the limit must not raise."""
        loop = EventLoop()
        seen = []
        for i in range(5):
            loop.schedule_at(float(i), lambda i=i: seen.append(i))
        loop.run(max_events=5)
        assert seen == [0, 1, 2, 3, 4]


class TestEventLoopEdgeCases:
    def test_event_scheduled_exactly_at_until_runs(self):
        """run(until=t) executes events at exactly t (only later ones wait)."""
        loop = EventLoop()
        seen = []
        loop.schedule_at(2.0, lambda: seen.append("at-until"))
        loop.schedule_at(2.0 + 1e-9, lambda: seen.append("after-until"))
        loop.run(until=2.0)
        assert seen == ["at-until"]
        assert loop.now == 2.0

    def test_cancel_head_event(self):
        """Cancelling the current heap head must not disturb the rest."""
        loop = EventLoop()
        seen = []
        head = loop.schedule_at(1.0, lambda: seen.append("head"))
        loop.schedule_at(2.0, lambda: seen.append("tail"))
        head.cancel()
        assert loop.peek_time() == 2.0
        loop.run()
        assert seen == ["tail"]

    def test_cancel_is_idempotent(self):
        loop = EventLoop()
        event = loop.schedule_at(1.0, lambda: None)
        event.cancel()
        event.cancel()  # second cancel must not double-count
        loop.schedule_at(2.0, lambda: None)
        assert loop.peek_time() == 2.0

    def test_cancel_from_within_callback(self):
        """An earlier callback may cancel a pending later event."""
        loop = EventLoop()
        seen = []
        victim = loop.schedule_at(1.0, lambda: seen.append("victim"))
        loop.schedule_at(0.5, victim.cancel)
        loop.schedule_at(1.0, lambda: seen.append("survivor"))
        loop.run()
        assert seen == ["survivor"]

    def test_call_soon_ordering_under_ties(self):
        """call_soon chains run strictly in scheduling order at one instant."""
        loop = EventLoop()
        seen = []

        def first():
            seen.append("first")
            loop.call_soon(lambda: seen.append("nested"))

        loop.call_soon(first)
        loop.call_soon(lambda: seen.append("second"))
        loop.run()
        # nested was scheduled *after* second, so it runs last
        assert seen == ["first", "second", "nested"]

    def test_non_reentrancy(self):
        loop = EventLoop()
        errors = []

        def reenter():
            try:
                loop.run()
            except SimulationError as exc:
                errors.append(str(exc))

        loop.schedule_at(1.0, reenter)
        loop.run()
        assert errors and "reentrant" in errors[0]

    def test_loop_usable_after_callback_exception(self):
        """A raising callback leaves the loop resumable (not stuck running)."""
        loop = EventLoop()

        def boom():
            raise RuntimeError("boom")

        loop.schedule_at(1.0, boom)
        loop.schedule_at(2.0, lambda: None)
        with pytest.raises(RuntimeError):
            loop.run()
        loop.run()
        assert loop.now == 2.0

    def test_heavy_cancellation_compacts_heap(self):
        """Mass cancellation must not leave a graveyard in the heap."""
        loop = EventLoop()
        events = [loop.schedule_at(1.0 + i * 0.001, lambda: None)
                  for i in range(1000)]
        for event in events[:900]:
            event.cancel()
        # compaction keeps the heap small; survivors all still fire
        assert len(loop._heap) <= 200
        loop.run()
        assert loop.events_run == 100


class TestRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42)
        b = make_rng(42)
        assert [a.random() for _ in range(5)] == \
            [b.random() for _ in range(5)]

    def test_labels_decorrelate(self):
        a = make_rng(42, "loss")
        b = make_rng(42, "workload")
        assert a.random() != b.random()

    def test_derive_seed_stable(self):
        assert derive_seed(1, "x") == derive_seed(1, "x")
        assert derive_seed(1, "x") != derive_seed(1, "y")
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_rng_from_rng_derives_child(self):
        parent = make_rng(7)
        child = make_rng(parent)
        assert child.random() != parent.random()
