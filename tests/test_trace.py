"""Tests for the qlog-style connection tracer."""

import pytest

from repro.core import MinRttScheduler, ThresholdConfig, XlinkScheduler
from repro.netem import Datagram, MultipathNetwork, OutageSchedule
from repro.quic.connection import Connection, ConnectionConfig
from repro.quic.trace import ConnectionTracer, TraceEvent
from repro.sim import EventLoop


def traced_session(server_scheduler=None, outage=False):
    """A small traced transfer; returns (tracer, client, server, loop)."""
    loop = EventLoop()
    net = MultipathNetwork(loop)
    net.add_simple_path(
        0, 8e6, 0.02,
        outages=OutageSchedule(windows=[(0.15, 3.0)]) if outage else None)
    net.add_simple_path(1, 8e6, 0.05)
    client = Connection(loop, ConnectionConfig(is_client=True),
                        transmit=lambda pid, d: net.client.send(
                            Datagram(payload=d, path_id=pid)),
                        scheduler=MinRttScheduler(),
                        connection_name="traced")
    server = Connection(loop, ConnectionConfig(is_client=False),
                        transmit=lambda pid, d: net.server.send(
                            Datagram(payload=d, path_id=pid)),
                        scheduler=server_scheduler or MinRttScheduler(),
                        connection_name="traced")
    net.client.on_receive(lambda d: client.datagram_received(d.payload,
                                                             d.path_id))
    net.server.on_receive(lambda d: server.datagram_received(d.payload,
                                                             d.path_id))
    client.add_local_path(0, 0)
    server.add_local_path(0, 0)

    tracer = ConnectionTracer()
    tracer.install(server)

    def on_established():
        client.open_path(1, 1)
        sid = client.create_stream()
        client.stream_send(sid, b"GET", fin=True)

    def on_server_data(sid):
        stream = server.recv_streams[sid]
        served = getattr(server, "_served", set())
        if stream.is_complete and sid not in served:
            served.add(sid)
            server._served = served
            server.stream_read(sid)
            server.stream_send(sid, b"D" * 300_000, fin=True)

    client.on_established = on_established
    server.on_stream_data = on_server_data
    client.connect()
    loop.run(until=20.0)
    return tracer, client, server, loop


class TestTracer:
    def test_records_sends_and_receives(self):
        tracer, _c, server, _l = traced_session()
        assert tracer.count("datagram_sent") > 100
        assert tracer.count("datagram_received") > 10
        assert tracer.count("datagram_sent") == server.stats.packets_sent

    def test_events_time_ordered(self):
        tracer, *_ = traced_session()
        times = [e.time for e in tracer.events]
        assert times == sorted(times)

    def test_bytes_by_path_matches_connection(self):
        tracer, _c, server, _l = traced_session()
        by_path = tracer.bytes_sent_by_path()
        for pid, path in server.paths.items():
            net_id = server.net_path_of[pid]
            assert by_path.get(net_id, 0) == path.bytes_sent

    def test_records_qoe_feedback(self):
        tracer, client, server, loop = traced_session()
        from repro.quic.frames import QoeSignals
        client.qoe_provider = lambda: QoeSignals(1, 2, 3, 4)
        sid = client.create_stream()
        client.stream_send(sid, b"GET2", fin=True)
        loop.run(until=25.0)
        feedback = tracer.filter(name="feedback_received")
        assert feedback
        assert feedback[-1].data["cached_bytes"] == 1

    def test_records_reinjections_under_outage(self):
        sched = XlinkScheduler(thresholds=ThresholdConfig(always_on=True))
        tracer, _c, server, _l = traced_session(server_scheduler=sched,
                                                outage=True)
        reinjections = tracer.filter(category="recovery",
                                     name="reinjection")
        assert reinjections
        timeline = tracer.reinjection_timeline()
        totals = [total for _t, total in timeline]
        assert totals == sorted(totals)
        # Every sent duplicate was first enqueued (some enqueued chunks
        # may be dropped unsent if their range is acked meanwhile).
        assert totals[-1] >= server.stats.stream_bytes_reinjected

    def test_filter_by_category(self):
        tracer, *_ = traced_session()
        packets = tracer.filter(category="packet")
        assert all(e.category == "packet" for e in packets)
        assert len(packets) == tracer.count("datagram_sent") + \
            tracer.count("datagram_received")

    def test_jsonl_roundtrip(self, tmp_path):
        tracer, *_ = traced_session()
        path = tmp_path / "trace.jsonl"
        tracer.save(path)
        loaded = ConnectionTracer.load_events(path)
        assert len(loaded) == len(tracer.events)
        assert loaded[0].name == tracer.events[0].name
        assert loaded[-1].data == tracer.events[-1].data

    def test_max_events_cap(self):
        tracer = ConnectionTracer(max_events=5)
        for i in range(10):
            tracer.record(float(i), "packet", "datagram_sent", size=1)
        assert len(tracer.events) == 5
        assert tracer.dropped == 5

    def test_double_install_rejected(self):
        tracer, *_ = traced_session()
        with pytest.raises(RuntimeError):
            tracer.install(object())

    def test_event_json_stable(self):
        event = TraceEvent(time=1.5, category="packet", name="x",
                           data={"b": 2, "a": 1})
        assert event.to_json() == \
            '{"category": "packet", "data": {"a": 1, "b": 2}, ' \
            '"name": "x", "time": 1.5}'
