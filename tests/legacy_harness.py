"""Frozen snapshot of the pre-host-runtime session harness.

This is a verbatim copy of ``repro/experiments/harness.py`` as it stood
before the ``repro.host`` endpoint runtime landed: dedicated
client/server ``Connection`` pairs wired with lambdas, a monkey-patched
``datagram_received`` for the CM monitor, and a per-session
``MediaServer``.  The equivalence tests replay both implementations and
require bit-identical metrics, so this file must NOT be "fixed" or
modernised -- it is the reference the refactor is measured against.

Schemes:

========== =============================================================
scheme      configuration
========== =============================================================
sp          single-path QUIC on the primary interface
cm          single-path QUIC with connection migration (probe + cwnd
            reset) -- the CM baseline of Fig. 13
vanilla_mp  multipath QUIC, min-RTT scheduler, no re-injection
            (MPQUIC default; Sec. 3)
reinject    XLINK re-injection *without* QoE control (always on) --
            the 15%-overhead configuration of Sec. 5.2
xlink       full XLINK: priority-based re-injection gated by the
            double-threshold QoE controller
xlink_nofa  XLINK without first-video-frame acceleration (Fig. 12's
            ablation)
mptcp       the MPTCP baseline (bulk transfers; single ordered stream)
========== =============================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import (MinRttScheduler, ReinjectionMode, SinglePathScheduler,
                        ThresholdConfig, XlinkScheduler, select_primary_path)
from repro.metrics.qoe import SessionMetrics
from repro.mptcp import MptcpConnection, MptcpConfig
from repro.netem import Datagram, MultipathNetwork, OutageSchedule
from repro.quic.connection import Connection, ConnectionConfig
from repro.quic.path import PathState
from repro.sim import EventLoop
from repro.sim.rng import make_rng
from repro.traces.radio_profiles import RadioType
from repro.video import MediaServer, PlayerConfig, VideoPlayer, make_video
from repro.video.media import Video


@dataclass
class PathSpec:
    """One emulated network path."""

    net_path_id: int
    radio: RadioType
    one_way_delay_s: float
    rate_bps: Optional[float] = None
    trace_ms: Optional[List[int]] = None
    loss_rate: float = 0.0
    queue_limit_bytes: int = 192 * 1024
    outages: Optional[OutageSchedule] = None

    def __post_init__(self) -> None:
        if (self.rate_bps is None) == (self.trace_ms is None):
            raise ValueError("specify exactly one of rate_bps / trace_ms")


@dataclass
class SchemeConfig:
    """Resolved transport configuration for one scheme."""

    name: str
    multipath: bool
    reinjection_mode: ReinjectionMode = ReinjectionMode.NONE
    thresholds: Optional[ThresholdConfig] = None
    connection_migration: bool = False
    first_frame_acceleration: bool = True
    ack_path_policy: str = "fastest"
    cc_algorithm: str = "cubic"
    is_mptcp: bool = False


def _xlink_scheme(name: str, **kw) -> SchemeConfig:
    base = dict(multipath=True,
                reinjection_mode=ReinjectionMode.FRAME_PRIORITY,
                thresholds=ThresholdConfig(t_th1=0.5, t_th2=2.0))
    base.update(kw)
    return SchemeConfig(name=name, **base)


SCHEMES: Dict[str, SchemeConfig] = {
    "sp": SchemeConfig(name="sp", multipath=False),
    "cm": SchemeConfig(name="cm", multipath=False,
                       connection_migration=True),
    "vanilla_mp": SchemeConfig(name="vanilla_mp", multipath=True,
                               reinjection_mode=ReinjectionMode.NONE),
    "reinject": _xlink_scheme(
        "reinject", thresholds=ThresholdConfig(always_on=True)),
    "xlink": _xlink_scheme("xlink"),
    "xlink_nofa": _xlink_scheme(
        "xlink_nofa", reinjection_mode=ReinjectionMode.STREAM_PRIORITY,
        first_frame_acceleration=False),
    "mptcp": SchemeConfig(name="mptcp", multipath=True, is_mptcp=True),
}


@dataclass
class SessionResult:
    """Everything a bench may want from one finished session."""

    scheme: str
    completed: bool
    duration_s: float
    metrics: SessionMetrics
    #: raw objects for deep inspection
    player: Optional[VideoPlayer] = None
    client: Optional[Connection] = None
    server: Optional[Connection] = None
    net: Optional[MultipathNetwork] = None
    #: bulk-download completion time (bulk mode only)
    download_time_s: Optional[float] = None
    reinjected_bytes: int = 0
    new_stream_bytes: int = 0

    @property
    def redundancy_percent(self) -> float:
        if self.new_stream_bytes == 0:
            return 0.0
        return self.reinjected_bytes / self.new_stream_bytes * 100.0


def _build_network(loop: EventLoop, paths: Sequence[PathSpec],
                   seed: int) -> MultipathNetwork:
    net = MultipathNetwork(loop)
    for spec in paths:
        rng = make_rng(seed, f"path-{spec.net_path_id}")
        if spec.trace_ms is not None:
            net.add_trace_path(
                spec.net_path_id, spec.trace_ms, spec.one_way_delay_s,
                loss_rate=spec.loss_rate,
                queue_limit_bytes=spec.queue_limit_bytes,
                outages=spec.outages, rng=rng)
        else:
            net.add_simple_path(
                spec.net_path_id, spec.rate_bps, spec.one_way_delay_s,
                loss_rate=spec.loss_rate,
                queue_limit_bytes=spec.queue_limit_bytes,
                outages=spec.outages, rng=rng)
    return net


def _make_server_scheduler(scheme: SchemeConfig):
    if not scheme.multipath:
        return SinglePathScheduler()
    if scheme.reinjection_mode is ReinjectionMode.NONE:
        return MinRttScheduler()
    return XlinkScheduler(mode=scheme.reinjection_mode,
                          thresholds=scheme.thresholds)


def run_video_session(scheme_name: str, paths: Sequence[PathSpec],
                      video: Optional[Video] = None,
                      player_config: Optional[PlayerConfig] = None,
                      timeout_s: float = 120.0,
                      seed: int = 0,
                      primary_order: Optional[Sequence[RadioType]] = None
                      ) -> SessionResult:
    """Play one video under ``scheme_name`` and collect metrics."""
    scheme = SCHEMES[scheme_name]
    if scheme.is_mptcp:
        raise ValueError("use run_bulk_download for the MPTCP baseline")
    if video is None:
        video = make_video(seed=seed)
    loop = EventLoop()
    net = _build_network(loop, paths, seed)

    # The client runs the same scheduler family as the server: the
    # XLINK client (Taobao app) schedules its request packets with the
    # same QoE-driven logic, which matters when the primary path dies
    # holding an un-acked HTTP request.
    client = Connection(
        loop,
        ConnectionConfig(is_client=True, enable_multipath=scheme.multipath,
                         cc_algorithm=scheme.cc_algorithm,
                         ack_path_policy=scheme.ack_path_policy, seed=seed),
        transmit=lambda pid, data: net.client.send(
            Datagram(payload=data, path_id=pid)),
        scheduler=_make_server_scheduler(scheme),
        connection_name=f"session-{seed}")
    server = Connection(
        loop,
        ConnectionConfig(is_client=False, enable_multipath=scheme.multipath,
                         cc_algorithm=scheme.cc_algorithm,
                         ack_path_policy=scheme.ack_path_policy, seed=seed),
        transmit=lambda pid, data: net.server.send(
            Datagram(payload=data, path_id=pid)),
        scheduler=_make_server_scheduler(scheme),
        connection_name=f"session-{seed}")
    net.client.on_receive(
        lambda d: client.datagram_received(d.payload, d.path_id))
    net.server.on_receive(
        lambda d: server.datagram_received(d.payload, d.path_id))

    # Wireless-aware primary path selection (Sec. 5.3): QUIC path 0 maps
    # to the preferred interface.
    interfaces = [(spec.net_path_id, spec.radio) for spec in paths]
    if primary_order is not None:
        primary_net = select_primary_path(interfaces, order=primary_order)
    else:
        primary_net = select_primary_path(interfaces)
    primary_spec = next(s for s in paths if s.net_path_id == primary_net)
    client.add_local_path(0, primary_net, radio=primary_spec.radio)
    server.add_local_path(0, primary_net, radio=primary_spec.radio)

    media_server = MediaServer(
        server, {video.name: video},
        first_frame_acceleration=scheme.first_frame_acceleration)
    player_config = player_config if player_config is not None \
        else PlayerConfig()
    player = VideoPlayer(loop, client, video, config=player_config)

    secondary_specs = [s for s in paths if s.net_path_id != primary_net]

    def on_established() -> None:
        if scheme.multipath and client.multipath_negotiated:
            for i, spec in enumerate(secondary_specs, start=1):
                client.open_path(i, spec.net_path_id, radio=spec.radio)
        player.start()

    client.on_established = on_established
    client.connect()

    if scheme.connection_migration:
        _attach_migration_monitor(loop, client, paths, primary_net)

    while not player.finished and loop.now < timeout_s:
        if not loop.step():
            break

    metrics = SessionMetrics.from_player(
        player.stats,
        redundant_bytes=server.stats.stream_bytes_reinjected,
        useful_bytes=server.stats.stream_bytes_new)
    return SessionResult(
        scheme=scheme_name, completed=player.finished,
        duration_s=loop.now, metrics=metrics, player=player,
        client=client, server=server, net=net,
        reinjected_bytes=server.stats.stream_bytes_reinjected,
        new_stream_bytes=server.stats.stream_bytes_new)


def _attach_migration_monitor(loop: EventLoop, client: Connection,
                              paths: Sequence[PathSpec],
                              primary_net: int) -> None:
    """CM baseline: probe the active path, migrate on stall.

    QUIC connection migration is client-driven: when nothing has been
    received for a degradation threshold, the client migrates to the
    other interface, which resets the congestion window (Sec. 2).
    """
    state = {"last_rx": 0.0, "current_net": primary_net, "next_quic_id": 1,
             "bytes": 0, "window": [], "migrated_at": -1.0}
    stall_threshold = 0.6
    #: a path is degraded when its short-window goodput falls below
    #: this fraction of the session's running average
    degraded_fraction = 0.2
    window_s = 0.7
    others = [s.net_path_id for s in paths if s.net_path_id != primary_net]

    original = client.datagram_received

    def tracked_receive(payload: bytes, net_path_id: int = -1) -> None:
        state["last_rx"] = loop.now
        state["bytes"] += len(payload)
        original(payload, net_path_id)

    client.datagram_received = tracked_receive  # type: ignore[assignment]

    def _degraded() -> bool:
        """Idle too long, or goodput collapsed vs the session average."""
        idle = loop.now - state["last_rx"]
        if idle > stall_threshold:
            return True
        window = state["window"]
        window.append((loop.now, state["bytes"]))
        while window and window[0][0] < loop.now - window_s:
            window.pop(0)
        if loop.now < 1.0 or len(window) < 3:
            return False
        recent_rate = (window[-1][1] - window[0][1]) / window_s
        average_rate = state["bytes"] / max(loop.now, 1e-9)
        return recent_rate < degraded_fraction * average_rate

    def probe() -> None:
        if client.closed:
            return
        # Outstanding work: a request stream was FINed but its response
        # is missing or incomplete (the response may not have *started*,
        # so checking recv_streams alone is not enough).
        have_work = False
        for sid in client.send_streams:
            recv = client.recv_streams.get(sid)
            if recv is None or not recv.is_complete:
                have_work = True
                break
        recently_migrated = loop.now - state["migrated_at"] < 1.0
        if (client.established and have_work and not recently_migrated
                and _degraded() and others):
            # Migrate: open (or reuse) a path on the other interface and
            # make it the only active one, resetting its cwnd.
            target_net = others[0]
            others[0] = state["current_net"]
            state["current_net"] = target_net
            existing = next(
                (p for p in client.paths.values()
                 if client.net_path_of.get(p.path_id) == target_net
                 and p.state is not PathState.ABANDONED), None)
            if existing is None and client.multipath_negotiated:
                quic_id = state["next_quic_id"]
                state["next_quic_id"] += 1
                try:
                    client.open_path(quic_id, target_net)
                except Exception:
                    return
                client.migrate(quic_id)
            elif existing is not None:
                client.migrate(existing.path_id)
            else:
                # Pure single-path CM: rebind path 0 to the new interface
                # and reset its congestion state; the probe teaches the
                # server the client's new address.
                client.net_path_of[0] = target_net
                client.paths[0].cc.reset()
                client.send_ping(0)
            state["last_rx"] = loop.now
            state["migrated_at"] = loop.now
            state["window"].clear()
        loop.schedule_after(0.1, probe, label="cm-probe")

    loop.schedule_after(0.1, probe, label="cm-probe")


def run_bulk_download(scheme_name: str, paths: Sequence[PathSpec],
                      total_bytes: int, timeout_s: float = 120.0,
                      seed: int = 0) -> SessionResult:
    """Download ``total_bytes`` as fast as possible; measures completion.

    Used by Fig. 8 (4 MB load), Fig. 13 (request download time) and
    Fig. 14 (10-50 MB loads).  Works for every scheme including MPTCP.
    """
    scheme = SCHEMES[scheme_name]
    loop = EventLoop()
    net = _build_network(loop, paths, seed)
    if scheme.is_mptcp:
        return _run_mptcp_download(loop, net, paths, total_bytes, timeout_s)

    # Many equal frames: the "first video frame" is then a negligible
    # slice of the load, so first-frame acceleration cannot distort a
    # raw-throughput measurement by duplicating half the file.
    n_frames = 50
    frame = max(total_bytes // n_frames, 1)
    sizes = [frame] * n_frames
    sizes[-1] += total_bytes - sum(sizes)
    video = Video(name="bulk", fps=25, frame_sizes=sizes,
                  chunk_size=total_bytes)
    player_config = PlayerConfig(startup_frames=2, resume_frames=1,
                                 concurrent_requests=1, max_buffer_s=1e9,
                                 tick_s=0.1)
    result = run_video_session(scheme_name, paths, video=video,
                               player_config=player_config,
                               timeout_s=timeout_s, seed=seed)
    if result.metrics.request_completion_times:
        result.download_time_s = result.metrics.request_completion_times[0]
    elif result.completed:
        result.download_time_s = result.duration_s
    return result


def _run_mptcp_download(loop: EventLoop, net: MultipathNetwork,
                        paths: Sequence[PathSpec], total_bytes: int,
                        timeout_s: float) -> SessionResult:
    server = MptcpConnection(loop, is_server=True,
                             transmit=lambda pid, data: net.server.send(
                                 Datagram(payload=data, path_id=pid)))
    client = MptcpConnection(loop, is_server=False,
                             transmit=lambda pid, data: net.client.send(
                                 Datagram(payload=data, path_id=pid)))
    for spec in paths:
        server.add_subflow(spec.net_path_id)
        client.add_subflow(spec.net_path_id)
    net.client.on_receive(
        lambda d: client.datagram_received(d.payload, d.path_id))
    net.server.on_receive(
        lambda d: server.datagram_received(d.payload, d.path_id))
    start = loop.now
    client.request(total_bytes)
    while client.completed_at is None and loop.now < timeout_s:
        if not loop.step():
            break
    completed = client.completed_at is not None
    download_time = (client.completed_at - start) if completed else None
    return SessionResult(
        scheme="mptcp", completed=completed, duration_s=loop.now,
        metrics=SessionMetrics(), net=net, download_time_s=download_time)
