"""Tests for the MPTCP baseline."""

import pytest

from repro.experiments import PathSpec, run_bulk_download
from repro.mptcp import MptcpConnection, MptcpConfig
from repro.mptcp.segments import (AckSegment, DataSegment, RequestSegment,
                                  decode_segment, MSS)
from repro.netem import Datagram, MultipathNetwork, OutageSchedule
from repro.sim import EventLoop
from repro.traces.radio_profiles import RadioType


class TestSegments:
    def test_data_roundtrip(self):
        seg = DataSegment(subflow_seq=5, data_seq=1000, payload_len=100)
        decoded = decode_segment(seg.encode())
        assert decoded == seg

    def test_data_wire_size_includes_payload(self):
        seg = DataSegment(subflow_seq=0, data_seq=0, payload_len=500)
        assert len(seg.encode()) >= 500

    def test_ack_roundtrip(self):
        seg = AckSegment(subflow_ack=7, data_ack=12345)
        assert decode_segment(seg.encode()) == seg

    def test_request_roundtrip(self):
        seg = RequestSegment(total_bytes=4_000_000)
        assert decode_segment(seg.encode()) == seg

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            decode_segment(b"\x99abc")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            decode_segment(b"")


def mptcp_pair(loop, net, subflows=(0, 1), config=None):
    server = MptcpConnection(loop, is_server=True, config=config,
                             transmit=lambda pid, d: net.server.send(
                                 Datagram(payload=d, path_id=pid)))
    client = MptcpConnection(loop, is_server=False, config=config,
                             transmit=lambda pid, d: net.client.send(
                                 Datagram(payload=d, path_id=pid)))
    for sf in subflows:
        server.add_subflow(sf)
        client.add_subflow(sf)
    net.client.on_receive(lambda d: client.datagram_received(d.payload,
                                                             d.path_id))
    net.server.on_receive(lambda d: server.datagram_received(d.payload,
                                                             d.path_id))
    return client, server


class TestMptcpTransfer:
    def test_basic_transfer_completes(self):
        loop = EventLoop()
        net = MultipathNetwork(loop)
        net.add_simple_path(0, 8e6, 0.02)
        net.add_simple_path(1, 8e6, 0.04)
        client, server = mptcp_pair(loop, net)
        client.request(500_000)
        loop.run(until=30.0)
        assert client.completed_at is not None
        assert client.bytes_in_order == 500_000

    def test_aggregates_bandwidth(self):
        def run(subflows):
            loop = EventLoop()
            net = MultipathNetwork(loop)
            net.add_simple_path(0, 4e6, 0.02)
            net.add_simple_path(1, 4e6, 0.03)
            client, _ = mptcp_pair(loop, net, subflows=subflows)
            client.request(1_500_000)
            loop.run(until=60.0)
            return client.completed_at

        single = run((0,))
        double = run((0, 1))
        assert single is not None and double is not None
        assert double < single * 0.85

    def test_single_stream_hol_blocking(self):
        """A gap left by the slow subflow blocks in-order delivery."""
        loop = EventLoop()
        net = MultipathNetwork(loop)
        net.add_simple_path(0, 8e6, 0.01)
        # Path 1 is dead for 3 s early on: bytes mapped to it stall.
        net.add_simple_path(1, 8e6, 0.01,
                            outages=OutageSchedule(windows=[(0.05, 3.0)]))
        client, server = mptcp_pair(loop, net)
        client.request(400_000)
        loop.run(until=1.5)
        # Something was sent on subflow 1 and is now stuck -> the
        # in-order point lags the raw received bytes.
        received_total = sum(length for _s, length in client._received)
        assert client.bytes_in_order < received_total \
            or client.completed_at is None

    def test_opportunistic_rtx_rescues_blocking(self):
        """With opportunistic retransmission the transfer completes
        before the slow subflow's outage ends."""
        def run(config):
            loop = EventLoop()
            net = MultipathNetwork(loop)
            net.add_simple_path(0, 8e6, 0.01)
            net.add_simple_path(1, 8e6, 0.05,
                                outages=OutageSchedule(
                                    windows=[(0.05, 20.0)]))
            client, _ = mptcp_pair(loop, net, config=config)
            client.request(400_000)
            loop.run(until=15.0)
            return client.completed_at

        with_rtx = run(MptcpConfig(opportunistic_retransmit=True))
        assert with_rtx is not None and with_rtx < 15.0

    def test_penalization_halves_blocker(self):
        loop = EventLoop()
        net = MultipathNetwork(loop)
        net.add_simple_path(0, 8e6, 0.01)
        net.add_simple_path(1, 2e6, 0.10)
        client, server = mptcp_pair(
            loop, net, config=MptcpConfig(penalization=True))
        client.request(1_000_000)
        loop.run(until=30.0)
        assert client.completed_at is not None

    def test_client_cannot_serve(self):
        loop = EventLoop()
        net = MultipathNetwork(loop)
        net.add_simple_path(0, 8e6, 0.02)
        client, server = mptcp_pair(loop, net, subflows=(0,))
        with pytest.raises(RuntimeError):
            server.request(100)

    def test_retransmission_counted(self):
        loop = EventLoop()
        net = MultipathNetwork(loop)
        net.add_simple_path(0, 8e6, 0.02, loss_rate=0.05)
        client, server = mptcp_pair(loop, net, subflows=(0,))
        client.request(500_000)
        loop.run(until=60.0)
        assert client.completed_at is not None
        assert server.stats_retransmitted_bytes > 0

    def test_harness_bulk_download(self):
        paths = [
            PathSpec(net_path_id=0, radio=RadioType.WIFI,
                     one_way_delay_s=0.02, rate_bps=8e6),
            PathSpec(net_path_id=1, radio=RadioType.LTE,
                     one_way_delay_s=0.04, rate_bps=8e6),
        ]
        result = run_bulk_download("mptcp", paths, 500_000, seed=1)
        assert result.completed
        assert result.download_time_s is not None
