"""Conservation and capacity properties of the emulated network.

These are the emulator's "physics": packets are never created from
nothing, never delivered above the trace's capacity, and a path's
accounting always balances (out + dropped == in).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netem import (ConstantRateLink, Datagram, MultipathNetwork,
                         TraceDrivenLink)
from repro.netem.packet import MTU, UDP_IP_OVERHEAD
from repro.sim import EventLoop
from repro.traces import constant_rate_trace


class TestLinkConservation:
    @given(st.integers(1, 60), st.integers(100, 1400),
           st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_constant_link_accounting_balances(self, n_packets, size,
                                               queue_kb):
        loop = EventLoop()
        got = []
        link = ConstantRateLink(loop, 2e6, got.append,
                                queue_limit_bytes=queue_kb * 1024)
        for _ in range(n_packets):
            link.send(Datagram(payload=b"x" * size))
        loop.run()
        stats = link.stats
        assert stats.packets_out + stats.packets_dropped == n_packets
        assert stats.packets_out == len(got)
        assert stats.bytes_out + stats.bytes_dropped == stats.bytes_in

    @given(st.integers(1, 80), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_trace_link_never_exceeds_opportunities(self, n_packets, seed):
        """No window can deliver more packets than trace opportunities."""
        rng = random.Random(seed)
        trace = sorted(rng.randrange(0, 500) for _ in range(30))
        loop = EventLoop()
        deliveries = []
        link = TraceDrivenLink(loop, trace,
                               lambda d: deliveries.append(loop.now),
                               queue_limit_bytes=10**9)
        for _ in range(n_packets):
            link.send(Datagram(payload=b"x" * 100))
        loop.run(until=3.0)
        # Count deliveries inside the first trace period.
        period_s = (trace[-1] + 1) / 1000.0
        in_first = [t for t in deliveries if t < period_s]
        assert len(in_first) <= len(trace)

    def test_trace_link_throughput_bound(self):
        """Sustained goodput cannot exceed the trace's mean capacity."""
        loop = EventLoop()
        delivered_bytes = []
        trace = constant_rate_trace(4e6, 2.0)
        link = TraceDrivenLink(loop, trace,
                               lambda d: delivered_bytes.append(
                                   d.wire_size),
                               queue_limit_bytes=10**9)
        # Offer 3x the capacity.
        for _ in range(int(3 * 4e6 * 2.0 / 8 / 1000)):
            link.send(Datagram(payload=b"x" * (1000 - UDP_IP_OVERHEAD)))
        loop.run(until=2.0)
        achieved_bps = sum(delivered_bytes) * 8 / 2.0
        assert achieved_bps <= 4e6 * 1.05

    def test_no_packets_materialize(self):
        loop = EventLoop()
        net = MultipathNetwork(loop)
        net.add_simple_path(0, 1e6, 0.01, loss_rate=0.3,
                            rng=random.Random(1))
        received = []
        net.server.on_receive(received.append)
        sent = 50
        for _ in range(sent):
            net.client.send(Datagram(payload=b"x" * 200, path_id=0))
        loop.run()
        assert len(received) <= sent

    @given(st.floats(0.0, 0.5), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_loss_rate_bounds_delivery(self, loss, seed):
        loop = EventLoop()
        net = MultipathNetwork(loop)
        net.add_simple_path(0, 10e6, 0.001, loss_rate=loss,
                            rng=random.Random(seed))
        received = []
        net.server.on_receive(received.append)
        n = 200
        for _ in range(n):
            net.client.send(Datagram(payload=b"x" * 100, path_id=0))
        loop.run()
        assert len(received) <= n
        if loss == 0.0:
            assert len(received) == n


class TestDelayOrdering:
    @given(st.lists(st.integers(1, 1000), min_size=2, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_fifo_link_preserves_order(self, sizes):
        """A single link never reorders packets."""
        loop = EventLoop()
        order = []
        link = ConstantRateLink(loop, 1e6,
                                lambda d: order.append(d.dgram_id),
                                queue_limit_bytes=10**9)
        ids = []
        for size in sizes:
            dgram = Datagram(payload=b"x" * size)
            ids.append(dgram.dgram_id)
            link.send(dgram)
        loop.run()
        assert order == ids

    def test_cross_path_reordering_possible(self):
        """Different paths CAN reorder -- that's what multipath does."""
        loop = EventLoop()
        net = MultipathNetwork(loop)
        net.add_simple_path(0, 10e6, 0.10)
        net.add_simple_path(1, 10e6, 0.01)
        arrivals = []
        net.server.on_receive(lambda d: arrivals.append(d.path_id))
        net.client.send(Datagram(payload=b"a", path_id=0))
        net.client.send(Datagram(payload=b"b", path_id=1))
        loop.run()
        assert arrivals == [1, 0]
