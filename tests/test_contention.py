"""Multi-user cell contention: determinism and sanity of the N>1 path.

The N=8 run drives eight concurrent sessions -- staggered starts,
staggered Wi-Fi outages, one shared LTE cell, one ServerHost -- and
must produce the exact same simulated history every time.
"""

import pytest

from repro.experiments.contention import (ContentionConfig,
                                          ContentionResult, run_contention)

N8_CONFIG = ContentionConfig(sessions=8, scheme="xlink", seed=4,
                             video_duration_s=4.0)


@pytest.fixture(scope="module")
def n8_result() -> ContentionResult:
    return run_contention(N8_CONFIG)


class TestContentionDeterminism:
    def test_n8_run_is_deterministic(self, n8_result):
        again = run_contention(ContentionConfig(sessions=8, scheme="xlink",
                                                seed=4,
                                                video_duration_s=4.0))
        assert again.fingerprint() == n8_result.fingerprint()
        for a, b in zip(again.per_session, n8_result.per_session):
            assert a == b

    def test_seed_changes_history(self, n8_result):
        other = run_contention(ContentionConfig(sessions=8, scheme="xlink",
                                                seed=5,
                                                video_duration_s=4.0))
        assert other.fingerprint() != n8_result.fingerprint()


class TestContentionBehavior:
    def test_all_sessions_complete(self, n8_result):
        assert n8_result.completed == 8
        assert len(n8_result.per_session) == 8
        assert len(n8_result.first_frame_latencies) == 8

    def test_host_demux_is_clean(self, n8_result):
        """Every datagram reaches its session; none are dropped."""
        assert n8_result.datagrams_routed > 0
        assert n8_result.datagrams_dropped == 0

    def test_outages_drive_reinjection_onto_cell(self, n8_result):
        """Each user's Wi-Fi outage forces recovery over the shared
        cell, so the run must show both re-injection and cell usage."""
        assert n8_result.reinjected_bytes > 0
        assert n8_result.cell_down_bytes > 0

    def test_contention_grows_with_users(self):
        """More users on the same cell -> more traffic through it."""
        small = run_contention(ContentionConfig(sessions=2, seed=4,
                                                video_duration_s=4.0))
        assert N8_CONFIG.sessions > 2
        big_cell = run_contention(ContentionConfig(sessions=4, seed=4,
                                                   video_duration_s=4.0))
        assert big_cell.cell_down_bytes > small.cell_down_bytes
