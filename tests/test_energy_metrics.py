"""Tests for the energy model and the metrics package."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy import (EnergyAccount, POWER_MODELS, energy_per_bit)
from repro.metrics import (Summary, aggregate_rebuffer_rate,
                           improvement_percent, percentile, summarize)
from repro.metrics.qoe import SessionMetrics, traffic_overhead_percent
from repro.traces.radio_profiles import RadioType


class TestPowerModels:
    def test_power_increases_with_throughput(self):
        model = POWER_MODELS[RadioType.LTE]
        assert model.power_at(30.0) > model.power_at(1.0)

    def test_nr_draws_more_than_lte_than_wifi(self):
        """Fig. 14 substrate: per-radio power ordering."""
        at = 20.0
        assert POWER_MODELS[RadioType.NR_NSA].power_at(at) > \
            POWER_MODELS[RadioType.LTE].power_at(at) > \
            POWER_MODELS[RadioType.WIFI].power_at(at)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            POWER_MODELS[RadioType.WIFI].power_at(-1)

    def test_energy_per_bit_falls_with_throughput(self):
        """The active baseline amortizes: J/bit drops as rate rises."""
        low = energy_per_bit(RadioType.LTE, 2.0)
        high = energy_per_bit(RadioType.LTE, 30.0)
        assert high < low

    def test_energy_per_bit_rejects_zero(self):
        with pytest.raises(ValueError):
            energy_per_bit(RadioType.WIFI, 0.0)

    def test_wifi_most_efficient_per_bit(self):
        at = 20.0
        assert energy_per_bit(RadioType.WIFI, at) < \
            energy_per_bit(RadioType.LTE, at) < \
            energy_per_bit(RadioType.NR_NSA, at)


class TestEnergyAccount:
    def test_integrates_power_over_time(self):
        acct = EnergyAccount()
        # 10 MB in 8 s over Wi-Fi = 10 Mbps.
        acct.add(RadioType.WIFI, 10_000_000, 8.0)
        expected_power = POWER_MODELS[RadioType.WIFI].power_at(10.0)
        assert acct.total_energy_j() == pytest.approx(expected_power * 8.0)

    def test_energy_per_bit(self):
        acct = EnergyAccount()
        acct.add(RadioType.WIFI, 10_000_000, 8.0)
        assert acct.energy_per_bit_j() == pytest.approx(
            acct.total_energy_j() / (10_000_000 * 8))

    def test_multi_radio_sum(self):
        acct = EnergyAccount()
        acct.add(RadioType.WIFI, 5_000_000, 4.0)
        acct.add(RadioType.LTE, 5_000_000, 4.0)
        solo = EnergyAccount()
        solo.add(RadioType.WIFI, 5_000_000, 4.0)
        assert acct.total_energy_j() > solo.total_energy_j()
        assert acct.total_bytes == 10_000_000

    def test_empty_account(self):
        acct = EnergyAccount()
        assert acct.total_energy_j() == 0.0
        assert acct.energy_per_bit_j() == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EnergyAccount().add(RadioType.WIFI, -1, 1.0)

    def test_multipath_tradeoff_shape(self):
        """Fig. 14's key shape: Wi-Fi+LTE has higher throughput than
        either alone, and lower J/bit than LTE alone."""
        # Each radio runs at the same 20 Mbps per-link rate (the paper
        # caps links at 30 Mbps); multipath doubles throughput but
        # pays LTE's higher power -- so it lands between Wi-Fi-only
        # and LTE-only in J/bit (Fig. 14's trade-off).
        wifi_only = EnergyAccount()
        wifi_only.add(RadioType.WIFI, 10_000_000, 4.0)
        lte_only = EnergyAccount()
        lte_only.add(RadioType.LTE, 10_000_000, 4.0)
        both = EnergyAccount()
        both.add(RadioType.WIFI, 10_000_000, 4.0)
        both.add(RadioType.LTE, 10_000_000, 4.0)
        assert both.energy_per_bit_j() < lte_only.energy_per_bit_j()
        assert both.energy_per_bit_j() > wifi_only.energy_per_bit_j()


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5, 1, 9]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_single_element(self):
        assert percentile([7], 99) == 7

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=200),
           st.floats(0, 100))
    @settings(max_examples=200)
    def test_percentile_within_bounds_property(self, data, pct):
        value = percentile(data, pct)
        assert min(data) <= value <= max(data)

    @given(st.lists(st.floats(0, 1e6), min_size=2, max_size=100))
    @settings(max_examples=100)
    def test_percentile_monotone_property(self, data):
        assert percentile(data, 25) <= percentile(data, 75)

    def test_matches_numpy(self):
        import numpy as np
        data = [0.3, 1.7, 2.2, 9.1, 4.4, 0.01]
        for pct in (10, 50, 90, 99):
            assert percentile(data, pct) == pytest.approx(
                float(np.percentile(data, pct)))


class TestSummarize:
    def test_summary_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert isinstance(s, Summary)

    def test_as_dict(self):
        d = summarize([1.0]).as_dict()
        assert set(d) == {"count", "mean", "p50", "p90", "p95", "p99",
                          "max", "min"}

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])


class TestQoeMetrics:
    def test_aggregate_rebuffer_rate(self):
        sessions = [
            SessionMetrics(rebuffer_time=1.0, play_time=10.0),
            SessionMetrics(rebuffer_time=0.0, play_time=10.0),
        ]
        assert aggregate_rebuffer_rate(sessions) == pytest.approx(0.05)

    def test_aggregate_rebuffer_rate_empty(self):
        assert aggregate_rebuffer_rate([]) == 0.0

    def test_improvement_percent_sign(self):
        # Positive = treatment better (smaller).
        assert improvement_percent(2.0, 1.0) == pytest.approx(50.0)
        assert improvement_percent(1.0, 2.0) == pytest.approx(-100.0)
        assert improvement_percent(0.0, 1.0) == 0.0

    def test_traffic_overhead(self):
        sessions = [SessionMetrics(redundant_bytes=21, useful_bytes=1000)]
        assert traffic_overhead_percent(sessions) == pytest.approx(2.1)

    def test_traffic_overhead_no_traffic(self):
        assert traffic_overhead_percent([SessionMetrics()]) == 0.0
