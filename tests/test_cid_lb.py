"""Tests for connection IDs and the QUIC-LB load balancer."""

import random

import pytest

from repro.lb import ConsistentHashRing, QuicLbRouter
from repro.quic.cid import CID_LENGTH, CidRegistry, ConnectionId, generate_cid


class TestConnectionId:
    def test_length_enforced(self):
        with pytest.raises(ValueError):
            ConnectionId(cid=b"short", sequence_number=0)

    def test_server_id_byte(self):
        cid = ConnectionId(cid=b"\x07" + b"\x00" * 7, sequence_number=0)
        assert cid.server_id == 7

    def test_generate_embeds_server_id(self):
        rng = random.Random(1)
        cid = generate_cid(rng, 3, server_id=42)
        assert cid.server_id == 42
        assert cid.sequence_number == 3
        assert len(cid.cid) == CID_LENGTH

    def test_generate_rejects_bad_server_id(self):
        with pytest.raises(ValueError):
            generate_cid(random.Random(1), 0, server_id=300)


class TestCidRegistry:
    def test_issue_sequential(self):
        reg = CidRegistry(random.Random(1))
        a, b = reg.issue(), reg.issue()
        assert (a.sequence_number, b.sequence_number) == (0, 1)
        assert a.cid != b.cid

    def test_register_and_use_peer_cids(self):
        reg = CidRegistry(random.Random(1))
        peer = ConnectionId(cid=b"\x01" * 8, sequence_number=0)
        reg.register_peer(peer)
        assert reg.unused_peer_cid() == peer
        reg.mark_peer_used(0)
        assert reg.unused_peer_cid() is None

    def test_reregister_same_cid_ok(self):
        reg = CidRegistry(random.Random(1))
        peer = ConnectionId(cid=b"\x01" * 8, sequence_number=0)
        reg.register_peer(peer)
        reg.register_peer(peer)

    def test_reissue_conflict_rejected(self):
        reg = CidRegistry(random.Random(1))
        reg.register_peer(ConnectionId(cid=b"\x01" * 8, sequence_number=0))
        with pytest.raises(ValueError):
            reg.register_peer(
                ConnectionId(cid=b"\x02" * 8, sequence_number=0))

    def test_mark_unknown_raises(self):
        reg = CidRegistry(random.Random(1))
        with pytest.raises(KeyError):
            reg.mark_peer_used(5)

    def test_lookup_issued(self):
        reg = CidRegistry(random.Random(1))
        cid = reg.issue()
        assert reg.lookup_issued(cid.cid) == cid
        assert reg.lookup_issued(b"\xff" * 8) is None

    def test_unused_peer_cid_lowest_first(self):
        reg = CidRegistry(random.Random(1))
        reg.register_peer(ConnectionId(cid=b"\x02" * 8, sequence_number=2))
        reg.register_peer(ConnectionId(cid=b"\x01" * 8, sequence_number=1))
        assert reg.unused_peer_cid().sequence_number == 1


class TestConsistentHashRing:
    def test_deterministic_routing(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        key = b"\x01" * 8
        assert ring.node_for(key) == ring.node_for(key)

    def test_distributes_keys(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        rng = random.Random(0)
        hits = {"a": 0, "b": 0, "c": 0}
        for _ in range(3000):
            key = bytes(rng.getrandbits(8) for _ in range(8))
            hits[ring.node_for(key)] += 1
        for count in hits.values():
            assert count > 3000 / 3 / 3  # no node starved

    def test_remove_node_moves_only_its_keys(self):
        """Consistent hashing: removing a node leaves other keys put."""
        ring = ConsistentHashRing(["a", "b", "c"])
        rng = random.Random(0)
        keys = [bytes(rng.getrandbits(8) for _ in range(8))
                for _ in range(500)]
        before = {k: ring.node_for(k) for k in keys}
        ring.remove_node("c")
        moved = 0
        for k in keys:
            after = ring.node_for(k)
            if before[k] != after:
                moved += 1
                assert before[k] == "c"  # only c's keys may move
        assert moved > 0

    def test_empty_nodes_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])


class TestQuicLbRouter:
    def test_routes_by_embedded_server_id(self):
        """Sec. 6: a real server encodes its ID in issued CIDs, so every
        path of one connection reaches the same backend."""
        router = QuicLbRouter({1: "server-1", 2: "server-2"})
        rng = random.Random(7)
        cids = [generate_cid(rng, seq, server_id=2) for seq in range(4)]
        backends = {router.route(c.cid) for c in cids}
        assert backends == {"server-2"}
        assert router.routed_by_id == 4

    def test_unknown_id_falls_back_to_hash(self):
        router = QuicLbRouter({1: "server-1", 2: "server-2"})
        cid = b"\xee" * 8  # server id 0xee not registered
        backend = router.route(cid)
        assert backend in ("server-1", "server-2")
        assert router.routed_by_hash == 1

    def test_multipath_cids_stick_to_one_backend(self):
        """All CIDs a backend issues route back to it -- the property
        that makes multipath work behind the LB."""
        router = QuicLbRouter({i: f"s{i}" for i in range(1, 9)})
        rng = random.Random(3)
        for conn in range(20):
            sid = rng.randint(1, 8)
            cids = [generate_cid(rng, seq, server_id=sid)
                    for seq in range(5)]
            assert {router.route(c.cid) for c in cids} == {f"s{sid}"}

    def test_requires_backends(self):
        with pytest.raises(ValueError):
            QuicLbRouter({})
