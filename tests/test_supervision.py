"""Fleet shard supervision: retries, deadlines, quarantine, interrupts.

The contract under test (the robustness analog of the determinism
suite in ``test_fleet.py``): a supervised run survives worker death,
hangs, shard-body exceptions and corrupted results; every retryable
fault folds back in **bit-identically** (retries re-run from the task
list, never a partial sink); faults that exhaust the retry budget
quarantine the shard into honest ``abandoned`` tallies instead of
voiding the run; and Ctrl-C terminates all workers and returns the
partial fold.
"""

from __future__ import annotations

import multiprocessing
import os
import signal

import pytest

from repro.cli import _fleet_exit_code
from repro.experiments.fleet import (ABPopulationDriver, FleetConfig,
                                     run_fleet_driver)
from repro.experiments.parallel import (ABANDONED_KIND, FaultInjected,
                                        FaultPlan, SessionTask, ShardResult,
                                        execute_shard, run_fleet,
                                        validate_shard_result)
from repro.metrics import MetricSink


def _cfg(users: int = 6, seed: int = 5) -> FleetConfig:
    return FleetConfig(users=users, seed=seed)


def _tasks(users: int = 6, seed: int = 5):
    return ABPopulationDriver(_cfg(users, seed)).task_iter()


def _clean_digest(users: int = 6, seed: int = 5, shard_size: int = 2) -> str:
    return run_fleet(_tasks(users, seed), workers=1,
                     shard_size=shard_size).sink.digest()


class TestFaultPlan:
    def test_explicit_shards_win(self):
        plan = FaultPlan(crash_shards=(0,), hang_shards=(1,),
                         raise_shards=(2,), corrupt_shards=(3,))
        assert plan.fault_kind(0) == "crash"
        assert plan.fault_kind(1) == "hang"
        assert plan.fault_kind(2) == "raise"
        assert plan.fault_kind(3) == "corrupt"
        assert plan.fault_kind(4) is None

    def test_rate_membership_is_deterministic(self):
        plan = FaultPlan(seed=3, crash_rate=0.3, raise_rate=0.3)
        kinds = [plan.fault_kind(i) for i in range(50)]
        assert kinds == [plan.fault_kind(i) for i in range(50)]
        assert "crash" in kinds and "raise" in kinds and None in kinds
        # a different seed redraws membership
        other = FaultPlan(seed=4, crash_rate=0.3, raise_rate=0.3)
        assert kinds != [other.fault_kind(i) for i in range(50)]

    def test_fires_only_on_first_attempt_unless_sticky(self):
        plan = FaultPlan(crash_shards=(0,))
        assert plan.fires(0, 0) == "crash"
        assert plan.fires(0, 1) is None
        sticky = FaultPlan(crash_shards=(0,), sticky=True)
        assert sticky.fires(0, 1) == "crash"

    def test_is_noop(self):
        assert FaultPlan().is_noop()
        assert not FaultPlan(crash_shards=(0,)).is_noop()
        assert not FaultPlan(hang_rate=0.1).is_noop()


class TestValidateShardResult:
    def test_sound_result_passes(self):
        tasks = list(_tasks(users=2))
        result = execute_shard(tasks)
        assert validate_shard_result(result, len(tasks)) is None

    def test_rejects_wrong_types_and_counts(self):
        assert validate_shard_result("garbage", 1) is not None
        assert validate_shard_result(
            ShardResult(sink="nope", tasks=1), 1) is not None
        sound = execute_shard(list(_tasks(users=2)))
        assert validate_shard_result(sound, sound.tasks + 1) is not None

    def test_rejects_inconsistent_accounting(self):
        sound = execute_shard(list(_tasks(users=2)))
        # a failure tally that doesn't add up with sink sessions
        bad = ShardResult(sink=sound.sink, tasks=sound.tasks,
                          failures={"Boom": 5})
        assert validate_shard_result(bad, sound.tasks) is not None
        malformed = ShardResult(sink=sound.sink, tasks=sound.tasks,
                                failures={"Boom": -1})
        assert validate_shard_result(malformed, sound.tasks) is not None


class TestSerialSupervision:
    def test_fail_once_retry_digest_identical(self):
        clean = _clean_digest()
        plan = FaultPlan(raise_shards=(0, 2))
        result = run_fleet(_tasks(), workers=1, shard_size=2,
                           fault_plan=plan)
        assert result.retries == 2
        assert result.shard_faults == {FaultInjected.__name__: 2}
        assert result.abandoned_shards == 0
        assert result.sink.digest() == clean

    def test_sticky_fault_quarantines_shard(self):
        plan = FaultPlan(raise_shards=(1,), sticky=True)
        result = run_fleet(_tasks(), workers=1, shard_size=2,
                           max_retries=1, fault_plan=plan)
        assert result.abandoned_shards == 1
        assert result.abandoned_tasks == 2
        assert result.retries == 1
        assert result.tasks == 4  # the healthy shards still folded
        tallied = sum(s.failures.get(ABANDONED_KIND, 0)
                      for s in result.sink.schemes.values())
        assert tallied == 2
        assert not result.ok

    def test_serial_degrades_crash_and_hang_to_tallied_fails(self):
        # In-process execution cannot kill or preempt itself; the
        # faults still consume retry budget under their own kind.
        plan = FaultPlan(crash_shards=(0,), hang_shards=(1,))
        result = run_fleet(_tasks(), workers=1, shard_size=2,
                           fault_plan=plan)
        assert result.shard_faults == {"crash": 1, "hang": 1}
        assert result.sink.digest() == _clean_digest()


class TestPoolSupervision:
    def test_worker_crash_retried_digest_identical(self):
        clean = _clean_digest()
        plan = FaultPlan(crash_shards=(1,))
        result = run_fleet(_tasks(), workers=2, shard_size=2,
                           fault_plan=plan)
        assert result.shard_faults == {"crash": 1}
        assert result.retries == 1
        assert result.sink.digest() == clean
        assert result.workers_effective >= 2

    def test_hung_worker_killed_by_deadline_and_retried(self):
        clean = _clean_digest()
        plan = FaultPlan(hang_shards=(0,), hang_s=60.0)
        result = run_fleet(_tasks(), workers=2, shard_size=2,
                           shard_timeout_s=2.0, fault_plan=plan)
        assert result.shard_faults == {"timeout": 1}
        assert result.sink.digest() == clean

    def test_corrupt_result_rejected_and_retried(self):
        clean = _clean_digest()
        plan = FaultPlan(corrupt_shards=(2,))
        result = run_fleet(_tasks(), workers=2, shard_size=2,
                           fault_plan=plan)
        assert result.shard_faults == {"corrupt": 1}
        assert result.sink.digest() == clean

    def test_sticky_crash_abandons_without_voiding_run(self):
        plan = FaultPlan(crash_shards=(0,), sticky=True)
        result = run_fleet(_tasks(), workers=2, shard_size=2,
                           max_retries=1, fault_plan=plan)
        assert result.abandoned_shards == 1
        assert result.abandoned_tasks == 2
        assert result.tasks == 4
        assert not result.interrupted

    def test_keyboard_interrupt_reaps_workers_and_returns_partial(self):
        # A hung shard (no deadline) pins the supervisor in wait();
        # SIGALRM delivers the KeyboardInterrupt a real Ctrl-C would.
        plan = FaultPlan(hang_shards=(2,), hang_s=60.0, sticky=True)

        def raise_ki(_signum, _frame):
            raise KeyboardInterrupt

        previous = signal.signal(signal.SIGALRM, raise_ki)
        signal.alarm(3)
        try:
            result = run_fleet(_tasks(), workers=2, shard_size=2,
                               fault_plan=plan)
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)
        assert result.interrupted
        assert result.tasks < 6  # partial fold, honestly reported
        assert not result.ok
        assert multiprocessing.active_children() == []


class TestEdgeCases:
    def test_empty_task_stream(self):
        result = run_fleet(iter(()), workers=2)
        assert result.tasks == 0
        assert result.shards == 0
        assert result.ok
        assert result.sink.digest() == MetricSink().digest()

    def test_shard_size_one_digest_identical(self):
        assert _clean_digest(shard_size=1) == _clean_digest(shard_size=64)

    def test_all_failing_shard_still_folds(self):
        paths = next(iter(_tasks(users=1))).paths
        tasks = [SessionTask(key=(i, "sp"), scheme="sp", paths=paths,
                             mode="nope") for i in range(4)]
        result = run_fleet(iter(tasks), workers=1, shard_size=2)
        assert result.tasks == 4
        assert result.failed == 4
        assert result.failures == {"ValueError": 4}
        assert result.abandoned_shards == 0  # task fails are not faults

    def test_supervision_kwargs_pass_through_driver(self):
        plan = FaultPlan(raise_shards=(0,))
        run = run_fleet_driver(ABPopulationDriver(_cfg(users=4)),
                               workers=1, shard_size=2, fault_plan=plan)
        assert run.result.retries == 1


class TestExitCodes:
    def test_most_severe_wins(self):
        assert _fleet_exit_code(0, 0, False) == 0
        assert _fleet_exit_code(3, 0, False) == 3
        assert _fleet_exit_code(0, 1, False) == 4
        assert _fleet_exit_code(3, 1, False) == 4
        assert _fleet_exit_code(3, 1, True) == 130


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork")
class TestFaultWorkerIsolation:
    def test_injected_crash_does_not_kill_parent(self):
        # Regression guard for the fault injector itself: os._exit in
        # a worker must never run in the parent (serial mode converts
        # crash faults to tallied fails instead of exiting).
        plan = FaultPlan(crash_shards=(0,), sticky=True)
        result = run_fleet(_tasks(users=2), workers=1, shard_size=2,
                           max_retries=0, fault_plan=plan)
        assert result.abandoned_shards == 1  # and we are still alive
