"""Tests for the live-streaming extension."""

import pytest

from repro.core import (MinRttScheduler, ReinjectionMode, ThresholdConfig,
                        XlinkScheduler)
from repro.netem import Datagram, MultipathNetwork, OutageSchedule
from repro.quic.connection import Connection, ConnectionConfig
from repro.sim import EventLoop
from repro.video.live import LiveConfig, LiveSource, LiveStats, LiveViewer


def live_session(duration_s=4.0, server_scheduler=None, outage=None,
                 config=None, rate1=8e6, rate2=6e6):
    loop = EventLoop()
    net = MultipathNetwork(loop)
    net.add_simple_path(0, rate1, 0.015, outages=outage)
    net.add_simple_path(1, rate2, 0.045)
    # Live flows downstream from "server" (the broadcaster's edge).
    server = Connection(loop, ConnectionConfig(is_client=False),
                        transmit=lambda pid, d: net.server.send(
                            Datagram(payload=d, path_id=pid)),
                        scheduler=server_scheduler or MinRttScheduler(),
                        connection_name="live")
    client = Connection(loop, ConnectionConfig(is_client=True),
                        transmit=lambda pid, d: net.client.send(
                            Datagram(payload=d, path_id=pid)),
                        scheduler=MinRttScheduler(),
                        connection_name="live")
    net.client.on_receive(lambda d: client.datagram_received(d.payload,
                                                             d.path_id))
    net.server.on_receive(lambda d: server.datagram_received(d.payload,
                                                             d.path_id))
    client.add_local_path(0, 0)
    server.add_local_path(0, 0)

    config = config or LiveConfig()
    source = LiveSource(loop, server, config=config)
    viewer = LiveViewer(loop, client, config=config)

    def on_established():
        client.open_path(1, 1)
        source.start()

    client.on_established = on_established
    client.connect()
    loop.run(until=duration_s)
    source.stop()
    loop.run(until=duration_s + 2.0)
    return source, viewer, server


class TestLiveStreaming:
    def test_frames_flow_end_to_end(self):
        source, viewer, _s = live_session()
        assert source.frames_sent > 50
        assert viewer.stats.frames_received >= source.frames_sent - 5

    def test_latency_reasonable_on_healthy_network(self):
        _source, viewer, _s = live_session()
        assert viewer.stats.latency_percentile(50) < 0.3
        assert viewer.stats.late_ratio < 0.05

    def test_frame_indices_monotonic_latency_positive(self):
        _source, viewer, _s = live_session()
        assert all(lat > 0 for lat in viewer.stats.latencies)

    def test_outage_makes_frames_late_on_vanilla(self):
        outage = OutageSchedule(windows=[(1.0, 2.5)])
        _source, viewer, _s = live_session(outage=outage)
        assert viewer.stats.frames_late > 0

    def test_xlink_reduces_late_frames_under_outage(self):
        outage = OutageSchedule(windows=[(1.0, 2.5)])
        _s1, vanilla_viewer, _ = live_session(outage=outage)
        sched = XlinkScheduler(mode=ReinjectionMode.FRAME_PRIORITY,
                               thresholds=ThresholdConfig(0.3, 1.0))
        _s2, xlink_viewer, server = live_session(
            outage=outage, server_scheduler=sched)
        assert server.stats.stream_bytes_reinjected > 0
        assert xlink_viewer.stats.frames_late <= \
            vanilla_viewer.stats.frames_late

    def test_qoe_signal_reflects_latency_slack(self):
        _source, viewer, _s = live_session()
        qoe = viewer.qoe_signals()
        assert qoe.fps == viewer.config.fps
        # Healthy stream: slack close to the full target.
        assert qoe.cached_frames > 0

    def test_keyframes_are_larger(self):
        config = LiveConfig(keyframe_interval=10, keyframe_factor=6.0)
        loop = EventLoop()
        conn_stub = type("C", (), {})()
        source = LiveSource.__new__(LiveSource)
        source.config = config
        from repro.sim.rng import make_rng
        source._rng = make_rng(0, "live-source")
        key = source._frame_size(0)
        deltas = [source._frame_size(i) for i in range(1, 10)]
        assert key > 3 * max(deltas)

    def test_stats_empty(self):
        stats = LiveStats()
        assert stats.late_ratio == 0.0
