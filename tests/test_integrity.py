"""End-to-end integrity properties of the transport.

The invariant that matters above all: whatever the network does
(loss, outages, reordering across paths, duplicates from
re-injection), every stream's bytes arrive **intact, in order, and
exactly once** at the application.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (MinRttScheduler, ReinjectionMode, ThresholdConfig,
                        XlinkScheduler)
from repro.netem import Datagram, MultipathNetwork, OutageSchedule
from repro.quic.connection import Connection, ConnectionConfig
from repro.sim import EventLoop
from repro.sim.rng import make_rng


def transfer_digest(loss_rate=0.0, outage=None, scheduler=None,
                    size=150_000, seed=0, n_streams=1, three_paths=False):
    """Run a transfer and return (sent_digests, received_digests)."""
    loop = EventLoop()
    net = MultipathNetwork(loop)
    net.add_simple_path(0, 8e6, 0.015, loss_rate=loss_rate,
                        rng=make_rng(seed, "loss0"), outages=outage)
    net.add_simple_path(1, 6e6, 0.040, loss_rate=loss_rate,
                        rng=make_rng(seed, "loss1"))
    if three_paths:
        net.add_simple_path(2, 12e6, 0.008, loss_rate=loss_rate,
                            rng=make_rng(seed, "loss2"))
    client = Connection(loop, ConnectionConfig(is_client=True, seed=seed),
                        transmit=lambda pid, d: net.client.send(
                            Datagram(payload=d, path_id=pid)),
                        scheduler=MinRttScheduler(),
                        connection_name=f"integrity-{seed}")
    server = Connection(loop, ConnectionConfig(is_client=False, seed=seed),
                        transmit=lambda pid, d: net.server.send(
                            Datagram(payload=d, path_id=pid)),
                        scheduler=scheduler or MinRttScheduler(),
                        connection_name=f"integrity-{seed}")
    net.client.on_receive(lambda d: client.datagram_received(d.payload,
                                                             d.path_id))
    net.server.on_receive(lambda d: server.datagram_received(d.payload,
                                                             d.path_id))
    client.add_local_path(0, 0)
    server.add_local_path(0, 0)

    rng = make_rng(seed, "content")
    bodies = {}
    received = {}

    def on_established():
        client.open_path(1, 1)
        if three_paths:
            client.open_path(2, 2)
        for _ in range(n_streams):
            sid = client.create_stream()
            client.stream_send(sid, b"GET", fin=True)

    def serve(stream_id):
        stream = server.recv_streams[stream_id]
        served = getattr(server, "_served", set())
        if stream.is_complete and stream_id not in served:
            served.add(stream_id)
            server._served = served
            server.stream_read(stream_id)
            body = bytes(rng.getrandbits(8)
                         for _ in range(size // n_streams))
            bodies[stream_id] = hashlib.sha256(body).hexdigest()
            server.stream_send(stream_id, body, fin=True)

    chunks = {}

    def on_data(stream_id):
        chunks.setdefault(stream_id, bytearray()).extend(
            client.stream_read(stream_id))

    client.on_established = on_established
    server.on_stream_data = serve
    client.on_stream_data = on_data
    client.connect()
    loop.run(until=120.0)
    for sid, data in chunks.items():
        received[sid] = hashlib.sha256(bytes(data)).hexdigest()
    return bodies, received


class TestIntegrity:
    def test_clean_network(self):
        sent, got = transfer_digest()
        assert sent and sent == got

    def test_under_heavy_loss(self):
        sent, got = transfer_digest(loss_rate=0.08, seed=3)
        assert sent and sent == got

    def test_through_outage_with_reinjection(self):
        sched = XlinkScheduler(thresholds=ThresholdConfig(always_on=True))
        sent, got = transfer_digest(
            outage=OutageSchedule(windows=[(0.1, 2.0)]),
            scheduler=sched, seed=5)
        assert sent and sent == got

    def test_multiple_concurrent_streams(self):
        sent, got = transfer_digest(loss_rate=0.03, n_streams=4, seed=7)
        assert len(sent) == 4
        assert sent == got

    def test_three_paths_atsss(self):
        """Sec. 2: ATSSS steering across Wi-Fi + LTE + 5G -- the stack
        must handle three simultaneous paths."""
        sent, got = transfer_digest(three_paths=True, loss_rate=0.02,
                                    size=400_000, seed=9)
        assert sent and sent == got

    @given(st.integers(0, 10_000), st.integers(0, 6))
    @settings(max_examples=12, deadline=None)
    def test_integrity_property_random_loss(self, seed, loss_pct):
        """Property: any seed, loss up to 6%, with XLINK re-injection
        creating duplicates -- bytes always arrive intact."""
        sched = XlinkScheduler(mode=ReinjectionMode.STREAM_PRIORITY,
                               thresholds=ThresholdConfig(always_on=True))
        sent, got = transfer_digest(loss_rate=loss_pct / 100.0,
                                    scheduler=sched, size=60_000,
                                    seed=seed)
        assert sent and sent == got
