"""The host runtime's N=1 case is bit-identical to the legacy harness.

``tests/legacy_harness.py`` is a frozen snapshot of the pre-runtime
session harness (dedicated Connection pairs wired with lambdas, a
monkey-patched CM monitor, one MediaServer per session).  Every scheme
is replayed through both implementations on the same network -- with a
Wi-Fi outage window so re-injection, migration and loss recovery all
actually fire -- and every observable metric must match exactly, not
approximately.  This is the acceptance bar for the refactor: the
layered runtime may not change a single simulated event.
"""

from dataclasses import asdict

import pytest

from tests import legacy_harness as legacy
from repro.experiments.harness import (PathSpec, run_bulk_download,
                                       run_video_session)
from repro.netem import OutageSchedule
from repro.traces.radio_profiles import RadioType

VIDEO_SCHEMES = ["sp", "cm", "vanilla_mp", "reinject", "xlink", "xlink_nofa"]


def _paths(path_spec_cls, outage_window):
    """Same topology for both harnesses: Wi-Fi (with an outage) + LTE."""
    outages = (OutageSchedule([outage_window])
               if outage_window is not None else None)
    return [path_spec_cls(0, RadioType.WIFI, 0.015, rate_bps=12e6,
                          outages=outages),
            path_spec_cls(1, RadioType.LTE, 0.035, rate_bps=8e6)]


def _assert_identical(new, old):
    assert new.completed == old.completed
    assert new.duration_s == old.duration_s
    assert asdict(new.metrics) == asdict(old.metrics)
    assert new.reinjected_bytes == old.reinjected_bytes
    assert new.new_stream_bytes == old.new_stream_bytes
    # Transport-level counters, not just application metrics.
    assert vars(new.server.stats) == vars(old.server.stats)
    assert vars(new.client.stats) == vars(old.client.stats)


class TestVideoSessionEquivalence:
    @pytest.mark.parametrize("scheme", VIDEO_SCHEMES)
    def test_outage_session_bit_identical(self, scheme):
        """An outage mid-session: recovery machinery fires identically."""
        new = run_video_session(scheme, _paths(PathSpec, (0.5, 1.2)),
                                seed=7)
        old = legacy.run_video_session(
            scheme, _paths(legacy.PathSpec, (0.5, 1.2)), seed=7)
        _assert_identical(new, old)

    @pytest.mark.parametrize("scheme", ["sp", "xlink"])
    def test_clean_session_bit_identical(self, scheme):
        new = run_video_session(scheme, _paths(PathSpec, None), seed=3)
        old = legacy.run_video_session(scheme, _paths(legacy.PathSpec, None),
                                       seed=3)
        _assert_identical(new, old)

    def test_cm_long_outage_migrates_identically(self):
        """An outage longer than the stall threshold forces the CM
        baseline to actually migrate -- and it must do so at the exact
        same simulated instant as the monkey-patched legacy monitor."""
        new = run_video_session("cm", _paths(PathSpec, (0.5, 4.0)), seed=7)
        old = legacy.run_video_session(
            "cm", _paths(legacy.PathSpec, (0.5, 4.0)), seed=7)
        _assert_identical(new, old)
        # The scenario is only meaningful if migration saved the session
        # from rebuffering; single-path would have stalled.
        sp = run_video_session("sp", _paths(PathSpec, (0.5, 4.0)), seed=7)
        assert sp.metrics.rebuffer_time > new.metrics.rebuffer_time

    def test_primary_order_respected(self):
        new = run_video_session("xlink", _paths(PathSpec, None), seed=5,
                                primary_order=[RadioType.LTE,
                                               RadioType.WIFI])
        old = legacy.run_video_session(
            "xlink", _paths(legacy.PathSpec, None), seed=5,
            primary_order=[RadioType.LTE, RadioType.WIFI])
        _assert_identical(new, old)


class TestBulkDownloadEquivalence:
    @pytest.mark.parametrize("scheme", ["sp", "xlink", "mptcp"])
    def test_bulk_download_bit_identical(self, scheme):
        new = run_bulk_download(scheme, _paths(PathSpec, (0.5, 1.2)),
                                2_000_000, seed=5)
        old = legacy.run_bulk_download(
            scheme, _paths(legacy.PathSpec, (0.5, 1.2)), 2_000_000, seed=5)
        assert new.completed == old.completed
        assert new.duration_s == old.duration_s
        assert new.download_time_s == old.download_time_s
