"""The batched pump is observationally identical to the pre-batching pump.

``tests/data/pump_equivalence_snapshot.json`` is a frozen capture of
every observable trajectory taken *before* the run-until-blocked pump,
lazy-deadline timers and flat ACK bookkeeping landed: all 7 schemes
(six video schemes plus the MPTCP bulk baseline) on the equivalence
topology, the N=16 contention fingerprint, and the fixed-seed chaos
soak digests.  The batched scheduler must reproduce every value
bit-for-bit -- same floats, same counters, same digest -- proving the
rework changed how fast events are processed, not which events happen.

Regenerate (only when a PR *intends* a behaviour change, with the
justification in its description)::

    PYTHONPATH=src python tests/test_pump_equivalence.py --regen
"""

import json
import os
from dataclasses import asdict

import pytest

from repro.experiments.harness import (PathSpec, run_bulk_download,
                                       run_video_session)
from repro.netem import OutageSchedule
from repro.traces.radio_profiles import RadioType

SNAPSHOT_PATH = os.path.join(os.path.dirname(__file__), "data",
                             "pump_equivalence_snapshot.json")

VIDEO_SCHEMES = ["sp", "cm", "vanilla_mp", "reinject", "xlink", "xlink_nofa"]
#: the 7th scheme: the MPTCP bulk-download baseline (no QUIC host runtime)
BULK_SCHEME = "mptcp"


def _paths(outage_window=(0.5, 1.2)):
    """The equivalence topology: Wi-Fi (with an outage) + LTE."""
    outages = (OutageSchedule([outage_window])
               if outage_window is not None else None)
    return [PathSpec(0, RadioType.WIFI, 0.015, rate_bps=12e6,
                     outages=outages),
            PathSpec(1, RadioType.LTE, 0.035, rate_bps=8e6)]


def _video_fingerprint(scheme: str) -> dict:
    result = run_video_session(scheme, _paths(), seed=7)
    return {
        "completed": result.completed,
        "duration_s": result.duration_s,
        "metrics": asdict(result.metrics),
        "reinjected_bytes": result.reinjected_bytes,
        "new_stream_bytes": result.new_stream_bytes,
        "client_stats": dict(vars(result.client.stats)),
        "server_stats": dict(vars(result.server.stats)),
    }


def _bulk_fingerprint() -> dict:
    result = run_bulk_download(BULK_SCHEME, _paths(), 2_000_000, seed=5)
    return {
        "completed": result.completed,
        "duration_s": result.duration_s,
        "download_time_s": result.download_time_s,
    }


def _contention_fingerprint() -> list:
    from repro.experiments.contention import ContentionConfig, run_contention
    result = run_contention(ContentionConfig(sessions=16, seed=11,
                                             video_duration_s=4.0))
    fp = result.fingerprint()
    return [list(fp[3]) if i == 3 else fp[i] for i in range(len(fp))]


def _chaos_digest(scenarios: int, seed: int) -> str:
    from repro.experiments.chaos import ChaosSoakConfig, run_chaos_soak
    return run_chaos_soak(ChaosSoakConfig(scenarios=scenarios,
                                          seed=seed)).digest


def capture_snapshot() -> dict:
    return {
        "video": {scheme: _video_fingerprint(scheme)
                  for scheme in VIDEO_SCHEMES},
        "bulk_mptcp": _bulk_fingerprint(),
        "contention_n16": _contention_fingerprint(),
        "chaos_digest_6_seed7": _chaos_digest(6, 7),
        "chaos_digest_12_seed7": _chaos_digest(12, 7),
    }


@pytest.fixture(scope="module")
def snapshot() -> dict:
    with open(SNAPSHOT_PATH) as f:
        return json.load(f)


class TestPumpEquivalence:
    @pytest.mark.parametrize("scheme", VIDEO_SCHEMES)
    def test_video_scheme_matches_frozen_snapshot(self, snapshot, scheme):
        assert _video_fingerprint(scheme) == snapshot["video"][scheme]

    def test_bulk_mptcp_matches_frozen_snapshot(self, snapshot):
        assert _bulk_fingerprint() == snapshot["bulk_mptcp"]

    def test_contention_fingerprint_matches_frozen_snapshot(self, snapshot):
        assert _contention_fingerprint() == snapshot["contention_n16"]

    def test_chaos_soak_digest_is_byte_identical(self, snapshot):
        """The strictest pin: the digest hashes per-scenario exit times,
        packet counts and robustness counters across six fault
        scenarios -- one stray timer fire anywhere changes it."""
        assert _chaos_digest(6, 7) == snapshot["chaos_digest_6_seed7"]


class TestCcRefactorEquivalence:
    """The pluggable-CC refactor leaves default Cubic untouched.

    The frozen-snapshot pins above already prove the *outputs* are
    bit-identical; these pin the *mechanism*: a "+cubic" variant is
    the base scheme itself (no shadow registration), and a default
    session never engages any of the pacing machinery.
    """

    def test_cubic_variant_is_the_base_scheme(self):
        from repro.experiments.harness import scheme_with_cc
        for scheme in VIDEO_SCHEMES:
            assert scheme_with_cc(scheme, "cubic") == scheme
        # the MPTCP baseline keeps its own fixed controller
        assert scheme_with_cc(BULK_SCHEME, "bbr") == BULK_SCHEME

    def test_default_cubic_session_stays_unpaced(self):
        result = run_video_session("xlink", _paths(None), seed=3)
        conn = result.client
        assert conn._any_paced is False
        assert conn._pacing_event is None
        for path in conn.paths.values():
            assert path.cc.paced is False
            assert path.loss.rate_sampling is False
            # no delivery-rate bookkeeping ever ran
            assert path.loss.delivered == 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--regen", action="store_true",
                        help="re-capture the frozen snapshot")
    args = parser.parse_args()
    if not args.regen:
        parser.error("nothing to do; pass --regen to re-capture")
    os.makedirs(os.path.dirname(SNAPSHOT_PATH), exist_ok=True)
    snap = capture_snapshot()
    with open(SNAPSHOT_PATH, "w") as f:
        json.dump(snap, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {SNAPSHOT_PATH}")
    print(f"chaos digest (6, seed 7):  {snap['chaos_digest_6_seed7']}")
    print(f"chaos digest (12, seed 7): {snap['chaos_digest_12_seed7']}")
