"""Tests for the video substrate: media model, HTTP layer, player, server."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video import (MediaServer, PlayerConfig, RangeRequest,
                         RangeResponseMeta, Video, VideoPlayer, make_video,
                         parse_request)


class TestVideoModel:
    def test_make_video_dimensions(self):
        v = make_video(duration_s=10.0, fps=25, bitrate_bps=2_000_000)
        assert len(v.frame_sizes) == 250
        assert v.duration_s == pytest.approx(10.0)
        assert v.total_bytes == pytest.approx(2_000_000 / 8 * 10, rel=0.15)

    def test_first_frame_is_large(self):
        v = make_video(first_frame_factor=8.0)
        mean_rest = sum(v.frame_sizes[1:]) / (len(v.frame_sizes) - 1)
        assert v.first_frame_size > 4 * mean_rest

    def test_chunks_cover_video(self):
        v = make_video(duration_s=5.0, chunk_size=100_000)
        chunks = v.chunks()
        assert chunks[0].start == 0
        assert chunks[-1].end == v.total_bytes
        for a, b in zip(chunks, chunks[1:]):
            assert a.end == b.start
        assert all(c.size <= 100_000 for c in chunks)

    def test_frames_in_bytes(self):
        v = Video(name="t", fps=10, frame_sizes=[100, 50, 50])
        assert v.frames_in_bytes(99) == 0
        assert v.frames_in_bytes(100) == 1
        assert v.frames_in_bytes(149) == 1
        assert v.frames_in_bytes(200) == 3

    def test_bytes_for_frames(self):
        v = Video(name="t", fps=10, frame_sizes=[100, 50, 50])
        assert v.bytes_for_frames(0) == 0
        assert v.bytes_for_frames(2) == 150

    def test_frame_offsets(self):
        v = Video(name="t", fps=10, frame_sizes=[100, 50])
        assert v.frame_offsets() == [(0, 100), (100, 150)]

    def test_deterministic_by_seed(self):
        assert make_video(seed=5).frame_sizes == make_video(seed=5).frame_sizes
        assert make_video(seed=5).frame_sizes != make_video(seed=6).frame_sizes

    def test_mean_bps(self):
        v = Video(name="t", fps=10, frame_sizes=[1000] * 10)
        assert v.mean_bps == pytest.approx(10_000 * 8 / 1.0)

    def test_rejects_tiny_video(self):
        with pytest.raises(ValueError):
            make_video(duration_s=0.01, fps=10)


class TestHttpLayer:
    def test_request_roundtrip(self):
        req = RangeRequest(video_name="v1", start=100, end=500)
        assert parse_request(req.encode()) == req

    def test_parse_incomplete_returns_none(self):
        assert parse_request(b"GET v1 bytes=0-10") is None  # no CRLF

    def test_parse_garbage_returns_none(self):
        assert parse_request(b"POST x y\r\n") is None
        assert parse_request(b"GET v1 bites=0-10\r\n") is None
        assert parse_request(b"\xff\xfe\r\n") is None

    def test_response_meta_roundtrip(self):
        meta = RangeResponseMeta(total_size=10_000, start=100, end=500)
        decoded = RangeResponseMeta.decode(meta.encode())
        assert decoded == meta
        assert len(meta.encode()) == RangeResponseMeta.HEADER_LEN

    def test_response_meta_truncated(self):
        with pytest.raises(ValueError):
            RangeResponseMeta.decode(b"\x00" * 10)

    @given(st.integers(0, 1 << 40), st.integers(0, 1 << 40))
    @settings(max_examples=100)
    def test_request_roundtrip_property(self, start, size):
        req = RangeRequest(video_name="v", start=start, end=start + size)
        assert parse_request(req.encode()) == req


class FakeLoop:
    """Minimal loop stub for player unit tests (no transport)."""

    def __init__(self):
        self.now = 0.0
        self.scheduled = []

    def schedule_after(self, delay, cb, label=""):
        event = type("E", (), {"cancel": lambda self: None})()
        self.scheduled.append((self.now + delay, cb))
        return event


class FakeConn:
    """Connection stub recording stream sends."""

    def __init__(self):
        self.sent = []
        self.next_id = 0
        self.recv_streams = {}
        self.on_stream_data = None
        self.qoe_provider = None

    def create_stream(self, priority=0):
        sid = self.next_id
        self.next_id += 4
        return sid

    def stream_send(self, sid, data, fin=False, **kw):
        self.sent.append((sid, data, fin))

    def stream_read(self, sid):
        return b""


class TestPlayerUnit:
    def test_start_issues_concurrent_requests(self):
        loop, conn = FakeLoop(), FakeConn()
        video = make_video(duration_s=5.0, chunk_size=64 * 1024)
        player = VideoPlayer(loop, conn, video,
                             PlayerConfig(concurrent_requests=3))
        player.start()
        assert len(conn.sent) == 3
        req = parse_request(conn.sent[0][1])
        assert req.start == 0

    def test_respects_buffer_cap(self):
        loop, conn = FakeLoop(), FakeConn()
        video = make_video(duration_s=5.0, chunk_size=64 * 1024)
        player = VideoPlayer(loop, conn, video,
                             PlayerConfig(concurrent_requests=99,
                                          max_buffer_s=0.0))
        player.start()
        assert len(conn.sent) == 0

    def test_qoe_signals_shape(self):
        loop, conn = FakeLoop(), FakeConn()
        video = make_video(duration_s=5.0)
        player = VideoPlayer(loop, conn, video)
        qoe = player.qoe_signals()
        assert qoe.fps == video.fps
        assert qoe.bps == int(video.mean_bps)
        assert qoe.cached_bytes == 0
        assert qoe.cached_frames == 0

    def test_qoe_provider_registered(self):
        loop, conn = FakeLoop(), FakeConn()
        player = VideoPlayer(loop, conn, make_video())
        assert conn.qoe_provider is not None
        assert conn.qoe_provider() == player.qoe_signals()


class TestMediaServerUnit:
    def _server(self, video=None, ffa=True):
        conn = _RecordingConn()
        video = video or make_video(duration_s=5.0)
        server = MediaServer(conn, {video.name: video},
                             first_frame_acceleration=ffa)
        return conn, video, server

    def test_serves_requested_range(self):
        conn, video, server = self._server()
        conn.feed(0, RangeRequest(video.name, 0, 1000).encode())
        sid, data, fin, kw = conn.sent[0]
        assert fin
        meta = RangeResponseMeta.decode(data)
        assert meta.total_size == video.total_bytes
        assert meta.start == 0 and meta.end == 1000
        assert len(data) == RangeResponseMeta.HEADER_LEN + 1000

    def test_range_clamped_to_video(self):
        conn, video, server = self._server()
        conn.feed(0, RangeRequest(video.name, 0, 10**9).encode())
        _sid, data, _fin, _kw = conn.sent[0]
        meta = RangeResponseMeta.decode(data)
        assert meta.end == video.total_bytes

    def test_unknown_video_gets_empty_fin(self):
        conn, _video, server = self._server()
        conn.feed(0, RangeRequest("nope", 0, 100).encode())
        sid, data, fin, kw = conn.sent[0]
        assert data == b"" and fin

    def test_first_frame_priority_marked(self):
        """Ranges containing the video start carry the FF priority tag."""
        conn, video, server = self._server(ffa=True)
        conn.feed(0, RangeRequest(video.name, 0, video.total_bytes).encode())
        _sid, _data, _fin, kw = conn.sent[0]
        assert kw.get("frame_priority") == 0
        assert kw.get("size") == video.first_frame_size

    def test_no_priority_without_ffa(self):
        conn, video, server = self._server(ffa=False)
        conn.feed(0, RangeRequest(video.name, 0, video.total_bytes).encode())
        _sid, _data, _fin, kw = conn.sent[0]
        assert "frame_priority" not in kw

    def test_later_ranges_not_marked(self):
        conn, video, server = self._server(ffa=True)
        start = video.first_frame_size + 100
        conn.feed(0, RangeRequest(video.name, start,
                                  video.total_bytes).encode())
        _sid, _data, _fin, kw = conn.sent[0]
        assert "frame_priority" not in kw

    def test_stream_priority_orders_by_position(self):
        conn, video, server = self._server()
        conn.feed(0, RangeRequest(video.name, 0,
                                  video.chunk_size).encode())
        conn.feed(4, RangeRequest(video.name, 3 * video.chunk_size,
                                  4 * video.chunk_size).encode())
        assert conn.sent[0][3].get("priority") == 0
        assert conn.sent[1][3].get("priority") == 3

    def test_fragmented_request_buffered(self):
        conn, video, server = self._server()
        encoded = RangeRequest(video.name, 0, 100).encode()
        conn.feed(0, encoded[:5])
        assert conn.sent == []
        conn.feed(0, encoded[5:])
        assert len(conn.sent) == 1

    def test_body_bytes_deterministic_by_offset(self):
        video = make_video(duration_s=5.0)
        whole = MediaServer._body_bytes(video, 0, 2000)
        part = MediaServer._body_bytes(video, 500, 1500)
        assert whole[500:1500] == part


class _RecordingConn:
    """Server-side connection stub that buffers incoming stream data."""

    def __init__(self):
        self.sent = []
        self.on_stream_data = None
        self._pending = {}

    def feed(self, sid, data):
        self._pending.setdefault(sid, bytearray()).extend(data)
        if self.on_stream_data:
            self.on_stream_data(sid)

    def stream_read(self, sid):
        data = bytes(self._pending.get(sid, b""))
        self._pending[sid] = bytearray()
        return data

    def stream_send(self, sid, data, fin=False, **kw):
        self.sent.append((sid, data, fin, kw))
