"""Tests for stream send/receive halves and the range-set."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quic.errors import FinalSizeError, StreamStateError
from repro.quic.stream import (DEFAULT_FRAME_PRIORITY, FIRST_FRAME_PRIORITY,
                               ReceiveStream, SendStream, _RangeSet)


class TestSendStream:
    def test_write_accumulates(self):
        s = SendStream(0)
        s.write(b"hello")
        s.write(b"world", fin=True)
        assert s.length == 10
        assert s.fin_offset == 10

    def test_write_after_fin_rejected(self):
        s = SendStream(0)
        s.write(b"x", fin=True)
        with pytest.raises(StreamStateError):
            s.write(b"y")

    def test_data_for_range(self):
        s = SendStream(0)
        s.write(b"abcdefgh")
        assert s.data_for(2, 3) == b"cde"

    def test_data_for_out_of_range(self):
        s = SendStream(0)
        s.write(b"abc")
        with pytest.raises(StreamStateError):
            s.data_for(1, 10)

    def test_frame_priority_ranges(self):
        s = SendStream(0)
        s.write(b"A" * 100, frame_priority=FIRST_FRAME_PRIORITY,
                position=0, size=40)
        assert s.frame_priority_at(0) == FIRST_FRAME_PRIORITY
        assert s.frame_priority_at(39) == FIRST_FRAME_PRIORITY
        assert s.frame_priority_at(40) == DEFAULT_FRAME_PRIORITY

    def test_priority_range_end(self):
        s = SendStream(0)
        s.write(b"A" * 100, frame_priority=FIRST_FRAME_PRIORITY,
                position=10, size=20)
        assert s.priority_range_end(FIRST_FRAME_PRIORITY) == 30
        assert s.priority_range_end(99) is None

    def test_implicit_priority_range_covers_write(self):
        s = SendStream(0)
        s.write(b"x" * 10)
        s.write(b"y" * 10, frame_priority=1)
        assert s.frame_priority_at(5) == DEFAULT_FRAME_PRIORITY
        assert s.frame_priority_at(15) == 1

    def test_fin_range_detection(self):
        s = SendStream(0)
        s.write(b"abcdef", fin=True)
        assert s.is_fin_range(3, 3)
        assert not s.is_fin_range(0, 3)

    def test_fully_acked_requires_data_and_fin(self):
        s = SendStream(0)
        s.write(b"abcdef", fin=True)
        s.on_acked(0, 6, fin=False)
        assert not s.fully_acked
        s.on_acked(6, 0, fin=True)
        assert s.fully_acked

    def test_fully_acked_partial_data(self):
        s = SendStream(0)
        s.write(b"abcdef", fin=True)
        s.on_acked(0, 3, fin=True)
        assert not s.fully_acked
        s.on_acked(3, 3, fin=False)
        assert s.fully_acked


class TestReceiveStream:
    def test_in_order_read(self):
        r = ReceiveStream(0)
        r.on_data(0, b"abc", fin=False)
        assert r.read_available() == b"abc"
        assert r.read_available() == b""

    def test_out_of_order_reassembly(self):
        r = ReceiveStream(0)
        r.on_data(3, b"def", fin=True)
        assert r.read_available() == b""
        r.on_data(0, b"abc", fin=False)
        assert r.read_available() == b"abcdef"
        assert r.is_complete
        assert r.fully_read

    def test_duplicate_data_ignored(self):
        """Re-injection produces duplicates; they must be harmless."""
        r = ReceiveStream(0)
        r.on_data(0, b"abc", fin=False)
        r.on_data(0, b"abc", fin=False)
        assert r.read_available() == b"abc"
        assert r.duplicate_bytes == 3

    def test_partial_overlap_deduplicated(self):
        r = ReceiveStream(0)
        r.on_data(0, b"abcd", fin=False)
        r.on_data(2, b"cdef", fin=False)
        assert r.read_available() == b"abcdef"
        assert r.duplicate_bytes == 2

    def test_overlap_spanning_hole(self):
        r = ReceiveStream(0)
        r.on_data(0, b"ab", fin=False)
        r.on_data(4, b"ef", fin=False)
        r.on_data(0, b"abcdef", fin=False)
        assert r.read_available() == b"abcdef"

    def test_conflicting_final_size_rejected(self):
        r = ReceiveStream(0)
        r.on_data(0, b"abc", fin=True)
        with pytest.raises(FinalSizeError):
            r.on_data(0, b"abcd", fin=True)

    def test_data_beyond_final_size_rejected(self):
        r = ReceiveStream(0)
        r.on_data(0, b"abc", fin=True)
        with pytest.raises(FinalSizeError):
            r.on_data(3, b"x", fin=False)

    def test_is_complete_needs_all_bytes(self):
        r = ReceiveStream(0)
        r.on_data(4, b"ef", fin=True)
        assert not r.is_complete
        r.on_data(0, b"abcd", fin=False)
        assert r.is_complete

    def test_raw_byte_accounting(self):
        r = ReceiveStream(0)
        r.on_data(0, b"abc", fin=False)
        r.on_data(0, b"abc", fin=False)
        assert r.bytes_received_raw == 6

    @given(st.permutations(list(range(10))))
    @settings(max_examples=50)
    def test_any_arrival_order_reassembles(self, order):
        """Property: arrival order never changes the reassembled bytes."""
        payload = bytes(range(100, 110))
        r = ReceiveStream(0)
        for i in order:
            r.on_data(i, payload[i:i + 1], fin=(i == 9))
        assert r.read_available() == payload
        assert r.is_complete


class TestRangeSet:
    def test_add_and_covers(self):
        rs = _RangeSet()
        rs.add(0, 10)
        assert rs.covers(0, 10)
        assert rs.covers(3, 7)
        assert not rs.covers(5, 15)

    def test_merge_adjacent(self):
        rs = _RangeSet()
        rs.add(0, 5)
        rs.add(5, 10)
        assert rs.covers(0, 10)
        assert len(rs) == 1

    def test_merge_overlapping(self):
        rs = _RangeSet()
        rs.add(0, 6)
        rs.add(4, 10)
        assert rs.covers(0, 10)
        assert len(rs) == 1

    def test_disjoint_ranges(self):
        rs = _RangeSet()
        rs.add(0, 3)
        rs.add(7, 9)
        assert len(rs) == 2
        assert not rs.covers(0, 9)

    def test_missing_within(self):
        rs = _RangeSet()
        rs.add(2, 4)
        rs.add(6, 8)
        assert rs.missing_within(0, 10) == [(0, 2), (4, 6), (8, 10)]

    def test_missing_within_fully_covered(self):
        rs = _RangeSet()
        rs.add(0, 10)
        assert rs.missing_within(2, 8) == []

    def test_missing_within_empty_set(self):
        rs = _RangeSet()
        assert rs.missing_within(3, 7) == [(3, 7)]

    def test_empty_add_ignored(self):
        rs = _RangeSet()
        rs.add(5, 5)
        assert len(rs) == 0

    def test_total_and_upper_bound(self):
        rs = _RangeSet()
        rs.add(0, 4)
        rs.add(10, 12)
        assert rs.total() == 6
        assert rs.upper_bound() == 12

    @given(st.lists(st.tuples(st.integers(0, 100), st.integers(0, 100)),
                    max_size=30))
    @settings(max_examples=100)
    def test_rangeset_matches_reference_set(self, pairs):
        """Property: the range set equals a brute-force set of ints."""
        rs = _RangeSet()
        reference = set()
        for a, b in pairs:
            start, end = min(a, b), max(a, b)
            rs.add(start, end)
            reference.update(range(start, end))
        assert rs.total() == len(reference)
        for start in range(0, 100, 13):
            end = start + 9
            covered = all(i in reference for i in range(start, end))
            assert rs.covers(start, end) == covered
