"""Tests for the parallel experiment runner.

The load-bearing guarantee is the determinism contract: fanning
sessions out over a process pool must produce *bit-identical* results
to the serial loop, because every task carries a fully-derived seed and
outcomes are reassembled in submission order.
"""

from __future__ import annotations

import pytest

from repro.experiments.abtest import (ABTestConfig, build_ab_day_tasks,
                                      run_ab_day)
from repro.experiments.parallel import (SessionTask, available_workers,
                                        fan_out, resolve_workers,
                                        run_session_tasks)
from repro.experiments.harness import PathSpec
from repro.traces.radio_profiles import RadioType


def _small_cfg(**overrides) -> ABTestConfig:
    defaults = dict(users_per_day=4, days=1, video_duration_s=4.0,
                    seed=11)
    defaults.update(overrides)
    return ABTestConfig(**defaults)


def _square(x):
    return x * x


class TestFanOut:
    def test_preserves_order_serial(self):
        jobs = [{"x": i} for i in range(10)]
        assert fan_out(_square, jobs, workers=1) == [i * i for i in range(10)]

    def test_preserves_order_parallel(self):
        jobs = [{"x": i} for i in range(10)]
        assert fan_out(_square, jobs, workers=3) == [i * i for i in range(10)]

    def test_empty_job_list(self):
        assert fan_out(_square, [], workers=4) == []

    def test_resolve_workers(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(None) == available_workers()
        assert resolve_workers(0) == available_workers()


class TestSeedStability:
    """The same ABTestConfig seed => identical DayResult metrics,
    serial vs parallel (the determinism contract of the runner)."""

    def test_ab_day_serial_vs_parallel_identical(self):
        cfg = _small_cfg()
        schemes = ["sp", "xlink"]
        serial = run_ab_day(cfg, 1, schemes, workers=1)
        parallel = run_ab_day(cfg, 1, schemes, workers=2)
        for scheme in schemes:
            assert serial[scheme].sessions == parallel[scheme].sessions
            assert serial[scheme].rcts == parallel[scheme].rcts
            assert (serial[scheme].rebuffer_rate
                    == parallel[scheme].rebuffer_rate)

    def test_ab_day_serial_is_repeatable(self):
        cfg = _small_cfg()
        a = run_ab_day(cfg, 1, ["sp"], workers=1)
        b = run_ab_day(cfg, 1, ["sp"], workers=1)
        assert a["sp"].sessions == b["sp"].sessions

    def test_task_seeds_do_not_depend_on_scheme_order(self):
        cfg = _small_cfg()
        ab = build_ab_day_tasks(cfg, 1, ["sp", "xlink"])
        ba = build_ab_day_tasks(cfg, 1, ["xlink", "sp"])
        seeds_ab = {t.key: t.seed for t in ab}
        seeds_ba = {t.key: t.seed for t in ba}
        assert seeds_ab == seeds_ba


class TestSessionTasks:
    def _task(self, key=0, seed=5) -> SessionTask:
        paths = [PathSpec(net_path_id=0, radio=RadioType.WIFI,
                          one_way_delay_s=0.010, rate_bps=8e6)]
        return SessionTask(key=key, scheme="sp", paths=paths,
                           timeout_s=30.0, seed=seed)

    def test_outcome_matches_across_workers(self):
        serial = run_session_tasks([self._task()], workers=1)[0]
        parallel = run_session_tasks([self._task(), self._task(key=1)],
                                     workers=2)
        assert serial.completed
        assert parallel[0].metrics == serial.metrics
        assert parallel[0].key == 0 and parallel[1].key == 1

    def test_bulk_mode(self):
        task = self._task()
        task.mode = "bulk"
        task.total_bytes = 200_000
        outcome = run_session_tasks([task], workers=1)[0]
        assert outcome.download_time_s is not None

    def test_unknown_mode_rejected(self):
        task = self._task()
        task.mode = "nope"
        with pytest.raises(ValueError):
            run_session_tasks([task], workers=1)

    def test_outcomes_are_plain_data(self):
        import pickle
        outcome = run_session_tasks([self._task()], workers=1)[0]
        assert pickle.loads(pickle.dumps(outcome)) == outcome
