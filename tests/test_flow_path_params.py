"""Tests for flow control, transport parameters, and path state."""

import pytest

from repro.quic.cc import NewRenoCc
from repro.quic.cid import ConnectionId
from repro.quic.errors import FlowControlError
from repro.quic.flow_control import FlowControlWindow
from repro.quic.frames import PathStatus
from repro.quic.path import Path, PathState
from repro.quic.transport_params import TransportParameters


class TestFlowControlWindow:
    def test_sendable_shrinks_with_offset(self):
        fc = FlowControlWindow.with_window(1000)
        assert fc.sendable(0) == 1000
        assert fc.sendable(400) == 600
        assert fc.sendable(1000) == 0
        assert fc.sendable(1500) == 0

    def test_peer_update_only_raises(self):
        fc = FlowControlWindow.with_window(1000)
        fc.on_peer_update(500)     # stale update ignored
        assert fc.limit == 1000
        fc.on_peer_update(2000)
        assert fc.limit == 2000

    def test_check_receive_enforces_limit(self):
        fc = FlowControlWindow.with_window(1000)
        fc.check_receive(1000)  # exactly at limit is fine
        with pytest.raises(FlowControlError):
            fc.check_receive(1001)

    def test_maybe_advance_half_window_rule(self):
        fc = FlowControlWindow.with_window(1000)
        # Consumer at 300: remaining 700 >= 500, no update.
        assert fc.maybe_advance(300) == 0
        # Consumer at 600: remaining 400 < 500 -> bump to 1600.
        assert fc.maybe_advance(600) == 1600
        assert fc.limit == 1600

    def test_maybe_advance_is_monotone(self):
        fc = FlowControlWindow.with_window(1000)
        first = fc.maybe_advance(900)
        second = fc.maybe_advance(901)
        assert first == 1900
        assert second in (0, 1901)
        assert fc.limit >= first


class TestTransportParameters:
    def test_roundtrip(self):
        params = TransportParameters(enable_multipath=True,
                                     initial_max_data=123456,
                                     initial_max_stream_data=7890,
                                     initial_max_streams=42,
                                     max_ack_delay_us=10_000,
                                     active_cid_limit=5)
        assert TransportParameters.decode(params.encode()) == params

    def test_default_roundtrip(self):
        params = TransportParameters()
        assert TransportParameters.decode(params.encode()) == params

    def test_negotiation_requires_both(self):
        on = TransportParameters(enable_multipath=True)
        off = TransportParameters(enable_multipath=False)
        assert TransportParameters.negotiated_multipath(on, on)
        assert not TransportParameters.negotiated_multipath(on, off)
        assert not TransportParameters.negotiated_multipath(off, on)
        assert not TransportParameters.negotiated_multipath(off, off)


def _path(path_id=0):
    cid = ConnectionId(cid=bytes([path_id + 1]) * 8,
                       sequence_number=path_id)
    return Path(path_id, cid, cid, NewRenoCc())


class TestPathState:
    def test_initial_state(self):
        path = _path()
        assert path.state is PathState.PENDING
        assert path.status is PathStatus.AVAILABLE
        assert not path.is_active

    def test_packet_numbers_monotone(self):
        path = _path()
        pns = [path.next_packet_number() for _ in range(5)]
        assert pns == [0, 1, 2, 3, 4]

    def test_record_received_tracks_ranges(self):
        path = _path()
        assert path.record_received(0, now=1.0)
        assert path.record_received(1, now=1.1)
        assert path.record_received(3, now=1.2)
        assert path.ack_pending == [(0, 1), (3, 3)]
        assert path.largest_received_pn == 3

    def test_duplicate_receive_rejected(self):
        path = _path()
        assert path.record_received(5, now=1.0)
        assert not path.record_received(5, now=1.1)

    def test_range_merge_fills_gap(self):
        path = _path()
        for pn in (0, 2, 1):
            path.record_received(pn, now=1.0)
        assert path.ack_pending == [(0, 2)]

    def test_abandon(self):
        path = _path()
        path.state = PathState.ACTIVE
        path.abandon()
        assert path.state is PathState.ABANDONED
        assert path.status is PathStatus.ABANDON
        assert not path.is_usable

    def test_suspect_requires_silence_and_history(self):
        path = _path()
        path.state = PathState.ACTIVE
        # Never received, nothing unacked: not suspect.
        assert not path.is_suspect(now=100.0)
        path.record_received(0, now=100.0)
        path.packets_received = 1
        assert not path.is_suspect(now=100.1)
        # A long silence afterwards makes it suspect.
        assert path.is_suspect(now=105.0)

    def test_suspect_with_unacked_only(self):
        from repro.quic.loss_detection import SentPacket
        path = _path()
        path.loss.on_packet_sent(SentPacket(
            packet_number=0, sent_time=0.0, size=100,
            ack_eliciting=True, in_flight=True))
        assert path.is_suspect(now=10.0)
