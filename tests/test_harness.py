"""Integration tests for the experiment harness and A/B simulator."""

import pytest

from repro.experiments import (ABTestConfig, PathSpec, SCHEMES,
                               run_ab_day, run_bulk_download,
                               run_video_session)
from repro.experiments.abtest import sample_user_conditions
from repro.netem import OutageSchedule
from repro.sim.rng import make_rng
from repro.traces.radio_profiles import RadioType
from repro.video import PlayerConfig, make_video


def wifi_lte_paths(wifi_rate=10e6, lte_rate=5e6, wifi_outage=None,
                   lte_outage=None):
    return [
        PathSpec(net_path_id=0, radio=RadioType.WIFI,
                 one_way_delay_s=0.010, rate_bps=wifi_rate,
                 outages=wifi_outage),
        PathSpec(net_path_id=1, radio=RadioType.LTE,
                 one_way_delay_s=0.035, rate_bps=lte_rate,
                 outages=lte_outage),
    ]


SMALL_VIDEO = make_video(duration_s=4.0, bitrate_bps=1_500_000, seed=9)


class TestSchemeTable:
    def test_all_schemes_defined(self):
        base = {name for name in SCHEMES if "+" not in name}
        assert base == {"sp", "cm", "vanilla_mp", "reinject",
                        "xlink", "xlink_nofa", "mptcp"}
        # anything else is a scheme_with_cc() "<scheme>+<cc>" variant
        # registered by an earlier test or driver in this process
        for name in set(SCHEMES) - base:
            root, _, cc = name.partition("+")
            assert root in base
            assert SCHEMES[name].cc_algorithm == cc

    def test_sp_single_path(self):
        assert not SCHEMES["sp"].multipath

    def test_xlink_has_thresholds(self):
        assert SCHEMES["xlink"].thresholds is not None
        assert not SCHEMES["xlink"].thresholds.always_on

    def test_reinject_always_on(self):
        assert SCHEMES["reinject"].thresholds.always_on


class TestVideoSession:
    def test_path_spec_validation(self):
        with pytest.raises(ValueError):
            PathSpec(net_path_id=0, radio=RadioType.WIFI,
                     one_way_delay_s=0.01)
        with pytest.raises(ValueError):
            PathSpec(net_path_id=0, radio=RadioType.WIFI,
                     one_way_delay_s=0.01, rate_bps=1e6, trace_ms=[1])

    def test_sp_session_completes(self):
        result = run_video_session("sp", wifi_lte_paths()[:1],
                                   video=SMALL_VIDEO, seed=1)
        assert result.completed
        assert result.metrics.first_frame_latency is not None
        assert result.metrics.request_completion_times
        assert result.redundancy_percent == 0.0

    def test_xlink_session_completes(self):
        result = run_video_session("xlink", wifi_lte_paths(),
                                   video=SMALL_VIDEO, seed=1)
        assert result.completed
        assert len(result.client.paths) == 2

    def test_mptcp_rejected_for_video(self):
        with pytest.raises(ValueError):
            run_video_session("mptcp", wifi_lte_paths(), video=SMALL_VIDEO)

    def test_primary_path_is_wifi(self):
        """Wireless-aware selection: Wi-Fi preferred over LTE."""
        result = run_video_session("xlink", wifi_lte_paths(),
                                   video=SMALL_VIDEO, seed=1)
        assert result.client.net_path_of[0] == 0  # wifi net id

    def test_primary_order_override(self):
        result = run_video_session(
            "xlink", wifi_lte_paths(), video=SMALL_VIDEO, seed=1,
            primary_order=(RadioType.LTE, RadioType.WIFI))
        assert result.client.net_path_of[0] == 1

    def test_deterministic_given_seed(self):
        a = run_video_session("xlink", wifi_lte_paths(),
                              video=SMALL_VIDEO, seed=5)
        b = run_video_session("xlink", wifi_lte_paths(),
                              video=SMALL_VIDEO, seed=5)
        assert a.metrics.request_completion_times == \
            b.metrics.request_completion_times
        assert a.duration_s == b.duration_s

    def test_cm_session_migrates_on_outage(self):
        paths = wifi_lte_paths(
            wifi_outage=OutageSchedule(windows=[(0.5, 30.0)]))
        result = run_video_session("cm", paths, video=SMALL_VIDEO,
                                   timeout_s=25.0, seed=2)
        # The monitor must have moved the connection off the dead wifi.
        assert result.completed
        assert result.duration_s < 25.0

    def test_sp_stalls_through_outage(self):
        paths = [wifi_lte_paths(
            wifi_outage=OutageSchedule(windows=[(0.5, 3.0)]))[0]]
        result = run_video_session("sp", paths, video=SMALL_VIDEO,
                                   timeout_s=30.0, seed=2)
        assert result.completed
        assert result.duration_s > 3.0


class TestBulkDownload:
    def test_quic_bulk(self):
        result = run_bulk_download("xlink", wifi_lte_paths(), 500_000,
                                   seed=3)
        assert result.completed
        assert result.download_time_s is not None
        assert result.download_time_s > 0

    def test_mptcp_bulk(self):
        result = run_bulk_download("mptcp", wifi_lte_paths(), 500_000,
                                   seed=3)
        assert result.completed
        assert result.download_time_s is not None

    def test_sp_bulk_uses_one_path(self):
        result = run_bulk_download("sp", wifi_lte_paths()[:1], 300_000,
                                   seed=3)
        assert result.completed


class TestAbPopulation:
    def test_conditions_sampling_shape(self):
        cfg = ABTestConfig()
        rng = make_rng(1, "c")
        conditions = [sample_user_conditions(cfg, rng) for _ in range(60)]
        lte_delays = [c.lte.one_way_delay_s for c in conditions]
        wifi_delays = [c.wifi.one_way_delay_s for c in conditions]
        assert sorted(lte_delays)[30] > sorted(wifi_delays)[30]
        assert any(c.wifi.outages for c in conditions)
        assert any(c.lte.outages for c in conditions)

    def test_sp_gets_only_wifi(self):
        cfg = ABTestConfig()
        rng = make_rng(1, "c")
        cond = sample_user_conditions(cfg, rng)
        assert len(cond.paths_for("sp")) == 1
        assert cond.paths_for("sp")[0].radio is RadioType.WIFI
        assert len(cond.paths_for("xlink")) == 2

    def test_ab_day_runs_all_schemes(self):
        cfg = ABTestConfig(users_per_day=2, video_duration_s=3.0,
                           timeout_s=30.0, seed=11)
        results = run_ab_day(cfg, 1, ["sp", "xlink"])
        assert set(results) == {"sp", "xlink"}
        for day in results.values():
            assert len(day.sessions) == 2
            assert day.rcts

    def test_ab_day_deterministic(self):
        cfg = ABTestConfig(users_per_day=2, video_duration_s=3.0,
                           timeout_s=30.0, seed=11)
        a = run_ab_day(cfg, 1, ["sp"])["sp"]
        b = run_ab_day(cfg, 1, ["sp"])["sp"]
        assert a.rcts == b.rcts

    def test_different_days_differ(self):
        cfg = ABTestConfig(users_per_day=2, video_duration_s=3.0,
                           timeout_s=30.0, seed=11)
        a = run_ab_day(cfg, 1, ["sp"])["sp"]
        b = run_ab_day(cfg, 2, ["sp"])["sp"]
        assert a.rcts != b.rcts
