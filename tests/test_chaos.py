"""Chaos injection, transport hardening, and the soak's determinism.

Covers the robustness contract end to end: the seeded fault pipeline
(`repro.netem.chaos`), the never-raise guarantee of
``Connection.datagram_received`` under fuzzed and corrupted input,
idle-timeout shutdown, host eviction, abandoned-path accounting, the
re-injection storm guard, CM rebind when the primary dies
mid-handshake, and bit-identical chaos-soak fingerprints.
"""

import random

from repro.core import MinRttScheduler
from repro.host import SessionRuntime, VideoSessionSpec
from repro.host.server import ServerHost
from repro.host.specs import PathSpec, SCHEMES, build_network
from repro.netem import (ChaosBox, ChaosSchedule, Datagram,
                         MultipathNetwork, OutageSchedule)
from repro.quic.connection import Connection, ConnectionConfig, SendChunk
from repro.quic.errors import FrameEncodingError, QuicError
from repro.quic.frames import decode_frames
from repro.quic.packets import decode_header
from repro.quic.path import PathState
from repro.sim import EventLoop
from repro.sim.rng import make_rng
from repro.traces.radio_profiles import RadioType
from repro.video import PlayerConfig, make_video


def build_pair(loop, net, client_config=None, server_config=None):
    client = Connection(
        loop, client_config or ConnectionConfig(is_client=True),
        transmit=lambda pid, d: net.client.send(
            Datagram(payload=d, path_id=pid)),
        scheduler=MinRttScheduler(), connection_name="chaos-test")
    server = Connection(
        loop, server_config or ConnectionConfig(is_client=False),
        transmit=lambda pid, d: net.server.send(
            Datagram(payload=d, path_id=pid)),
        scheduler=MinRttScheduler(), connection_name="chaos-test")
    net.client.on_receive(lambda d: client.datagram_received(d.payload,
                                                             d.path_id))
    net.server.on_receive(lambda d: server.datagram_received(d.payload,
                                                             d.path_id))
    client.add_local_path(0, 0)
    server.add_local_path(0, 0)
    return client, server


def two_path_net(loop, **kw):
    net = MultipathNetwork(loop)
    net.add_simple_path(0, 20e6, 0.02)
    net.add_simple_path(1, 20e6, 0.05, **kw)
    return net


# ---------------------------------------------------------------------------
# ChaosBox unit behaviour
# ---------------------------------------------------------------------------


class TestChaosBox:
    def _box(self, schedule, seed=1):
        loop = EventLoop()
        delivered = []
        box = ChaosBox(loop, delivered.append, schedule,
                       rng=make_rng(seed, "box"))
        return loop, delivered, box

    def test_noop_schedule_forwards_unchanged(self):
        loop, delivered, box = self._box(ChaosSchedule())
        box.send(Datagram(payload=b"hello", src="c"))
        assert [d.payload for d in delivered] == [b"hello"]
        assert delivered[0].src == "c"
        assert box.stats.forwarded == 1

    def test_blackhole_drops_everything_in_window(self):
        loop, delivered, box = self._box(
            ChaosSchedule(blackholes=[(0.0, 1.0)]))
        box.send(Datagram(payload=b"x"))
        assert delivered == []
        assert box.stats.blackholed == 1
        loop.schedule_at(2.0, lambda: box.send(Datagram(payload=b"y")))
        loop.run()
        assert [d.payload for d in delivered] == [b"y"]

    def test_corruption_flips_exactly_one_bit(self):
        loop, delivered, box = self._box(ChaosSchedule(corrupt_rate=1.0))
        box.send(Datagram(payload=b"\x00" * 32))
        assert box.stats.corrupted == 1
        damage = sum(bin(b).count("1") for b in delivered[0].payload)
        assert damage == 1

    def test_duplicate_delivers_twice(self):
        loop, delivered, box = self._box(
            ChaosSchedule(duplicate_rate=1.0, duplicate_delay_s=0.005))
        box.send(Datagram(payload=b"dup"))
        loop.run()
        assert [d.payload for d in delivered] == [b"dup", b"dup"]
        assert delivered[1].tag == "chaos-dup"
        assert box.stats.duplicated == 1

    def test_reorder_holds_a_datagram_back(self):
        loop, delivered, box = self._box(
            ChaosSchedule(reorder_rate=1.0, reorder_delay_s=(0.01, 0.01)))
        box.send(Datagram(payload=b"first"))
        box.send(Datagram(payload=b"second"))
        assert delivered == []  # both held back
        loop.run()
        assert len(delivered) == 2
        assert box.stats.reordered == 2

    def test_rebind_rewrites_source_address(self):
        loop, delivered, box = self._box(ChaosSchedule(rebinds=[1.0]))
        box.send(Datagram(payload=b"a", src="client-0"))
        loop.schedule_at(2.0, lambda: box.send(
            Datagram(payload=b"b", src="client-0")))
        loop.run()
        assert delivered[0].src == "client-0"
        assert delivered[1].src == "client-0#r1"
        assert box.stats.rebinds == 1

    def test_same_seed_replays_identical_faults(self):
        def run(seed):
            loop, delivered, box = self._box(
                ChaosSchedule(corrupt_rate=0.3, duplicate_rate=0.3,
                              reorder_rate=0.3), seed=seed)
            for i in range(200):
                box.send(Datagram(payload=bytes([i % 256]) * 20))
            loop.run()
            return ([(d.payload, d.tag) for d in delivered],
                    box.stats.as_dict())
        assert run(4) == run(4)
        assert run(4) != run(5)


# ---------------------------------------------------------------------------
# parser + connection fuzzing (satellite 1)
# ---------------------------------------------------------------------------


class TestFuzz:
    N = 10_000

    def test_parsers_raise_only_typed_errors(self):
        """Random bytes into the decoders: typed QuicErrors only."""
        rng = random.Random(0xC0FFEE)
        header_errors = frame_errors = 0
        for _ in range(self.N):
            blob = rng.randbytes(rng.randint(0, 64))
            try:
                decode_header(blob)
            except QuicError:
                header_errors += 1
            try:
                decode_frames(blob)
            except FrameEncodingError:
                frame_errors += 1
        assert header_errors > 0 and frame_errors > 0

    def test_live_connection_swallows_fuzzed_datagrams(self):
        """10k hostile datagrams: never raise, every one accounted."""
        loop = EventLoop()
        net = two_path_net(loop)
        client, server = build_pair(loop, net)
        captured = []
        server.add_transmit_hook(lambda pid, d: captured.append(d))
        client.connect()
        loop.run(until=0.5)
        sid = client.create_stream()
        client.stream_send(sid, b"req", fin=True)
        server.stream_send(sid, b"x" * 20_000, fin=True)
        loop.run(until=2.0)
        assert client.established and captured

        rng = random.Random(31337)
        before = dict(client.stats.robustness_dict())
        received_before = client.stats.packets_received
        for _ in range(self.N):
            if rng.random() < 0.5 and captured:
                blob = bytearray(rng.choice(captured))
                bit = rng.randrange(len(blob) * 8)
                blob[bit // 8] ^= 1 << (bit % 8)
                blob = bytes(blob)
            else:
                blob = rng.randbytes(rng.randint(0, 80))
            client.datagram_received(blob, 0)

        after = client.stats.robustness_dict()
        assert not client.closed
        assert client.stats.packets_received == received_before
        accounted = sum(
            after[k] - before[k]
            for k in ("malformed_dropped", "corrupted_dropped",
                      "unknown_cid_dropped", "duplicates_suppressed",
                      "frame_decode_errors"))
        assert accounted == self.N
        assert after["corrupted_dropped"] > before["corrupted_dropped"]
        assert after["malformed_dropped"] > before["malformed_dropped"]

    def test_corrupted_datagram_is_counted_not_raised(self):
        """One flipped bit in a valid 1-RTT packet -> AEAD drop."""
        loop = EventLoop()
        net = two_path_net(loop)
        client, server = build_pair(loop, net)
        captured = []
        server.add_transmit_hook(lambda pid, d: captured.append(d))
        client.connect()
        loop.run(until=0.5)
        sid = client.create_stream()
        client.stream_send(sid, b"req", fin=True)
        server.stream_send(sid, b"data" * 100, fin=True)
        loop.run(until=2.0)
        one_rtt = [d for d in captured
                   if decode_header(d)[0].packet_type.name == "ONE_RTT"]
        assert one_rtt
        blob = bytearray(one_rtt[-1])
        blob[-1] ^= 0x01  # inside the AEAD tag
        before = client.stats.corrupted_dropped
        client.datagram_received(bytes(blob), 0)
        assert client.stats.corrupted_dropped == before + 1
        assert not client.closed


# ---------------------------------------------------------------------------
# transport hardening
# ---------------------------------------------------------------------------


class TestIdleTimeout:
    def test_idle_connections_close_and_loop_drains(self):
        loop = EventLoop()
        net = two_path_net(loop)
        config_c = ConnectionConfig(is_client=True, idle_timeout_s=1.0)
        config_s = ConnectionConfig(is_client=False, idle_timeout_s=1.0)
        client, server = build_pair(loop, net, config_c, config_s)
        client.connect()
        loop.run(until=0.5)
        assert client.established and server.established
        loop.run(until=60.0)
        assert client.closed and server.closed
        assert client.stats.idle_timeouts == 1
        assert server.stats.idle_timeouts == 1
        # every timer was cancelled: the loop is fully drained
        assert not loop.step()

    def test_idle_timer_off_by_default(self):
        loop = EventLoop()
        net = two_path_net(loop)
        client, server = build_pair(loop, net)
        client.connect()
        loop.run(until=30.0)
        assert client.established and not client.closed
        assert client.stats.idle_timeouts == 0


class TestStormGuard:
    def _conn(self, budget):
        loop = EventLoop()
        conn = Connection(
            loop, ConnectionConfig(is_client=False,
                                   reinject_budget_bytes_per_rtt=budget),
            transmit=lambda pid, d: None, scheduler=MinRttScheduler(),
            connection_name="guard")
        conn.add_local_path(0, 0)
        return conn

    def test_budget_trims_duplicate_bytes(self):
        conn = self._conn(budget=1000)
        conn.enqueue_reinjection(SendChunk(stream_id=0, offset=0,
                                           length=800, kind="reinject"))
        conn.enqueue_reinjection(SendChunk(stream_id=0, offset=800,
                                           length=800, kind="reinject"))
        assert len(conn.send_queue) == 1
        assert conn.stats.storm_guard_trims == 1
        assert conn.stats.storm_guard_trimmed_bytes == 800

    def test_zero_budget_disables_guard(self):
        conn = self._conn(budget=0)
        for i in range(10):
            conn.enqueue_reinjection(SendChunk(stream_id=0, offset=i * 800,
                                               length=800, kind="reinject"))
        assert len(conn.send_queue) == 10
        assert conn.stats.storm_guard_trims == 0


class TestPathAbandonAccounting:
    def test_abandon_releases_in_flight_bytes(self):
        """Satellite 2: PATH_ABANDON leaves no tracked packets behind."""
        loop = EventLoop()
        net = two_path_net(loop)
        client, server = build_pair(loop, net)
        client.connect()
        loop.run(until=0.5)
        client.open_path(1, 1)
        loop.run(until=1.0)
        sid = client.create_stream()
        client.stream_send(sid, b"req", fin=True)
        server.stream_send(sid, b"z" * 500_000, fin=True)
        # a few steps: data is in flight on both paths
        for _ in range(200):
            loop.step()
        assert any(p.loss.bytes_in_flight for p in server.paths.values())
        server.close_path(1)
        path = server.paths[1]
        assert path.state is PathState.ABANDONED
        assert not path.loss.sent
        assert path.loss.bytes_in_flight == 0
        assert path.loss.loss_time is None
        loop.run(until=30.0)
        # the transfer still completes on the surviving path
        assert client.recv_streams[sid].is_complete
        assert client.paths[1].state is PathState.ABANDONED
        assert client.paths[1].loss.bytes_in_flight == 0


class TestServerHostEviction:
    def test_idle_connection_is_evicted_and_unrouted(self):
        loop = EventLoop()
        net = build_network(
            loop, [PathSpec(0, RadioType.WIFI, 0.01, rate_bps=10e6)],
            seed=0)
        host = ServerHost(loop, net)
        conn = host.register_session("client-0", "ghost", SCHEMES["sp"],
                                     seed=3, primary_net=0)
        host.start_eviction(idle_timeout_s=0.5, interval_s=0.25)
        loop.run(until=5.0)
        assert host.connections == []
        assert host.evicted_idle == 1
        assert conn.closed
        assert not host._by_addr and not host._initial_route
        # sweep stopped re-arming once the table emptied
        assert not loop.step()

    def test_closed_connection_is_evicted(self):
        loop = EventLoop()
        net = build_network(
            loop, [PathSpec(0, RadioType.WIFI, 0.01, rate_bps=10e6)],
            seed=0)
        host = ServerHost(loop, net)
        conn = host.register_session("client-0", "dead", SCHEMES["sp"],
                                     seed=3, primary_net=0)
        conn.silent_close()
        host.start_eviction(idle_timeout_s=60.0, interval_s=0.25)
        loop.run(until=2.0)
        assert host.connections == []
        assert host.evicted_closed == 1


# ---------------------------------------------------------------------------
# CM rebind when the primary dies mid-handshake (satellite 4)
# ---------------------------------------------------------------------------


class TestMidHandshakeMigration:
    def test_cm_rebinds_before_establishment(self):
        loop = EventLoop()
        paths = [
            PathSpec(0, RadioType.WIFI, 0.012, rate_bps=10e6,
                     outages=OutageSchedule(windows=[(0.0, 2.5)])),
            PathSpec(1, RadioType.LTE, 0.040, rate_bps=5e6),
        ]
        net = build_network(loop, paths, seed=0)
        runtime = SessionRuntime(loop, net)
        video = make_video(name="hs-video", duration_s=2.0, seed=1)
        handle = runtime.add_session(VideoSessionSpec(
            scheme_name="cm",
            interfaces=[(0, RadioType.WIFI), (1, RadioType.LTE)],
            video=video, player_config=PlayerConfig(), seed=1))
        runtime.run(timeout_s=30.0)
        monitor = handle.client.monitor
        assert monitor is not None and monitor.migrations >= 1
        assert handle.client.conn.established
        assert handle.player.finished
        # the handshake completed while Wi-Fi was still dark
        completed = handle.client.conn.stats.handshake_completed_at
        assert completed is not None and completed < 2.5


# ---------------------------------------------------------------------------
# soak determinism (tentpole acceptance)
# ---------------------------------------------------------------------------


class TestChaosSoak:
    def test_fixed_seed_reproduces_fingerprints(self):
        from repro.experiments.chaos import run_chaos_scenario
        first = run_chaos_scenario(0, seed=5)
        second = run_chaos_scenario(0, seed=5)
        assert first.error is None and not first.violations
        assert first.fingerprint == second.fingerprint

    def test_soak_digest_is_bit_identical(self):
        from repro.experiments.chaos import ChaosSoakConfig, run_chaos_soak
        config = ChaosSoakConfig(scenarios=2, seed=11)
        a = run_chaos_soak(config)
        b = run_chaos_soak(config)
        assert a.ok, a.errors + a.violations
        assert a.digest == b.digest

    def test_different_seeds_differ(self):
        from repro.experiments.chaos import run_chaos_scenario
        assert (run_chaos_scenario(1, seed=5).fingerprint
                != run_chaos_scenario(1, seed=6).fingerprint)

    def test_bbr_soak_holds_invariants_and_is_deterministic(self):
        """The chaos invariants (I1-I5: no exceptions, no negative
        counters, loop drains, bounded stall, bit-identical replay)
        hold under the BBR controller too, and the pacing machinery
        does not leak nondeterminism into the digest."""
        from repro.experiments.chaos import ChaosSoakConfig, run_chaos_soak
        config = ChaosSoakConfig(scenarios=2, seed=11,
                                 cc_algorithm="bbr")
        a = run_chaos_soak(config)
        b = run_chaos_soak(config)
        assert a.ok, a.errors + a.violations
        assert a.digest == b.digest
        # and it genuinely ran a different controller than the default
        cubic = run_chaos_soak(ChaosSoakConfig(scenarios=2, seed=11))
        assert a.digest != cubic.digest


class TestChaosOnEmulatedPath:
    def test_attach_chaos_skips_noop_and_wires_boxes(self):
        loop = EventLoop()
        net = two_path_net(loop)
        path = net.paths[0]
        path.attach_chaos(up=ChaosSchedule(),  # noop: not attached
                          down=ChaosSchedule(corrupt_rate=0.5),
                          rng=make_rng(9, "t"))
        assert path.up_chaos is None
        assert path.down_chaos is not None

    def test_session_survives_corruption_on_the_wire(self):
        """End-to-end: chaos between real endpoints, AEAD holds."""
        loop = EventLoop()
        net = two_path_net(loop)
        net.paths[0].attach_chaos(
            up=ChaosSchedule(corrupt_rate=0.05, duplicate_rate=0.05),
            down=ChaosSchedule(corrupt_rate=0.05, reorder_rate=0.1),
            rng=make_rng(2, "wire"))
        client, server = build_pair(loop, net)
        client.connect()
        loop.run(until=2.0)
        assert client.established
        sid = client.create_stream()
        client.stream_send(sid, b"req", fin=True)
        server.stream_send(sid, b"w" * 100_000, fin=True)
        loop.run(until=30.0)
        assert client.recv_streams[sid].is_complete
        assert client.stream_read(sid) == b"w" * 100_000
        total = (client.stats.corrupted_dropped
                 + server.stats.corrupted_dropped)
        assert total > 0
