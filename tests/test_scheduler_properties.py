"""Property-based tests on scheduler invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (MinRttScheduler, ReinjectionMode, RoundRobinScheduler,
                        ThresholdConfig, XlinkScheduler)
from repro.quic.cc import NewRenoCc
from repro.quic.cid import ConnectionId
from repro.quic.connection import SendChunk
from repro.quic.path import Path, PathState


class FakeLoop:
    def __init__(self, now=0.0):
        self.now = now

    def schedule_after(self, delay, cb, label=""):
        return type("E", (), {"cancel": lambda self: None})()


class FakeConn:
    def __init__(self, paths, now=0.0):
        self.paths = {p.path_id: p for p in paths}
        self.loop = FakeLoop(now)
        self.send_queue = []
        self.closed = False

    def usable_paths(self):
        return [p for p in self.paths.values() if p.is_active]

    def unacked_ranges(self, **kw):
        return []

    def max_delivery_time(self):
        return 0.0


def make_path(path_id, srtt, inflight_fraction=0.0,
              state=PathState.ACTIVE):
    cid = ConnectionId(cid=bytes([path_id % 256]) * 8,
                       sequence_number=path_id)
    path = Path(path_id, cid, cid, NewRenoCc())
    path.state = state
    path.rtt.update(max(srtt, 1e-4))
    path.rtt.smoothed = max(srtt, 1e-4)
    path.cc.bytes_in_flight = int(path.cc.cwnd * inflight_fraction)
    path.packets_received = 1
    path.last_recv_time = 0.0
    return path


paths_strategy = st.lists(
    st.tuples(st.floats(0.001, 2.0),       # srtt
              st.floats(0.0, 1.2),         # inflight fraction of cwnd
              st.booleans()),              # active?
    min_size=1, max_size=6)


class TestSelectPathProperties:
    @given(paths_strategy)
    @settings(max_examples=150)
    def test_minrtt_never_picks_window_limited(self, specs):
        paths = [make_path(i, srtt, frac,
                           PathState.ACTIVE if active
                           else PathState.ABANDONED)
                 for i, (srtt, frac, active) in enumerate(specs)]
        conn = FakeConn(paths)
        chunk = SendChunk(stream_id=0, offset=0, length=1000)
        picked = MinRttScheduler().select_path(conn, chunk)
        if picked is not None:
            assert picked.is_active
            assert picked.cc.can_send(1400)
            # No other eligible path has a strictly lower RTT.
            for p in conn.usable_paths():
                if p.cc.can_send(1400):
                    assert picked.rtt.smoothed <= p.rtt.smoothed + 1e-12
        else:
            # None means every active path is window-limited.
            for p in conn.usable_paths():
                assert not p.cc.can_send(1400)

    @given(paths_strategy)
    @settings(max_examples=150)
    def test_xlink_reinject_never_uses_excluded_path(self, specs):
        paths = [make_path(i, srtt, frac,
                           PathState.ACTIVE if active
                           else PathState.ABANDONED)
                 for i, (srtt, frac, active) in enumerate(specs)]
        conn = FakeConn(paths)
        chunk = SendChunk(stream_id=0, offset=0, length=1000,
                          kind="reinject", exclude_path=0)
        picked = XlinkScheduler().select_path(conn, chunk)
        if picked is not None:
            assert picked.path_id != 0

    @given(paths_strategy, st.integers(1, 12))
    @settings(max_examples=100)
    def test_round_robin_covers_all_eligible(self, specs, rounds):
        paths = [make_path(i, srtt, 0.0,
                           PathState.ACTIVE if active
                           else PathState.ABANDONED)
                 for i, (srtt, _f, active) in enumerate(specs)]
        conn = FakeConn(paths)
        sched = RoundRobinScheduler()
        chunk = SendChunk(stream_id=0, offset=0, length=100)
        eligible = {p.path_id for p in conn.usable_paths()
                    if p.cc.can_send(1400)}
        picks = set()
        for _ in range(rounds * max(len(eligible), 1)):
            p = sched.select_path(conn, chunk)
            if p is not None:
                picks.add(p.path_id)
        if eligible and rounds >= 1:
            assert picks == eligible


class TestGateProperties:
    @given(st.floats(0.05, 3.0), st.floats(0.05, 3.0),
           st.floats(0.0, 5.0), st.floats(0.0, 3.0))
    @settings(max_examples=200)
    def test_gate_never_crashes_and_is_deterministic(self, t1, t2,
                                                     buffer_s, dtmax):
        from repro.core import DoubleThresholdController
        from repro.quic.frames import QoeSignals
        lo, hi = min(t1, t2), max(t1, t2)
        ctrl = DoubleThresholdController(ThresholdConfig(lo, hi))
        qoe = QoeSignals(cached_bytes=int(buffer_s * 250_000),
                         cached_frames=int(buffer_s * 25),
                         bps=2_000_000, fps=25)
        ctrl.update(qoe, now=0.0)
        first = ctrl.should_reinject(dtmax, now=0.0)
        second = ctrl.should_reinject(dtmax, now=0.0)
        assert first == second
