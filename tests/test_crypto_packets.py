"""Tests for the toy AEAD, multipath nonce, and packet headers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quic.crypto import (IV_LENGTH, PacketProtection, TAG_LENGTH,
                               build_nonce, derive_connection_key)
from repro.quic.errors import ProtocolViolation
from repro.quic.packets import (PN_TRUNC_MOD, PacketHeader, PacketType,
                                decode_header, encode_header,
                                reconstruct_pn)


class TestNonce:
    def test_nonce_layout_matches_spec(self):
        """Sec. 6: 32-bit CID seq, two zero bits, 62-bit PN, XOR IV."""
        iv = b"\x00" * IV_LENGTH
        nonce = build_nonce(iv, cid_sequence_number=1, packet_number=2)
        # With a zero IV the nonce IS the path-and-packet-number.
        value = int.from_bytes(nonce, "big")
        assert value >> 64 == 1          # CID sequence number in top 32 bits
        assert value & ((1 << 62) - 1) == 2
        assert (value >> 62) & 0x3 == 0  # the two zero bits

    def test_same_pn_different_path_distinct_nonce(self):
        """The property the construction exists for."""
        iv = bytes(range(IV_LENGTH))
        n0 = build_nonce(iv, cid_sequence_number=0, packet_number=7)
        n1 = build_nonce(iv, cid_sequence_number=1, packet_number=7)
        assert n0 != n1

    def test_nonce_xors_iv(self):
        iv = bytes([0xFF] * IV_LENGTH)
        nonce = build_nonce(iv, 0, 0)
        assert nonce == iv  # zero path-and-packet-number XOR IV = IV

    def test_long_iv_left_pads(self):
        iv = bytes(16)
        nonce = build_nonce(iv, 3, 4)
        assert len(nonce) == 16
        assert nonce[:4] == b"\x00" * 4

    def test_rejects_out_of_range(self):
        iv = bytes(IV_LENGTH)
        with pytest.raises(ValueError):
            build_nonce(iv, 1 << 32, 0)
        with pytest.raises(ValueError):
            build_nonce(iv, 0, 1 << 62)
        with pytest.raises(ValueError):
            build_nonce(b"short", 0, 0)

    @given(st.integers(0, (1 << 32) - 1), st.integers(0, (1 << 62) - 1),
           st.integers(0, (1 << 32) - 1), st.integers(0, (1 << 62) - 1))
    @settings(max_examples=200)
    def test_nonce_injective_property(self, c1, p1, c2, p2):
        iv = bytes(range(IV_LENGTH))
        if (c1, p1) != (c2, p2):
            assert build_nonce(iv, c1, p1) != build_nonce(iv, c2, p2)


class TestPacketProtection:
    def test_seal_open_roundtrip(self):
        prot = PacketProtection(key=b"secret")
        sealed = prot.seal(b"payload", b"aad", 0, 1)
        assert prot.open(sealed, b"aad", 0, 1) == b"payload"

    def test_tag_adds_overhead(self):
        prot = PacketProtection(key=b"secret")
        sealed = prot.seal(b"xyz", b"", 0, 0)
        assert len(sealed) == 3 + TAG_LENGTH

    def test_tamper_detected(self):
        prot = PacketProtection(key=b"secret")
        sealed = bytearray(prot.seal(b"payload", b"aad", 0, 1))
        sealed[0] ^= 0xFF
        with pytest.raises(ValueError):
            prot.open(bytes(sealed), b"aad", 0, 1)

    def test_wrong_aad_detected(self):
        prot = PacketProtection(key=b"secret")
        sealed = prot.seal(b"payload", b"aad", 0, 1)
        with pytest.raises(ValueError):
            prot.open(sealed, b"other", 0, 1)

    def test_wrong_path_fails(self):
        """A packet sealed for path 0 cannot be opened as path 1."""
        prot = PacketProtection(key=b"secret")
        sealed = prot.seal(b"payload", b"aad", 0, 1)
        with pytest.raises(ValueError):
            prot.open(sealed, b"aad", 1, 1)

    def test_wrong_key_fails(self):
        a = PacketProtection(key=b"ka")
        b = PacketProtection(key=b"kb")
        sealed = a.seal(b"payload", b"", 0, 0)
        with pytest.raises(ValueError):
            b.open(sealed, b"", 0, 0)

    def test_too_short_sealed(self):
        prot = PacketProtection(key=b"k")
        with pytest.raises(ValueError):
            prot.open(b"tiny", b"", 0, 0)

    def test_key_derivation_deterministic(self):
        assert derive_connection_key(b"s") == derive_connection_key(b"s")
        assert derive_connection_key(b"s") != derive_connection_key(b"t")

    @given(st.binary(min_size=0, max_size=2000), st.binary(max_size=64),
           st.integers(0, 100), st.integers(0, 100))
    @settings(max_examples=100)
    def test_roundtrip_property(self, payload, aad, path, pn):
        prot = PacketProtection(key=b"property-key")
        assert prot.open(prot.seal(payload, aad, path, pn),
                         aad, path, pn) == payload


class TestPacketHeaders:
    def test_short_header_roundtrip(self):
        header = PacketHeader(PacketType.ONE_RTT, dcid=b"\x01" * 8,
                              truncated_pn=12345)
        data = encode_header(header)
        decoded, offset = decode_header(data + b"payload")
        assert decoded == header
        assert offset == len(data)

    def test_long_header_roundtrip(self):
        header = PacketHeader(PacketType.HANDSHAKE, dcid=b"\x01" * 8,
                              scid=b"\x02" * 8, truncated_pn=7)
        data = encode_header(header)
        decoded, offset = decode_header(data)
        assert decoded == header
        assert offset == len(data)

    def test_long_header_requires_scid(self):
        header = PacketHeader(PacketType.HANDSHAKE, dcid=b"\x01" * 8)
        with pytest.raises(ProtocolViolation):
            encode_header(header)

    def test_empty_packet_rejected(self):
        with pytest.raises(ProtocolViolation):
            decode_header(b"")

    def test_truncated_short_header_rejected(self):
        with pytest.raises(ProtocolViolation):
            decode_header(b"\x40\x01\x02")

    def test_pn_truncation_wraps(self):
        header = PacketHeader(PacketType.ONE_RTT, dcid=b"\x01" * 8,
                              truncated_pn=PN_TRUNC_MOD + 5)
        decoded, _ = decode_header(encode_header(header) + b"x")
        assert decoded.truncated_pn == 5


class TestPnReconstruction:
    def test_sequential(self):
        assert reconstruct_pn(5, 4) == 5

    def test_gap(self):
        assert reconstruct_pn(100, 4) == 100

    def test_reorder_behind(self):
        assert reconstruct_pn(3, 10) == 3

    def test_wraparound_forward(self):
        largest = PN_TRUNC_MOD - 2
        assert reconstruct_pn(1, largest) == PN_TRUNC_MOD + 1

    def test_no_packets_seen(self):
        assert reconstruct_pn(0, -1) == 0

    @given(st.integers(0, (1 << 40)))
    @settings(max_examples=200)
    def test_reconstruct_next_property(self, largest):
        """The successor of the largest seen always reconstructs."""
        pn = largest + 1
        assert reconstruct_pn(pn % PN_TRUNC_MOD, largest) == pn

    @given(st.integers(0, 1 << 40), st.integers(-1000, 1000))
    @settings(max_examples=200)
    def test_reconstruct_window_property(self, largest, delta):
        """Any PN within +-1000 of the expected value reconstructs."""
        pn = largest + 1 + delta
        if pn < 0:
            return
        assert reconstruct_pn(pn % PN_TRUNC_MOD, largest) == pn
