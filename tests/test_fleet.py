"""Fleet tier: sharded population runs on streaming metric sinks.

The acceptance contract under test: a fixed-seed fleet run produces an
*identical* merged digest whether it executed serially or sharded over
pool workers; worker failures are tallied instead of voiding the run;
and the sink's aggregates agree with the exact per-outcome path on the
same population.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.abtest import build_ab_day_tasks, run_ab_day
from repro.experiments.fleet import (ABPopulationDriver, FleetConfig,
                                     MobilityPopulationDriver,
                                     run_fleet_driver)
from repro.experiments.parallel import (SessionTask, execute_shard,
                                        iter_shards, run_fleet)
from repro.experiments.report import fleet_sections
from repro.metrics import MetricSink
from repro.metrics.stats import percentile


def _small_cfg(users: int = 6, seed: int = 5, **kw) -> FleetConfig:
    return FleetConfig(users=users, seed=seed, **kw)


class TestDeterminism:
    def test_serial_vs_sharded_digests_identical(self):
        cfg = _small_cfg(users=8)
        serial = run_fleet_driver(ABPopulationDriver(cfg), workers=1,
                                  shard_size=3)
        sharded = run_fleet_driver(ABPopulationDriver(cfg), workers=2,
                                   shard_size=3)
        assert serial.sink.digest() == sharded.sink.digest()
        assert serial.result.tasks == sharded.result.tasks == 8
        assert serial.result.workers_effective == 1
        assert sharded.result.workers_effective >= 2
        assert sharded.result.shards == 3

    def test_shard_size_does_not_change_digest(self):
        cfg = _small_cfg(users=6)
        a = run_fleet_driver(ABPopulationDriver(cfg), workers=1,
                             shard_size=1)
        b = run_fleet_driver(ABPopulationDriver(cfg), workers=1,
                             shard_size=64)
        assert a.sink.digest() == b.sink.digest()

    def test_split_and_paired_sample_same_population(self):
        # The condition RNG is consumed before assignment, so the
        # split-population run's SP group plays the exact conditions
        # the paired run's SP leg saw for the same users.
        split_cfg = _small_cfg(users=4, paired=False)
        paired_cfg = _small_cfg(users=4, paired=True)
        split = {t.key: t for t in
                 ABPopulationDriver(split_cfg).task_iter()}
        paired = {t.key: t for t in
                  ABPopulationDriver(paired_cfg).task_iter()}
        assert set(split) < set(paired)
        for key, task in split.items():
            assert task.seed == paired[key].seed
            assert task.paths == paired[key].paths


class TestShardExecution:
    def test_failures_tallied_not_raised(self):
        good = next(iter(ABPopulationDriver(_small_cfg(users=1))
                         .task_iter()))
        bad = SessionTask(key=(99, "sp"), scheme="sp", paths=good.paths,
                          mode="nope")
        result = execute_shard([good, bad])
        assert result.tasks == 2
        assert result.failures == {"ValueError": 1}
        assert result.sink.scheme("sp").failures == {"ValueError": 1}
        assert result.sink.sessions == 1  # the good task still counted

    def test_run_fleet_aggregates_failures(self):
        tasks = list(ABPopulationDriver(_small_cfg(users=2)).task_iter())
        tasks.append(SessionTask(key=(99, "sp"), scheme="sp",
                                 paths=tasks[0].paths, mode="nope"))
        result = run_fleet(iter(tasks), workers=1, shard_size=2)
        assert result.failed == 1
        assert result.failures == {"ValueError": 1}
        assert result.tasks == 3

    def test_iter_shards_lazy_and_validated(self):
        with pytest.raises(ValueError):
            list(iter_shards([], shard_size=0))
        shards = list(iter_shards(range(7), shard_size=3))
        assert [len(s) for s in shards] == [3, 3, 1]

    def test_external_sink_accumulates_across_runs(self):
        sink = MetricSink()
        cfg = _small_cfg(users=2)
        run_fleet(ABPopulationDriver(cfg).task_iter(), sink=sink,
                  workers=1)
        first = sink.sessions
        run_fleet(ABPopulationDriver(cfg).task_iter(), sink=sink,
                  workers=1)
        assert sink.sessions == 2 * first


class TestSinkConsistency:
    def test_sink_matches_exact_day_result(self):
        # Same paired population through both tiers: the fleet sink's
        # exact-mode percentiles and aggregate rates must agree with
        # the materialized DayResult path.
        cfg = _small_cfg(users=4, paired=True)
        ab = cfg.ab_config()
        day = run_ab_day(ab, 1, list(cfg.schemes), workers=1)
        tasks = build_ab_day_tasks(ab, 1, list(cfg.schemes))
        fleet = run_fleet(iter(tasks), workers=1)
        for scheme in cfg.schemes:
            sink = fleet.sink.scheme(scheme)
            exact = day[scheme]
            assert sink.sessions == len(exact.sessions)
            assert sink.rct.percentile(50) == percentile(exact.rcts, 50)
            assert sink.rct.percentile(99) == percentile(exact.rcts, 99)
            assert sink.rebuffer_rate == pytest.approx(
                exact.rebuffer_rate, abs=1e-9)
            assert sink.traffic_overhead_percent == pytest.approx(
                exact.traffic_overhead_percent, rel=1e-6)


class TestDrivers:
    def test_mobility_population_task_shape(self):
        driver = MobilityPopulationDriver(traces=2, repeats=2,
                                          duration_s=10.0)
        tasks = list(driver.task_iter())
        assert len(tasks) == 2 * 2 * len(driver.schemes)
        by_scheme = {t.scheme for t in tasks}
        assert by_scheme == set(driver.schemes)
        for t in tasks:
            assert len(t.paths) == (1 if t.scheme == "sp" else 2)
        # per-(repeat, trace) reseeding: both repeats of a trace exist
        # with different seeds
        seeds = {t.key: t.seed for t in tasks}
        assert seeds[(0, 1, "xlink")] != seeds[(1, 1, "xlink")]

    def test_sessions_expected(self):
        assert _small_cfg(users=10, days=2).sessions_expected == 20
        assert _small_cfg(users=10, days=2,
                          paired=True).sessions_expected == 40


class TestReportRendering:
    def test_empty_scheme_renders_dashes(self):
        sink = MetricSink()
        sink.scheme("sp")
        sink.scheme("xlink")
        sections = fleet_sections(sink)
        text = "\n".join(s.body for s in sections)
        assert "—" in text
        assert "0" in sections[0].body  # count=0 rows, not a crash

    def test_populated_sink_renders_deltas(self):
        cfg = _small_cfg(users=4)
        run = run_fleet_driver(ABPopulationDriver(cfg), workers=1)
        sections = fleet_sections(run.sink, seed=cfg.seed, rounds=20)
        titles = [s.title for s in sections]
        assert any("treatment deltas" in t for t in titles)
        assert any("CDF" in t for t in titles)


class TestCli:
    def test_fleet_command_smoke(self, capsys):
        rc = main(["fleet", "--users", "4", "--workers", "1",
                   "--shard-size", "2", "--permutation-rounds", "10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "digest=" in out
        assert "workers=1/1" in out
        assert "sp" in out and "xlink" in out

    def test_fleet_rejects_unknown_scheme(self, capsys):
        rc = main(["fleet", "--users", "2", "--schemes", "sp", "warp"])
        assert rc == 2
