"""Unit tests for the ``repro.host`` endpoint runtime.

Covers the ServerHost's DCID demultiplexing (including the failure
classifications: misrouted, unknown CID, post-close), multi-client
shared-link attachment in netem, the shared MediaServer catalog, and
the SessionRuntime's provisioning rules.
"""

import pytest

from repro.host import (SCHEMES, ClientEndpoint, ServerHost, SessionRuntime,
                        VideoSessionSpec)
from repro.host.specs import PathSpec, build_network
from repro.netem import Datagram, MultipathNetwork
from repro.quic.cid import CID_LENGTH
from repro.quic.connection import Connection, ConnectionConfig
from repro.quic.packets import PacketHeader, PacketType, encode_header
from repro.sim import EventLoop
from repro.traces.radio_profiles import RadioType
from repro.video import MediaServer, make_video
from repro.video.media import Video


def _network(loop, n_paths=2, seed=0):
    specs = [PathSpec(i, RadioType.WIFI if i else RadioType.LTE,
                      0.01, rate_bps=10e6) for i in range(n_paths)]
    return build_network(loop, specs, seed)


def _short_header_payload(dcid: bytes) -> bytes:
    """A syntactically valid 1-RTT packet addressed to ``dcid``."""
    header = PacketHeader(packet_type=PacketType.ONE_RTT, dcid=dcid)
    return encode_header(header) + b"\x00" * 16


class TestServerHostRouting:
    def _host_with_session(self, scheme="xlink"):
        loop = EventLoop()
        net = _network(loop)
        host = ServerHost(loop, net, videos={}, server_id=1)
        host.listen()
        conn = host.register_session("client", "sess-a", SCHEMES[scheme],
                                     seed=0, primary_net=0)
        return loop, net, host, conn

    def test_full_session_routes_every_datagram(self):
        """End-to-end: the host demultiplexes a whole video session."""
        loop = EventLoop()
        net = _network(loop)
        host = ServerHost(loop, net, videos={}, server_id=1)
        host.listen()
        scheme = SCHEMES["xlink"]
        client = ClientEndpoint(loop, net.client, scheme,
                                [(0, RadioType.WIFI), (1, RadioType.LTE)],
                                seed=1)
        host.register_session("client", client.connection_name, scheme,
                              seed=1, primary_net=client.primary_net,
                              radio=client.primary_radio)
        video = make_video(duration_s=2.0, seed=1)
        host.media.add_video(video)
        client.attach_player(video)
        client.start()
        while not client.finished and loop.now < 60.0:
            if not loop.step():
                break
        assert client.finished
        assert host.datagrams_routed > 0
        assert host.datagrams_dropped == 0
        assert host.misrouted == 0
        assert host.unknown_cid == 0

    def test_misrouted_datagram_counted_and_dropped(self):
        """A CID embedding another host's server-ID byte is misrouted."""
        loop, net, host, conn = self._host_with_session()
        foreign = bytes([9]) + b"\x11" * (CID_LENGTH - 1)
        host.on_datagram(Datagram(payload=_short_header_payload(foreign),
                                  path_id=0, src="client"))
        assert host.misrouted == 1
        assert host.unknown_cid == 0
        assert host.datagrams_dropped == 1
        assert host.datagrams_routed == 0

    def test_unknown_cid_counted_and_dropped(self):
        """Our server-ID byte, but no connection ever issued the CID."""
        loop, net, host, conn = self._host_with_session()
        stale = bytes([host.server_id]) + b"\x22" * (CID_LENGTH - 1)
        host.on_datagram(Datagram(payload=_short_header_payload(stale),
                                  path_id=0, src="client"))
        assert host.unknown_cid == 1
        assert host.misrouted == 0
        assert host.datagrams_dropped == 1

    def test_post_close_datagram_dropped(self):
        """Datagrams for a closed connection are dropped, not delivered."""
        loop, net, host, conn = self._host_with_session()
        issued = conn.cids.issued[0].cid
        conn.closed = True
        before = conn.stats.packets_received
        host.on_datagram(Datagram(payload=_short_header_payload(issued),
                                  path_id=0, src="client"))
        assert host.post_close_drops == 1
        assert host.datagrams_dropped == 1
        assert conn.stats.packets_received == before

    def test_undecodable_datagram_dropped(self):
        loop, net, host, conn = self._host_with_session()
        host.on_datagram(Datagram(payload=b"", path_id=0, src="client"))
        assert host.datagrams_dropped == 1

    def test_handshake_routes_by_source_address_then_pins_dcid(self):
        loop, net, host, conn = self._host_with_session()
        header = PacketHeader(packet_type=PacketType.HANDSHAKE,
                              dcid=b"\xabrandom!", scid=b"\x01" * 8)
        payload = encode_header(header) + b"\x00" * 16
        dgram = Datagram(payload=payload, path_id=0, src="client")
        assert host.route_connection(dgram) is conn
        # Pinned: even from another source address, retransmits of the
        # same client-chosen DCID keep landing on the same connection.
        dgram2 = Datagram(payload=payload, path_id=0, src="elsewhere")
        assert host.route_connection(dgram2) is conn

    def test_two_sessions_route_independently(self):
        loop = EventLoop()
        net = _network(loop)
        host = ServerHost(loop, net, videos={}, server_id=1)
        conn_a = host.register_session("client-a", "sess-a",
                                       SCHEMES["xlink"], seed=0,
                                       primary_net=0)
        conn_b = host.register_session("client-b", "sess-b",
                                       SCHEMES["xlink"], seed=1,
                                       primary_net=0)
        cid_a = conn_a.cids.issued[0].cid
        cid_b = conn_b.cids.issued[0].cid
        assert cid_a != cid_b
        route = host.route_connection
        assert route(Datagram(payload=_short_header_payload(cid_a),
                              path_id=0, src="client-a")) is conn_a
        assert route(Datagram(payload=_short_header_payload(cid_b),
                              path_id=0, src="client-b")) is conn_b

    def test_duplicate_address_rejected(self):
        loop, net, host, conn = self._host_with_session()
        with pytest.raises(ValueError):
            host.register_session("client", "sess-b", SCHEMES["sp"],
                                  seed=1, primary_net=0)


class TestNetemMultiClient:
    def test_downlink_dispatched_by_dst(self):
        loop = EventLoop()
        net = _network(loop)
        extra = net.add_client("client-2")
        got = {"default": [], "extra": []}
        net.client.on_receive(lambda d: got["default"].append(d))
        extra.on_receive(lambda d: got["extra"].append(d))
        net.server.send(Datagram(payload=b"a", path_id=0, dst="client-2"))
        net.server.send(Datagram(payload=b"b", path_id=0))
        loop.run()
        assert [d.payload for d in got["extra"]] == [b"a"]
        assert [d.payload for d in got["default"]] == [b"b"]

    def test_clients_share_link_capacity(self):
        """Two senders on one path contend for the same queue/link."""
        loop = EventLoop()
        net = MultipathNetwork(loop)
        net.add_simple_path(0, rate_bps=8e4, one_way_delay_s=0.001)
        second = net.add_client("client-2")
        arrived = []
        net.server.on_receive(lambda d: arrived.append((loop.now, d.src)))
        for _ in range(5):
            net.client.send(Datagram(payload=b"x" * 1000, path_id=0))
            second.send(Datagram(payload=b"y" * 1000, path_id=0))
        loop.run()
        assert len(arrived) == 10
        # Serialized through one 80 kbit/s link: 10 KB takes ~1 s, far
        # slower than either sender alone on a private link would see.
        assert arrived[-1][0] > 0.9
        assert {src for _t, src in arrived} == {"client", "client-2"}

    def test_duplicate_client_name_rejected(self):
        loop = EventLoop()
        net = _network(loop)
        with pytest.raises(ValueError):
            net.add_client("client")
        with pytest.raises(ValueError):
            net.add_client("server")


class TestSharedMediaServer:
    def _conn(self, loop, name):
        return Connection(loop, ConnectionConfig(is_client=False),
                          transmit=lambda pid, data: None,
                          connection_name=name)

    def test_attach_twice_rejected(self):
        loop = EventLoop()
        conn = self._conn(loop, "a")
        media = MediaServer(videos={})
        media.attach(conn)
        with pytest.raises(ValueError):
            media.attach(conn)

    def test_connections_counted(self):
        loop = EventLoop()
        media = MediaServer(videos={})
        media.attach(self._conn(loop, "a"))
        media.attach(self._conn(loop, "b"))
        assert media.connections == 2

    def test_legacy_positional_form_still_works(self):
        loop = EventLoop()
        conn = self._conn(loop, "a")
        video = make_video(duration_s=1.0)
        media = MediaServer(conn, {video.name: video},
                            first_frame_acceleration=False)
        assert media.connections == 1
        assert media.videos[video.name] is video


class TestSessionRuntime:
    def test_mptcp_rejected(self):
        loop = EventLoop()
        net = _network(loop)
        runtime = SessionRuntime(loop, net)
        with pytest.raises(ValueError):
            runtime.add_session(VideoSessionSpec(
                scheme_name="mptcp", interfaces=[(0, RadioType.WIFI)],
                video=make_video(duration_s=1.0)))

    def test_conflicting_catalog_entry_rejected(self):
        loop = EventLoop()
        net = _network(loop)
        runtime = SessionRuntime(loop, net)
        v1 = Video(name="clip", fps=25, frame_sizes=[100, 100],
                   chunk_size=1024)
        v2 = Video(name="clip", fps=25, frame_sizes=[200, 200],
                   chunk_size=1024)
        runtime.add_session(VideoSessionSpec(
            scheme_name="sp", interfaces=[(0, RadioType.WIFI)], video=v1,
            connection_name="u1"))
        with pytest.raises(ValueError):
            runtime.add_session(VideoSessionSpec(
                scheme_name="sp", interfaces=[(0, RadioType.WIFI)],
                video=v2, client_addr="client-2", connection_name="u2"))
