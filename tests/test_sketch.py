"""DistSketch / MetricSink contracts the fleet layer leans on.

Three properties carry the fleet tier: exact small-N mode is
bit-identical to the reference ``stats.percentile``; bucketed
percentiles stay within the alpha relative-error bound on realistic
(lognormal, heavy-tail) populations; and merge is associative,
commutative and *exactly* order-independent, so any shuffling of
shard merges digests identically to the serial fold.
"""

from __future__ import annotations

import random

import pytest

from repro.metrics.sink import MetricSink, SchemeSink
from repro.metrics.sketch import (DEFAULT_ALPHA, DistSketch,
                                  permutation_mean_test)
from repro.metrics.stats import (maybe_percentile, maybe_summarize,
                                 percentile, summarize)


def _lognormal_samples(n: int, seed: int = 1) -> list:
    rng = random.Random(seed)
    return [rng.lognormvariate(0.0, 1.0) for _ in range(n)]


def _pareto_samples(n: int, seed: int = 2) -> list:
    rng = random.Random(seed)
    return [rng.paretovariate(1.5) for _ in range(n)]


class TestExactMode:
    def test_matches_reference_percentile_bitwise(self):
        samples = _lognormal_samples(200)
        sketch = DistSketch()
        sketch.extend(samples)
        assert sketch.is_exact
        for pct in (0, 10, 50, 90, 95, 99, 100):
            assert sketch.percentile(pct) == percentile(samples, pct)

    def test_summary_matches_reference(self):
        samples = _lognormal_samples(100)
        sketch = DistSketch()
        sketch.extend(samples)
        ref = summarize(samples)
        got = sketch.summary()
        assert got is not None
        assert (got.p50, got.p95, got.p99) == (ref.p50, ref.p95, ref.p99)
        assert got.count == ref.count
        assert got.minimum == ref.minimum and got.maximum == ref.maximum

    def test_spill_timing_does_not_change_state(self):
        # Converting exact->buckets is a pure per-value mapping, so a
        # sketch that spilled early (tiny exact_limit) must digest
        # identically to one that spilled on overflow.
        samples = _lognormal_samples(400, seed=3)
        early = DistSketch(exact_limit=10)
        late = DistSketch(exact_limit=10)
        for v in samples[:200]:
            early.add(v)
        shard = DistSketch(exact_limit=10)
        for v in samples[200:]:
            shard.add(v)
        early.merge(shard)
        for v in samples:
            late.add(v)
        assert early.digest() == late.digest()


class TestEmptyState:
    def test_empty_sketch_is_well_defined(self):
        sketch = DistSketch()
        assert sketch.count == 0
        assert sketch.percentile(50) is None
        assert sketch.summary() is None
        assert sketch.mean is None
        assert sketch.fraction_below(1.0) == 0.0
        assert sketch.n_buckets == 0

    def test_exact_reference_keeps_raising(self):
        # The fleet sink tolerates empty populations; the pinned exact
        # reference does not -- that contract must not drift.
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            summarize([])
        assert maybe_percentile([], 50) is None
        assert maybe_summarize([]) is None

    def test_empty_scheme_sink_reads(self):
        sink = SchemeSink("sp")
        assert sink.rebuffer_rate == 0.0
        assert sink.traffic_overhead_percent == 0.0
        d = sink.as_dict()
        assert d["rct_p50"] is None and d["sessions"] == 0


class TestMergeOrderIndependence:
    def _sharded_digest(self, samples, n_shards, order_seed):
        shards = [DistSketch() for _ in range(n_shards)]
        for i, v in enumerate(samples):
            shards[i % n_shards].add(v)
        order = list(range(n_shards))
        random.Random(order_seed).shuffle(order)
        merged = DistSketch()
        for j in order:
            merged.merge(shards[j])
        return merged.digest()

    def test_shuffled_shard_merges_digest_identically(self):
        samples = _lognormal_samples(3000, seed=4)
        serial = DistSketch()
        serial.extend(samples)
        expected = serial.digest()
        for order_seed in range(5):
            assert self._sharded_digest(samples, 7, order_seed) == expected

    def test_associativity_of_pairwise_merges(self):
        samples = _pareto_samples(1500, seed=5)
        a, b, c = DistSketch(), DistSketch(), DistSketch()
        for i, v in enumerate(samples):
            (a, b, c)[i % 3].add(v)
        left = DistSketch().merge(a).merge(b).merge(c)
        bc = DistSketch().merge(b).merge(c)
        right = DistSketch().merge(a).merge(bc)
        assert left.digest() == right.digest()

    def test_fixed_point_sum_is_exactly_order_independent(self):
        samples = _lognormal_samples(2000, seed=6)
        fwd, rev = DistSketch(), DistSketch()
        fwd.extend(samples)
        rev.extend(reversed(samples))
        assert fwd.sum == rev.sum  # exact equality, not approx

    def test_grid_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DistSketch(alpha=0.01).merge(DistSketch(alpha=0.02))


class TestErrorBounds:
    @pytest.mark.parametrize("samples", [
        _lognormal_samples(20_000, seed=7),
        _pareto_samples(20_000, seed=8),
    ], ids=["lognormal", "pareto-heavy-tail"])
    def test_bucketed_percentiles_within_alpha(self, samples):
        sketch = DistSketch()
        sketch.extend(samples)
        assert not sketch.is_exact
        for pct in (10, 25, 50, 75, 90, 95, 99):
            exact = percentile(samples, pct)
            got = sketch.percentile(pct)
            # midpoint representatives bound the value error at alpha;
            # allow 2*alpha for rank-interpolation differences
            assert abs(got - exact) / exact <= 2 * DEFAULT_ALPHA

    def test_fraction_below_tracks_exact(self):
        samples = _lognormal_samples(20_000, seed=9)
        sketch = DistSketch()
        sketch.extend(samples)
        threshold = 1.0
        exact = sum(1 for v in samples if v < threshold) / len(samples)
        assert abs(sketch.fraction_below(threshold) - exact) < 0.01


class TestPermutationTest:
    def test_same_distribution_not_significant(self):
        a, b = DistSketch(), DistSketch()
        a.extend(_lognormal_samples(400, seed=10))
        b.extend(_lognormal_samples(400, seed=11))
        result = permutation_mean_test(a, b, rounds=100, seed=0)
        assert result is not None
        assert result.p_value > 0.05

    def test_shifted_distribution_significant(self):
        a, b = DistSketch(), DistSketch()
        a.extend(_lognormal_samples(400, seed=12))
        b.extend(v * 1.8 for v in _lognormal_samples(400, seed=13))
        result = permutation_mean_test(a, b, rounds=100, seed=0)
        assert result is not None
        assert result.p_value < 0.05

    def test_empty_group_returns_none(self):
        a = DistSketch()
        b = DistSketch()
        b.add(1.0)
        assert permutation_mean_test(a, b) is None

    def test_seeded_and_reproducible(self):
        a, b = DistSketch(), DistSketch()
        a.extend(_lognormal_samples(200, seed=14))
        b.extend(_lognormal_samples(200, seed=15))
        r1 = permutation_mean_test(a, b, rounds=50, seed=3)
        r2 = permutation_mean_test(a, b, rounds=50, seed=3)
        assert r1 == r2


class TestMetricSinkMerge:
    def test_sink_merge_grid_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MetricSink(alpha=0.01).merge(MetricSink(alpha=0.05))

    def test_scheme_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SchemeSink("sp").merge(SchemeSink("xlink"))

    def test_empty_sink_digest_is_stable(self):
        assert MetricSink().digest() == MetricSink().digest()
